//! Raw stream-framework benchmarks: operator-chain throughput,
//! event-time sorting, union, and the cost of a thread boundary.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use icewafl_stream::prelude::*;
use icewafl_types::{Duration as IceDuration, Timestamp};
use std::hint::black_box;
use std::time::Duration;

fn bench_operator_chain(c: &mut Criterion) {
    let data: Vec<i64> = (0..100_000).collect();
    let mut group = c.benchmark_group("operator_chain");
    group.measurement_time(Duration::from_secs(4));
    group.sample_size(20);
    group.throughput(criterion::Throughput::Elements(data.len() as u64));
    group.bench_function("map_filter_map", |b| {
        b.iter_batched(
            || data.clone(),
            |d| {
                black_box(
                    DataStream::from_vec(d)
                        .map(|x| x * 3)
                        .filter(|x| x % 2 == 0)
                        .map(|x| x + 1)
                        .count()
                        .unwrap(),
                )
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("map_with_thread_boundary", |b| {
        b.iter_batched(
            || data.clone(),
            |d| {
                black_box(
                    DataStream::from_vec(d)
                        .map(|x| x * 3)
                        .pipelined(1024)
                        .map(|x| x + 1)
                        .count()
                        .unwrap(),
                )
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_sorter(c: &mut Criterion) {
    // Mildly out-of-order stream: swap every pair.
    let mut data: Vec<i64> = (0..50_000).collect();
    for pair in data.chunks_exact_mut(2) {
        pair.swap(0, 1);
    }
    let mut group = c.benchmark_group("event_time_sorter");
    group.measurement_time(Duration::from_secs(4));
    group.sample_size(20);
    group.throughput(criterion::Throughput::Elements(data.len() as u64));
    group.bench_function("bounded_disorder", |b| {
        b.iter_batched(
            || data.clone(),
            |d| {
                let src = VecSource::new(d);
                let strategy = WatermarkStrategy::bounded_out_of_orderness(
                    |x: &i64| Timestamp(*x),
                    IceDuration::from_millis(2),
                    64,
                );
                black_box(
                    DataStream::from_source(src, strategy)
                        .sort_by_event_time(|x| Timestamp(*x))
                        .count()
                        .unwrap(),
                )
            },
            BatchSize::LargeInput,
        )
    });
    // Already-ordered input: the sorter's append fast path (no binary
    // search, no mid-buffer insert) — the common case after a merge of
    // round-robin sub-streams.
    let ordered: Vec<i64> = (0..50_000).collect();
    group.bench_function("already_ordered", |b| {
        b.iter_batched(
            || ordered.clone(),
            |d| {
                let src = VecSource::new(d);
                let strategy = WatermarkStrategy::bounded_out_of_orderness(
                    |x: &i64| Timestamp(*x),
                    IceDuration::ZERO,
                    64,
                );
                black_box(
                    DataStream::from_source(src, strategy)
                        .sort_by_event_time(|x| Timestamp(*x))
                        .count()
                        .unwrap(),
                )
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_union(c: &mut Criterion) {
    let a: Vec<i64> = (0..50_000).collect();
    let bvec: Vec<i64> = (50_000..100_000).collect();
    let mut group = c.benchmark_group("union");
    group.measurement_time(Duration::from_secs(4));
    group.sample_size(20);
    for (name, parallel) in [("sequential", false), ("parallel", true)] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || (a.clone(), bvec.clone()),
                |(a, bv)| {
                    black_box(
                        DataStream::union(
                            vec![DataStream::from_vec(a), DataStream::from_vec(bv)],
                            parallel,
                        )
                        .count()
                        .unwrap(),
                    )
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_operator_chain, bench_sorter, bench_union);
criterion_main!(benches);
