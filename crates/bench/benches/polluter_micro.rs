//! Microbenchmarks of the individual error functions and conditions:
//! per-tuple pollution cost by error type.

use criterion::{criterion_group, criterion_main, Criterion};
use icewafl_core::error_fn::{
    Constant, ErrorFunction, GaussianNoise, IncorrectCategory, MissingValue, Rounding,
    ScaleByFactor, StringTypo, TypoKind, UniformMultiplicativeNoise, UnitConversion,
};
use icewafl_core::prelude::*;
use icewafl_types::{StampedTuple, Timestamp, Tuple, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn rng() -> StdRng {
    StdRng::seed_from_u64(1)
}

fn numeric_tuple() -> Tuple {
    Tuple::new(vec![
        Value::Timestamp(Timestamp(0)),
        Value::Float(42.5),
        Value::Int(7),
    ])
}

fn string_tuple() -> Tuple {
    Tuple::new(vec![
        Value::Timestamp(Timestamp(0)),
        Value::Str("sensor-reading".into()),
    ])
}

fn bench_error_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("error_functions");
    group.measurement_time(Duration::from_secs(3));
    type Case = (&'static str, Box<dyn ErrorFunction>, Tuple, Vec<usize>);
    let cases: Vec<Case> = vec![
        (
            "gaussian_noise",
            Box::new(GaussianNoise::additive(1.0, rng())),
            numeric_tuple(),
            vec![1],
        ),
        (
            "uniform_noise",
            Box::new(UniformMultiplicativeNoise::new(0.0, 0.5, rng())),
            numeric_tuple(),
            vec![1],
        ),
        (
            "scale",
            Box::new(ScaleByFactor::new(0.125)),
            numeric_tuple(),
            vec![1],
        ),
        (
            "missing_value",
            Box::new(MissingValue),
            numeric_tuple(),
            vec![1],
        ),
        (
            "constant",
            Box::new(Constant::new(Value::Int(0))),
            numeric_tuple(),
            vec![2],
        ),
        (
            "rounding",
            Box::new(Rounding::new(2)),
            numeric_tuple(),
            vec![1],
        ),
        (
            "unit_conversion",
            Box::new(UnitConversion::km_to_cm()),
            numeric_tuple(),
            vec![1],
        ),
        (
            "incorrect_category",
            Box::new(IncorrectCategory::new(
                vec!["N".into(), "S".into(), "E".into(), "W".into()],
                rng(),
            )),
            string_tuple(),
            vec![1],
        ),
        (
            "string_typo",
            Box::new(StringTypo::new(TypoKind::Any, rng())),
            string_tuple(),
            vec![1],
        ),
    ];
    for (name, mut f, template, attrs) in cases {
        group.bench_function(name, |b| {
            let mut t = template.clone();
            b.iter(|| {
                t.clone_from(&template);
                f.apply(&mut t, &attrs, Timestamp(0), 1.0);
                black_box(&t);
            })
        });
    }
    group.finish();
}

fn bench_conditions(c: &mut Criterion) {
    let mut group = c.benchmark_group("conditions");
    group.measurement_time(Duration::from_secs(3));
    let tuple = StampedTuple::new(1, Timestamp(50_000_000), numeric_tuple());
    let cases: Vec<(&str, Box<dyn Condition>)> = vec![
        ("probability", Box::new(Probability::new(0.5, rng()))),
        (
            "value_gt",
            Box::new(ValueCondition::new(1, CmpOp::Gt, Value::Float(10.0))),
        ),
        ("hour_range", Box::new(HourRange::new(13, 15))),
        (
            "sinusoidal",
            Box::new(SinusoidalProbability::paper_default(rng())),
        ),
        (
            "and_nested",
            Box::new(AndCondition::new(vec![
                Box::new(HourRange::new(0, 24)),
                Box::new(Probability::new(0.5, rng())),
            ])),
        ),
    ];
    for (name, mut cond) in cases {
        group.bench_function(name, |b| b.iter(|| black_box(cond.evaluate(&tuple))));
    }
    group.finish();
}

criterion_group!(benches, bench_error_functions, bench_conditions);
criterion_main!(benches);
