//! **Figure 8 bench** — runtime overhead of the three §3.1 pollution
//! scenarios vs. an unpolluted pass-through pipeline, measured with
//! Criterion over the wearable stream (the `exp3_runtime` binary prints
//! the paper-style box-plot summary; this bench gives rigorous
//! statistics).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use icewafl_core::prelude::*;
use icewafl_data::wearable;
use icewafl_types::{Schema, Tuple};
use std::hint::black_box;
use std::time::Duration;

fn scenario_configs() -> Vec<(&'static str, Option<JobConfig>)> {
    // Inline copies of the §3.1 scenario configurations.
    let random = JobConfig::single(
        0,
        vec![PolluterConfig::Standard {
            name: "null-distance".into(),
            attributes: vec!["Distance".into()],
            error: ErrorConfig::MissingValue,
            condition: ConditionConfig::Sinusoidal {
                amplitude: 0.25,
                offset: 0.25,
            },
            pattern: None,
        }],
    );
    let update = JobConfig::single(
        0,
        vec![PolluterConfig::Composite {
            name: "software-update".into(),
            condition: ConditionConfig::TimeWindow {
                from: Some("2016-02-27 00:00:00".into()),
                to: None,
            },
            children: vec![
                PolluterConfig::Standard {
                    name: "km-to-cm".into(),
                    attributes: vec!["Distance".into()],
                    error: ErrorConfig::UnitConversion { factor: 100_000.0 },
                    condition: ConditionConfig::Always,
                    pattern: None,
                },
                PolluterConfig::Standard {
                    name: "round-calories".into(),
                    attributes: vec!["CaloriesBurned".into()],
                    error: ErrorConfig::Round { precision: 2 },
                    condition: ConditionConfig::Always,
                    pattern: None,
                },
            ],
        }],
    );
    let network = JobConfig::single(
        0,
        vec![PolluterConfig::Delay {
            name: "bad-network".into(),
            condition: ConditionConfig::And {
                children: vec![
                    ConditionConfig::HourRange { start: 13, end: 15 },
                    ConditionConfig::Probability { p: 0.2 },
                ],
            },
            delay_ms: 3_600_000,
        }],
    );
    vec![
        ("no_pollution", None),
        ("random_temporal", Some(random)),
        ("software_update", Some(update)),
        ("bad_network", Some(network)),
    ]
}

fn run(schema: &Schema, data: Vec<Tuple>, config: Option<&JobConfig>) -> usize {
    let pipeline = match config {
        Some(cfg) => cfg.build(schema).expect("config builds").pop().unwrap(),
        None => PollutionPipeline::empty(),
    };
    let job = PollutionJob::new(schema.clone()).without_logging();
    job.run(data, vec![pipeline])
        .expect("pollution runs")
        .polluted
        .len()
}

fn bench_overhead(c: &mut Criterion) {
    let schema = wearable::schema();
    let data = wearable::generate();
    let mut group = c.benchmark_group("fig8_runtime_overhead");
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(30);
    for (name, config) in scenario_configs() {
        group.bench_function(name, |b| {
            b.iter_batched(
                || data.clone(),
                |d| black_box(run(&schema, d, config.as_ref())),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
