//! Forecasting benchmarks: per-observation learning cost and 12-step
//! forecast cost per model.

use criterion::{criterion_group, criterion_main, Criterion};
use icewafl_forecast::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|t| 30.0 + 10.0 * (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin())
        .collect()
}

fn bench_learn(c: &mut Criterion) {
    let data = series(24 * 30);
    let mut group = c.benchmark_group("learn_one_month");
    group.measurement_time(Duration::from_secs(4));
    group.sample_size(30);
    group.throughput(criterion::Throughput::Elements(data.len() as u64));
    group.bench_function("arima_24_0_2", |b| {
        b.iter(|| {
            let mut m = Snarimax::arima(24, 0, 2, 0.05);
            for y in &data {
                m.learn_one(*y, &[]);
            }
            black_box(m.observations())
        })
    });
    group.bench_function("arimax_24_0_2_x7", |b| {
        let x = vec![0.5; 7];
        b.iter(|| {
            let mut m = Snarimax::arimax(24, 0, 2, 7, 0.05);
            for y in &data {
                m.learn_one(*y, &x);
            }
            black_box(m.observations())
        })
    });
    group.bench_function("holt_winters_24", |b| {
        b.iter(|| {
            let mut m = HoltWinters::new(0.25, 0.02, 0.25, 24);
            for y in &data {
                m.learn_one(*y, &[]);
            }
            black_box(m.observations())
        })
    });
    group.finish();
}

fn bench_forecast(c: &mut Criterion) {
    let data = series(24 * 30);
    let mut group = c.benchmark_group("forecast_12h");
    group.measurement_time(Duration::from_secs(3));
    let mut arima = Snarimax::arima(24, 0, 2, 0.05);
    let mut hw = HoltWinters::new(0.25, 0.02, 0.25, 24);
    for y in &data {
        arima.learn_one(*y, &[]);
        hw.learn_one(*y, &[]);
    }
    group.bench_function("arima", |b| b.iter(|| black_box(arima.forecast(12, &[]))));
    group.bench_function("holt_winters", |b| {
        b.iter(|| black_box(hw.forecast(12, &[])))
    });
    group.finish();
}

criterion_group!(benches, bench_learn, bench_forecast);
criterion_main!(benches);
