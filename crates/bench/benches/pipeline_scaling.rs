//! Ablation: throughput vs. pipeline length `ℓ` and sub-stream count
//! `m` — the empirical counterpart of the paper's §2.3 complexity claim
//! `O(n·m·(1/m + ℓ + log(n·m)))`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use icewafl_core::prelude::*;
use icewafl_types::{DataType, Schema, Timestamp, Tuple, Value};
use std::hint::black_box;
use std::time::Duration;

fn schema() -> Schema {
    Schema::from_pairs([("Time", DataType::Timestamp), ("x", DataType::Float)]).unwrap()
}

fn stream(n: usize) -> Vec<Tuple> {
    (0..n as i64)
        .map(|i| {
            Tuple::new(vec![
                Value::Timestamp(Timestamp(i * 1000)),
                Value::Float(i as f64),
            ])
        })
        .collect()
}

fn noise_polluter(name: String) -> PolluterConfig {
    PolluterConfig::Standard {
        name,
        attributes: vec!["x".into()],
        error: ErrorConfig::GaussianNoise {
            sigma: 1.0,
            relative: false,
        },
        condition: ConditionConfig::Probability { p: 0.5 },
        pattern: None,
    }
}

/// Pipeline length sweep: ℓ ∈ {1, 2, 4, 8} polluters, one sub-stream.
fn bench_pipeline_length(c: &mut Criterion) {
    let schema = schema();
    let data = stream(10_000);
    let mut group = c.benchmark_group("pipeline_length");
    group.measurement_time(Duration::from_secs(4));
    group.sample_size(20);
    for l in [1usize, 2, 4, 8] {
        let cfg = JobConfig::single(1, (0..l).map(|i| noise_polluter(format!("p{i}"))).collect());
        group.bench_with_input(BenchmarkId::from_parameter(l), &cfg, |b, cfg| {
            b.iter_batched(
                // Job and pipeline construction are setup, not workload.
                || {
                    (
                        data.clone(),
                        cfg.build(&schema).unwrap().pop().unwrap(),
                        PollutionJob::new(schema.clone()).without_logging(),
                    )
                },
                |(d, pipeline, job)| black_box(job.run(d, vec![pipeline]).unwrap().polluted.len()),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Sub-stream count sweep: m ∈ {1, 2, 4} round-robin partitions, one
/// polluter each.
fn bench_substream_count(c: &mut Criterion) {
    let schema = schema();
    let data = stream(10_000);
    let mut group = c.benchmark_group("substream_count");
    group.measurement_time(Duration::from_secs(4));
    group.sample_size(20);
    for m in [1usize, 2, 4] {
        let cfg = JobConfig {
            seed: 1,
            pipelines: (0..m)
                .map(|i| vec![noise_polluter(format!("m{i}"))])
                .collect(),
            supervision: None,
            chaos: None,
            checkpoint: None,
            execution: None,
        };
        group.bench_with_input(BenchmarkId::from_parameter(m), &cfg, |b, cfg| {
            b.iter_batched(
                || {
                    (
                        data.clone(),
                        cfg.build(&schema).unwrap(),
                        PollutionJob::new(schema.clone())
                            .with_assigner(SubStreamAssigner::RoundRobin)
                            .without_logging(),
                    )
                },
                |(d, pipelines, job)| black_box(job.run(d, pipelines).unwrap().polluted.len()),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Sequential vs. thread-parallel sub-stream execution (m = 4).
fn bench_parallelism(c: &mut Criterion) {
    let schema = schema();
    let data = stream(20_000);
    let cfg = JobConfig {
        seed: 1,
        pipelines: (0..4)
            .map(|i| vec![noise_polluter(format!("m{i}"))])
            .collect(),
        supervision: None,
        chaos: None,
        checkpoint: None,
        execution: None,
    };
    let mut group = c.benchmark_group("substream_parallelism");
    group.measurement_time(Duration::from_secs(4));
    group.sample_size(20);
    for (name, parallel) in [("sequential", false), ("parallel", true)] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut job = PollutionJob::new(schema.clone())
                        .with_assigner(SubStreamAssigner::RoundRobin)
                        .without_logging();
                    if parallel {
                        job = job.parallel();
                    }
                    (data.clone(), cfg.build(&schema).unwrap(), job)
                },
                |(d, pipelines, job)| black_box(job.run(d, pipelines).unwrap().polluted.len()),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Transport batch-size sweep on the §2.3 reference workload (ℓ = 4,
/// m = 4) under the pipelined strategy — the configuration where every
/// tuple crosses a thread boundary, so per-element channel cost
/// dominates and batching pays off.
fn bench_batch_size(c: &mut Criterion) {
    let schema = schema();
    let data = stream(10_000);
    let cfg = JobConfig {
        seed: 1,
        pipelines: (0..4)
            .map(|m| {
                (0..4)
                    .map(|i| noise_polluter(format!("m{m}p{i}")))
                    .collect()
            })
            .collect(),
        supervision: None,
        chaos: None,
        checkpoint: None,
        execution: None,
    };
    let mut group = c.benchmark_group("batch_size");
    group.measurement_time(Duration::from_secs(4));
    group.sample_size(20);
    for batch in [1usize, 64, 256, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter_batched(
                || {
                    (
                        data.clone(),
                        cfg.build(&schema).unwrap(),
                        PollutionJob::new(schema.clone())
                            .with_assigner(SubStreamAssigner::RoundRobin)
                            .with_strategy(StrategyHint::Pipelined)
                            .with_batch_size(batch)
                            .without_logging(),
                    )
                },
                |(d, pipelines, job)| black_box(job.run(d, pipelines).unwrap().polluted.len()),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pipeline_length,
    bench_substream_count,
    bench_parallelism,
    bench_batch_size
);
criterion_main!(benches);
