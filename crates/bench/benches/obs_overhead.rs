//! Observability overhead on the polluter hot path.
//!
//! The acceptance bar for the metrics layer is **< 5 %** added cost on
//! the hot path. The same workload is benchmarked twice:
//!
//! ```text
//! cargo bench -p icewafl-bench --bench obs_overhead                      # obs on
//! cargo bench -p icewafl-bench --bench obs_overhead --no-default-features # compiled out
//! ```
//!
//! Compare the `pollute_10k` numbers between the two runs. With the
//! `obs` feature off every counter is a zero-sized no-op, so the second
//! run is the true zero-instrumentation baseline; the first run pays
//! the `Arc<AtomicU64>` increments, the 1-in-64 sampled timing, and the
//! *idle* span layer — no `TraceSession` is installed, so every trace
//! probe costs one relaxed atomic load (the bar covers tracing
//! compiled in but not subscribed).
//! Whether metrics are compiled in is printed (and asserted) via
//! `icewafl_obs::metrics_compiled_in()` so the two runs cannot be
//! confused.

use criterion::{criterion_group, criterion_main, Criterion};
use icewafl_core::prelude::*;
use icewafl_types::{DataType, Schema, Timestamp, Tuple, Value};
use std::hint::black_box;
use std::time::Duration;

fn schema() -> Schema {
    Schema::from_pairs([("Time", DataType::Timestamp), ("x", DataType::Float)]).unwrap()
}

fn stream(n: usize) -> Vec<Tuple> {
    (0..n as i64)
        .map(|i| {
            Tuple::new(vec![
                Value::Timestamp(Timestamp(i * 1000)),
                Value::Float(i as f64),
            ])
        })
        .collect()
}

fn pipeline(seed: u64) -> PollutionPipeline {
    JobConfig::single(
        seed,
        vec![
            PolluterConfig::Standard {
                name: "null-x".into(),
                attributes: vec!["x".into()],
                error: ErrorConfig::MissingValue,
                condition: ConditionConfig::Probability { p: 0.3 },
                pattern: None,
            },
            PolluterConfig::Standard {
                name: "scale-x".into(),
                attributes: vec!["x".into()],
                error: ErrorConfig::Scale { factor: 0.125 },
                condition: ConditionConfig::Probability { p: 0.2 },
                pattern: None,
            },
        ],
    )
    .build(&schema())
    .unwrap()
    .pop()
    .unwrap()
}

fn bench_obs_overhead(c: &mut Criterion) {
    eprintln!(
        "obs_overhead: metrics compiled {} — compare against the other feature state",
        if icewafl_obs::metrics_compiled_in() {
            "IN"
        } else {
            "OUT"
        }
    );
    let mut group = c.benchmark_group("obs_overhead");
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(20);

    let schema = schema();
    let tuples = stream(10_000);

    // Full job, logging off: the hot path the <5% bar applies to.
    group.bench_function("pollute_10k", |b| {
        b.iter(|| {
            let job = PollutionJob::new(schema.clone()).without_logging();
            let out = job.run(tuples.clone(), vec![pipeline(42)]).unwrap();
            black_box(out.polluted.len())
        })
    });

    // Same job with ground-truth logging, for the logging-cost split.
    group.bench_function("pollute_10k_logged", |b| {
        b.iter(|| {
            let job = PollutionJob::new(schema.clone());
            let out = job.run(tuples.clone(), vec![pipeline(42)]).unwrap();
            black_box(out.log.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
