//! DQ-engine benchmarks: expectation validation throughput and regex
//! matching cost.

use criterion::{criterion_group, criterion_main, Criterion};
use icewafl_dq::prelude::*;
use icewafl_types::{DataType, Schema, StampedTuple, Timestamp, Tuple, Value};
use std::hint::black_box;
use std::time::Duration;

fn schema() -> Schema {
    Schema::from_pairs([
        ("Time", DataType::Timestamp),
        ("x", DataType::Float),
        ("s", DataType::Str),
    ])
    .unwrap()
}

fn rows(n: usize) -> Vec<StampedTuple> {
    (0..n as u64)
        .map(|i| {
            StampedTuple::new(
                i,
                Timestamp(i as i64 * 1000),
                Tuple::new(vec![
                    Value::Timestamp(Timestamp(i as i64 * 1000)),
                    if i % 10 == 0 {
                        Value::Null
                    } else {
                        Value::Float(i as f64 * 0.321)
                    },
                    Value::Str(format!("{}.{:03}", i, i % 997)),
                ]),
            )
        })
        .collect()
}

fn bench_expectations(c: &mut Criterion) {
    let schema = schema();
    let data = rows(10_000);
    let mut group = c.benchmark_group("expectations_10k_rows");
    group.measurement_time(Duration::from_secs(4));
    group.sample_size(30);
    group.bench_function("not_be_null", |b| {
        let e = ExpectColumnValuesToNotBeNull::new("x");
        b.iter(|| black_box(e.validate(&schema, &data).unwrap().unexpected_count))
    });
    group.bench_function("be_between", |b| {
        let e = ExpectColumnValuesToBeBetween::new(
            "x",
            Some(Value::Float(0.0)),
            Some(Value::Float(2000.0)),
        );
        b.iter(|| black_box(e.validate(&schema, &data).unwrap().unexpected_count))
    });
    group.bench_function("increasing", |b| {
        let e = ExpectColumnValuesToBeIncreasing::new("Time");
        b.iter(|| black_box(e.validate(&schema, &data).unwrap().unexpected_count))
    });
    group.bench_function("match_regex", |b| {
        let e = ExpectColumnValuesToMatchRegex::new("s", r"^\d+(\.\d{1,3})?$").unwrap();
        b.iter(|| black_box(e.validate(&schema, &data).unwrap().unexpected_count))
    });
    group.bench_function("mean_between", |b| {
        let e = ExpectColumnMeanToBeBetween::new("x", 0.0, 5_000.0);
        b.iter(|| black_box(e.validate(&schema, &data).unwrap().success))
    });
    group.finish();
}

fn bench_regex_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("regex_engine");
    group.measurement_time(Duration::from_secs(3));
    let precision = Regex::new(r"^\d+(\.\d{1,3})?$").unwrap();
    group.bench_function("precision_match", |b| {
        b.iter(|| black_box(precision.matches_full("12345.678")))
    });
    group.bench_function("precision_reject", |b| {
        b.iter(|| black_box(precision.matches_full("12345.67890")))
    });
    let word = Regex::new(r"[a-z]+@[a-z]+\.[a-z]{2,3}").unwrap();
    group.bench_function("search_in_text", |b| {
        b.iter(|| black_box(word.is_match("contact us at team@example.org for details")))
    });
    group.finish();
}

criterion_group!(benches, bench_expectations, bench_regex_engine);
criterion_main!(benches);
