//! Machine-readable throughput harness (`cargo run -p icewafl-bench
//! --release --bin throughput`).
//!
//! Runs the §2.3 reference workload — `n` tuples through `m = 4`
//! sub-streams of pipeline length `ℓ = 4` — under every execution
//! strategy and emits a `BENCH_throughput.json` report with
//! tuples/second per configuration. Unlike the criterion benches this
//! harness is cheap enough for CI, produces a stable JSON artifact for
//! regression gating (`--check`), and needs no statistics framework:
//! it reports the best of `--reps` wall-clock runs.
//!
//! Usage:
//!   throughput [--n 10000] [--reps 5] [--out BENCH_throughput.json]
//!              [--check BASELINE.json] [--tolerance 0.30] [--relative]
//!              [--serve] [--serve-sessions 4]
//!
//! Every run also measures the per-kernel-family microbench: each
//! vectorized kernel family runs on a single-stage pipeline in three
//! modes — loose-row `process_row`, columnar transport with the row
//! trampoline forced, and the vectorized kernels — and the element/s
//! land under a `kernels` key. In `--relative` mode the geometric mean
//! of the vectorized/trampoline speedups from the same run is gated
//! against `KERNEL_SPEEDUP_FLOOR`, so the kernels cannot silently
//! degenerate into the per-row loop.
//!
//! With `--serve`, the harness additionally measures end-to-end network
//! throughput: it starts an in-process `icewafl-serve` server and
//! drives concurrent sessions of the same workload through it, once per
//! wire format. Serve numbers land under a separate `serve` key in the
//! JSON — absolute network rates are machine-dependent and stay outside
//! the `results` array the `--check` gate iterates — but in `--relative`
//! mode the binary serve / offline sequential *ratio* from the same run
//! is gated against a floor (see `SERVE_BINARY_RATIO_FLOOR`).
//!
//! Every run also measures checkpointed recovery: a chaos kill halfway
//! through the pipelined workload, restored from the latest
//! epoch-aligned checkpoint and byte-diffed against an undisturbed
//! run. `recovery_ms` / `replayed_tuples` land under a separate
//! `recovery` key — wall-clock cost on this machine, also outside the
//! `--check` gate.
//!
//! With `--check`, every configuration present in the baseline's
//! `results` array must reach at least `(1 - tolerance)` of its
//! baseline throughput or the process exits non-zero. `--relative`
//! normalizes both sides by their own `sequential/batch_1` throughput
//! before comparing, so the gate measures *speedup shape* (does
//! batching still pay off?) rather than absolute tuples/sec — the only
//! comparison that is stable across differently-sized machines, and
//! the mode CI uses against the committed baseline.

use std::time::Instant;

use icewafl_core::columnar::lower_pipeline;
use icewafl_core::condition::CmpOp;
use icewafl_core::config::{ConditionConfig, ErrorConfig, PolluterConfig};
use icewafl_core::log::PollutionLog;
use icewafl_core::plan::{AssignerSpec, LogicalPlan, ReprHint, StrategyHint};
use icewafl_types::{DataType, Schema, StampedTuple, Timestamp, Tuple, Value};

/// Pipeline length ℓ of the reference workload.
const PIPELINE_LEN: usize = 4;
/// Sub-stream count m of the reference workload.
const SUB_STREAMS: usize = 4;
/// Batch sizes swept per strategy (1 = unbatched transport).
const BATCH_SIZES: [usize; 3] = [1, 64, 256];
/// Batch sizes swept by the columnar group. Starts at 64 — a columnar
/// kernel over a 1-tuple batch only measures conversion overhead.
const COLUMNAR_BATCH_SIZES: [usize; 3] = [64, 256, 4096];

fn schema() -> Schema {
    Schema::from_pairs([("Time", DataType::Timestamp), ("x", DataType::Float)]).unwrap()
}

fn tuples(n: i64) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::Timestamp(Timestamp(i * 1000)),
                Value::Float(i as f64),
            ])
        })
        .collect()
}

/// One sub-stream pipeline: ℓ gaussian-noise polluters gated at p=0.5.
fn pipeline() -> Vec<PolluterConfig> {
    (0..PIPELINE_LEN)
        .map(|i| PolluterConfig::Standard {
            name: format!("noise-{i}"),
            attributes: vec!["x".into()],
            error: ErrorConfig::GaussianNoise {
                sigma: 1.0,
                relative: false,
            },
            condition: ConditionConfig::Probability { p: 0.5 },
            pattern: None,
        })
        .collect()
}

fn plan(strategy: StrategyHint, batch_size: usize) -> LogicalPlan {
    plan_repr(strategy, batch_size, ReprHint::Row)
}

/// The reference workload with an explicit batch representation. The
/// historical strategy groups pin `ReprHint::Row` so their numbers keep
/// meaning across the columnar rollout; the `columnar/*` group pins
/// `ReprHint::Columnar` so a silent fall-back to rows shows up as a
/// compile error rather than a quietly wrong measurement.
fn plan_repr(strategy: StrategyHint, batch_size: usize, repr: ReprHint) -> LogicalPlan {
    let mut plan = LogicalPlan::new(42, vec![pipeline(); SUB_STREAMS]);
    plan.assigner = AssignerSpec::RoundRobin;
    plan.strategy = strategy;
    plan.logging = false;
    plan.batch_size = batch_size;
    plan.repr = repr;
    plan
}

struct Measurement {
    name: String,
    strategy: String,
    batch_size: usize,
    tuples_per_sec: f64,
    best_ms: f64,
}

fn measure(strategy: StrategyHint, batch_size: usize, n: i64, reps: u32) -> Measurement {
    measure_repr(strategy, batch_size, n, reps, ReprHint::Row, None)
}

fn measure_repr(
    strategy: StrategyHint,
    batch_size: usize,
    n: i64,
    reps: u32,
    repr: ReprHint,
    group: Option<&str>,
) -> Measurement {
    let schema = schema();
    let physical = plan_repr(strategy, batch_size, repr)
        .compile(&schema)
        .expect("reference plan compiles");
    let data = tuples(n);
    // One warm-up run outside the timed loop.
    let warm = physical.execute(data.clone()).expect("warm-up succeeds");
    assert_eq!(warm.polluted.len(), n as usize, "workload is lossless");
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let input = data.clone();
        let start = Instant::now();
        let out = physical.execute(input).expect("run succeeds");
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(out.polluted.len(), n as usize);
        best = best.min(elapsed);
    }
    let strategy_name = group.unwrap_or(match strategy {
        StrategyHint::Sequential => "sequential",
        StrategyHint::Pipelined => "pipelined",
        StrategyHint::SplitMergeParallel => "split_merge_parallel",
        _ => "other",
    });
    Measurement {
        name: format!("{strategy_name}/batch_{batch_size}"),
        strategy: strategy_name.to_string(),
        batch_size,
        tuples_per_sec: n as f64 / best,
        best_ms: best * 1e3,
    }
}

/// Row-batch size the kernel microbench feeds `process_rows` — matches
/// the largest columnar transport batch so per-batch conversion cost is
/// amortized the same way in both columnar modes.
const KERNEL_CHUNK: usize = 4096;

/// Per-kernel-family throughput in the three execution modes the
/// columnar layer supports. All three run the *same* single-stage
/// [`ColumnPipeline`](icewafl_core::ColumnPipeline) object, so the
/// numbers isolate the kernel itself:
///
/// * `row` — `process_row` over loose tuples: the tuple-at-a-time path
///   every non-columnar sub-stream executes.
/// * `trampoline` — `process_rows` with `set_vectorized(false)`:
///   columnar transport, but each stage walks the batch row by row.
/// * `vectorized` — `process_rows` with kernels on: bulk RNG draws,
///   branch-free masked selects.
struct KernelMeasurement {
    family: String,
    row_elems_per_sec: f64,
    trampoline_elems_per_sec: f64,
    vectorized_elems_per_sec: f64,
}

impl KernelMeasurement {
    /// The machine-independent number the `--relative` gate consumes:
    /// same pipeline, same machine, same run — only the inner loop
    /// differs.
    fn speedup(&self) -> f64 {
        self.vectorized_elems_per_sec / self.trampoline_elems_per_sec
    }
}

/// Four-column schema exercising every column layout the kernels
/// handle: timestamps, ints, floats, and strings.
fn kernel_schema() -> Schema {
    Schema::from_pairs([
        ("Time", DataType::Timestamp),
        ("BPM", DataType::Int),
        ("Distance", DataType::Float),
        ("sensor", DataType::Str),
    ])
    .unwrap()
}

/// One row per minute (so hour-of-day conditions cycle over the run),
/// with a sprinkling of NULLs so the validity-mask intersection is on
/// every kernel's hot path.
fn kernel_rows(n: i64) -> Vec<StampedTuple> {
    (0..n)
        .map(|i| {
            let bpm = if i % 13 == 0 {
                Value::Null
            } else {
                Value::Int(60 + i % 90)
            };
            StampedTuple::new(
                i as u64,
                Timestamp(i * 60_000),
                Tuple::new(vec![
                    Value::Timestamp(Timestamp(i * 60_000)),
                    bpm,
                    Value::Float(5.0 + (i % 1000) as f64 * 0.01),
                    Value::Str(format!("s{}", i % 8)),
                ]),
            )
        })
        .collect()
}

/// One polluter per vectorized kernel family, paired with a condition
/// kernel that fires on a substantial share of rows — a microbench over
/// an all-zero mask would measure mask evaluation, not the error
/// kernel.
fn kernel_families() -> Vec<(&'static str, PolluterConfig)> {
    let std = |name: &'static str, attr: &str, error: ErrorConfig, condition: ConditionConfig| {
        (
            name,
            PolluterConfig::Standard {
                name: name.into(),
                attributes: vec![attr.into()],
                error,
                condition,
                pattern: None,
            },
        )
    };
    vec![
        std(
            "round",
            "Distance",
            ErrorConfig::Round { precision: 1 },
            ConditionConfig::Always,
        ),
        std(
            "unit_conversion",
            "Distance",
            ErrorConfig::UnitConversion { factor: 1.60934 },
            ConditionConfig::TimeWindow {
                from: Some("1970-01-01 12:00:00".into()),
                to: None,
            },
        ),
        std(
            "outlier",
            "BPM",
            ErrorConfig::Outlier { magnitude: 3.0 },
            ConditionConfig::HourRange { start: 6, end: 18 },
        ),
        std(
            "uniform_noise",
            "Distance",
            ErrorConfig::UniformNoise { a: 0.0, b: 0.3 },
            ConditionConfig::Sinusoidal {
                amplitude: 0.25,
                offset: 0.5,
            },
        ),
        std(
            "constant",
            "sensor",
            ErrorConfig::Constant {
                value: Value::Str("fixed".into()),
            },
            ConditionConfig::LinearRamp {
                from: "1970-01-01 00:00:00".into(),
                to: "1970-01-08 00:00:00".into(),
                p0: 0.2,
                p1: 0.8,
            },
        ),
        std(
            "timestamp_shift",
            "Time",
            ErrorConfig::TimestampShift {
                delta_ms: -3_600_000,
            },
            ConditionConfig::Probability { p: 0.5 },
        ),
        std(
            "missing_value",
            "BPM",
            ErrorConfig::MissingValue,
            ConditionConfig::Probability { p: 0.3 },
        ),
        std(
            "gaussian_noise",
            "Distance",
            ErrorConfig::GaussianNoise {
                sigma: 0.1,
                relative: true,
            },
            ConditionConfig::Value {
                attribute: "Distance".into(),
                op: CmpOp::Gt,
                value: Value::Float(10.0),
            },
        ),
        std(
            "scale",
            "BPM",
            ErrorConfig::Scale { factor: 1.5 },
            ConditionConfig::Probability { p: 0.7 },
        ),
    ]
}

/// Best wall-clock of `reps` timed runs, after one untimed warm-up.
fn best_secs(reps: u32, mut run: impl FnMut() -> f64) -> f64 {
    run();
    (0..reps).map(|_| run()).fold(f64::INFINITY, f64::min)
}

/// Measures every kernel family in all three modes. Element counts are
/// rows (each family targets one attribute), so the three rates are
/// directly comparable per family.
fn measure_kernels(n: i64, reps: u32) -> Vec<KernelMeasurement> {
    use icewafl_types::ColumnBatch;

    let schema = kernel_schema();
    let rows = kernel_rows(n);
    // Batches are converted ONCE, outside every timed region: the
    // microbench isolates the stage inner loop, so rows↔columns
    // conversion — identical in both columnar modes and measured by the
    // `columnar/*` scenario group above — must not dilute the ratio.
    let batches: Vec<ColumnBatch> = rows
        .chunks(KERNEL_CHUNK)
        .map(|chunk| {
            ColumnBatch::from_rows(&schema, chunk.to_vec()).expect("bench rows fit the schema")
        })
        .collect();
    let mut log = PollutionLog::disabled();
    let mut out = Vec::new();
    for (family, config) in kernel_families() {
        let mut pipeline = lower_pipeline(42, 0, std::slice::from_ref(&config), &schema)
            .expect("kernel family compiles")
            .expect("kernel family lowers to columns");
        assert_eq!(
            pipeline.vectorized_stages(),
            1,
            "`{family}` must ship a column kernel"
        );

        // Row mode: loose tuples through `process_row`, no conversion.
        let best_row = best_secs(reps, || {
            let mut input = rows.clone();
            let start = Instant::now();
            for tuple in &mut input {
                pipeline.process_row(tuple, &mut log);
            }
            start.elapsed().as_secs_f64()
        });

        // Columnar batches, per-row trampoline inner loop.
        pipeline.set_vectorized(false);
        let best_tramp = best_secs(reps, || {
            let mut input = batches.clone();
            let start = Instant::now();
            for batch in &mut input {
                pipeline.process_batch(batch, &mut log);
            }
            start.elapsed().as_secs_f64()
        });

        // Columnar batches, vectorized kernels.
        pipeline.set_vectorized(true);
        let best_vec = best_secs(reps, || {
            let mut input = batches.clone();
            let start = Instant::now();
            for batch in &mut input {
                pipeline.process_batch(batch, &mut log);
            }
            start.elapsed().as_secs_f64()
        });

        out.push(KernelMeasurement {
            family: family.to_string(),
            row_elems_per_sec: n as f64 / best_row,
            trampoline_elems_per_sec: n as f64 / best_tramp,
            vectorized_elems_per_sec: n as f64 / best_vec,
        });
    }
    out
}

/// Geometric mean of the per-family vectorized/trampoline speedups —
/// one number summarizing whether the kernels still beat the row-by-row
/// inner loop. Geometric (not arithmetic) so one huge bitmap-kernel
/// ratio cannot mask a regression in the compute-bound families.
fn kernel_speedup_geomean(kernels: &[KernelMeasurement]) -> f64 {
    if kernels.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = kernels.iter().map(|k| k.speedup().ln()).sum();
    (log_sum / kernels.len() as f64).exp()
}

/// Network throughput of one serve configuration: an in-process server
/// and `sessions` concurrent clients streaming the reference workload.
fn measure_serve(n: i64, sessions: usize, format: &str) -> Measurement {
    use icewafl_serve::{client, ClientConfig, Handshake, ServeConfig, Server};
    use std::sync::Arc;

    let server = Arc::new(
        Server::bind(ServeConfig {
            max_sessions: sessions.max(1),
            ..ServeConfig::default()
        })
        .expect("bind serve listener"),
    );
    let addr = server.local_addr().to_string();
    let shutdown = server.shutdown_handle();
    let runner = Arc::clone(&server);
    let accept_loop = std::thread::spawn(move || runner.run());

    let handshake = Handshake {
        plan_inline: Some(plan(StrategyHint::Pipelined, 64)),
        schema_inline: Some(schema()),
        format: Some(format.to_string()),
        ..Handshake::default()
    };
    let input = tuples(n);
    let start = Instant::now();
    let workers: Vec<_> = (0..sessions)
        .map(|_| {
            let config = ClientConfig::new(addr.clone(), handshake.clone());
            let input = input.clone();
            std::thread::spawn(move || client::run_session(&config, input).expect("serve session"))
        })
        .collect();
    for worker in workers {
        let outcome = worker.join().expect("session thread");
        assert!(
            outcome.completed(),
            "serve session failed: {:?}",
            outcome.error
        );
        assert_eq!(outcome.tuples.len(), n as usize, "workload is lossless");
    }
    let elapsed = start.elapsed().as_secs_f64();
    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    accept_loop
        .join()
        .expect("accept loop")
        .expect("server run");

    Measurement {
        name: format!("serve/{format}_x{sessions}"),
        strategy: format!("serve_{format}"),
        batch_size: 64,
        tuples_per_sec: (sessions as i64 * n) as f64 / elapsed,
        best_ms: elapsed * 1e3,
    }
}

/// Recovery cost of the reference workload: a chaos kill halfway
/// through, under epoch-aligned checkpointing and supervised retry.
/// Returns the recovered run's `RunReport` after asserting the
/// recovered output is byte-identical to an undisturbed run — the same
/// invariant `tests/checkpoint_recovery.rs` pins, exercised here on
/// the bench workload so `recovery_ms` / `replayed_tuples` land in the
/// artifact next to the throughput numbers.
fn measure_recovery(n: i64) -> icewafl_core::report::RunReport {
    use icewafl_core::config::{ChaosSectionConfig, CheckpointSectionConfig, SupervisionConfig};

    let schema = schema();
    let base = {
        let mut p = plan(StrategyHint::Pipelined, 64);
        p.logging = true;
        p.supervision = Some(SupervisionConfig {
            max_retries: 2,
            deterministic: true,
            ..SupervisionConfig::default()
        });
        p.checkpoint = Some(CheckpointSectionConfig::default());
        p
    };
    let calm = base
        .clone()
        .compile(&schema)
        .expect("calm plan compiles")
        .execute_supervised(tuples(n))
        .expect("calm run succeeds");

    let mut hurt_plan = base;
    // `kill_at_tuple` counts records *per injector*, and each of the m
    // sub-stream injectors sees ~n/m records — aim for halfway through
    // one sub-stream so the kill actually fires.
    hurt_plan.chaos = Some(ChaosSectionConfig {
        kill_at_tuple: Some((n as u64 / (SUB_STREAMS as u64 * 2)).max(1)),
        panic_budget: Some(1),
        ..ChaosSectionConfig::default()
    });
    let hurt = hurt_plan
        .compile(&schema)
        .expect("hurt plan compiles")
        .execute_supervised(tuples(n))
        .expect("supervised run recovers");

    assert_eq!(
        calm.polluted, hurt.polluted,
        "recovered output must be byte-identical to the undisturbed run"
    );
    assert!(
        hurt.report.restored_from_epoch > 0,
        "run restored from a checkpoint"
    );
    hurt.report
}

fn render(
    n: i64,
    reps: u32,
    results: &[Measurement],
    kernels: &[KernelMeasurement],
    serve: &[Measurement],
    recovery: Option<&icewafl_core::report::RunReport>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"workload\": {\n");
    out.push_str(&format!("    \"n\": {n},\n"));
    out.push_str(&format!("    \"pipeline_length\": {PIPELINE_LEN},\n"));
    out.push_str(&format!("    \"sub_streams\": {SUB_STREAMS},\n"));
    out.push_str(&format!("    \"reps\": {reps}\n"));
    out.push_str("  },\n  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"strategy\": \"{}\", \"batch_size\": {}, \
             \"tuples_per_sec\": {:.0}, \"best_ms\": {:.2} }}{}\n",
            m.name,
            m.strategy,
            m.batch_size,
            m.tuples_per_sec,
            m.best_ms,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]");
    if !kernels.is_empty() {
        // Absolute element/s are machine-dependent and stay outside the
        // `results` array the `--check` gate iterates; the `--relative`
        // gate consumes only the same-run speedup ratio.
        out.push_str(",\n  \"kernels\": [\n");
        for (i, k) in kernels.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"family\": \"{}\", \"row_elems_per_sec\": {:.0}, \
                 \"trampoline_elems_per_sec\": {:.0}, \"vectorized_elems_per_sec\": {:.0}, \
                 \"speedup\": {:.2} }}{}\n",
                k.family,
                k.row_elems_per_sec,
                k.trampoline_elems_per_sec,
                k.vectorized_elems_per_sec,
                k.speedup(),
                if i + 1 < kernels.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]");
    }
    if !serve.is_empty() {
        // Outside `results` on purpose: the --check gate must not
        // compare network numbers across machines.
        out.push_str(",\n  \"serve\": [\n");
        for (i, m) in serve.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"name\": \"{}\", \"strategy\": \"{}\", \"batch_size\": {}, \
                 \"tuples_per_sec\": {:.0}, \"best_ms\": {:.2} }}{}\n",
                m.name,
                m.strategy,
                m.batch_size,
                m.tuples_per_sec,
                m.best_ms,
                if i + 1 < serve.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]");
    }
    if let Some(report) = recovery {
        // Also outside `results`: recovery cost is wall-clock on this
        // machine, not a cross-machine comparable throughput.
        out.push_str(&format!(
            ",\n  \"recovery\": {{ \"checkpoints_taken\": {}, \"restored_from_epoch\": {}, \
             \"replayed_tuples\": {}, \"recovery_ms\": {} }}",
            report.checkpoints_taken,
            report.restored_from_epoch,
            report.replayed_tuples,
            report.recovery_ms
        ));
    }
    out.push_str("\n}\n");
    out
}

/// Name of the configuration used as the normalization reference in
/// `--relative` mode: no channel edges, no batching, so its throughput
/// tracks raw machine speed.
const REFERENCE_CONFIG: &str = "sequential/batch_1";

/// Minimum columnar-over-row sequential speedup the `--relative` gate
/// accepts, measured against [`REFERENCE_CONFIG`]. Both sides run on
/// the same machine in the same process, so unlike absolute tuples/sec
/// this ratio is stable across hardware. The floor sits well under the
/// ~2.2–2.6x this workload measures because its job is to catch a
/// silent fall-back to the row path (ratio ~1.0), not to pin the exact
/// speedup — the gaussian-noise kernels are compute-heavy enough that
/// Amdahl caps the transport win, and machine noise must not flake CI.
const COLUMNAR_SPEEDUP_FLOOR: f64 = 1.5;

/// Minimum binary-serve over offline-sequential throughput ratio the
/// `--relative` gate accepts when this run measured serve (`--serve`).
/// Both sides run on the same machine in the same process, so the ratio
/// is hardware-independent; the floor guards the event-driven serving
/// path against regressing back toward the ~0.3x the thread-per-session
/// server measured, while staying far enough under the measured ratio
/// that scheduler noise cannot flake CI.
const SERVE_BINARY_RATIO_FLOOR: f64 = 0.5;

/// Minimum geometric-mean vectorized/trampoline kernel speedup the
/// `--relative` gate accepts. Both inner loops run on the same pipeline
/// object in the same process, so the ratio is hardware-independent.
/// The bitmap and select kernels measure well above this; the floor's
/// job is to catch the kernels silently degenerating into the per-row
/// trampoline (geomean ~1.0), while sitting far enough under the
/// measured geomean that the branchy stochastic families (gaussian,
/// outlier) cannot flake CI on a noisy machine.
const KERNEL_SPEEDUP_FLOOR: f64 = 1.3;

/// Compares measured throughput against a committed baseline; returns
/// the names of configurations that regressed beyond `tolerance`. In
/// relative mode both sides are divided by their own
/// [`REFERENCE_CONFIG`] throughput first, comparing speedup ratios
/// instead of machine-dependent absolute rates — and, when this run
/// measured serve, the binary serve/offline ratio is gated against
/// [`SERVE_BINARY_RATIO_FLOOR`].
fn check(
    baseline_json: &str,
    results: &[Measurement],
    kernels: &[KernelMeasurement],
    serve: &[Measurement],
    tolerance: f64,
    relative: bool,
) -> Vec<String> {
    let baseline: serde_json::Value =
        serde_json::from_str(baseline_json).expect("baseline parses as JSON");
    let entries = baseline
        .get("results")
        .and_then(|r| r.as_array())
        .expect("baseline has a results array");
    let base_tps_of = |name: &str| {
        entries.iter().find_map(|e| {
            (e.get("name").and_then(|v| v.as_str()) == Some(name))
                .then(|| e.get("tuples_per_sec").and_then(|v| v.as_f64()))
                .flatten()
        })
    };
    let (base_ref, measured_ref) = if relative {
        let base = base_tps_of(REFERENCE_CONFIG)
            .expect("baseline contains the sequential/batch_1 reference");
        let measured = results
            .iter()
            .find(|m| m.name == REFERENCE_CONFIG)
            .expect("this run contains the sequential/batch_1 reference")
            .tuples_per_sec;
        (base, measured)
    } else {
        (1.0, 1.0)
    };
    let mut regressions = Vec::new();
    for entry in entries {
        let (Some(name), Some(base_tps)) = (
            entry.get("name").and_then(|v| v.as_str()),
            entry.get("tuples_per_sec").and_then(|v| v.as_f64()),
        ) else {
            continue;
        };
        if relative && name == REFERENCE_CONFIG {
            continue; // its ratio is 1.0 on both sides by construction
        }
        let Some(measured) = results.iter().find(|m| m.name == name) else {
            continue;
        };
        let baseline_score = base_tps / base_ref;
        let measured_score = measured.tuples_per_sec / measured_ref;
        let floor = baseline_score * (1.0 - tolerance);
        if measured_score < floor {
            let unit = if relative { "x reference" } else { " tuples/s" };
            regressions.push(format!(
                "{name}: {measured_score:.2}{unit} < floor {floor:.2} \
                 (baseline {baseline_score:.2})"
            ));
        }
    }
    if relative {
        // The columnar/row speedup ratio is the headline number of the
        // columnar rollout; gate it directly so a silent fall-back to
        // the row path (ratio ~1.0) fails CI even when every absolute
        // configuration stays inside tolerance.
        let best_tps = |group: &str| {
            results
                .iter()
                .filter(|m| m.strategy == group)
                .map(|m| m.tuples_per_sec)
                .fold(f64::NAN, f64::max)
        };
        let columnar = best_tps("columnar");
        let row = results
            .iter()
            .find(|m| m.name == REFERENCE_CONFIG)
            .map(|m| m.tuples_per_sec)
            .unwrap_or(f64::NAN);
        let ratio = columnar / row;
        if ratio.is_finite() {
            eprintln!(
                "columnar/row sequential speedup: {ratio:.2}x (floor {COLUMNAR_SPEEDUP_FLOOR:.1}x)"
            );
            if ratio < COLUMNAR_SPEEDUP_FLOOR {
                regressions.push(format!(
                    "columnar/row speedup: {ratio:.2}x < floor {COLUMNAR_SPEEDUP_FLOOR:.1}x"
                ));
            }
        }
        // The kernel-level win is this rollout's second gated ratio:
        // the batch-size sweep above can stay healthy on transport
        // savings alone even if every kernel quietly falls back to the
        // row-by-row trampoline, so gate the inner loops directly.
        let geomean = kernel_speedup_geomean(kernels);
        if geomean.is_finite() {
            eprintln!(
                "vectorized/trampoline kernel speedup (geomean): {geomean:.2}x \
                 (floor {KERNEL_SPEEDUP_FLOOR:.1}x)"
            );
            if geomean < KERNEL_SPEEDUP_FLOOR {
                regressions.push(format!(
                    "kernel speedup geomean: {geomean:.2}x < floor {KERNEL_SPEEDUP_FLOOR:.1}x"
                ));
            }
        }
        // The serve/offline gap is ROADMAP item 1's headline number:
        // gate the best binary serve configuration against the offline
        // sequential reference from the same run, so the event-driven
        // server cannot silently regress toward thread-per-session
        // territory. Only active when this run measured serve.
        let serve_binary = serve
            .iter()
            .filter(|m| m.strategy == "serve_binary")
            .map(|m| m.tuples_per_sec)
            .fold(f64::NAN, f64::max);
        let serve_ratio = serve_binary / row;
        if serve_ratio.is_finite() {
            eprintln!(
                "binary serve / offline sequential: {serve_ratio:.2}x \
                 (floor {SERVE_BINARY_RATIO_FLOOR:.1}x)"
            );
            if serve_ratio < SERVE_BINARY_RATIO_FLOOR {
                regressions.push(format!(
                    "binary serve/offline ratio: {serve_ratio:.2}x < floor \
                     {SERVE_BINARY_RATIO_FLOOR:.1}x"
                ));
            }
        }
    }
    regressions
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: i64 = arg_value(&args, "--n")
        .map(|v| v.parse().expect("--n takes an integer"))
        .unwrap_or(10_000);
    let reps: u32 = arg_value(&args, "--reps")
        .map(|v| v.parse().expect("--reps takes an integer"))
        .unwrap_or(5);
    let out_path = arg_value(&args, "--out");
    let check_path = arg_value(&args, "--check");
    let tolerance: f64 = arg_value(&args, "--tolerance")
        .map(|v| v.parse().expect("--tolerance takes a float"))
        .unwrap_or(0.30);
    let relative = args.iter().any(|a| a == "--relative");

    let strategies = [
        StrategyHint::Sequential,
        StrategyHint::Pipelined,
        StrategyHint::SplitMergeParallel,
    ];
    let mut results = Vec::new();
    for strategy in strategies {
        for batch_size in BATCH_SIZES {
            let m = measure(strategy, batch_size, n, reps);
            eprintln!(
                "{:<32} {:>12.0} tuples/s  (best {:.2} ms)",
                m.name, m.tuples_per_sec, m.best_ms
            );
            results.push(m);
        }
    }
    // Columnar scenario group: the sequential reference workload with
    // `repr = columnar`, swept over the columnar batch sizes. Lands in
    // `results` so the `--check --relative` gate compares its speedup
    // over `sequential/batch_1` across machines, the same way it gates
    // the row groups.
    for batch_size in COLUMNAR_BATCH_SIZES {
        let m = measure_repr(
            StrategyHint::Sequential,
            batch_size,
            n,
            reps,
            ReprHint::Columnar,
            Some("columnar"),
        );
        eprintln!(
            "{:<32} {:>12.0} tuples/s  (best {:.2} ms)",
            m.name, m.tuples_per_sec, m.best_ms
        );
        results.push(m);
    }

    // Kernel microbench: every vectorized kernel family, element/s in
    // row vs trampoline vs vectorized mode on one pipeline object.
    let kernels = measure_kernels(n, reps);
    for k in &kernels {
        eprintln!(
            "kernel/{:<24} {:>12.0} row  {:>12.0} tramp  {:>12.0} vec elems/s  ({:.2}x)",
            k.family,
            k.row_elems_per_sec,
            k.trampoline_elems_per_sec,
            k.vectorized_elems_per_sec,
            k.speedup()
        );
    }

    let mut serve_results = Vec::new();
    if args.iter().any(|a| a == "--serve") {
        let sessions: usize = arg_value(&args, "--serve-sessions")
            .map(|v| v.parse().expect("--serve-sessions takes an integer"))
            .unwrap_or(4);
        for format in ["ndjson", "binary"] {
            let m = measure_serve(n, sessions, format);
            eprintln!(
                "{:<32} {:>12.0} tuples/s  (wall {:.2} ms)",
                m.name, m.tuples_per_sec, m.best_ms
            );
            serve_results.push(m);
        }
    }

    let recovery = measure_recovery(n);
    eprintln!(
        "{:<32} restored from epoch {} (replayed {} tuples, {} ms restoring)",
        "recovery/pipelined_batch_64",
        recovery.restored_from_epoch,
        recovery.replayed_tuples,
        recovery.recovery_ms
    );

    let report = render(n, reps, &results, &kernels, &serve_results, Some(&recovery));
    match &out_path {
        Some(path) => std::fs::write(path, &report).expect("write report"),
        None => print!("{report}"),
    }

    if let Some(path) = check_path {
        let baseline = std::fs::read_to_string(&path).expect("read baseline");
        let regressions = check(
            &baseline,
            &results,
            &kernels,
            &serve_results,
            tolerance,
            relative,
        );
        if !regressions.is_empty() {
            eprintln!("throughput regressions beyond {:.0}%:", tolerance * 100.0);
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
        eprintln!("no regressions beyond {:.0}%", tolerance * 100.0);
    }
}
