//! Client harness for `icewafl serve` (`cargo run -p icewafl-bench
//! --release --bin serve_client`).
//!
//! Drives N concurrent sessions against a running server with the §2.3
//! reference workload (or a plan file), reporting per-session and
//! aggregate throughput. With `--out` the polluted stream of session 0
//! is written as JSON; with `--offline` the same plan runs in-process
//! instead and writes the identical artifact — diffing the two files is
//! the CI smoke check that served output matches offline output byte
//! for byte.
//!
//! Usage:
//!   serve_client --addr HOST:PORT [--sessions 4] [--tuples 10000]
//!                [--format ndjson|binary] [--plan NAME | --plan-file F]
//!                [--slow-reader-ms N] [--out OUT.json] [--seed 42]
//!                [--shared STREAM] [--verify | --verify-offline FILE]
//!   serve_client --offline [--tuples 10000] [--plan-file F]
//!                [--out OUT.json] [--seed 42]
//!
//! `--slow-reader-ms N` throttles session 0's reads by N ms per tuple to
//! exercise server-side backpressure. Without `--plan`/`--plan-file` the
//! harness inlines the throughput reference plan (4 sub-streams of 4
//! gaussian-noise polluters) and its 2-column schema.
//!
//! `--shared STREAM` switches to shared-plan fan-out: session 0
//! publishes its output on the named stream and every other session
//! subscribes to it, so the server encodes each frame once and fans the
//! bytes out. `--verify` byte-compares every session's polluted stream
//! against an in-process offline run of the same plan (exit 1 on any
//! divergence); `--verify-offline FILE` compares against a previously
//! written `--offline --out` artifact instead. Sessions scale to 1000+
//! (connects are staggered so the listener backlog is never the limit).

use icewafl_core::config::{ConditionConfig, ErrorConfig, PolluterConfig};
use icewafl_core::plan::{AssignerSpec, LogicalPlan, StrategyHint};
use icewafl_serve::{client, ClientConfig, Handshake};
use icewafl_types::{DataType, Schema, StampedTuple, Timestamp, Tuple, Value};
use std::time::{Duration, Instant};

fn schema() -> Schema {
    Schema::from_pairs([("Time", DataType::Timestamp), ("x", DataType::Float)]).unwrap()
}

fn tuples(n: i64) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::Timestamp(Timestamp(i * 1000)),
                Value::Float(i as f64),
            ])
        })
        .collect()
}

/// The throughput harness's reference plan: m = 4 sub-streams of ℓ = 4
/// gaussian-noise polluters, round-robin, logging off.
fn reference_plan(seed: u64) -> LogicalPlan {
    let pipeline: Vec<PolluterConfig> = (0..4)
        .map(|i| PolluterConfig::Standard {
            name: format!("noise-{i}"),
            attributes: vec!["x".into()],
            error: ErrorConfig::GaussianNoise {
                sigma: 1.0,
                relative: false,
            },
            condition: ConditionConfig::Probability { p: 0.5 },
            pattern: None,
        })
        .collect();
    let mut plan = LogicalPlan::new(seed, vec![pipeline; 4]);
    plan.assigner = AssignerSpec::RoundRobin;
    plan.strategy = StrategyHint::Pipelined;
    plan.logging = false;
    plan
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn write_polluted(path: &str, polluted: &[StampedTuple]) {
    let json = serde_json::to_string(polluted).expect("polluted stream serializes");
    std::fs::write(path, json).expect("write --out file");
    eprintln!("polluted stream ({} tuples) -> {path}", polluted.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: i64 = arg_value(&args, "--tuples")
        .map(|v| v.parse().expect("--tuples takes an integer"))
        .unwrap_or(10_000);
    let sessions: usize = arg_value(&args, "--sessions")
        .map(|v| v.parse().expect("--sessions takes an integer"))
        .unwrap_or(4);
    let seed: u64 = arg_value(&args, "--seed")
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(42);
    let format = arg_value(&args, "--format").unwrap_or_else(|| "ndjson".into());
    let out_path = arg_value(&args, "--out");
    let slow_reader = arg_value(&args, "--slow-reader-ms")
        .map(|v| Duration::from_millis(v.parse().expect("--slow-reader-ms takes an integer")));

    let plan = match arg_value(&args, "--plan-file") {
        Some(path) => LogicalPlan::from_json(&std::fs::read_to_string(&path).expect("read plan"))
            .expect("plan file parses"),
        None => reference_plan(seed),
    };
    let plan_name = arg_value(&args, "--plan");
    let input = tuples(n);

    if args.iter().any(|a| a == "--offline") {
        // The reference side of the smoke diff: same plan, same input,
        // no network.
        let out = plan
            .compile(&schema())
            .expect("plan compiles")
            .execute(input)
            .expect("offline run succeeds");
        eprintln!("offline: {} tuples -> {} polluted", n, out.polluted.len());
        if let Some(path) = &out_path {
            write_polluted(path, &out.polluted);
        }
        return;
    }

    let addr = arg_value(&args, "--addr").expect("--addr is required (or use --offline)");
    let shared_stream = arg_value(&args, "--shared");
    // The byte-identity reference every session is held against: an
    // in-process offline run (`--verify`) or a prior `--offline --out`
    // artifact (`--verify-offline FILE`).
    let reference_bytes: Option<String> = if let Some(path) = arg_value(&args, "--verify-offline") {
        Some(std::fs::read_to_string(&path).expect("read --verify-offline artifact"))
    } else if args.iter().any(|a| a == "--verify") {
        let out = plan
            .clone()
            .compile(&schema())
            .expect("plan compiles")
            .execute(input.clone())
            .expect("offline run succeeds");
        Some(serde_json::to_string(&out.polluted).expect("polluted stream serializes"))
    } else {
        None
    };

    let handshake = Handshake {
        // A named plan refers to the server's --plans-dir; otherwise the
        // plan ships inline.
        plan: plan_name.clone(),
        plan_inline: plan_name.is_none().then(|| plan.clone()),
        schema_inline: Some(schema()),
        format: Some(format.clone()),
        // In shared mode session 0 publishes on the named stream.
        stream: shared_stream.clone(),
        ..Handshake::default()
    };
    let subscribe = Handshake {
        session: Some("subscribe".into()),
        stream: shared_stream.clone(),
        format: Some(format.clone()),
        ..Handshake::default()
    };

    let start = Instant::now();
    let workers: Vec<_> = (0..sessions)
        .map(|i| {
            let handshake = if shared_stream.is_some() && i > 0 {
                subscribe.clone()
            } else {
                handshake.clone()
            };
            let mut config = ClientConfig::new(addr.clone(), handshake);
            if i == 0 {
                config.slow_reader = slow_reader;
            }
            let input = if shared_stream.is_some() && i > 0 {
                Vec::new()
            } else {
                input.clone()
            };
            let publisher_delay = shared_stream.is_some() && i == 0;
            std::thread::spawn(move || {
                if publisher_delay {
                    // Let the subscribers attach first: the stream's hub
                    // is retired once the publisher closes.
                    std::thread::sleep(Duration::from_millis(150));
                } else {
                    // Stagger connects so the listener backlog never
                    // throttles a 1000-session run.
                    std::thread::sleep(Duration::from_millis((i % 64) as u64));
                }
                let t0 = Instant::now();
                let outcome = client::run_session(&config, input).expect("session transport");
                (outcome, t0.elapsed())
            })
        })
        .collect();

    let mut first_output: Option<Vec<StampedTuple>> = None;
    let mut failed = 0usize;
    let mut diverged = 0usize;
    let quiet = sessions > 16;
    for (i, worker) in workers.into_iter().enumerate() {
        let (outcome, elapsed) = worker.join().expect("session thread");
        if !outcome.reply.ok {
            eprintln!(
                "session {i}: rejected: {}",
                outcome.reply.error.as_deref().unwrap_or("?")
            );
            failed += 1;
            continue;
        }
        if let Some(error) = &outcome.error {
            eprintln!(
                "session {i}: failed at {} ({}): {}",
                error.stage, error.kind, error.message
            );
            failed += 1;
            continue;
        }
        if !quiet {
            eprintln!(
                "session {i}: {} tuples in {:.2} ms ({:.0} tuples/s){}",
                outcome.tuples.len(),
                elapsed.as_secs_f64() * 1e3,
                outcome.tuples.len() as f64 / elapsed.as_secs_f64(),
                if i == 0 && slow_reader.is_some() {
                    "  [slow reader]"
                } else {
                    ""
                }
            );
        }
        if let Some(expected) = &reference_bytes {
            let served =
                serde_json::to_string(&outcome.tuples).expect("polluted stream serializes");
            if &served != expected {
                eprintln!("session {i}: output diverged from the offline reference");
                diverged += 1;
            }
        }
        if i == 0 {
            first_output = Some(outcome.tuples);
        }
    }

    let elapsed = start.elapsed().as_secs_f64();
    eprintln!(
        "total: {} sessions x {} tuples in {:.2} s ({:.0} tuples/s aggregate), {} failed{}",
        sessions,
        n,
        elapsed,
        (sessions as i64 * n) as f64 / elapsed,
        failed,
        if reference_bytes.is_some() {
            format!(", {diverged} diverged")
        } else {
            String::new()
        }
    );
    if reference_bytes.is_some() && diverged == 0 && failed == 0 {
        eprintln!("verify: all {sessions} sessions byte-identical to offline");
    }
    if let (Some(path), Some(polluted)) = (&out_path, &first_output) {
        write_polluted(path, polluted);
    }
    if failed > 0 || diverged > 0 {
        std::process::exit(1);
    }
}
