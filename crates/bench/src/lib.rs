//! # icewafl-bench
//!
//! Criterion benchmark crate of the Icewafl reproduction. The library
//! itself is empty; everything lives in `benches/`:
//!
//! * `runtime_overhead` — Figure 8 (pollution overhead vs. a
//!   pass-through pipeline);
//! * `polluter_micro` — per-error-function / per-condition cost;
//! * `pipeline_scaling` — the §2.3 complexity ablation (pipeline
//!   length ℓ, sub-stream count m, sequential vs. parallel);
//! * `stream_runtime` — raw stream-framework throughput;
//! * `dq_micro` — expectation validation and the regex engine;
//! * `forecast_micro` — model learn/forecast cost.
