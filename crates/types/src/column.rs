//! Columnar batches: a structure-of-arrays alternative to `Vec<StampedTuple>`.
//!
//! A [`ColumnBatch`] holds the same information as a row batch — the
//! stamp fields (`id`, `tau`, `arrival`, `sub_stream`) and every
//! attribute value of every tuple — but laid out per *column*: one typed
//! vector per schema attribute plus a validity bitmap marking which
//! slots hold a value (a cleared bit is SQL `NULL`). Column kernels in
//! `icewafl-core` iterate one attribute vector at a time instead of
//! hopping across per-tuple `ValueVec`s, and the serve codec can encode
//! a whole batch without per-tuple framing.
//!
//! The representation is *lossless but narrower* than rows: a row whose
//! value does not match its column's declared [`DataType`] (and is not
//! `Null`) cannot be stored. [`ColumnBatch::from_rows`] therefore
//! returns the rows back untouched when any value disagrees with the
//! schema, and callers fall back to row execution — the conversion is a
//! checked boundary, never a coercion. `from_rows` followed by
//! [`ColumnBatch::into_rows`] reproduces the input exactly, byte for
//! byte, which is what lets the columnar execution path share the
//! engine's pinned byte-identical-output invariants.
//!
//! # Masks
//!
//! Vectorized kernels describe row subsets with two representations
//! that this module converts between:
//!
//! * the **validity bitmap** every [`Column`] carries (one bit per row,
//!   little-endian within `u64` words; a set bit means the slot holds a
//!   value), and
//! * **byte masks** (`&[u8]`, one byte per row, `0` = excluded,
//!   non-zero = selected) — the form condition kernels fill and error
//!   kernels consume, chosen so the select loops below compile to
//!   branch-free SIMD compares instead of per-row bit extraction.
//!
//! [`Column::fill_validity_mask`] expands the bitmap into a byte mask,
//! [`Column::mask_and_validity`] intersects a byte mask with the
//! bitmap, and [`Column::clear_validity_masked`] /
//! [`Column::set_validity_masked`] fold a byte mask back into the
//! bitmap word-wise (64 rows per `u64` operation).

use crate::schema::{DataType, Schema};
use crate::time::Timestamp;
use crate::tuple::{StampedTuple, Tuple};
use crate::value::{round_to_i64, Value};
use serde::{Deserialize, Serialize};

/// The typed values of one column. Invalid (NULL) slots hold the type's
/// default value and are masked by the owning [`Column`]'s validity
/// bitmap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ColumnData {
    /// Boolean attribute values.
    Bool(Vec<bool>),
    /// 64-bit integer attribute values.
    Int(Vec<i64>),
    /// 64-bit float attribute values.
    Float(Vec<f64>),
    /// String attribute values.
    Str(Vec<String>),
    /// Millisecond timestamps.
    Timestamp(Vec<i64>),
}

impl ColumnData {
    fn with_capacity(dtype: DataType, cap: usize) -> Self {
        match dtype {
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(cap)),
            DataType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            DataType::Float => ColumnData::Float(Vec::with_capacity(cap)),
            DataType::Str => ColumnData::Str(Vec::with_capacity(cap)),
            DataType::Timestamp => ColumnData::Timestamp(Vec::with_capacity(cap)),
        }
    }

    /// The schema type this column stores.
    pub fn dtype(&self) -> DataType {
        match self {
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str(_) => DataType::Str,
            ColumnData::Timestamp(_) => DataType::Timestamp,
        }
    }

    fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Timestamp(v) => v.len(),
        }
    }

    /// Pushes the type's default value (the slot for a NULL).
    fn push_default(&mut self) {
        match self {
            ColumnData::Bool(v) => v.push(false),
            ColumnData::Int(v) => v.push(0),
            ColumnData::Float(v) => v.push(0.0),
            ColumnData::Str(v) => v.push(String::new()),
            ColumnData::Timestamp(v) => v.push(0),
        }
    }

    /// Pushes a matching value; `false` (nothing pushed) on a type
    /// mismatch.
    fn push_value(&mut self, value: Value) -> bool {
        match (self, value) {
            (ColumnData::Bool(v), Value::Bool(b)) => v.push(b),
            (ColumnData::Int(v), Value::Int(i)) => v.push(i),
            (ColumnData::Float(v), Value::Float(f)) => v.push(f),
            (ColumnData::Str(v), Value::Str(s)) => v.push(s),
            (ColumnData::Timestamp(v), Value::Timestamp(t)) => v.push(t.0),
            _ => return false,
        }
        true
    }

    fn value_at(&self, row: usize) -> Value {
        match self {
            ColumnData::Bool(v) => Value::Bool(v[row]),
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Float(v) => Value::Float(v[row]),
            ColumnData::Str(v) => Value::Str(v[row].clone()),
            ColumnData::Timestamp(v) => Value::Timestamp(Timestamp(v[row])),
        }
    }

    fn take_value_at(&mut self, row: usize) -> Value {
        match self {
            ColumnData::Bool(v) => Value::Bool(v[row]),
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Float(v) => Value::Float(v[row]),
            ColumnData::Str(v) => Value::Str(std::mem::take(&mut v[row])),
            ColumnData::Timestamp(v) => Value::Timestamp(Timestamp(v[row])),
        }
    }

    /// Overwrites a slot with a matching value; `false` (slot untouched)
    /// on a type mismatch.
    fn set_value(&mut self, row: usize, value: Value) -> bool {
        match (self, value) {
            (ColumnData::Bool(v), Value::Bool(b)) => v[row] = b,
            (ColumnData::Int(v), Value::Int(i)) => v[row] = i,
            (ColumnData::Float(v), Value::Float(f)) => v[row] = f,
            (ColumnData::Str(v), Value::Str(s)) => v[row] = s,
            (ColumnData::Timestamp(v), Value::Timestamp(t)) => v[row] = t.0,
            _ => return false,
        }
        true
    }
}

/// One attribute column: typed values plus a validity bitmap (bit set =
/// the slot holds a value, bit clear = NULL).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    data: ColumnData,
    /// One bit per row, little-endian within each `u64` word.
    validity: Vec<u64>,
}

impl Column {
    fn with_capacity(dtype: DataType, cap: usize) -> Self {
        Column {
            data: ColumnData::with_capacity(dtype, cap),
            validity: Vec::with_capacity(cap.div_ceil(64)),
        }
    }

    /// The typed value vector.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Mutable access to the typed value vector (kernels). Changing a
    /// slot's value does not touch its validity bit; use
    /// [`Column::set_valid`] alongside.
    pub fn data_mut(&mut self) -> &mut ColumnData {
        &mut self.data
    }

    /// The schema type of this column.
    pub fn dtype(&self) -> DataType {
        self.data.dtype()
    }

    /// Whether `row` holds a value (`false` = NULL).
    pub fn is_valid(&self, row: usize) -> bool {
        self.validity[row / 64] >> (row % 64) & 1 == 1
    }

    /// Sets or clears `row`'s validity bit.
    pub fn set_valid(&mut self, row: usize, valid: bool) {
        let (word, bit) = (row / 64, row % 64);
        if valid {
            self.validity[word] |= 1 << bit;
        } else {
            self.validity[word] &= !(1 << bit);
        }
    }

    fn push_validity(&mut self, valid: bool) {
        let row = self.data.len() - 1;
        if row.is_multiple_of(64) {
            self.validity.push(0);
        }
        if valid {
            self.validity[row / 64] |= 1 << (row % 64);
        }
    }

    /// The value at `row` as a dynamic [`Value`] (NULL slots read as
    /// [`Value::Null`]). Strings are cloned.
    pub fn value_at(&self, row: usize) -> Value {
        if self.is_valid(row) {
            self.data.value_at(row)
        } else {
            Value::Null
        }
    }

    /// Like [`Column::value_at`] but *moves* a string out, leaving an
    /// empty slot behind — only safe when the batch is being consumed.
    fn take_value_at(&mut self, row: usize) -> Value {
        if self.is_valid(row) {
            self.data.take_value_at(row)
        } else {
            Value::Null
        }
    }

    /// Writes `value` into `row`. `Null` clears the validity bit; a
    /// matching value overwrites the slot and sets it. Returns `false`
    /// (slot untouched) when the value's type disagrees with the column.
    pub fn set_value(&mut self, row: usize, value: Value) -> bool {
        match value {
            Value::Null => {
                self.set_valid(row, false);
                true
            }
            v => {
                if self.data.set_value(row, v) {
                    self.set_valid(row, true);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Expands the validity bitmap into a byte mask: `out[i]` becomes
    /// `1` when row `i` holds a value and `0` when it is NULL. `out`
    /// must not be longer than the column.
    ///
    /// ```
    /// use icewafl_types::{ColumnBatch, DataType, Schema, StampedTuple, Timestamp, Tuple, Value};
    /// let schema = Schema::from_pairs([("x", DataType::Int)]).unwrap();
    /// let rows = vec![
    ///     StampedTuple::new(0, Timestamp(0), Tuple::new(vec![Value::Int(7)])),
    ///     StampedTuple::new(1, Timestamp(1), Tuple::new(vec![Value::Null])),
    /// ];
    /// let batch = ColumnBatch::from_rows(&schema, rows).unwrap();
    /// let mut mask = [0u8; 2];
    /// batch.column(0).fill_validity_mask(&mut mask);
    /// assert_eq!(mask, [1, 0]);
    /// ```
    pub fn fill_validity_mask(&self, out: &mut [u8]) {
        debug_assert!(out.len() <= self.data.len());
        for (w, chunk) in out.chunks_mut(64).enumerate() {
            let word = self.validity[w];
            for (bit, m) in chunk.iter_mut().enumerate() {
                *m = (word >> bit) as u8 & 1;
            }
        }
    }

    /// Intersects a byte mask with the validity bitmap in place: rows
    /// whose slot is NULL drop out of the mask, selected rows normalize
    /// to `1`. `mask` must not be longer than the column.
    pub fn mask_and_validity(&self, mask: &mut [u8]) {
        debug_assert!(mask.len() <= self.data.len());
        for (w, chunk) in mask.chunks_mut(64).enumerate() {
            let word = self.validity[w];
            for (bit, m) in chunk.iter_mut().enumerate() {
                *m = u8::from(*m != 0) & (word >> bit) as u8 & 1;
            }
        }
    }

    /// Clears the validity bit of every selected row — the whole-column
    /// form of writing NULL (what the missing-value kernel does),
    /// folding 64 mask bytes into one bitmap word per step. Slot values
    /// are left in place; a cleared row reads as [`Value::Null`].
    pub fn clear_validity_masked(&mut self, mask: &[u8]) {
        debug_assert!(mask.len() <= self.data.len());
        for (w, chunk) in mask.chunks(64).enumerate() {
            let mut selected = 0u64;
            for (bit, &m) in chunk.iter().enumerate() {
                selected |= u64::from(m != 0) << bit;
            }
            self.validity[w] &= !selected;
        }
    }

    /// Sets the validity bit of every selected row — used after a
    /// kernel stores concrete values through [`Column::data_mut`] into
    /// possibly-NULL slots.
    pub fn set_validity_masked(&mut self, mask: &[u8]) {
        debug_assert!(mask.len() <= self.data.len());
        for (w, chunk) in mask.chunks(64).enumerate() {
            let mut selected = 0u64;
            for (bit, &m) in chunk.iter().enumerate() {
                selected |= u64::from(m != 0) << bit;
            }
            self.validity[w] |= selected;
        }
    }

    /// Applies `f(row, x)` to every *selected, valid* slot of a numeric
    /// column (`Int`, `Float`, `Bool`), preserving the column's value
    /// family exactly like [`Value::with_numeric`]: `Int` results round
    /// to nearest (saturating), `Bool` results become `x ≠ 0`. Non-
    /// numeric columns are untouched.
    ///
    /// The inner loops are branch-free selects: `f` is evaluated for
    /// every row and the result discarded on unselected or NULL lanes,
    /// so `f` must be pure (no side effects, no randomness — stochastic
    /// kernels iterate selected rows explicitly instead).
    ///
    /// ```
    /// use icewafl_types::{ColumnBatch, DataType, Schema, StampedTuple, Timestamp, Tuple, Value};
    /// let schema = Schema::from_pairs([("x", DataType::Int)]).unwrap();
    /// let rows = (0..3)
    ///     .map(|i| StampedTuple::new(i, Timestamp(0), Tuple::new(vec![Value::Int(i as i64)])))
    ///     .collect();
    /// let mut batch = ColumnBatch::from_rows(&schema, rows).unwrap();
    /// batch.column_mut(0).map_numeric_masked(&[1, 0, 1], |_, x| x * 10.0);
    /// let out = batch.into_rows();
    /// assert_eq!(out[0].tuple.get(0), Some(&Value::Int(0)));
    /// assert_eq!(out[1].tuple.get(0), Some(&Value::Int(1)), "unselected row untouched");
    /// assert_eq!(out[2].tuple.get(0), Some(&Value::Int(20)));
    /// ```
    pub fn map_numeric_masked(&mut self, mask: &[u8], f: impl Fn(usize, f64) -> f64) {
        debug_assert!(mask.len() <= self.data.len());
        let validity = &self.validity;
        let live = |i: usize| mask[i] != 0 && validity[i / 64] >> (i % 64) & 1 == 1;
        match &mut self.data {
            ColumnData::Float(v) => {
                for (i, x) in v.iter_mut().enumerate().take(mask.len()) {
                    let y = f(i, *x);
                    *x = if live(i) { y } else { *x };
                }
            }
            ColumnData::Int(v) => {
                for (i, x) in v.iter_mut().enumerate().take(mask.len()) {
                    let y = round_to_i64(f(i, *x as f64));
                    *x = if live(i) { y } else { *x };
                }
            }
            ColumnData::Bool(v) => {
                for (i, x) in v.iter_mut().enumerate().take(mask.len()) {
                    let y = f(i, f64::from(*x)) != 0.0;
                    *x = if live(i) { y } else { *x };
                }
            }
            ColumnData::Str(_) | ColumnData::Timestamp(_) => {}
        }
    }

    /// Applies `f(millis)` to every selected, valid slot of a
    /// `Timestamp` column (branch-free select, like
    /// [`Column::map_numeric_masked`]). Other column types are
    /// untouched.
    pub fn map_timestamps_masked(&mut self, mask: &[u8], f: impl Fn(i64) -> i64) {
        debug_assert!(mask.len() <= self.data.len());
        let validity = &self.validity;
        if let ColumnData::Timestamp(v) = &mut self.data {
            for (i, x) in v.iter_mut().enumerate().take(mask.len()) {
                let live = mask[i] != 0 && validity[i / 64] >> (i % 64) & 1 == 1;
                let y = f(*x);
                *x = if live { y } else { *x };
            }
        }
    }

    /// Writes `value` into every selected row — the whole-column form
    /// of [`Column::set_value`], used by the constant kernel. `Null`
    /// clears the selected validity bits; a matching value overwrites
    /// the selected slots (valid or NULL) and sets their bits. Returns
    /// `false` (column untouched) when a non-NULL value's type
    /// disagrees with the column.
    pub fn overwrite_masked(&mut self, mask: &[u8], value: &Value) -> bool {
        debug_assert!(mask.len() <= self.data.len());
        if matches!(value, Value::Null) {
            self.clear_validity_masked(mask);
            return true;
        }
        let stored = match (&mut self.data, value) {
            (ColumnData::Bool(v), Value::Bool(c)) => {
                for (i, x) in v.iter_mut().enumerate().take(mask.len()) {
                    *x = if mask[i] != 0 { *c } else { *x };
                }
                true
            }
            (ColumnData::Int(v), Value::Int(c)) => {
                for (i, x) in v.iter_mut().enumerate().take(mask.len()) {
                    *x = if mask[i] != 0 { *c } else { *x };
                }
                true
            }
            (ColumnData::Float(v), Value::Float(c)) => {
                for (i, x) in v.iter_mut().enumerate().take(mask.len()) {
                    *x = if mask[i] != 0 { *c } else { *x };
                }
                true
            }
            (ColumnData::Timestamp(v), Value::Timestamp(c)) => {
                for (i, x) in v.iter_mut().enumerate().take(mask.len()) {
                    *x = if mask[i] != 0 { c.0 } else { *x };
                }
                true
            }
            (ColumnData::Str(v), Value::Str(c)) => {
                for (i, x) in v.iter_mut().enumerate().take(mask.len()) {
                    if mask[i] != 0 {
                        x.clone_from(c);
                    }
                }
                true
            }
            _ => false,
        };
        if stored {
            self.set_validity_masked(mask);
        }
        stored
    }

    /// The slot's numeric view, mirroring [`Value::as_f64`] over the
    /// column store: `Some` for valid `Int`/`Float`/`Bool` slots, `None`
    /// for NULLs and non-numeric columns.
    pub fn numeric_at(&self, row: usize) -> Option<f64> {
        if !self.is_valid(row) {
            return None;
        }
        match &self.data {
            ColumnData::Int(v) => Some(v[row] as f64),
            ColumnData::Float(v) => Some(v[row]),
            ColumnData::Bool(v) => Some(f64::from(v[row])),
            ColumnData::Str(_) | ColumnData::Timestamp(_) => None,
        }
    }

    /// Writes a numeric result back into a slot, preserving the
    /// column's value family exactly like [`Value::with_numeric`].
    /// Non-numeric columns are untouched; validity is not changed (the
    /// caller read the slot through [`Column::numeric_at`], so it was
    /// valid).
    pub fn set_numeric_at(&mut self, row: usize, x: f64) {
        match &mut self.data {
            ColumnData::Int(v) => v[row] = round_to_i64(x),
            ColumnData::Float(v) => v[row] = x,
            ColumnData::Bool(v) => v[row] = x != 0.0,
            ColumnData::Str(_) | ColumnData::Timestamp(_) => {}
        }
    }
}

/// A batch of stamped tuples in structure-of-arrays layout: parallel
/// stamp vectors plus one [`Column`] per schema attribute.
///
/// Invariant: every vector has the same length, and every row of every
/// column either matches the column's [`DataType`] or is NULL — the
/// type discipline rows lack. See the module docs for the conversion
/// contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnBatch {
    ids: Vec<u64>,
    taus: Vec<i64>,
    arrivals: Vec<i64>,
    sub_streams: Vec<u32>,
    columns: Vec<Column>,
}

impl ColumnBatch {
    /// An empty batch shaped for `schema`, with room for `cap` rows.
    pub fn with_capacity(schema: &Schema, cap: usize) -> Self {
        ColumnBatch {
            ids: Vec::with_capacity(cap),
            taus: Vec::with_capacity(cap),
            arrivals: Vec::with_capacity(cap),
            sub_streams: Vec::with_capacity(cap),
            columns: schema
                .fields()
                .iter()
                .map(|f| Column::with_capacity(f.dtype, cap))
                .collect(),
        }
    }

    /// Converts a row batch, consuming it. Returns `Err(rows)` — the
    /// input handed back untouched — when any tuple's arity differs from
    /// the schema or any non-NULL value disagrees with its column's
    /// type; callers then continue on the row path.
    pub fn from_rows(schema: &Schema, rows: Vec<StampedTuple>) -> Result<Self, Vec<StampedTuple>> {
        // Validate first so the move below cannot fail halfway.
        let fits = rows.iter().all(|t| {
            t.tuple.len() == schema.len()
                && t.tuple
                    .values()
                    .iter()
                    .zip(schema.fields())
                    .all(|(v, f)| matches!(v, Value::Null) || v.dtype() == Some(f.dtype))
        });
        if !fits {
            return Err(rows);
        }
        let mut batch = ColumnBatch::with_capacity(schema, rows.len());
        for t in rows {
            batch.ids.push(t.id);
            batch.taus.push(t.tau.0);
            batch.arrivals.push(t.arrival.0);
            batch.sub_streams.push(t.sub_stream);
            for (col, value) in batch.columns.iter_mut().zip(t.tuple.into_values()) {
                match value {
                    Value::Null => {
                        col.data.push_default();
                        col.push_validity(false);
                    }
                    v => {
                        let pushed = col.data.push_value(v);
                        debug_assert!(pushed, "validated above");
                        col.push_validity(true);
                    }
                }
            }
        }
        Ok(batch)
    }

    /// Reconstructs the row batch this batch was built from, exactly:
    /// same stamps, same values, NULLs where validity bits are clear.
    pub fn into_rows(mut self) -> Vec<StampedTuple> {
        let n = self.len();
        let mut rows = Vec::with_capacity(n);
        for row in 0..n {
            let values: Vec<Value> = self
                .columns
                .iter_mut()
                .map(|c| c.take_value_at(row))
                .collect();
            let mut t =
                StampedTuple::new(self.ids[row], Timestamp(self.taus[row]), Tuple::new(values));
            t.arrival = Timestamp(self.arrivals[row]);
            t.sub_stream = self.sub_streams[row];
            rows.push(t);
        }
        rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` iff the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of attribute columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The tuple ids, in row order.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// The event times `τ` (ms), in row order.
    pub fn taus(&self) -> &[i64] {
        &self.taus
    }

    /// The arrival times (ms), in row order.
    pub fn arrivals(&self) -> &[i64] {
        &self.arrivals
    }

    /// The sub-stream assignments, in row order.
    pub fn sub_streams(&self) -> &[u32] {
        &self.sub_streams
    }

    /// Overwrites every row's sub-stream (what the pollution operator
    /// does on emit).
    pub fn set_sub_stream(&mut self, sub_stream: u32) {
        self.sub_streams.iter_mut().for_each(|s| *s = sub_stream);
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Mutable column access (kernels).
    pub fn column_mut(&mut self, idx: usize) -> &mut Column {
        &mut self.columns[idx]
    }

    /// The stamp fields of one row, without its values.
    pub fn stamp(&self, row: usize) -> (u64, Timestamp, Timestamp, u32) {
        (
            self.ids[row],
            Timestamp(self.taus[row]),
            Timestamp(self.arrivals[row]),
            self.sub_streams[row],
        )
    }
}

impl Value {
    /// The [`DataType`] this value inhabits; `None` for `Null` (a member
    /// of every domain).
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_pairs([
            ("Time", DataType::Timestamp),
            ("BPM", DataType::Int),
            ("Distance", DataType::Float),
            ("sensor", DataType::Str),
            ("ok", DataType::Bool),
        ])
        .unwrap()
    }

    fn row(id: u64, values: Vec<Value>) -> StampedTuple {
        let mut t = StampedTuple::new(id, Timestamp(id as i64 * 1000), Tuple::new(values));
        t.arrival = Timestamp(id as i64 * 1000 + 7);
        t.sub_stream = (id % 3) as u32;
        t
    }

    fn rows() -> Vec<StampedTuple> {
        (0..100)
            .map(|i| {
                row(
                    i,
                    vec![
                        Value::Timestamp(Timestamp(i as i64 * 1000)),
                        if i % 7 == 0 {
                            Value::Null
                        } else {
                            Value::Int(70 + i as i64)
                        },
                        Value::Float(i as f64 * 0.5),
                        Value::Str(format!("s{}", i % 4)),
                        Value::Bool(i % 2 == 0),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn round_trip_is_exact() {
        let input = rows();
        let batch = ColumnBatch::from_rows(&schema(), input.clone()).unwrap();
        assert_eq!(batch.len(), 100);
        assert_eq!(batch.arity(), 5);
        assert_eq!(batch.into_rows(), input);
    }

    #[test]
    fn nulls_survive_the_round_trip_per_column() {
        let input = vec![row(
            0,
            vec![
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
            ],
        )];
        let batch = ColumnBatch::from_rows(&schema(), input.clone()).unwrap();
        for col in 0..5 {
            assert!(!batch.column(col).is_valid(0));
            assert_eq!(batch.column(col).value_at(0), Value::Null);
        }
        assert_eq!(batch.into_rows(), input);
    }

    #[test]
    fn mismatched_value_hands_rows_back() {
        let mut input = rows();
        // A string where an Int belongs: not representable.
        input[3].tuple.replace(1, Value::Str("oops".into()));
        let back = ColumnBatch::from_rows(&schema(), input.clone()).unwrap_err();
        assert_eq!(back, input, "input returned untouched");
    }

    #[test]
    fn arity_mismatch_hands_rows_back() {
        let mut input = rows();
        input[0] = row(0, vec![Value::Int(1)]);
        assert!(ColumnBatch::from_rows(&schema(), input).is_err());
    }

    #[test]
    fn set_value_enforces_types_and_tracks_validity() {
        let mut batch = ColumnBatch::from_rows(&schema(), rows()).unwrap();
        let col = batch.column_mut(2);
        assert!(col.set_value(5, Value::Float(99.5)));
        assert_eq!(col.value_at(5), Value::Float(99.5));
        assert!(col.set_value(5, Value::Null));
        assert!(!col.is_valid(5));
        assert_eq!(col.value_at(5), Value::Null);
        // Nulled slot can be revived.
        assert!(col.set_value(5, Value::Float(1.0)));
        assert!(col.is_valid(5));
        // Wrong type: rejected, slot untouched.
        assert!(!col.set_value(5, Value::Int(3)));
        assert_eq!(col.value_at(5), Value::Float(1.0));
    }

    #[test]
    fn validity_bitmap_crosses_word_boundaries() {
        let input: Vec<StampedTuple> = (0..130)
            .map(|i| {
                row(
                    i,
                    vec![
                        Value::Timestamp(Timestamp(0)),
                        if i % 2 == 0 {
                            Value::Null
                        } else {
                            Value::Int(i as i64)
                        },
                        Value::Float(0.0),
                        Value::Str(String::new()),
                        Value::Bool(false),
                    ],
                )
            })
            .collect();
        let batch = ColumnBatch::from_rows(&schema(), input.clone()).unwrap();
        for i in 0..130 {
            assert_eq!(batch.column(1).is_valid(i), i % 2 == 1, "row {i}");
        }
        assert_eq!(batch.into_rows(), input);
    }

    #[test]
    fn stamps_are_preserved() {
        let batch = ColumnBatch::from_rows(&schema(), rows()).unwrap();
        assert_eq!(batch.stamp(9), (9, Timestamp(9000), Timestamp(9007), 0));
        assert_eq!(batch.ids()[42], 42);
        assert_eq!(batch.sub_streams()[5], 2);
    }

    #[test]
    fn serde_round_trip() {
        let batch = ColumnBatch::from_rows(&schema(), rows()).unwrap();
        let json = serde_json::to_string(&batch).unwrap();
        let back: ColumnBatch = serde_json::from_str(&json).unwrap();
        assert_eq!(back, batch);
    }

    #[test]
    fn empty_batch() {
        let batch = ColumnBatch::from_rows(&schema(), Vec::new()).unwrap();
        assert!(batch.is_empty());
        assert_eq!(batch.into_rows(), Vec::new());
    }

    #[test]
    fn validity_mask_expansion_and_intersection() {
        let batch = ColumnBatch::from_rows(&schema(), rows()).unwrap();
        let col = batch.column(1); // BPM: NULL on multiples of 7
        let mut mask = vec![0u8; 100];
        col.fill_validity_mask(&mut mask);
        for (i, &m) in mask.iter().enumerate() {
            assert_eq!(m, u8::from(i % 7 != 0), "row {i}");
        }
        // Intersection drops NULL rows and normalizes set bytes to 1.
        let mut all = vec![7u8; 100];
        col.mask_and_validity(&mut all);
        assert_eq!(all, mask);
        let mut none = vec![0u8; 100];
        col.mask_and_validity(&mut none);
        assert!(none.iter().all(|&m| m == 0));
    }

    #[test]
    fn masked_validity_updates_work_word_wise() {
        let mut batch = ColumnBatch::from_rows(&schema(), rows()).unwrap();
        let mask: Vec<u8> = (0..100).map(|i| u8::from(i % 3 == 0)).collect();
        batch.column_mut(2).clear_validity_masked(&mask);
        for i in 0..100 {
            assert_eq!(batch.column(2).is_valid(i), i % 3 != 0, "row {i}");
        }
        batch.column_mut(2).set_validity_masked(&mask);
        for i in 0..100 {
            assert!(batch.column(2).is_valid(i), "row {i} revived");
        }
    }

    #[test]
    fn map_numeric_masked_preserves_families_and_nulls() {
        let mut batch = ColumnBatch::from_rows(&schema(), rows()).unwrap();
        let mask = vec![1u8; 100];
        batch
            .column_mut(1)
            .map_numeric_masked(&mask, |_, x| x * 2.5);
        batch
            .column_mut(2)
            .map_numeric_masked(&mask, |_, x| x + 0.5);
        for i in 0..100 {
            if i % 7 == 0 {
                assert!(!batch.column(1).is_valid(i), "NULL slots stay NULL");
            } else {
                // Int family: rounds to nearest like Value::with_numeric.
                let expect = ((70 + i as i64) as f64 * 2.5).round() as i64;
                assert_eq!(batch.column(1).value_at(i), Value::Int(expect));
            }
            assert_eq!(
                batch.column(2).value_at(i),
                Value::Float(i as f64 * 0.5 + 0.5)
            );
        }
        // Row index reaches the closure (per-row factors).
        let mut batch = ColumnBatch::from_rows(&schema(), rows()).unwrap();
        batch
            .column_mut(2)
            .map_numeric_masked(&mask, |row, x| x + row as f64);
        assert_eq!(batch.column(2).value_at(4), Value::Float(4.0 * 0.5 + 4.0));
    }

    #[test]
    fn overwrite_masked_matches_set_value_semantics() {
        let mut batch = ColumnBatch::from_rows(&schema(), rows()).unwrap();
        let mask: Vec<u8> = (0..100).map(|i| u8::from(i < 50)).collect();
        // Constant over a column with NULLs: selected rows (valid or
        // NULL) all end up holding the constant.
        assert!(batch.column_mut(1).overwrite_masked(&mask, &Value::Int(9)));
        for i in 0..100 {
            let expect = if i < 50 {
                Value::Int(9)
            } else if i % 7 == 0 {
                Value::Null
            } else {
                Value::Int(70 + i as i64)
            };
            assert_eq!(batch.column(1).value_at(i), expect, "row {i}");
        }
        // NULL constant clears validity; type mismatch is rejected.
        assert!(batch.column_mut(1).overwrite_masked(&mask, &Value::Null));
        assert!(!batch.column(1).is_valid(0));
        assert!(!batch
            .column_mut(1)
            .overwrite_masked(&mask, &Value::Str("x".into())));
    }

    #[test]
    fn numeric_slot_round_trip() {
        let mut batch = ColumnBatch::from_rows(&schema(), rows()).unwrap();
        assert_eq!(batch.column(1).numeric_at(1), Some(71.0));
        assert_eq!(batch.column(1).numeric_at(0), None, "NULL slot");
        assert_eq!(batch.column(3).numeric_at(1), None, "string column");
        batch.column_mut(1).set_numeric_at(1, 99.6);
        assert_eq!(batch.column(1).value_at(1), Value::Int(100), "rounds");
        batch.column_mut(4).set_numeric_at(1, 0.0);
        assert_eq!(batch.column(4).value_at(1), Value::Bool(false));
    }

    #[test]
    fn timestamp_masked_map() {
        let mut batch = ColumnBatch::from_rows(&schema(), rows()).unwrap();
        let mask: Vec<u8> = (0..100).map(|i| u8::from(i % 2 == 0)).collect();
        batch
            .column_mut(0)
            .map_timestamps_masked(&mask, |t| t + 500);
        assert_eq!(
            batch.column(0).value_at(2),
            Value::Timestamp(Timestamp(2500))
        );
        assert_eq!(
            batch.column(0).value_at(3),
            Value::Timestamp(Timestamp(3000)),
            "unselected row untouched"
        );
    }
}
