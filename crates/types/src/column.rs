//! Columnar batches: a structure-of-arrays alternative to `Vec<StampedTuple>`.
//!
//! A [`ColumnBatch`] holds the same information as a row batch — the
//! stamp fields (`id`, `tau`, `arrival`, `sub_stream`) and every
//! attribute value of every tuple — but laid out per *column*: one typed
//! vector per schema attribute plus a validity bitmap marking which
//! slots hold a value (a cleared bit is SQL `NULL`). Column kernels in
//! `icewafl-core` iterate one attribute vector at a time instead of
//! hopping across per-tuple `ValueVec`s, and the serve codec can encode
//! a whole batch without per-tuple framing.
//!
//! The representation is *lossless but narrower* than rows: a row whose
//! value does not match its column's declared [`DataType`] (and is not
//! `Null`) cannot be stored. [`ColumnBatch::from_rows`] therefore
//! returns the rows back untouched when any value disagrees with the
//! schema, and callers fall back to row execution — the conversion is a
//! checked boundary, never a coercion. `from_rows` followed by
//! [`ColumnBatch::into_rows`] reproduces the input exactly, byte for
//! byte, which is what lets the columnar execution path share the
//! engine's pinned byte-identical-output invariants.

use crate::schema::{DataType, Schema};
use crate::time::Timestamp;
use crate::tuple::{StampedTuple, Tuple};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// The typed values of one column. Invalid (NULL) slots hold the type's
/// default value and are masked by the owning [`Column`]'s validity
/// bitmap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ColumnData {
    /// Boolean attribute values.
    Bool(Vec<bool>),
    /// 64-bit integer attribute values.
    Int(Vec<i64>),
    /// 64-bit float attribute values.
    Float(Vec<f64>),
    /// String attribute values.
    Str(Vec<String>),
    /// Millisecond timestamps.
    Timestamp(Vec<i64>),
}

impl ColumnData {
    fn with_capacity(dtype: DataType, cap: usize) -> Self {
        match dtype {
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(cap)),
            DataType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            DataType::Float => ColumnData::Float(Vec::with_capacity(cap)),
            DataType::Str => ColumnData::Str(Vec::with_capacity(cap)),
            DataType::Timestamp => ColumnData::Timestamp(Vec::with_capacity(cap)),
        }
    }

    /// The schema type this column stores.
    pub fn dtype(&self) -> DataType {
        match self {
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str(_) => DataType::Str,
            ColumnData::Timestamp(_) => DataType::Timestamp,
        }
    }

    fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Timestamp(v) => v.len(),
        }
    }

    /// Pushes the type's default value (the slot for a NULL).
    fn push_default(&mut self) {
        match self {
            ColumnData::Bool(v) => v.push(false),
            ColumnData::Int(v) => v.push(0),
            ColumnData::Float(v) => v.push(0.0),
            ColumnData::Str(v) => v.push(String::new()),
            ColumnData::Timestamp(v) => v.push(0),
        }
    }

    /// Pushes a matching value; `false` (nothing pushed) on a type
    /// mismatch.
    fn push_value(&mut self, value: Value) -> bool {
        match (self, value) {
            (ColumnData::Bool(v), Value::Bool(b)) => v.push(b),
            (ColumnData::Int(v), Value::Int(i)) => v.push(i),
            (ColumnData::Float(v), Value::Float(f)) => v.push(f),
            (ColumnData::Str(v), Value::Str(s)) => v.push(s),
            (ColumnData::Timestamp(v), Value::Timestamp(t)) => v.push(t.0),
            _ => return false,
        }
        true
    }

    fn value_at(&self, row: usize) -> Value {
        match self {
            ColumnData::Bool(v) => Value::Bool(v[row]),
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Float(v) => Value::Float(v[row]),
            ColumnData::Str(v) => Value::Str(v[row].clone()),
            ColumnData::Timestamp(v) => Value::Timestamp(Timestamp(v[row])),
        }
    }

    fn take_value_at(&mut self, row: usize) -> Value {
        match self {
            ColumnData::Bool(v) => Value::Bool(v[row]),
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Float(v) => Value::Float(v[row]),
            ColumnData::Str(v) => Value::Str(std::mem::take(&mut v[row])),
            ColumnData::Timestamp(v) => Value::Timestamp(Timestamp(v[row])),
        }
    }

    /// Overwrites a slot with a matching value; `false` (slot untouched)
    /// on a type mismatch.
    fn set_value(&mut self, row: usize, value: Value) -> bool {
        match (self, value) {
            (ColumnData::Bool(v), Value::Bool(b)) => v[row] = b,
            (ColumnData::Int(v), Value::Int(i)) => v[row] = i,
            (ColumnData::Float(v), Value::Float(f)) => v[row] = f,
            (ColumnData::Str(v), Value::Str(s)) => v[row] = s,
            (ColumnData::Timestamp(v), Value::Timestamp(t)) => v[row] = t.0,
            _ => return false,
        }
        true
    }
}

/// One attribute column: typed values plus a validity bitmap (bit set =
/// the slot holds a value, bit clear = NULL).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    data: ColumnData,
    /// One bit per row, little-endian within each `u64` word.
    validity: Vec<u64>,
}

impl Column {
    fn with_capacity(dtype: DataType, cap: usize) -> Self {
        Column {
            data: ColumnData::with_capacity(dtype, cap),
            validity: Vec::with_capacity(cap.div_ceil(64)),
        }
    }

    /// The typed value vector.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Mutable access to the typed value vector (kernels). Changing a
    /// slot's value does not touch its validity bit; use
    /// [`Column::set_valid`] alongside.
    pub fn data_mut(&mut self) -> &mut ColumnData {
        &mut self.data
    }

    /// The schema type of this column.
    pub fn dtype(&self) -> DataType {
        self.data.dtype()
    }

    /// Whether `row` holds a value (`false` = NULL).
    pub fn is_valid(&self, row: usize) -> bool {
        self.validity[row / 64] >> (row % 64) & 1 == 1
    }

    /// Sets or clears `row`'s validity bit.
    pub fn set_valid(&mut self, row: usize, valid: bool) {
        let (word, bit) = (row / 64, row % 64);
        if valid {
            self.validity[word] |= 1 << bit;
        } else {
            self.validity[word] &= !(1 << bit);
        }
    }

    fn push_validity(&mut self, valid: bool) {
        let row = self.data.len() - 1;
        if row.is_multiple_of(64) {
            self.validity.push(0);
        }
        if valid {
            self.validity[row / 64] |= 1 << (row % 64);
        }
    }

    /// The value at `row` as a dynamic [`Value`] (NULL slots read as
    /// [`Value::Null`]). Strings are cloned.
    pub fn value_at(&self, row: usize) -> Value {
        if self.is_valid(row) {
            self.data.value_at(row)
        } else {
            Value::Null
        }
    }

    /// Like [`Column::value_at`] but *moves* a string out, leaving an
    /// empty slot behind — only safe when the batch is being consumed.
    fn take_value_at(&mut self, row: usize) -> Value {
        if self.is_valid(row) {
            self.data.take_value_at(row)
        } else {
            Value::Null
        }
    }

    /// Writes `value` into `row`. `Null` clears the validity bit; a
    /// matching value overwrites the slot and sets it. Returns `false`
    /// (slot untouched) when the value's type disagrees with the column.
    pub fn set_value(&mut self, row: usize, value: Value) -> bool {
        match value {
            Value::Null => {
                self.set_valid(row, false);
                true
            }
            v => {
                if self.data.set_value(row, v) {
                    self.set_valid(row, true);
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// A batch of stamped tuples in structure-of-arrays layout: parallel
/// stamp vectors plus one [`Column`] per schema attribute.
///
/// Invariant: every vector has the same length, and every row of every
/// column either matches the column's [`DataType`] or is NULL — the
/// type discipline rows lack. See the module docs for the conversion
/// contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnBatch {
    ids: Vec<u64>,
    taus: Vec<i64>,
    arrivals: Vec<i64>,
    sub_streams: Vec<u32>,
    columns: Vec<Column>,
}

impl ColumnBatch {
    /// An empty batch shaped for `schema`, with room for `cap` rows.
    pub fn with_capacity(schema: &Schema, cap: usize) -> Self {
        ColumnBatch {
            ids: Vec::with_capacity(cap),
            taus: Vec::with_capacity(cap),
            arrivals: Vec::with_capacity(cap),
            sub_streams: Vec::with_capacity(cap),
            columns: schema
                .fields()
                .iter()
                .map(|f| Column::with_capacity(f.dtype, cap))
                .collect(),
        }
    }

    /// Converts a row batch, consuming it. Returns `Err(rows)` — the
    /// input handed back untouched — when any tuple's arity differs from
    /// the schema or any non-NULL value disagrees with its column's
    /// type; callers then continue on the row path.
    pub fn from_rows(schema: &Schema, rows: Vec<StampedTuple>) -> Result<Self, Vec<StampedTuple>> {
        // Validate first so the move below cannot fail halfway.
        let fits = rows.iter().all(|t| {
            t.tuple.len() == schema.len()
                && t.tuple
                    .values()
                    .iter()
                    .zip(schema.fields())
                    .all(|(v, f)| matches!(v, Value::Null) || v.dtype() == Some(f.dtype))
        });
        if !fits {
            return Err(rows);
        }
        let mut batch = ColumnBatch::with_capacity(schema, rows.len());
        for t in rows {
            batch.ids.push(t.id);
            batch.taus.push(t.tau.0);
            batch.arrivals.push(t.arrival.0);
            batch.sub_streams.push(t.sub_stream);
            for (col, value) in batch.columns.iter_mut().zip(t.tuple.into_values()) {
                match value {
                    Value::Null => {
                        col.data.push_default();
                        col.push_validity(false);
                    }
                    v => {
                        let pushed = col.data.push_value(v);
                        debug_assert!(pushed, "validated above");
                        col.push_validity(true);
                    }
                }
            }
        }
        Ok(batch)
    }

    /// Reconstructs the row batch this batch was built from, exactly:
    /// same stamps, same values, NULLs where validity bits are clear.
    pub fn into_rows(mut self) -> Vec<StampedTuple> {
        let n = self.len();
        let mut rows = Vec::with_capacity(n);
        for row in 0..n {
            let values: Vec<Value> = self
                .columns
                .iter_mut()
                .map(|c| c.take_value_at(row))
                .collect();
            let mut t =
                StampedTuple::new(self.ids[row], Timestamp(self.taus[row]), Tuple::new(values));
            t.arrival = Timestamp(self.arrivals[row]);
            t.sub_stream = self.sub_streams[row];
            rows.push(t);
        }
        rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` iff the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of attribute columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The tuple ids, in row order.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// The event times `τ` (ms), in row order.
    pub fn taus(&self) -> &[i64] {
        &self.taus
    }

    /// The arrival times (ms), in row order.
    pub fn arrivals(&self) -> &[i64] {
        &self.arrivals
    }

    /// The sub-stream assignments, in row order.
    pub fn sub_streams(&self) -> &[u32] {
        &self.sub_streams
    }

    /// Overwrites every row's sub-stream (what the pollution operator
    /// does on emit).
    pub fn set_sub_stream(&mut self, sub_stream: u32) {
        self.sub_streams.iter_mut().for_each(|s| *s = sub_stream);
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Mutable column access (kernels).
    pub fn column_mut(&mut self, idx: usize) -> &mut Column {
        &mut self.columns[idx]
    }

    /// The stamp fields of one row, without its values.
    pub fn stamp(&self, row: usize) -> (u64, Timestamp, Timestamp, u32) {
        (
            self.ids[row],
            Timestamp(self.taus[row]),
            Timestamp(self.arrivals[row]),
            self.sub_streams[row],
        )
    }
}

impl Value {
    /// The [`DataType`] this value inhabits; `None` for `Null` (a member
    /// of every domain).
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_pairs([
            ("Time", DataType::Timestamp),
            ("BPM", DataType::Int),
            ("Distance", DataType::Float),
            ("sensor", DataType::Str),
            ("ok", DataType::Bool),
        ])
        .unwrap()
    }

    fn row(id: u64, values: Vec<Value>) -> StampedTuple {
        let mut t = StampedTuple::new(id, Timestamp(id as i64 * 1000), Tuple::new(values));
        t.arrival = Timestamp(id as i64 * 1000 + 7);
        t.sub_stream = (id % 3) as u32;
        t
    }

    fn rows() -> Vec<StampedTuple> {
        (0..100)
            .map(|i| {
                row(
                    i,
                    vec![
                        Value::Timestamp(Timestamp(i as i64 * 1000)),
                        if i % 7 == 0 {
                            Value::Null
                        } else {
                            Value::Int(70 + i as i64)
                        },
                        Value::Float(i as f64 * 0.5),
                        Value::Str(format!("s{}", i % 4)),
                        Value::Bool(i % 2 == 0),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn round_trip_is_exact() {
        let input = rows();
        let batch = ColumnBatch::from_rows(&schema(), input.clone()).unwrap();
        assert_eq!(batch.len(), 100);
        assert_eq!(batch.arity(), 5);
        assert_eq!(batch.into_rows(), input);
    }

    #[test]
    fn nulls_survive_the_round_trip_per_column() {
        let input = vec![row(
            0,
            vec![
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
            ],
        )];
        let batch = ColumnBatch::from_rows(&schema(), input.clone()).unwrap();
        for col in 0..5 {
            assert!(!batch.column(col).is_valid(0));
            assert_eq!(batch.column(col).value_at(0), Value::Null);
        }
        assert_eq!(batch.into_rows(), input);
    }

    #[test]
    fn mismatched_value_hands_rows_back() {
        let mut input = rows();
        // A string where an Int belongs: not representable.
        input[3].tuple.replace(1, Value::Str("oops".into()));
        let back = ColumnBatch::from_rows(&schema(), input.clone()).unwrap_err();
        assert_eq!(back, input, "input returned untouched");
    }

    #[test]
    fn arity_mismatch_hands_rows_back() {
        let mut input = rows();
        input[0] = row(0, vec![Value::Int(1)]);
        assert!(ColumnBatch::from_rows(&schema(), input).is_err());
    }

    #[test]
    fn set_value_enforces_types_and_tracks_validity() {
        let mut batch = ColumnBatch::from_rows(&schema(), rows()).unwrap();
        let col = batch.column_mut(2);
        assert!(col.set_value(5, Value::Float(99.5)));
        assert_eq!(col.value_at(5), Value::Float(99.5));
        assert!(col.set_value(5, Value::Null));
        assert!(!col.is_valid(5));
        assert_eq!(col.value_at(5), Value::Null);
        // Nulled slot can be revived.
        assert!(col.set_value(5, Value::Float(1.0)));
        assert!(col.is_valid(5));
        // Wrong type: rejected, slot untouched.
        assert!(!col.set_value(5, Value::Int(3)));
        assert_eq!(col.value_at(5), Value::Float(1.0));
    }

    #[test]
    fn validity_bitmap_crosses_word_boundaries() {
        let input: Vec<StampedTuple> = (0..130)
            .map(|i| {
                row(
                    i,
                    vec![
                        Value::Timestamp(Timestamp(0)),
                        if i % 2 == 0 {
                            Value::Null
                        } else {
                            Value::Int(i as i64)
                        },
                        Value::Float(0.0),
                        Value::Str(String::new()),
                        Value::Bool(false),
                    ],
                )
            })
            .collect();
        let batch = ColumnBatch::from_rows(&schema(), input.clone()).unwrap();
        for i in 0..130 {
            assert_eq!(batch.column(1).is_valid(i), i % 2 == 1, "row {i}");
        }
        assert_eq!(batch.into_rows(), input);
    }

    #[test]
    fn stamps_are_preserved() {
        let batch = ColumnBatch::from_rows(&schema(), rows()).unwrap();
        assert_eq!(batch.stamp(9), (9, Timestamp(9000), Timestamp(9007), 0));
        assert_eq!(batch.ids()[42], 42);
        assert_eq!(batch.sub_streams()[5], 2);
    }

    #[test]
    fn serde_round_trip() {
        let batch = ColumnBatch::from_rows(&schema(), rows()).unwrap();
        let json = serde_json::to_string(&batch).unwrap();
        let back: ColumnBatch = serde_json::from_str(&json).unwrap();
        assert_eq!(back, batch);
    }

    #[test]
    fn empty_batch() {
        let batch = ColumnBatch::from_rows(&schema(), Vec::new()).unwrap();
        assert!(batch.is_empty());
        assert_eq!(batch.into_rows(), Vec::new());
    }
}
