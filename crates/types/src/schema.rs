//! Stream schemas.
//!
//! Following §2.1 of the paper, a stream's schema is a list of `k`
//! attributes `A = A₁ … A_k`, each with a domain, and is expected to
//! contain a timestamp attribute. The schema is resolved once when a
//! pollution pipeline is built; the per-tuple hot path then works with
//! column indices only.

use crate::error::{Error, Result};
use crate::tuple::Tuple;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The domain of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DataType {
    /// Boolean attribute.
    Bool,
    /// 64-bit integer attribute.
    Int,
    /// 64-bit float attribute.
    Float,
    /// String / categorical attribute.
    Str,
    /// Event-time attribute (epoch milliseconds).
    Timestamp,
}

impl DataType {
    /// Whether values of this type coerce to `f64` for numeric error
    /// functions.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Bool | DataType::Int | DataType::Float)
    }

    /// Whether a concrete value is a member of this domain. `Null` is a
    /// member of every domain.
    pub fn admits(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (DataType::Bool, Value::Bool(_))
                | (DataType::Int, Value::Int(_))
                | (DataType::Float, Value::Float(_))
                | (DataType::Str, Value::Str(_))
                | (DataType::Timestamp, Value::Timestamp(_))
        )
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Timestamp => "timestamp",
        };
        f.write_str(s)
    }
}

/// One named, typed attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Attribute name, unique within a schema.
    pub name: String,
    /// Attribute domain.
    pub dtype: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered set of uniquely named fields, with a designated
/// event-time attribute.
///
/// Cloning a `Schema` is cheap (`Arc` inside); every tuple-bearing
/// structure in the workspace shares one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct SchemaInner {
    fields: Vec<Field>,
    /// Index of the designated timestamp attribute, if any.
    timestamp_idx: Option<usize>,
}

impl Schema {
    /// Builds a schema from fields, designating the *first*
    /// `Timestamp`-typed field as the event-time attribute.
    ///
    /// Fails on duplicate field names.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(Error::config(format_args!(
                    "duplicate attribute `{}`",
                    f.name
                )));
            }
        }
        let timestamp_idx = fields.iter().position(|f| f.dtype == DataType::Timestamp);
        Ok(Schema {
            inner: Arc::new(SchemaInner {
                fields,
                timestamp_idx,
            }),
        })
    }

    /// Builds a schema from `(name, dtype)` pairs.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, DataType)>) -> Result<Self> {
        Self::new(pairs.into_iter().map(|(n, t)| Field::new(n, t)).collect())
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.inner.fields
    }

    /// Number of attributes `k`.
    pub fn len(&self) -> usize {
        self.inner.fields.len()
    }

    /// `true` iff the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.inner.fields.is_empty()
    }

    /// Index of an attribute by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.inner.fields.iter().position(|f| f.name == name)
    }

    /// Like [`Schema::index_of`] but returns a typed error — used when
    /// binding polluter configurations.
    pub fn require(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| Error::UnknownAttribute(name.to_string()))
    }

    /// The field at `idx`, if any.
    pub fn field(&self, idx: usize) -> Option<&Field> {
        self.inner.fields.get(idx)
    }

    /// Index of the designated event-time attribute, if the schema has
    /// one.
    pub fn timestamp_idx(&self) -> Option<usize> {
        self.inner.timestamp_idx
    }

    /// Index of the event-time attribute, or an error.
    ///
    /// §2.1: "we expect the schema to also contain a timestamp attribute"
    /// — stream pollution requires it, batch pollution does not.
    pub fn require_timestamp(&self) -> Result<usize> {
        self.inner.timestamp_idx.ok_or_else(|| {
            Error::config("schema has no timestamp attribute, required for stream pollution")
        })
    }

    /// Checks that a tuple has the right arity and that every value is a
    /// member of its attribute's domain.
    pub fn validate(&self, tuple: &Tuple) -> Result<()> {
        if tuple.len() != self.len() {
            return Err(Error::SchemaMismatch {
                detail: format!(
                    "tuple has {} values, schema has {} fields",
                    tuple.len(),
                    self.len()
                ),
            });
        }
        for (f, v) in self.fields().iter().zip(tuple.values()) {
            if !f.dtype.admits(v) {
                return Err(Error::SchemaMismatch {
                    detail: format!(
                        "attribute `{}` expects {}, got {}",
                        f.name,
                        f.dtype,
                        v.type_name()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Resolves a list of attribute names to indices (the `A_p ⊆ A` of a
    /// polluter definition).
    pub fn resolve_all(&self, names: &[String]) -> Result<Vec<usize>> {
        names.iter().map(|n| self.require(n)).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn schema() -> Schema {
        Schema::from_pairs([
            ("Time", DataType::Timestamp),
            ("BPM", DataType::Int),
            ("Distance", DataType::Float),
            ("Activity", DataType::Str),
        ])
        .unwrap()
    }

    #[test]
    fn index_lookup() {
        let s = schema();
        assert_eq!(s.index_of("BPM"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.require("Distance").unwrap(), 2);
        assert!(matches!(s.require("nope"), Err(Error::UnknownAttribute(_))));
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn timestamp_designation() {
        let s = schema();
        assert_eq!(s.timestamp_idx(), Some(0));
        assert_eq!(s.require_timestamp().unwrap(), 0);
        let no_ts = Schema::from_pairs([("x", DataType::Int)]).unwrap();
        assert_eq!(no_ts.timestamp_idx(), None);
        assert!(no_ts.require_timestamp().is_err());
    }

    #[test]
    fn first_timestamp_field_wins() {
        let s = Schema::from_pairs([
            ("a", DataType::Int),
            ("t1", DataType::Timestamp),
            ("t2", DataType::Timestamp),
        ])
        .unwrap();
        assert_eq!(s.timestamp_idx(), Some(1));
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::from_pairs([("x", DataType::Int), ("x", DataType::Float)]);
        assert!(r.is_err());
    }

    #[test]
    fn validate_arity_and_types() {
        let s = schema();
        let good = Tuple::new(vec![
            Value::Timestamp(Timestamp(0)),
            Value::Int(70),
            Value::Float(1.2),
            Value::Str("walk".into()),
        ]);
        s.validate(&good).unwrap();

        let short = Tuple::new(vec![Value::Int(1)]);
        assert!(s.validate(&short).is_err());

        let wrong = Tuple::new(vec![
            Value::Timestamp(Timestamp(0)),
            Value::Str("not an int".into()),
            Value::Float(1.2),
            Value::Str("walk".into()),
        ]);
        assert!(s.validate(&wrong).is_err());
    }

    #[test]
    fn null_admitted_everywhere() {
        let s = schema();
        let t = Tuple::new(vec![Value::Null, Value::Null, Value::Null, Value::Null]);
        s.validate(&t).unwrap();
    }

    #[test]
    fn resolve_all() {
        let s = schema();
        let idx = s.resolve_all(&["Distance".into(), "BPM".into()]).unwrap();
        assert_eq!(idx, vec![2, 1]);
        assert!(s.resolve_all(&["nope".into()]).is_err());
    }

    #[test]
    fn numeric_types() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(DataType::Bool.is_numeric());
        assert!(!DataType::Str.is_numeric());
        assert!(!DataType::Timestamp.is_numeric());
    }

    #[test]
    fn display() {
        assert_eq!(
            schema().to_string(),
            "(Time: timestamp, BPM: int, Distance: float, Activity: str)"
        );
    }

    #[test]
    fn clone_is_shared() {
        let s = schema();
        let t = s.clone();
        assert!(Arc::ptr_eq(&s.inner, &t.inner));
    }

    #[test]
    fn serde_round_trip() {
        let s = schema();
        let json = serde_json::to_string(&s).unwrap();
        let back: Schema = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.timestamp_idx(), Some(0));
    }
}
