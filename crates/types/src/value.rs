//! The dynamic attribute value type.
//!
//! A data-stream tuple in Icewafl is a vector of [`Value`]s described by a
//! [`Schema`](crate::Schema). Error functions transform values (add noise,
//! null them out, swap categories, …), so `Value` carries the coercion and
//! comparison logic the pollution model and the DQ engine both rely on.

use crate::error::{Error, Result};
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single attribute value inside a tuple.
///
/// `Null` is a first-class member because *missing value* is one of the
/// paper's static error types (Fig. 3).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(untagged)]
pub enum Value {
    /// A missing value (SQL NULL). The default value.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A UTF-8 string (also used for categorical attributes).
    Str(String),
    /// An event timestamp (epoch milliseconds).
    Timestamp(Timestamp),
}

impl Value {
    /// `true` iff this value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short static name of the runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "Null",
            Value::Bool(_) => "Bool",
            Value::Int(_) => "Int",
            Value::Float(_) => "Float",
            Value::Str(_) => "Str",
            Value::Timestamp(_) => "Timestamp",
        }
    }

    /// Numeric view: `Int` and `Float` (and `Bool` as 0/1) coerce to `f64`.
    ///
    /// `Timestamp` intentionally does *not* coerce — treating event time as
    /// a plain number is almost always a bug in a polluter configuration,
    /// so it surfaces as `None` here and as a type error upstream.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(f64::from(*b)),
            _ => None,
        }
    }

    /// Integer view of `Int` (exact) and `Bool`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Borrowed string view of `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view of `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Timestamp view of `Timestamp`.
    pub fn as_timestamp(&self) -> Option<Timestamp> {
        match self {
            Value::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    /// Like [`Value::as_f64`] but returns a typed error, for call sites
    /// that must fail loudly (error functions bound to a numeric
    /// attribute).
    pub fn expect_f64(&self) -> Result<f64> {
        self.as_f64().ok_or(Error::TypeMismatch {
            expected: "numeric",
            found: self.type_name(),
        })
    }

    /// Like [`Value::as_timestamp`] but returns a typed error.
    pub fn expect_timestamp(&self) -> Result<Timestamp> {
        self.as_timestamp().ok_or(Error::TypeMismatch {
            expected: "Timestamp",
            found: self.type_name(),
        })
    }

    /// Rebuilds a numeric value of the *same family* as `self` from an
    /// `f64` result.
    ///
    /// Error functions compute on `f64`; this keeps an `Int` attribute an
    /// `Int` (rounding to nearest) so pollution does not silently change
    /// the schema. Non-numeric receivers return a type error.
    pub fn with_numeric(&self, x: f64) -> Result<Value> {
        match self {
            Value::Int(_) => Ok(Value::Int(round_to_i64(x))),
            Value::Float(_) => Ok(Value::Float(x)),
            Value::Bool(_) => Ok(Value::Bool(x != 0.0)),
            other => Err(Error::TypeMismatch {
                expected: "numeric",
                found: other.type_name(),
            }),
        }
    }

    /// Total comparison used by conditions and expectations.
    ///
    /// Numeric values compare numerically across `Int`/`Float`/`Bool`;
    /// strings compare lexicographically; timestamps chronologically.
    /// `Null` and cross-family comparisons are undefined (`None`) — this
    /// matches SQL three-valued logic, where `NULL > 5` is neither true
    /// nor false.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Timestamp(a), Value::Timestamp(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// Parses a textual field into a value of the given
    /// [`DataType`](crate::DataType). Empty strings and the literals
    /// `NA`/`null`/`NULL`/`NaN` parse as `Null` (the conventions of the
    /// paper's two CSV datasets).
    pub fn parse(s: &str, dtype: crate::DataType) -> Result<Value> {
        use crate::DataType;
        let s = s.trim();
        if s.is_empty() || s == "NA" || s == "null" || s == "NULL" || s == "NaN" {
            return Ok(Value::Null);
        }
        match dtype {
            DataType::Bool => match s {
                "true" | "True" | "TRUE" | "1" => Ok(Value::Bool(true)),
                "false" | "False" | "FALSE" | "0" => Ok(Value::Bool(false)),
                _ => Err(Error::parse(s, "Bool")),
            },
            DataType::Int => s
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::parse(s, "Int")),
            DataType::Float => s
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::parse(s, "Float")),
            DataType::Str => Ok(Value::Str(s.to_string())),
            DataType::Timestamp => crate::time::parse_timestamp(s).map(Value::Timestamp),
        }
    }
}

/// Rounds to nearest, ties away from zero, saturating at the `i64` range.
/// Shared with the column kernels so an `Int` column and an `Int` value
/// quantize numeric results identically.
pub(crate) fn round_to_i64(x: f64) -> i64 {
    if x.is_nan() {
        0
    } else if x >= i64::MAX as f64 {
        i64::MAX
    } else if x <= i64::MIN as f64 {
        i64::MIN
    } else {
        x.round() as i64
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str(""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => f.write_str(s),
            Value::Timestamp(t) => write!(f, "{t}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Timestamp> for Value {
    fn from(t: Timestamp) -> Self {
        Value::Timestamp(t)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        o.map_or(Value::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataType;

    #[test]
    fn null_checks() {
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("3".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
        assert_eq!(Value::Timestamp(Timestamp(5)).as_f64(), None);
    }

    #[test]
    fn with_numeric_preserves_family() {
        assert_eq!(Value::Int(10).with_numeric(3.6).unwrap(), Value::Int(4));
        assert_eq!(
            Value::Float(10.0).with_numeric(3.6).unwrap(),
            Value::Float(3.6)
        );
        assert_eq!(
            Value::Bool(false).with_numeric(2.0).unwrap(),
            Value::Bool(true)
        );
        assert!(Value::Str("x".into()).with_numeric(1.0).is_err());
        assert!(Value::Null.with_numeric(1.0).is_err());
    }

    #[test]
    fn with_numeric_saturates() {
        assert_eq!(
            Value::Int(0).with_numeric(1e300).unwrap(),
            Value::Int(i64::MAX)
        );
        assert_eq!(
            Value::Int(0).with_numeric(-1e300).unwrap(),
            Value::Int(i64::MIN)
        );
        assert_eq!(Value::Int(0).with_numeric(f64::NAN).unwrap(), Value::Int(0));
    }

    #[test]
    fn compare_numeric_cross_family() {
        assert_eq!(
            Value::Int(3).compare(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).compare(&Value::Float(3.0)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(4.0).compare(&Value::Int(3)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn compare_null_is_undefined() {
        assert_eq!(Value::Null.compare(&Value::Int(3)), None);
        assert_eq!(Value::Int(3).compare(&Value::Null), None);
        assert_eq!(Value::Null.compare(&Value::Null), None);
    }

    #[test]
    fn compare_strings_and_timestamps() {
        assert_eq!(
            Value::Str("abc".into()).compare(&Value::Str("abd".into())),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Timestamp(Timestamp(10)).compare(&Value::Timestamp(Timestamp(5))),
            Some(Ordering::Greater)
        );
        // Cross-family: undefined.
        assert_eq!(Value::Str("3".into()).compare(&Value::Int(3)), None);
        assert_eq!(Value::Timestamp(Timestamp(3)).compare(&Value::Int(3)), None);
    }

    #[test]
    fn compare_nan_is_undefined() {
        assert_eq!(Value::Float(f64::NAN).compare(&Value::Float(1.0)), None);
    }

    #[test]
    fn parse_by_dtype() {
        assert_eq!(Value::parse("42", DataType::Int).unwrap(), Value::Int(42));
        assert_eq!(
            Value::parse("4.5", DataType::Float).unwrap(),
            Value::Float(4.5)
        );
        assert_eq!(
            Value::parse("true", DataType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Value::parse("hi", DataType::Str).unwrap(),
            Value::Str("hi".into())
        );
        assert_eq!(
            Value::parse("2016-02-27 00:00:00", DataType::Timestamp).unwrap(),
            Value::Timestamp(Timestamp::from_ymd(2016, 2, 27).unwrap())
        );
    }

    #[test]
    fn parse_null_conventions() {
        for s in ["", "NA", "null", "NULL", "NaN", "  "] {
            assert_eq!(
                Value::parse(s, DataType::Float).unwrap(),
                Value::Null,
                "{s:?}"
            );
        }
    }

    #[test]
    fn parse_errors() {
        assert!(Value::parse("4.5", DataType::Int).is_err());
        assert!(Value::parse("abc", DataType::Float).is_err());
        assert!(Value::parse("maybe", DataType::Bool).is_err());
    }

    #[test]
    fn display_matches_csv_conventions() {
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Str("x".into()).to_string(), "x");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(2.5), Value::Float(2.5));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(1i64)), Value::Int(1));
    }

    #[test]
    fn serde_untagged_round_trip() {
        let v = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(3),
            Value::Float(2.5),
            Value::Str("hi".into()),
        ];
        let json = serde_json::to_string(&v).unwrap();
        assert_eq!(json, r#"[null,true,3,2.5,"hi"]"#);
        let back: Vec<Value> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn expect_helpers() {
        assert!(Value::Str("x".into()).expect_f64().is_err());
        assert_eq!(Value::Int(2).expect_f64().unwrap(), 2.0);
        assert!(Value::Int(2).expect_timestamp().is_err());
        assert_eq!(
            Value::Timestamp(Timestamp(7)).expect_timestamp().unwrap(),
            Timestamp(7)
        );
    }
}
