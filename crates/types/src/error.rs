//! Error types shared across the Icewafl workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// The unified error type of the Icewafl data model.
///
/// Substrate crates (`icewafl-stream`, `icewafl-core`, …) either reuse this
/// type directly or wrap it in their own error enums.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// An attribute name was not found in a [`Schema`](crate::Schema).
    UnknownAttribute(String),
    /// A tuple did not conform to the schema it was validated against.
    SchemaMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A value had an unexpected runtime type for the attempted operation.
    TypeMismatch {
        /// What the operation expected, e.g. `"Float"`.
        expected: &'static str,
        /// What was actually found, e.g. `"Str"`.
        found: &'static str,
    },
    /// A string could not be parsed into the requested type.
    Parse {
        /// The input that failed to parse (possibly truncated).
        input: String,
        /// What the input was being parsed as.
        target: &'static str,
    },
    /// An invalid configuration was supplied (bad probability, empty
    /// pipeline, unknown error-type name, …).
    Config(String),
    /// An I/O error, carried as a string because `std::io::Error` is not
    /// `Clone`/`PartialEq`.
    Io(String),
    /// A pollution plan could not be compiled or reconfigured (unknown
    /// polluter name in a delta, sub-stream count mismatch, invalid
    /// execution section, …).
    Plan {
        /// Human-readable description of the plan problem.
        detail: String,
    },
    /// A stream pipeline terminated abnormally (operator panic, injected
    /// chaos fault, deadline, dead worker). Carries the failing stage
    /// label and the rendered panic payload / diagnostic so callers can
    /// report *where* a run died without a raw backtrace.
    Pipeline {
        /// Label of the failing stage, e.g. `stage/02_pollution_pipeline`.
        stage: String,
        /// Stable failure-kind string (`panic`, `injected`, `deadline`,
        /// `disconnect`, `fatal`) — stringly typed here so `icewafl-types`
        /// stays independent of the stream runtime.
        kind: String,
        /// Human-readable detail (the panic message for panics).
        message: String,
    },
}

impl Error {
    /// Builds a [`Error::Parse`] from any displayable input.
    pub fn parse(input: impl fmt::Display, target: &'static str) -> Self {
        let mut s = input.to_string();
        if s.len() > 64 {
            s.truncate(64);
            s.push('…');
        }
        Error::Parse { input: s, target }
    }

    /// Builds a [`Error::Config`] from any displayable message.
    pub fn config(msg: impl fmt::Display) -> Self {
        Error::Config(msg.to_string())
    }

    /// Builds a [`Error::Plan`] from any displayable message.
    pub fn plan(msg: impl fmt::Display) -> Self {
        Error::Plan {
            detail: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            Error::SchemaMismatch { detail } => write!(f, "schema mismatch: {detail}"),
            Error::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            Error::Parse { input, target } => {
                write!(f, "cannot parse `{input}` as {target}")
            }
            Error::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Plan { detail } => write!(f, "invalid plan: {detail}"),
            Error::Io(msg) => write!(f, "I/O error: {msg}"),
            Error::Pipeline {
                stage,
                kind,
                message,
            } => write!(f, "pipeline failed at stage `{stage}` ({kind}): {message}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_attribute() {
        let e = Error::UnknownAttribute("BPM".into());
        assert_eq!(e.to_string(), "unknown attribute `BPM`");
    }

    #[test]
    fn display_type_mismatch() {
        let e = Error::TypeMismatch {
            expected: "Float",
            found: "Str",
        };
        assert_eq!(e.to_string(), "type mismatch: expected Float, found Str");
    }

    #[test]
    fn parse_truncates_long_input() {
        let long = "x".repeat(200);
        let e = Error::parse(&long, "Int");
        match &e {
            Error::Parse { input, .. } => {
                assert!(input.len() < 80, "input should be truncated");
                assert!(input.ends_with('…'));
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn display_pipeline_failure() {
        let e = Error::Pipeline {
            stage: "stage/01_map".into(),
            kind: "panic".into(),
            message: "boom".into(),
        };
        assert_eq!(
            e.to_string(),
            "pipeline failed at stage `stage/01_map` (panic): boom"
        );
    }

    #[test]
    fn display_plan_failure() {
        let e = Error::plan("delta names unknown polluter `ghost`");
        assert_eq!(
            e.to_string(),
            "invalid plan: delta names unknown polluter `ghost`"
        );
    }

    #[test]
    fn config_builder() {
        let e = Error::config(format_args!("bad probability {}", 1.5));
        assert_eq!(e.to_string(), "invalid configuration: bad probability 1.5");
    }
}
