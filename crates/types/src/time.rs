//! Civil (Gregorian) time implemented from scratch.
//!
//! Data streams in Icewafl carry an *event time* — the paper's replicated
//! timestamp `τ` — and several temporal conditions need calendar
//! arithmetic: "hour of the day" for the sinusoidal error pattern of
//! experiment 3.1.1, "after 2016-02-27" for the software-update scenario,
//! and hour differences for equations (3) and (4).
//!
//! Timestamps are milliseconds since the Unix epoch (UTC, no leap
//! seconds), the same convention Flink uses for event time. The
//! date↔day-number conversions follow the classic public-domain civil
//! calendar algorithms (Howard Hinnant's `days_from_civil` /
//! `civil_from_days`).

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Milliseconds in one second.
pub const MILLIS_PER_SECOND: i64 = 1_000;
/// Milliseconds in one minute.
pub const MILLIS_PER_MINUTE: i64 = 60 * MILLIS_PER_SECOND;
/// Milliseconds in one hour.
pub const MILLIS_PER_HOUR: i64 = 60 * MILLIS_PER_MINUTE;
/// Milliseconds in one day.
pub const MILLIS_PER_DAY: i64 = 24 * MILLIS_PER_HOUR;

/// A point in time: milliseconds since `1970-01-01 00:00:00` UTC.
///
/// `Timestamp` is the event-time currency of the whole workspace — tuple
/// timestamps, watermarks, and the replicated pollution-process time `τ`
/// all use it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// The smallest representable timestamp (used as the initial watermark).
    pub const MIN: Timestamp = Timestamp(i64::MIN);
    /// The largest representable timestamp (used as the end-of-stream
    /// watermark).
    pub const MAX: Timestamp = Timestamp(i64::MAX);

    /// Constructs a timestamp from raw epoch milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        Timestamp(ms)
    }

    /// The raw epoch-millisecond value.
    pub const fn millis(self) -> i64 {
        self.0
    }

    /// Builds a timestamp from a civil date and time-of-day (UTC).
    ///
    /// Returns an error if any component is out of range (months 1–12,
    /// days valid for the month, hours 0–23, minutes/seconds 0–59).
    pub fn from_ymd_hms(
        year: i32,
        month: u32,
        day: u32,
        hour: u32,
        minute: u32,
        second: u32,
    ) -> Result<Self> {
        DateTime {
            year,
            month,
            day,
            hour,
            minute,
            second,
            milli: 0,
        }
        .to_timestamp()
    }

    /// Builds a timestamp for midnight of the given civil date (UTC).
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Result<Self> {
        Self::from_ymd_hms(year, month, day, 0, 0, 0)
    }

    /// Decomposes the timestamp into its civil components.
    pub fn to_datetime(self) -> DateTime {
        let days = self.0.div_euclid(MILLIS_PER_DAY);
        let ms_of_day = self.0.rem_euclid(MILLIS_PER_DAY);
        let (year, month, day) = civil_from_days(days);
        let hour = (ms_of_day / MILLIS_PER_HOUR) as u32;
        let minute = ((ms_of_day % MILLIS_PER_HOUR) / MILLIS_PER_MINUTE) as u32;
        let second = ((ms_of_day % MILLIS_PER_MINUTE) / MILLIS_PER_SECOND) as u32;
        let milli = (ms_of_day % MILLIS_PER_SECOND) as u32;
        DateTime {
            year,
            month,
            day,
            hour,
            minute,
            second,
            milli,
        }
    }

    /// The hour of the day in `0..24`.
    pub fn hour_of_day(self) -> u32 {
        (self.0.rem_euclid(MILLIS_PER_DAY) / MILLIS_PER_HOUR) as u32
    }

    /// The time of day as a fractional hour in `[0, 24)`.
    ///
    /// This is the `t` of the paper's sinusoidal error probability
    /// `p(t) = 0.25·cos(π/12·t) + 0.25` (§3.1.1).
    pub fn fractional_hour_of_day(self) -> f64 {
        self.0.rem_euclid(MILLIS_PER_DAY) as f64 / MILLIS_PER_HOUR as f64
    }

    /// The minute within the hour in `0..60`.
    pub fn minute_of_hour(self) -> u32 {
        (self.0.rem_euclid(MILLIS_PER_HOUR) / MILLIS_PER_MINUTE) as u32
    }

    /// The month of the year in `1..=12`.
    pub fn month(self) -> u32 {
        self.to_datetime().month
    }

    /// The difference `self - earlier` expressed in (fractional) hours.
    ///
    /// This is the paper's `hours(τ_i − τ_0)` helper from equations (3)
    /// and (4).
    pub fn hours_since(self, earlier: Timestamp) -> f64 {
        (self.0 - earlier.0) as f64 / MILLIS_PER_HOUR as f64
    }

    /// Midnight of the day this timestamp falls on.
    pub fn floor_to_day(self) -> Timestamp {
        Timestamp(self.0.div_euclid(MILLIS_PER_DAY) * MILLIS_PER_DAY)
    }

    /// Start of the hour this timestamp falls in.
    pub fn floor_to_hour(self) -> Timestamp {
        Timestamp(self.0.div_euclid(MILLIS_PER_HOUR) * MILLIS_PER_HOUR)
    }

    /// Saturating addition of a duration (used by delay polluters so an
    /// extreme configuration cannot overflow).
    pub fn saturating_add(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.to_datetime().fmt(f)
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl SubAssign<Duration> for Timestamp {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

/// A signed span of time in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Duration(pub i64);

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// A duration of `ms` milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        Duration(ms)
    }

    /// A duration of `s` seconds.
    pub const fn from_seconds(s: i64) -> Self {
        Duration(s * MILLIS_PER_SECOND)
    }

    /// A duration of `m` minutes.
    pub const fn from_minutes(m: i64) -> Self {
        Duration(m * MILLIS_PER_MINUTE)
    }

    /// A duration of `h` hours.
    pub const fn from_hours(h: i64) -> Self {
        Duration(h * MILLIS_PER_HOUR)
    }

    /// A duration of `d` days.
    pub const fn from_days(d: i64) -> Self {
        Duration(d * MILLIS_PER_DAY)
    }

    /// The raw millisecond count.
    pub const fn millis(self) -> i64 {
        self.0
    }

    /// The duration as fractional hours.
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / MILLIS_PER_HOUR as f64
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

/// A civil (proleptic Gregorian, UTC) date and time, decomposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DateTime {
    /// Calendar year (may be negative for BCE in the proleptic calendar).
    pub year: i32,
    /// Month, `1..=12`.
    pub month: u32,
    /// Day of month, `1..=31`.
    pub day: u32,
    /// Hour of day, `0..24`.
    pub hour: u32,
    /// Minute, `0..60`.
    pub minute: u32,
    /// Second, `0..60`.
    pub second: u32,
    /// Millisecond, `0..1000`.
    pub milli: u32,
}

impl DateTime {
    /// Converts the civil components back to an epoch timestamp,
    /// validating ranges.
    pub fn to_timestamp(self) -> Result<Timestamp> {
        if self.month == 0 || self.month > 12 {
            return Err(Error::config(format_args!(
                "month {} out of range",
                self.month
            )));
        }
        let dim = days_in_month(self.year, self.month);
        if self.day == 0 || self.day > dim {
            return Err(Error::config(format_args!(
                "day {} out of range for {}-{:02}",
                self.day, self.year, self.month
            )));
        }
        if self.hour > 23 || self.minute > 59 || self.second > 59 || self.milli > 999 {
            return Err(Error::config(format_args!(
                "time {:02}:{:02}:{:02}.{:03} out of range",
                self.hour, self.minute, self.second, self.milli
            )));
        }
        let days = days_from_civil(self.year, self.month, self.day);
        let ms = days * MILLIS_PER_DAY
            + self.hour as i64 * MILLIS_PER_HOUR
            + self.minute as i64 * MILLIS_PER_MINUTE
            + self.second as i64 * MILLIS_PER_SECOND
            + self.milli as i64;
        Ok(Timestamp(ms))
    }
}

impl fmt::Display for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:04}-{:02}-{:02} {:02}:{:02}:{:02}",
            self.year, self.month, self.day, self.hour, self.minute, self.second
        )?;
        if self.milli != 0 {
            write!(f, ".{:03}", self.milli)?;
        }
        Ok(())
    }
}

/// Whether `year` is a leap year in the proleptic Gregorian calendar.
pub fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// The number of days in `month` of `year`.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap_year(year) => 29,
        2 => 28,
        _ => 0,
    }
}

/// Days since the Unix epoch for a civil date (Hinnant's
/// `days_from_civil`).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = y.div_euclid(400);
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for a day count since the Unix epoch (Hinnant's
/// `civil_from_days`).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

/// Parses `"YYYY-MM-DD"`, `"YYYY-MM-DD HH:MM"`, `"YYYY-MM-DD HH:MM:SS"` or
/// `"YYYY-MM-DD HH:MM:SS.mmm"` (a `T` separator is also accepted) into a
/// [`Timestamp`].
pub fn parse_timestamp(s: &str) -> Result<Timestamp> {
    let s = s.trim();
    let bad = || Error::parse(s, "Timestamp");
    let (date, time) = match s.split_once([' ', 'T']) {
        Some((d, t)) => (d, Some(t)),
        None => (s, None),
    };
    let mut dp = date.splitn(3, '-');
    // A leading '-' would make the year field empty; negative years are not
    // accepted in the textual format.
    let year: i32 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let month: u32 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let day: u32 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let (mut hour, mut minute, mut second, mut milli) = (0u32, 0u32, 0u32, 0u32);
    if let Some(t) = time {
        let (hms, frac) = match t.split_once('.') {
            Some((a, b)) => (a, Some(b)),
            None => (t, None),
        };
        let mut tp = hms.splitn(3, ':');
        hour = tp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        minute = tp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if let Some(sec) = tp.next() {
            second = sec.parse().map_err(|_| bad())?;
        }
        if let Some(frac) = frac {
            if frac.is_empty() || frac.len() > 3 || !frac.bytes().all(|b| b.is_ascii_digit()) {
                return Err(bad());
            }
            let scale = 10u32.pow(3 - frac.len() as u32);
            milli = frac.parse::<u32>().map_err(|_| bad())? * scale;
        }
    }
    DateTime {
        year,
        month,
        day,
        hour,
        minute,
        second,
        milli,
    }
    .to_timestamp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(Timestamp::from_ymd(1970, 1, 1).unwrap(), Timestamp(0));
    }

    #[test]
    fn known_dates_round_trip() {
        // Reference values cross-checked against `date -u -d ... +%s`.
        let t = Timestamp::from_ymd_hms(2016, 2, 27, 0, 0, 0).unwrap();
        assert_eq!(t.millis(), 1_456_531_200_000);
        let t = Timestamp::from_ymd_hms(2013, 3, 1, 0, 0, 0).unwrap();
        assert_eq!(t.millis(), 1_362_096_000_000);
        let t = Timestamp::from_ymd_hms(2017, 2, 28, 23, 0, 0).unwrap();
        assert_eq!(t.millis(), 1_488_322_800_000);
    }

    #[test]
    fn decompose_known_date() {
        let dt = Timestamp(1_456_531_200_000).to_datetime();
        assert_eq!((dt.year, dt.month, dt.day), (2016, 2, 27));
        assert_eq!((dt.hour, dt.minute, dt.second), (0, 0, 0));
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2016));
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2015));
        assert_eq!(days_in_month(2016, 2), 29);
        assert_eq!(days_in_month(2015, 2), 28);
        assert_eq!(days_in_month(2015, 4), 30);
    }

    #[test]
    fn leap_day_2016_exists() {
        let t = Timestamp::from_ymd(2016, 2, 29).unwrap();
        let dt = t.to_datetime();
        assert_eq!((dt.year, dt.month, dt.day), (2016, 2, 29));
        assert!(Timestamp::from_ymd(2015, 2, 29).is_err());
    }

    #[test]
    fn hour_of_day_and_fraction() {
        let t = Timestamp::from_ymd_hms(2016, 2, 26, 13, 30, 0).unwrap();
        assert_eq!(t.hour_of_day(), 13);
        assert!((t.fractional_hour_of_day() - 13.5).abs() < 1e-9);
        assert_eq!(t.minute_of_hour(), 30);
    }

    #[test]
    fn hour_of_day_pre_epoch() {
        // 1969-12-31 23:00 — rem_euclid must keep the hour positive.
        let t = Timestamp(-MILLIS_PER_HOUR);
        assert_eq!(t.hour_of_day(), 23);
    }

    #[test]
    fn hours_since() {
        let a = Timestamp::from_ymd_hms(2016, 2, 26, 0, 0, 0).unwrap();
        let b = Timestamp::from_ymd_hms(2016, 2, 27, 6, 30, 0).unwrap();
        assert!((b.hours_since(a) - 30.5).abs() < 1e-9);
        assert!((a.hours_since(b) + 30.5).abs() < 1e-9);
    }

    #[test]
    fn floor_helpers() {
        let t = Timestamp::from_ymd_hms(2016, 2, 26, 13, 45, 12).unwrap();
        assert_eq!(t.floor_to_hour().to_datetime().minute, 0);
        assert_eq!(t.floor_to_day().to_datetime().hour, 0);
        assert_eq!(t.floor_to_day().to_datetime().day, 26);
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_ymd(2016, 2, 28).unwrap();
        let u = t + Duration::from_days(1);
        assert_eq!(u.to_datetime().day, 29); // leap day
        let v = u + Duration::from_days(1);
        assert_eq!((v.to_datetime().month, v.to_datetime().day), (3, 1));
        assert_eq!(v - t, Duration::from_days(2));
        assert_eq!((v - Duration::from_hours(48)), t);
    }

    #[test]
    fn saturating_add_caps() {
        assert_eq!(
            Timestamp::MAX.saturating_add(Duration::from_hours(1)),
            Timestamp::MAX
        );
    }

    #[test]
    fn parse_variants() {
        assert_eq!(
            parse_timestamp("2016-02-27").unwrap(),
            Timestamp::from_ymd(2016, 2, 27).unwrap()
        );
        assert_eq!(
            parse_timestamp("2016-02-27 13:05").unwrap(),
            Timestamp::from_ymd_hms(2016, 2, 27, 13, 5, 0).unwrap()
        );
        assert_eq!(
            parse_timestamp("2016-02-27T13:05:09").unwrap(),
            Timestamp::from_ymd_hms(2016, 2, 27, 13, 5, 9).unwrap()
        );
        assert_eq!(
            parse_timestamp("2016-02-27 13:05:09.250").unwrap().millis(),
            Timestamp::from_ymd_hms(2016, 2, 27, 13, 5, 9)
                .unwrap()
                .millis()
                + 250
        );
        // Short fraction is scaled: ".5" == 500 ms.
        assert_eq!(
            parse_timestamp("1970-01-01 00:00:00.5").unwrap(),
            Timestamp(500)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "",
            "2016",
            "2016-13-01",
            "2016-02-30",
            "2016-02-27 25:00",
            "abc",
            "2016-02-27 13:05:09.12345",
        ] {
            assert!(parse_timestamp(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn display_round_trips() {
        let t = Timestamp::from_ymd_hms(2016, 2, 27, 13, 5, 9).unwrap();
        assert_eq!(t.to_string(), "2016-02-27 13:05:09");
        assert_eq!(parse_timestamp(&t.to_string()).unwrap(), t);
    }

    #[test]
    fn duration_constructors_consistent() {
        assert_eq!(Duration::from_days(1), Duration::from_hours(24));
        assert_eq!(Duration::from_hours(1), Duration::from_minutes(60));
        assert_eq!(Duration::from_minutes(1), Duration::from_seconds(60));
        assert_eq!(Duration::from_seconds(1), Duration::from_millis(1000));
        assert!((Duration::from_minutes(90).as_hours() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn month_accessor() {
        assert_eq!(Timestamp::from_ymd(2016, 7, 4).unwrap().month(), 7);
    }
}
