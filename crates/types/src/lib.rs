//! # icewafl-types
//!
//! Shared data model of the Icewafl workspace: dynamic [`Value`]s, typed
//! [`Schema`]s, [`Tuple`]s and their pollution-process enrichment
//! ([`StampedTuple`]), plus a from-scratch civil-time implementation
//! ([`Timestamp`], [`Duration`], [`DateTime`]).
//!
//! Everything in this crate corresponds to §2.1 of the Icewafl paper
//! ("Data Stream Handling"): a multivariate data stream is a sequence of
//! tuples over a schema of `k` attributes, with a designated timestamp
//! attribute, and each tuple is enriched with a unique identifier and a
//! replicated event time `τ` before pollution starts.

#![warn(missing_docs)]

pub mod column;
pub mod error;
pub mod schema;
pub mod time;
pub mod tuple;
pub mod value;

pub use column::{Column, ColumnBatch, ColumnData};
pub use error::{Error, Result};
pub use schema::{DataType, Field, Schema};
pub use time::{parse_timestamp, DateTime, Duration, Timestamp};
pub use tuple::{StampedTuple, Tuple};
pub use value::Value;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Civil-time round trip over a ±200-year window around the epoch.
        #[test]
        fn timestamp_datetime_round_trip(ms in -6_311_520_000_000i64..6_311_520_000_000i64) {
            let t = Timestamp(ms);
            let dt = t.to_datetime();
            prop_assert!(dt.month >= 1 && dt.month <= 12);
            prop_assert!(dt.day >= 1 && dt.day <= time::days_in_month(dt.year, dt.month));
            prop_assert_eq!(dt.to_timestamp().unwrap(), t);
        }

        /// Parsing the display form of a timestamp recovers it exactly
        /// (sub-second part included).
        #[test]
        fn display_parse_round_trip(ms in 0i64..4_102_444_800_000i64) {
            let t = Timestamp(ms);
            prop_assert_eq!(parse_timestamp(&t.to_string()).unwrap(), t);
        }

        /// Date ordering agrees with timestamp ordering.
        #[test]
        fn ordering_is_consistent(a in -1_000_000_000_000i64..1_000_000_000_000i64,
                                  b in -1_000_000_000_000i64..1_000_000_000_000i64) {
            let (ta, tb) = (Timestamp(a), Timestamp(b));
            prop_assert_eq!(ta.cmp(&tb), ta.to_datetime().cmp(&tb.to_datetime()));
        }

        /// hours_since is the exact inverse of adding hours.
        #[test]
        fn hours_since_inverse(base in -1_000_000_000_000i64..1_000_000_000_000i64,
                               h in -10_000i64..10_000i64) {
            let t = Timestamp(base);
            let u = t + Duration::from_hours(h);
            prop_assert!((u.hours_since(t) - h as f64).abs() < 1e-9);
        }

        /// Value::compare is antisymmetric on numeric values.
        #[test]
        fn compare_antisymmetric(a in proptest::num::f64::NORMAL, b in proptest::num::f64::NORMAL) {
            let (va, vb) = (Value::Float(a), Value::Float(b));
            let fwd = va.compare(&vb);
            let rev = vb.compare(&va);
            prop_assert_eq!(fwd.map(|o| o.reverse()), rev);
        }

        /// with_numeric on an Int never changes the value family.
        #[test]
        fn with_numeric_keeps_family(x in proptest::num::f64::ANY) {
            let v = Value::Int(0).with_numeric(x).unwrap();
            prop_assert!(matches!(v, Value::Int(_)));
        }
    }
}
