//! Tuples and their pollution-process enrichment.
//!
//! The paper's preparation step (§2.1, Algorithm 1 lines 1–3) wraps each
//! raw tuple with a unique identifier and a *replicated* timestamp `τ`:
//! the original timestamp attribute may be polluted, while `τ` stays
//! pristine and serves as event time for temporal conditions and as the
//! ground-truth join key between the clean and the dirty stream.

use crate::error::Result;
use crate::schema::Schema;
use crate::time::Timestamp;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A raw data tuple: one value per schema attribute.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from its values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Number of values (the arity).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` iff the tuple has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow all values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutably borrow all values.
    pub fn values_mut(&mut self) -> &mut [Value] {
        &mut self.values
    }

    /// The value at column `idx`, if in range.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Mutable value at column `idx`, if in range.
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut Value> {
        self.values.get_mut(idx)
    }

    /// Replaces the value at `idx`, returning the previous value.
    ///
    /// Panics if `idx` is out of range — polluters resolve indices against
    /// the schema at build time, so an out-of-range index is a programmer
    /// error, not a data error.
    pub fn replace(&mut self, idx: usize, value: Value) -> Value {
        std::mem::replace(&mut self.values[idx], value)
    }

    /// Looks a value up by attribute name through a schema.
    pub fn by_name<'a>(&'a self, schema: &Schema, name: &str) -> Option<&'a Value> {
        self.values.get(schema.index_of(name)?)
    }

    /// Consumes the tuple, yielding its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

/// A tuple enriched by the preparation step: unique `id`, replicated
/// event time `tau`, and (after integration) the sub-stream it was
/// polluted in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StampedTuple {
    /// Unique identifier assigned in Algorithm 1 line 2. Never polluted;
    /// joins dirty tuples back to their clean originals.
    pub id: u64,
    /// Replicated timestamp `τ` (Algorithm 1 line 3). Never polluted;
    /// drives temporal conditions and serves as ground truth.
    pub tau: Timestamp,
    /// The time at which this tuple becomes visible downstream.
    ///
    /// Initially equal to `tau`. A *delayed tuple* polluter pushes it
    /// forward; the final `sortByTimestamp` of Algorithm 1 orders the
    /// merged output by this field, so a delayed tuple shows up late —
    /// with its (unchanged) timestamp attribute now violating the
    /// stream's increasing order, exactly the signal experiment 3.1.3
    /// detects.
    pub arrival: Timestamp,
    /// Identifier of the sub-stream this tuple passed through
    /// (Algorithm 1 line 10); `0` until sub-streams are created.
    pub sub_stream: u32,
    /// The payload tuple — this is what polluters mutate.
    pub tuple: Tuple,
}

impl StampedTuple {
    /// Wraps a raw tuple with its identity and replicated event time.
    /// The arrival time starts equal to `tau`.
    pub fn new(id: u64, tau: Timestamp, tuple: Tuple) -> Self {
        StampedTuple {
            id,
            tau,
            arrival: tau,
            sub_stream: 0,
            tuple,
        }
    }

    /// Reads the (possibly polluted) timestamp *attribute* through the
    /// schema. Contrast with [`StampedTuple::tau`], which is immutable.
    pub fn ts_attribute(&self, schema: &Schema) -> Result<Option<Timestamp>> {
        let idx = schema.require_timestamp()?;
        match &self.tuple.values()[idx] {
            Value::Null => Ok(None),
            v => Ok(Some(v.expect_timestamp()?)),
        }
    }
}

impl fmt::Display for StampedTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} @{} {}", self.id, self.tau, self.tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    fn schema() -> Schema {
        Schema::from_pairs([("Time", DataType::Timestamp), ("BPM", DataType::Int)]).unwrap()
    }

    #[test]
    fn accessors() {
        let mut t = Tuple::new(vec![Value::Int(1), Value::Str("a".into())]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.get(0), Some(&Value::Int(1)));
        assert_eq!(t.get(9), None);
        *t.get_mut(0).unwrap() = Value::Int(2);
        assert_eq!(t.get(0), Some(&Value::Int(2)));
        let old = t.replace(1, Value::Null);
        assert_eq!(old, Value::Str("a".into()));
        assert!(t.get(1).unwrap().is_null());
    }

    #[test]
    #[should_panic]
    fn replace_out_of_range_panics() {
        let mut t = Tuple::new(vec![Value::Int(1)]);
        t.replace(5, Value::Null);
    }

    #[test]
    fn by_name() {
        let s = schema();
        let t = Tuple::new(vec![Value::Timestamp(Timestamp(0)), Value::Int(70)]);
        assert_eq!(t.by_name(&s, "BPM"), Some(&Value::Int(70)));
        assert_eq!(t.by_name(&s, "nope"), None);
    }

    #[test]
    fn display() {
        let t = Tuple::new(vec![Value::Int(1), Value::Null, Value::Str("x".into())]);
        assert_eq!(t.to_string(), "(1, , x)");
    }

    #[test]
    fn stamped_preserves_tau_independent_of_attribute() {
        let s = schema();
        let tau = Timestamp::from_ymd(2016, 2, 26).unwrap();
        let mut st = StampedTuple::new(
            7,
            tau,
            Tuple::new(vec![Value::Timestamp(tau), Value::Int(70)]),
        );
        // Pollute the timestamp *attribute*.
        st.tuple.replace(0, Value::Timestamp(Timestamp(0)));
        assert_eq!(st.tau, tau, "replicated event time must not change");
        assert_eq!(st.ts_attribute(&s).unwrap(), Some(Timestamp(0)));
    }

    #[test]
    fn arrival_starts_at_tau_and_can_be_delayed() {
        let tau = Timestamp(1_000);
        let mut st = StampedTuple::new(1, tau, Tuple::new(vec![Value::Int(1)]));
        assert_eq!(st.arrival, tau);
        st.arrival = tau + crate::time::Duration::from_hours(1);
        assert_eq!(st.tau, tau, "tau is immutable ground truth");
        assert!(st.arrival > st.tau);
    }

    #[test]
    fn ts_attribute_null_and_missing_schema() {
        let s = schema();
        let st = StampedTuple::new(
            1,
            Timestamp(5),
            Tuple::new(vec![Value::Null, Value::Int(1)]),
        );
        assert_eq!(st.ts_attribute(&s).unwrap(), None);
        let no_ts = Schema::from_pairs([("x", DataType::Int)]).unwrap();
        let st2 = StampedTuple::new(1, Timestamp(5), Tuple::new(vec![Value::Int(1)]));
        assert!(st2.ts_attribute(&no_ts).is_err());
    }

    #[test]
    fn into_values_and_from() {
        let t: Tuple = vec![Value::Int(1)].into();
        assert_eq!(t.into_values(), vec![Value::Int(1)]);
    }

    #[test]
    fn stamped_display() {
        let st = StampedTuple::new(3, Timestamp(0), Tuple::new(vec![Value::Int(9)]));
        assert_eq!(st.to_string(), "#3 @1970-01-01 00:00:00 (9)");
    }
}
