//! Tuples and their pollution-process enrichment.
//!
//! The paper's preparation step (§2.1, Algorithm 1 lines 1–3) wraps each
//! raw tuple with a unique identifier and a *replicated* timestamp `τ`:
//! the original timestamp attribute may be polluted, while `τ` stays
//! pristine and serves as event time for temporal conditions and as the
//! ground-truth join key between the clean and the dirty stream.

use crate::error::Result;
use crate::schema::Schema;
use crate::time::Timestamp;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Arity up to which tuple values are stored inline, without a heap
/// allocation per tuple; wider tuples spill to a `Vec` transparently.
///
/// Kept deliberately small: the stream runtime moves tuples far more
/// often than it allocates them, and every inline slot inflates each
/// move by `size_of::<Value>()` (24 bytes). A capacity sweep on the
/// ℓ = 4, m = 4 reference workload showed capacities ≥ 2 regress
/// sequential throughput 30–50% from the extra memcpy traffic, while
/// 1 is neutral-to-faster — so the common 2–4 column schemas spill,
/// and only genuinely scalar tuples ride inline.
const INLINE_VALUES: usize = 1;

/// Small-vector storage backing [`Tuple`]: tuples of at most
/// [`INLINE_VALUES`] values keep them inline, so constructing, cloning,
/// and dropping the tuples that dominate the stream costs no allocator
/// round-trips. Serializes as a plain sequence, exactly like
/// `Vec<Value>`, so the wire format is unchanged.
#[derive(Clone)]
enum ValueVec {
    /// `len` live values in `slots[..len]`; the tail is `Value::Null`.
    Inline {
        len: u8,
        slots: [Value; INLINE_VALUES],
    },
    /// Arity above the inline capacity spills to the heap.
    Spilled(Vec<Value>),
}

impl ValueVec {
    #[inline]
    fn from_vec(values: Vec<Value>) -> Self {
        if values.len() <= INLINE_VALUES {
            let len = values.len() as u8;
            let mut slots: [Value; INLINE_VALUES] = std::array::from_fn(|_| Value::Null);
            for (slot, v) in slots.iter_mut().zip(values) {
                *slot = v;
            }
            ValueVec::Inline { len, slots }
        } else {
            ValueVec::Spilled(values)
        }
    }

    #[inline]
    fn as_slice(&self) -> &[Value] {
        match self {
            ValueVec::Inline { len, slots } => &slots[..*len as usize],
            ValueVec::Spilled(v) => v,
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [Value] {
        match self {
            ValueVec::Inline { len, slots } => &mut slots[..*len as usize],
            ValueVec::Spilled(v) => v,
        }
    }

    #[inline]
    fn into_vec(self) -> Vec<Value> {
        match self {
            ValueVec::Inline { len, slots } => slots.into_iter().take(len as usize).collect(),
            ValueVec::Spilled(v) => v,
        }
    }
}

impl Default for ValueVec {
    fn default() -> Self {
        ValueVec::from_vec(Vec::new())
    }
}

impl fmt::Debug for ValueVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl PartialEq for ValueVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Serialize for ValueVec {
    fn to_content(&self) -> serde::Content {
        self.as_slice().to_content()
    }
}

impl Deserialize for ValueVec {
    fn from_content(content: &serde::Content) -> std::result::Result<Self, serde::Error> {
        Vec::<Value>::from_content(content).map(ValueVec::from_vec)
    }
}

/// A raw data tuple: one value per schema attribute.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Tuple {
    values: ValueVec,
}

impl Tuple {
    /// Creates a tuple from its values.
    #[inline]
    pub fn new(values: Vec<Value>) -> Self {
        Tuple {
            values: ValueVec::from_vec(values),
        }
    }

    /// Number of values (the arity).
    #[inline]
    pub fn len(&self) -> usize {
        self.values.as_slice().len()
    }

    /// `true` iff the tuple has no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.as_slice().is_empty()
    }

    /// Borrow all values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        self.values.as_slice()
    }

    /// Mutably borrow all values.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [Value] {
        self.values.as_mut_slice()
    }

    /// The value at column `idx`, if in range.
    #[inline]
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.as_slice().get(idx)
    }

    /// Mutable value at column `idx`, if in range.
    #[inline]
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut Value> {
        self.values.as_mut_slice().get_mut(idx)
    }

    /// Replaces the value at `idx`, returning the previous value.
    ///
    /// Panics if `idx` is out of range — polluters resolve indices against
    /// the schema at build time, so an out-of-range index is a programmer
    /// error, not a data error.
    #[inline]
    pub fn replace(&mut self, idx: usize, value: Value) -> Value {
        std::mem::replace(&mut self.values.as_mut_slice()[idx], value)
    }

    /// Looks a value up by attribute name through a schema.
    pub fn by_name<'a>(&'a self, schema: &Schema, name: &str) -> Option<&'a Value> {
        self.get(schema.index_of(name)?)
    }

    /// Consumes the tuple, yielding its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values.into_vec()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

/// A tuple enriched by the preparation step: unique `id`, replicated
/// event time `tau`, and (after integration) the sub-stream it was
/// polluted in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StampedTuple {
    /// Unique identifier assigned in Algorithm 1 line 2. Never polluted;
    /// joins dirty tuples back to their clean originals.
    pub id: u64,
    /// Replicated timestamp `τ` (Algorithm 1 line 3). Never polluted;
    /// drives temporal conditions and serves as ground truth.
    pub tau: Timestamp,
    /// The time at which this tuple becomes visible downstream.
    ///
    /// Initially equal to `tau`. A *delayed tuple* polluter pushes it
    /// forward; the final `sortByTimestamp` of Algorithm 1 orders the
    /// merged output by this field, so a delayed tuple shows up late —
    /// with its (unchanged) timestamp attribute now violating the
    /// stream's increasing order, exactly the signal experiment 3.1.3
    /// detects.
    pub arrival: Timestamp,
    /// Identifier of the sub-stream this tuple passed through
    /// (Algorithm 1 line 10); `0` until sub-streams are created.
    pub sub_stream: u32,
    /// The payload tuple — this is what polluters mutate.
    pub tuple: Tuple,
}

impl StampedTuple {
    /// Wraps a raw tuple with its identity and replicated event time.
    /// The arrival time starts equal to `tau`.
    pub fn new(id: u64, tau: Timestamp, tuple: Tuple) -> Self {
        StampedTuple {
            id,
            tau,
            arrival: tau,
            sub_stream: 0,
            tuple,
        }
    }

    /// Reads the (possibly polluted) timestamp *attribute* through the
    /// schema. Contrast with [`StampedTuple::tau`], which is immutable.
    pub fn ts_attribute(&self, schema: &Schema) -> Result<Option<Timestamp>> {
        let idx = schema.require_timestamp()?;
        match &self.tuple.values()[idx] {
            Value::Null => Ok(None),
            v => Ok(Some(v.expect_timestamp()?)),
        }
    }
}

impl fmt::Display for StampedTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} @{} {}", self.id, self.tau, self.tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    fn schema() -> Schema {
        Schema::from_pairs([("Time", DataType::Timestamp), ("BPM", DataType::Int)]).unwrap()
    }

    #[test]
    fn accessors() {
        let mut t = Tuple::new(vec![Value::Int(1), Value::Str("a".into())]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.get(0), Some(&Value::Int(1)));
        assert_eq!(t.get(9), None);
        *t.get_mut(0).unwrap() = Value::Int(2);
        assert_eq!(t.get(0), Some(&Value::Int(2)));
        let old = t.replace(1, Value::Null);
        assert_eq!(old, Value::Str("a".into()));
        assert!(t.get(1).unwrap().is_null());
    }

    #[test]
    #[should_panic]
    fn replace_out_of_range_panics() {
        let mut t = Tuple::new(vec![Value::Int(1)]);
        t.replace(5, Value::Null);
    }

    #[test]
    fn by_name() {
        let s = schema();
        let t = Tuple::new(vec![Value::Timestamp(Timestamp(0)), Value::Int(70)]);
        assert_eq!(t.by_name(&s, "BPM"), Some(&Value::Int(70)));
        assert_eq!(t.by_name(&s, "nope"), None);
    }

    #[test]
    fn display() {
        let t = Tuple::new(vec![Value::Int(1), Value::Null, Value::Str("x".into())]);
        assert_eq!(t.to_string(), "(1, , x)");
    }

    #[test]
    fn stamped_preserves_tau_independent_of_attribute() {
        let s = schema();
        let tau = Timestamp::from_ymd(2016, 2, 26).unwrap();
        let mut st = StampedTuple::new(
            7,
            tau,
            Tuple::new(vec![Value::Timestamp(tau), Value::Int(70)]),
        );
        // Pollute the timestamp *attribute*.
        st.tuple.replace(0, Value::Timestamp(Timestamp(0)));
        assert_eq!(st.tau, tau, "replicated event time must not change");
        assert_eq!(st.ts_attribute(&s).unwrap(), Some(Timestamp(0)));
    }

    #[test]
    fn arrival_starts_at_tau_and_can_be_delayed() {
        let tau = Timestamp(1_000);
        let mut st = StampedTuple::new(1, tau, Tuple::new(vec![Value::Int(1)]));
        assert_eq!(st.arrival, tau);
        st.arrival = tau + crate::time::Duration::from_hours(1);
        assert_eq!(st.tau, tau, "tau is immutable ground truth");
        assert!(st.arrival > st.tau);
    }

    #[test]
    fn ts_attribute_null_and_missing_schema() {
        let s = schema();
        let st = StampedTuple::new(
            1,
            Timestamp(5),
            Tuple::new(vec![Value::Null, Value::Int(1)]),
        );
        assert_eq!(st.ts_attribute(&s).unwrap(), None);
        let no_ts = Schema::from_pairs([("x", DataType::Int)]).unwrap();
        let st2 = StampedTuple::new(1, Timestamp(5), Tuple::new(vec![Value::Int(1)]));
        assert!(st2.ts_attribute(&no_ts).is_err());
    }

    #[test]
    fn into_values_and_from() {
        let t: Tuple = vec![Value::Int(1)].into();
        assert_eq!(t.into_values(), vec![Value::Int(1)]);
    }

    #[test]
    fn wide_tuples_spill_past_the_inline_capacity() {
        // Up to 4 values live inline; wider tuples behave identically
        // through the same API.
        let values: Vec<Value> = (0..7).map(Value::Int).collect();
        let mut wide = Tuple::new(values.clone());
        assert_eq!(wide.len(), 7);
        assert_eq!(wide.get(6), Some(&Value::Int(6)));
        assert_eq!(wide.replace(6, Value::Null), Value::Int(6));
        *wide.get_mut(0).unwrap() = Value::Int(-1);
        assert_eq!(wide.values()[0], Value::Int(-1));
        let narrow = Tuple::new(values[..3].to_vec());
        assert_eq!(narrow.clone().into_values(), values[..3].to_vec());
        assert_ne!(narrow, Tuple::new(values[..2].to_vec()));
    }

    #[test]
    fn inline_and_spilled_tuples_share_one_serde_format() {
        // The inline storage must serialize exactly like a Vec<Value>.
        for n in [0usize, 1, 4, 5, 9] {
            let t = Tuple::new((0..n as i64).map(Value::Int).collect());
            let json = serde_json::to_string(&t).unwrap();
            let values_json =
                serde_json::to_string(&(0..n as i64).map(Value::Int).collect::<Vec<_>>()).unwrap();
            assert_eq!(json, format!("{{\"values\":{values_json}}}"));
            let back: Tuple = serde_json::from_str(&json).unwrap();
            assert_eq!(back, t);
        }
    }

    #[test]
    fn stamped_display() {
        let st = StampedTuple::new(3, Timestamp(0), Tuple::new(vec![Value::Int(9)]));
        assert_eq!(st.to_string(), "#3 @1970-01-01 00:00:00 (9)");
    }
}
