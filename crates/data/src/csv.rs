//! Minimal CSV reader/writer, from scratch (RFC 4180 quoting).
//!
//! Icewafl's Fig. 2 pipeline reads batch input and persists clean and
//! dirty streams; this module provides that I/O for [`Tuple`]s under a
//! [`Schema`].

use icewafl_types::{Error, Result, Schema, Tuple, Value};
use std::io::{BufRead, Write};

/// Serializes one field with RFC 4180 quoting when needed.
pub(crate) fn write_field(out: &mut String, field: &str) {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Writes a header plus one line per tuple.
pub fn write_csv(w: &mut impl Write, schema: &Schema, tuples: &[Tuple]) -> Result<()> {
    let mut line = String::new();
    for (i, f) in schema.fields().iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        write_field(&mut line, &f.name);
    }
    line.push('\n');
    w.write_all(line.as_bytes())?;
    for t in tuples {
        line.clear();
        for (i, v) in t.values().iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            write_field(&mut line, &v.to_string());
        }
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    Ok(())
}

/// Splits one CSV record, honoring quotes. Returns an error on an
/// unterminated quote.
fn split_record(line: &str) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut field)),
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(Error::parse(line, "CSV record (unterminated quote)"));
    }
    fields.push(field);
    Ok(fields)
}

/// Checks a header line against the schema's attribute names, in
/// order.
pub(crate) fn validate_header(header_line: &str, schema: &Schema) -> Result<()> {
    let header = split_record(header_line)?;
    let expected: Vec<&str> = schema.fields().iter().map(|f| f.name.as_str()).collect();
    if header != expected {
        return Err(Error::SchemaMismatch {
            detail: format!("CSV header {header:?} does not match schema {expected:?}"),
        });
    }
    Ok(())
}

/// Parses one data record against the schema.
pub(crate) fn parse_record(line: &str, schema: &Schema) -> Result<Tuple> {
    let fields = split_record(line)?;
    if fields.len() != schema.len() {
        return Err(Error::SchemaMismatch {
            detail: format!(
                "CSV row has {} fields, schema has {}",
                fields.len(),
                schema.len()
            ),
        });
    }
    let values: Result<Vec<Value>> = fields
        .iter()
        .zip(schema.fields())
        .map(|(raw, f)| Value::parse(raw, f.dtype))
        .collect();
    Ok(Tuple::new(values?))
}

/// Reads a CSV with a header line, parsing fields per the schema's
/// types. The header must name exactly the schema's attributes, in
/// order.
pub fn read_csv(r: &mut impl BufRead, schema: &Schema) -> Result<Vec<Tuple>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(Error::parse("", "CSV header"));
    }
    validate_header(line.trim_end_matches(['\n', '\r']), schema)?;
    let mut tuples = Vec::new();
    let mut row = 0usize;
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }
        row += 1;
        tuples.push(parse_record(trimmed, schema).map_err(|e| match e {
            // Shape errors name the offending row; parse errors already
            // echo the offending input verbatim.
            Error::SchemaMismatch { detail } => Error::SchemaMismatch {
                detail: format!("CSV row {row}: {detail}"),
            },
            other => other,
        })?);
    }
    Ok(tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icewafl_types::{DataType, Timestamp};
    use std::io::Cursor;

    fn schema() -> Schema {
        Schema::from_pairs([
            ("Time", DataType::Timestamp),
            ("x", DataType::Float),
            ("label", DataType::Str),
        ])
        .unwrap()
    }

    fn sample() -> Vec<Tuple> {
        vec![
            Tuple::new(vec![
                Value::Timestamp(Timestamp::from_ymd(2016, 2, 27).unwrap()),
                Value::Float(1.5),
                Value::Str("plain".into()),
            ]),
            Tuple::new(vec![
                Value::Timestamp(Timestamp::from_ymd(2016, 2, 28).unwrap()),
                Value::Null,
                Value::Str("with,comma and \"quotes\"".into()),
            ]),
        ]
    }

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &schema(), &sample()).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("Time,x,label\n"));
        assert!(text.contains(r#""with,comma and ""quotes""""#));
        let back = read_csv(&mut Cursor::new(buf), &schema()).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn null_round_trips_as_empty_field() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &schema(), &sample()).unwrap();
        let back = read_csv(&mut Cursor::new(buf), &schema()).unwrap();
        assert!(back[1].get(1).unwrap().is_null());
    }

    #[test]
    fn rejects_wrong_header() {
        let data = "a,b,c\n";
        assert!(read_csv(&mut Cursor::new(data.as_bytes()), &schema()).is_err());
    }

    #[test]
    fn rejects_wrong_arity() {
        let data = "Time,x,label\n2016-02-27 00:00:00,1.5\n";
        assert!(read_csv(&mut Cursor::new(data.as_bytes()), &schema()).is_err());
    }

    #[test]
    fn shape_errors_name_the_offending_row() {
        let data = "Time,x,label\n\
            2016-02-27 00:00:00,1.5,ok\n\
            2016-02-27 01:00:00,2.5\n";
        let err = read_csv(&mut Cursor::new(data.as_bytes()), &schema()).unwrap_err();
        assert!(
            err.to_string().contains("CSV row 2"),
            "error locates the bad row: {err}"
        );
    }

    #[test]
    fn rejects_unterminated_quote() {
        let data = "Time,x,label\n2016-02-27 00:00:00,1.5,\"broken\n";
        assert!(read_csv(&mut Cursor::new(data.as_bytes()), &schema()).is_err());
    }

    #[test]
    fn rejects_unparseable_value() {
        let data = "Time,x,label\n2016-02-27 00:00:00,not-a-number,ok\n";
        assert!(read_csv(&mut Cursor::new(data.as_bytes()), &schema()).is_err());
    }

    #[test]
    fn skips_blank_lines_and_handles_crlf() {
        let data = "Time,x,label\r\n2016-02-27 00:00:00,1.5,ok\r\n\r\n";
        let back = read_csv(&mut Cursor::new(data.as_bytes()), &schema()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].get(2).unwrap().as_str().unwrap(), "ok");
    }

    #[test]
    fn empty_file_errors() {
        assert!(read_csv(&mut Cursor::new(&b""[..]), &schema()).is_err());
    }
}
