//! Missing-value imputation.
//!
//! §3.2.1: "we imputed missing values for each region in the NO2
//! attribute using the forward/backward fill method `ffill` of Python
//! Pandas".

use icewafl_types::{Result, Schema, Tuple, Value};

/// Forward fill: replaces each NULL in `column` with the last non-NULL
/// value before it. Leading NULLs stay NULL (use [`bfill`] after).
pub fn ffill(schema: &Schema, tuples: &mut [Tuple], column: &str) -> Result<usize> {
    let idx = schema.require(column)?;
    let mut last: Option<Value> = None;
    let mut filled = 0;
    for t in tuples.iter_mut() {
        let v = t.get_mut(idx).expect("index validated against schema");
        if v.is_null() {
            if let Some(fill) = &last {
                v.clone_from(fill);
                filled += 1;
            }
        } else {
            last = Some(v.clone());
        }
    }
    Ok(filled)
}

/// Backward fill: replaces each NULL in `column` with the next non-NULL
/// value after it. Trailing NULLs stay NULL.
pub fn bfill(schema: &Schema, tuples: &mut [Tuple], column: &str) -> Result<usize> {
    let idx = schema.require(column)?;
    let mut next: Option<Value> = None;
    let mut filled = 0;
    for t in tuples.iter_mut().rev() {
        let v = t.get_mut(idx).expect("index validated against schema");
        if v.is_null() {
            if let Some(fill) = &next {
                v.clone_from(fill);
                filled += 1;
            }
        } else {
            next = Some(v.clone());
        }
    }
    Ok(filled)
}

/// Pandas-style `ffill` then `bfill`: every NULL is filled as long as
/// the column has at least one non-NULL value.
pub fn ffill_bfill(schema: &Schema, tuples: &mut [Tuple], column: &str) -> Result<usize> {
    let a = ffill(schema, tuples, column)?;
    let b = bfill(schema, tuples, column)?;
    Ok(a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icewafl_types::DataType;

    fn schema() -> Schema {
        Schema::from_pairs([("x", DataType::Float)]).unwrap()
    }

    fn col(tuples: &[Tuple]) -> Vec<Option<f64>> {
        tuples.iter().map(|t| t.get(0).unwrap().as_f64()).collect()
    }

    fn mk(values: &[Option<f64>]) -> Vec<Tuple> {
        values
            .iter()
            .map(|v| Tuple::new(vec![v.map_or(Value::Null, Value::Float)]))
            .collect()
    }

    #[test]
    fn ffill_carries_forward() {
        let mut t = mk(&[Some(1.0), None, None, Some(4.0), None]);
        let filled = ffill(&schema(), &mut t, "x").unwrap();
        assert_eq!(filled, 3);
        assert_eq!(
            col(&t),
            vec![Some(1.0), Some(1.0), Some(1.0), Some(4.0), Some(4.0)]
        );
    }

    #[test]
    fn ffill_leaves_leading_nulls() {
        let mut t = mk(&[None, None, Some(2.0)]);
        let filled = ffill(&schema(), &mut t, "x").unwrap();
        assert_eq!(filled, 0);
        assert_eq!(col(&t), vec![None, None, Some(2.0)]);
    }

    #[test]
    fn bfill_carries_backward() {
        let mut t = mk(&[None, Some(2.0), None]);
        let filled = bfill(&schema(), &mut t, "x").unwrap();
        assert_eq!(filled, 1);
        assert_eq!(col(&t), vec![Some(2.0), Some(2.0), None]);
    }

    #[test]
    fn ffill_bfill_fills_everything() {
        let mut t = mk(&[None, None, Some(3.0), None, Some(5.0), None]);
        let filled = ffill_bfill(&schema(), &mut t, "x").unwrap();
        assert_eq!(filled, 4);
        assert_eq!(
            col(&t),
            vec![
                Some(3.0),
                Some(3.0),
                Some(3.0),
                Some(3.0),
                Some(5.0),
                Some(5.0)
            ]
        );
    }

    #[test]
    fn all_null_column_stays_null() {
        let mut t = mk(&[None, None]);
        let filled = ffill_bfill(&schema(), &mut t, "x").unwrap();
        assert_eq!(filled, 0);
        assert_eq!(col(&t), vec![None, None]);
    }

    #[test]
    fn unknown_column_errors() {
        let mut t = mk(&[Some(1.0)]);
        assert!(ffill(&schema(), &mut t, "nope").is_err());
    }
}
