//! # icewafl-data
//!
//! Dataset substrate of the Icewafl reproduction: synthetic stand-ins
//! for the paper's two evaluation datasets, plus CSV I/O and
//! missing-value imputation.
//!
//! * [`wearable`] — the PLOS-Biology wearable-device stream (experiment
//!   1): 1059 tuples at 15-minute cadence over 264.75 h, calibrated so
//!   every count the paper reports (1056 post-update tuples, 88 tuples
//!   in the bad-network window, ≈ 33 high-BPM tuples, ≈ 374 moving
//!   tuples, ≈ 960 high-precision calories values, 2 pre-existing
//!   anomalies) holds;
//! * [`airquality`] — the UCI Beijing Multi-Site Air-Quality dataset
//!   (experiment 2): 12 stations × 35,064 hourly tuples with seasonal /
//!   daily / weather structure in the NO2 target;
//! * [`csv`] — RFC 4180 reader/writer (from scratch), with lazy
//!   streaming [`Source`](icewafl_stream::Source)/[`Sink`](icewafl_stream::Sink)
//!   adapters in [`stream_io`];
//! * [`impute`] — pandas-style `ffill`/`bfill`, as used in §3.2.1.

#![warn(missing_docs)]

pub mod airquality;
pub mod csv;
pub mod impute;
pub mod stream_io;
pub mod wearable;

pub use csv::{read_csv, write_csv};
pub use impute::{bfill, ffill, ffill_bfill};
pub use stream_io::{CsvTupleSink, CsvTupleSource};

#[cfg(test)]
mod proptests {
    use super::*;
    use icewafl_types::{DataType, Schema, Tuple, Value};
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::from_pairs([("x", DataType::Float), ("s", DataType::Str)]).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// CSV write→read is the identity for arbitrary float/string
        /// tuples (including quoting-hostile strings). The only lossy
        /// case is inherent to CSV: an empty string field reads back as
        /// NULL.
        #[test]
        fn csv_round_trip(
            rows in proptest::collection::vec(
                (proptest::option::of(-1e9f64..1e9), "[ -~]{0,20}"),
                0..30,
            )
        ) {
            let tuples: Vec<Tuple> = rows
                .iter()
                .map(|(x, s)| {
                    Tuple::new(vec![
                        x.map_or(Value::Null, Value::Float),
                        Value::Str(s.trim().to_string()),
                    ])
                })
                .collect();
            let expected: Vec<Tuple> = tuples
                .iter()
                .map(|t| {
                    let mut vals = t.values().to_vec();
                    if vals[1].as_str().is_some_and(str::is_empty)
                        || vals[1].as_str() == Some("NA")
                        || vals[1].as_str() == Some("null")
                        || vals[1].as_str() == Some("NULL")
                        || vals[1].as_str() == Some("NaN")
                    {
                        vals[1] = Value::Null;
                    }
                    Tuple::new(vals)
                })
                .collect();
            let mut buf = Vec::new();
            csv::write_csv(&mut buf, &schema(), &tuples).unwrap();
            let back = csv::read_csv(&mut std::io::Cursor::new(buf), &schema()).unwrap();
            prop_assert_eq!(back, expected);
        }

        /// After ffill+bfill, a column with at least one value has no
        /// NULLs left, and non-NULL values are never modified.
        #[test]
        fn imputation_completeness(
            values in proptest::collection::vec(proptest::option::of(-1e6f64..1e6), 1..100)
        ) {
            let s = Schema::from_pairs([("x", DataType::Float)]).unwrap();
            let mut tuples: Vec<Tuple> = values
                .iter()
                .map(|v| Tuple::new(vec![v.map_or(Value::Null, Value::Float)]))
                .collect();
            impute::ffill_bfill(&s, &mut tuples, "x").unwrap();
            let any_value = values.iter().any(Option::is_some);
            for (orig, t) in values.iter().zip(&tuples) {
                let now = t.get(0).unwrap().as_f64();
                match orig {
                    Some(v) => prop_assert_eq!(now, Some(*v), "non-NULLs untouched"),
                    None => prop_assert_eq!(now.is_some(), any_value),
                }
            }
        }
    }
}
