//! Streaming CSV I/O: lazy [`Source`]/[`Sink`] adapters so a pollution
//! job can read and persist streams without materializing them first —
//! the input/output edges of the paper's Fig. 2 pipeline.

use crate::csv;
use icewafl_stream::{Sink, Source};
use icewafl_types::{Result, Schema, Tuple, Value};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Lazily parses tuples from CSV. The header is validated at
/// construction; malformed data rows are counted and skipped (dirty
/// inputs are this library's business, after all) — check
/// [`CsvTupleSource::bad_rows_handle`] after the run.
pub struct CsvTupleSource<R> {
    reader: R,
    schema: Schema,
    line: String,
    bad_rows: Arc<AtomicUsize>,
}

impl<R: BufRead + Send> CsvTupleSource<R> {
    /// Opens a source over `reader`, validating the header against the
    /// schema.
    pub fn new(mut reader: R, schema: Schema) -> Result<Self> {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(icewafl_types::Error::parse("", "CSV header"));
        }
        csv::validate_header(header.trim_end_matches(['\n', '\r']), &schema)?;
        Ok(CsvTupleSource {
            reader,
            schema,
            line: String::new(),
            bad_rows: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// A shared counter of skipped malformed rows, usable after the
    /// source has been consumed by a pipeline.
    pub fn bad_rows_handle(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.bad_rows)
    }
}

impl<R: BufRead + Send> Source<Tuple> for CsvTupleSource<R> {
    fn next(&mut self) -> Option<Tuple> {
        loop {
            self.line.clear();
            match self.reader.read_line(&mut self.line) {
                Ok(0) => return None,
                Ok(_) => {}
                // An I/O error is not a dirty row — ending the stream
                // here would silently truncate it. Poison the pipeline
                // instead: the panic is caught by the stage harness and
                // surfaced as a typed `Error::Pipeline` naming the
                // source.
                Err(e) => panic!("CSV source I/O error: {e}"),
            }
            let trimmed = self.line.trim_end_matches(['\n', '\r']);
            if trimmed.is_empty() {
                continue;
            }
            match csv::parse_record(trimmed, &self.schema) {
                Ok(tuple) => return Some(tuple),
                Err(_) => {
                    self.bad_rows.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
        }
    }
}

/// Writes tuples as CSV, emitting the header up front.
pub struct CsvTupleSink<W> {
    writer: W,
    schema: Schema,
    line: String,
    wrote_header: bool,
}

impl<W: Write + Send> CsvTupleSink<W> {
    /// Creates a sink; the header is written before the first record.
    pub fn new(writer: W, schema: Schema) -> Self {
        CsvTupleSink {
            writer,
            schema,
            line: String::new(),
            wrote_header: false,
        }
    }

    fn write_header(&mut self) {
        self.line.clear();
        for (i, f) in self.schema.fields().iter().enumerate() {
            if i > 0 {
                self.line.push(',');
            }
            csv::write_field(&mut self.line, &f.name);
        }
        self.line.push('\n');
        if let Err(e) = self.writer.write_all(self.line.as_bytes()) {
            panic!("CSV sink I/O error writing header: {e}");
        }
        self.wrote_header = true;
    }
}

impl<W: Write + Send> Sink<Tuple> for CsvTupleSink<W> {
    fn write(&mut self, record: Tuple) {
        if !self.wrote_header {
            self.write_header();
        }
        self.line.clear();
        for (i, v) in record.values().iter().enumerate() {
            if i > 0 {
                self.line.push(',');
            }
            match v {
                Value::Null => {}
                v => csv::write_field(&mut self.line, &v.to_string()),
            }
        }
        self.line.push('\n');
        // A swallowed write error would truncate the dirty stream with a
        // success exit code; panic instead — the sink stage catches it
        // and fails the run with a typed error.
        if let Err(e) = self.writer.write_all(self.line.as_bytes()) {
            panic!("CSV sink I/O error: {e}");
        }
    }

    fn finish(&mut self) {
        if !self.wrote_header {
            self.write_header();
        }
        if let Err(e) = self.writer.flush() {
            panic!("CSV sink I/O error on flush: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icewafl_stream::prelude::*;
    use icewafl_types::{DataType, Timestamp};
    use std::io::Cursor;
    use std::sync::Mutex;

    fn schema() -> Schema {
        Schema::from_pairs([("Time", DataType::Timestamp), ("x", DataType::Float)]).unwrap()
    }

    const CSV: &str = "Time,x\n\
        2016-02-27 00:00:00,1.5\n\
        2016-02-27 01:00:00,\n\
        2016-02-27 02:00:00,3.5\n";

    #[test]
    fn source_streams_tuples_lazily() {
        let src = CsvTupleSource::new(Cursor::new(CSV.as_bytes()), schema()).unwrap();
        let out = DataStream::from_source(src, WatermarkStrategy::none())
            .collect()
            .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].get(1).unwrap(), &Value::Float(1.5));
        assert!(out[1].get(1).unwrap().is_null());
    }

    #[test]
    fn source_skips_malformed_rows_and_counts_them() {
        let csv = "Time,x\nnot-a-date,oops\n2016-02-27 00:00:00,2.0\nbad,row,extra\n";
        let src = CsvTupleSource::new(Cursor::new(csv.as_bytes()), schema()).unwrap();
        let bad = src.bad_rows_handle();
        let out = DataStream::from_source(src, WatermarkStrategy::none())
            .collect()
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(bad.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn source_rejects_wrong_header() {
        assert!(CsvTupleSource::new(Cursor::new(&b"a,b\n"[..]), schema()).is_err());
        assert!(CsvTupleSource::new(Cursor::new(&b""[..]), schema()).is_err());
    }

    /// A Write impl sharing its buffer so the test can inspect it after
    /// the sink was consumed by the pipeline.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn sink_round_trips_through_a_pipeline() {
        let buf = SharedBuf::default();
        let src = CsvTupleSource::new(Cursor::new(CSV.as_bytes()), schema()).unwrap();
        DataStream::from_source(src, WatermarkStrategy::none())
            .execute_into(CsvTupleSink::new(buf.clone(), schema()))
            .unwrap();
        let written = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(written, CSV);
    }

    #[test]
    fn empty_stream_still_writes_header() {
        let buf = SharedBuf::default();
        DataStream::from_vec(Vec::<Tuple>::new())
            .execute_into(CsvTupleSink::new(buf.clone(), schema()))
            .unwrap();
        let written = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(written, "Time,x\n");
    }

    #[test]
    fn source_to_sink_with_transformation() {
        let buf = SharedBuf::default();
        let src = CsvTupleSource::new(Cursor::new(CSV.as_bytes()), schema()).unwrap();
        DataStream::from_source(src, WatermarkStrategy::none())
            .map(|mut t: Tuple| {
                if let Some(x) = t.get(1).and_then(Value::as_f64) {
                    t.replace(1, Value::Float(x * 2.0));
                }
                t
            })
            .execute_into(CsvTupleSink::new(buf.clone(), schema()))
            .unwrap();
        let written = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(written.contains(",3\n"), "1.5 doubled: {written}");
        assert!(written.contains(",7\n"), "3.5 doubled: {written}");
    }

    /// A writer that fails every write (a full disk, a closed pipe).
    struct FailingWriter;
    impl Write for FailingWriter {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk full"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn sink_io_error_poisons_the_pipeline_with_a_typed_failure() {
        let tuples = vec![Tuple::new(vec![
            Value::Timestamp(Timestamp(0)),
            Value::Float(1.0),
        ])];
        let err = DataStream::from_vec(tuples)
            .execute_into(CsvTupleSink::new(FailingWriter, schema()))
            .unwrap_err();
        assert_eq!(err.stage(), "sink");
        assert!(
            err.error.message.contains("CSV sink I/O error"),
            "typed failure carries the I/O detail: {err}"
        );
    }

    /// A reader that serves some valid CSV, then fails mid-stream.
    struct FailingReader;
    impl std::io::Read for FailingReader {
        fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("connection reset"))
        }
    }

    #[test]
    fn source_io_error_poisons_the_pipeline_instead_of_truncating() {
        let head = "Time,x\n2016-02-27 00:00:00,1.5\n";
        let reader =
            std::io::BufReader::new(std::io::Read::chain(Cursor::new(head), FailingReader));
        let src = CsvTupleSource::new(reader, schema()).unwrap();
        let err = DataStream::from_source(src, WatermarkStrategy::none())
            .collect()
            .unwrap_err();
        assert!(
            err.error.message.contains("CSV source I/O error"),
            "mid-stream I/O failure is a typed error, not a short read: {err}"
        );
    }

    #[test]
    fn round_trip_with_quoted_strings() {
        let s = Schema::from_pairs([("Time", DataType::Timestamp), ("s", DataType::Str)]).unwrap();
        let tuples = vec![Tuple::new(vec![
            Value::Timestamp(Timestamp(0)),
            Value::Str("a,\"b\"".into()),
        ])];
        let buf = SharedBuf::default();
        DataStream::from_vec(tuples.clone())
            .execute_into(CsvTupleSink::new(buf.clone(), s.clone()))
            .unwrap();
        let written = buf.0.lock().unwrap().clone();
        let src = CsvTupleSource::new(Cursor::new(written), s).unwrap();
        let back = DataStream::from_source(src, WatermarkStrategy::none())
            .collect()
            .unwrap();
        assert_eq!(back, tuples);
    }
}
