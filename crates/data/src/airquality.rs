//! Synthetic Beijing-style multi-site air-quality dataset.
//!
//! Substitute for the UCI Beijing Multi-Site Air-Quality dataset used in
//! experiment 2 (§3.2): hourly measurements from 12 monitoring sites,
//! 2013-03-01 00:00 through 2017-02-28 23:00 — exactly **35,064 tuples
//! per site** (1461 days × 24 h, 2016 being a leap year), matching the
//! paper's per-region count.
//!
//! The NO2 target carries the structure the forecasting experiment
//! needs: an annual cycle (higher in winter), a daily double-peak
//! (rush hours), dependence on wind speed (dispersion) and temperature,
//! and AR(1) noise — so auto-regressive models work, exogenous weather
//! attributes genuinely help (ARIMAX), and pollution of the numeric
//! attributes degrades forecasts the way Figures 6 and 7 show.
//! A small fraction of NO2 readings is missing (NULL), which the
//! experiment pipeline imputes with forward fill exactly as the paper
//! does.

use icewafl_types::{DataType, Duration, Schema, Timestamp, Tuple, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Distribution, Normal};
use std::f64::consts::PI;

/// The 12 monitoring sites of the original dataset.
pub const STATIONS: [&str; 12] = [
    "Aotizhongxin",
    "Changping",
    "Dingling",
    "Dongsi",
    "Guanyuan",
    "Gucheng",
    "Huairou",
    "Nongzhanguan",
    "Shunyi",
    "Tiantan",
    "Wanliu",
    "Wanshouxigong",
];

/// Hourly tuples per station (4 years, one leap year).
pub const TUPLES_PER_STATION: usize = 35_064;

/// The stream schema (one stream per station).
pub fn schema() -> Schema {
    Schema::from_pairs([
        ("Time", DataType::Timestamp),
        ("station", DataType::Str),
        ("NO2", DataType::Float),
        ("PM25", DataType::Float),
        ("PM10", DataType::Float),
        ("SO2", DataType::Float),
        ("CO", DataType::Float),
        ("O3", DataType::Float),
        ("TEMP", DataType::Float),
        ("PRES", DataType::Float),
        ("DEWP", DataType::Float),
        ("RAIN", DataType::Float),
        ("WSPM", DataType::Float),
        ("wd", DataType::Str),
    ])
    .expect("static schema is valid")
}

/// First timestamp: 2013-03-01 00:00.
pub fn stream_start() -> Timestamp {
    Timestamp::from_ymd(2013, 3, 1).expect("valid date")
}

const WIND_DIRECTIONS: [&str; 8] = ["N", "NE", "E", "SE", "S", "SW", "W", "NW"];

/// Deterministic per-station offsets (derived from the station name) so
/// the 12 regions differ but reproducibly so.
fn station_profile(station: &str) -> (f64, f64) {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in station.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // NO2 base offset in [−8, 8], urban-ness factor in [0.8, 1.2].
    let base = ((h % 1000) as f64 / 1000.0 - 0.5) * 16.0;
    let urban = 0.8 + ((h >> 10) % 1000) as f64 / 1000.0 * 0.4;
    (base, urban)
}

/// Generates the full stream of one station with the default seed.
pub fn generate_station(station: &str) -> Vec<Tuple> {
    generate_station_seeded(station, 2013, TUPLES_PER_STATION)
}

/// Generates `n` hourly tuples for a station from an explicit seed.
pub fn generate_station_seeded(station: &str, seed: u64, n: usize) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(seed ^ station_profile(station).0.to_bits());
    let noise = Normal::new(0.0, 1.0).expect("valid sigma");
    let (no2_base, urban) = station_profile(station);
    let start = stream_start();
    let mut tuples = Vec::with_capacity(n);
    // AR(1) states.
    let mut temp_ar = 0.0f64;
    let mut no2_ar = 0.0f64;
    let mut wind_ar = 0.0f64;
    for i in 0..n {
        let ts = start + Duration::from_hours(i as i64);
        let hour = ts.fractional_hour_of_day();
        let day_of_year = (i / 24) % 365;
        let annual = 2.0 * PI * day_of_year as f64 / 365.0;
        // Temperature: annual cycle (−3 °C Jan, 27 °C Jul around 12)
        // plus daily cycle plus slow AR(1) weather.
        temp_ar = 0.95 * temp_ar + noise.sample(&mut rng) * 1.2;
        // The stream starts in March (doy 0 ≈ March 1): shift so the
        // annual minimum falls in January.
        let season = -(annual + 2.0 * PI * 59.0 / 365.0).cos();
        let temp = 12.0 + 15.0 * season + 4.0 * ((hour - 14.0) * PI / 12.0).cos() + temp_ar;
        // Wind speed: AR(1), non-negative.
        wind_ar = 0.85 * wind_ar + noise.sample(&mut rng) * 0.6;
        let wspm = (1.8 + wind_ar).max(0.0);
        // NO2: winter-high annual cycle, rush-hour double peak,
        // dispersed by wind, plus AR(1).
        no2_ar = 0.88 * no2_ar + noise.sample(&mut rng) * 4.0;
        let rush = 8.0 * (-((hour - 8.0) / 2.5).powi(2)).exp()
            + 10.0 * (-((hour - 19.0) / 3.0).powi(2)).exp();
        let winter = 14.0 * (0.5 - 0.5 * season); // high when season low
        let no2 =
            (urban * (32.0 + no2_base + winter + rush) - 4.0 * wspm + no2_ar).clamp(1.0, 280.0);
        // Correlated co-pollutants.
        let pm25 = (no2 * 1.6 + noise.sample(&mut rng) * 12.0).clamp(1.0, 600.0);
        let pm10 = (pm25 * 1.3 + noise.sample(&mut rng) * 15.0).clamp(1.0, 800.0);
        let so2 = (no2 * 0.35 + noise.sample(&mut rng) * 4.0).clamp(0.5, 300.0);
        let co = (no2 * 22.0 + noise.sample(&mut rng) * 120.0).clamp(100.0, 8000.0);
        // Ozone: anti-correlated with NO2, sun-driven.
        let o3 = (90.0 - no2 * 0.5
            + 30.0 * ((hour - 14.0) * PI / 12.0).cos()
            + noise.sample(&mut rng) * 8.0)
            .clamp(1.0, 300.0);
        let pres = 1013.0 - temp * 0.6 + noise.sample(&mut rng) * 2.0;
        let dewp = temp - rng.random_range(2.0..12.0);
        let rain = if rng.random_bool(0.06) {
            rng.random_range(0.1..8.0)
        } else {
            0.0
        };
        let wd = WIND_DIRECTIONS[rng.random_range(0..WIND_DIRECTIONS.len())];
        // ~1.5 % of NO2 readings are missing, as in the real dataset.
        let no2_value = if rng.random_bool(0.015) {
            Value::Null
        } else {
            Value::Float(no2)
        };
        tuples.push(Tuple::new(vec![
            Value::Timestamp(ts),
            Value::Str(station.to_string()),
            no2_value,
            Value::Float(pm25),
            Value::Float(pm10),
            Value::Float(so2),
            Value::Float(co),
            Value::Float(o3),
            Value::Float(temp),
            Value::Float(pres),
            Value::Float(dewp),
            Value::Float(rain),
            Value::Float(wspm),
            Value::Str(wd.to_string()),
        ]));
    }
    tuples
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(t: &Tuple, idx: usize) -> Option<f64> {
        t.get(idx).unwrap().as_f64()
    }

    #[test]
    fn per_station_count_matches_paper() {
        // Verify the arithmetic rather than generating 35k tuples here:
        // 2013-03-01 .. 2017-02-28 inclusive.
        let start = stream_start();
        let end = Timestamp::from_ymd_hms(2017, 2, 28, 23, 0, 0).unwrap();
        let hours = end.hours_since(start) as usize + 1;
        assert_eq!(hours, TUPLES_PER_STATION);
        assert_eq!(TUPLES_PER_STATION, 35_064);
    }

    #[test]
    fn full_generation_shape() {
        let data = generate_station_seeded("Wanshouxigong", 1, 2000);
        assert_eq!(data.len(), 2000);
        let s = schema();
        for t in data.iter().take(100) {
            s.validate(t).unwrap();
        }
        // Hourly cadence.
        let t0 = data[0].get(0).unwrap().as_timestamp().unwrap();
        let t1 = data[1].get(0).unwrap().as_timestamp().unwrap();
        assert_eq!(t1 - t0, Duration::from_hours(1));
    }

    #[test]
    fn no2_has_daily_structure() {
        // Rush hours (19:00) must average clearly above pre-dawn (04:00)
        // over many days.
        let data = generate_station_seeded("Gucheng", 7, 24 * 200);
        let mean_at = |h: u32| {
            let vals: Vec<f64> = data
                .iter()
                .filter(|t| t.get(0).unwrap().as_timestamp().unwrap().hour_of_day() == h)
                .filter_map(|t| f(t, 2))
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(
            mean_at(19) > mean_at(4) + 4.0,
            "rush {} vs dawn {}",
            mean_at(19),
            mean_at(4)
        );
    }

    #[test]
    fn no2_has_annual_structure() {
        let data = generate_station_seeded("Wanliu", 7, 24 * 730);
        let mean_month = |m: u32| {
            let vals: Vec<f64> = data
                .iter()
                .filter(|t| t.get(0).unwrap().as_timestamp().unwrap().month() == m)
                .filter_map(|t| f(t, 2))
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(
            mean_month(1) > mean_month(7) + 5.0,
            "winter NO2 above summer"
        );
    }

    #[test]
    fn temperature_annual_cycle() {
        let data = generate_station_seeded("Dongsi", 3, 24 * 730);
        let mean_month = |m: u32| {
            let vals: Vec<f64> = data
                .iter()
                .filter(|t| t.get(0).unwrap().as_timestamp().unwrap().month() == m)
                .filter_map(|t| f(t, 8))
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(
            mean_month(7) > mean_month(1) + 15.0,
            "July warmer than January"
        );
    }

    #[test]
    fn wind_disperses_no2() {
        // Correlation between WSPM and NO2 must be negative.
        let data = generate_station_seeded("Shunyi", 5, 24 * 100);
        let pairs: Vec<(f64, f64)> = data
            .iter()
            .filter_map(|t| Some((f(t, 12)?, f(t, 2)?)))
            .collect();
        let n = pairs.len() as f64;
        let mean_w = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let mean_n = pairs.iter().map(|p| p.1).sum::<f64>() / n;
        let cov: f64 = pairs
            .iter()
            .map(|p| (p.0 - mean_w) * (p.1 - mean_n))
            .sum::<f64>()
            / n;
        assert!(cov < 0.0, "wind/NO2 covariance {cov} must be negative");
    }

    #[test]
    fn stations_differ_but_reproducibly() {
        let a = generate_station_seeded("Gucheng", 1, 100);
        let b = generate_station_seeded("Wanliu", 1, 100);
        assert_ne!(a, b, "stations have different profiles");
        assert_eq!(a, generate_station_seeded("Gucheng", 1, 100));
    }

    #[test]
    fn some_no2_values_missing() {
        let data = generate_station_seeded("Tiantan", 9, 10_000);
        let nulls = data.iter().filter(|t| t.get(2).unwrap().is_null()).count();
        // ~1.5% of 10k = 150, allow wide margin.
        assert!((80..=250).contains(&nulls), "nulls {nulls}");
    }

    #[test]
    fn values_within_physical_ranges() {
        let data = generate_station_seeded("Changping", 11, 5_000);
        for t in &data {
            if let Some(no2) = f(t, 2) {
                assert!((1.0..=280.0).contains(&no2));
            }
            let wspm = f(t, 12).unwrap();
            assert!(wspm >= 0.0);
            let temp = f(t, 8).unwrap();
            assert!((-40.0..=50.0).contains(&temp), "temp {temp}");
        }
    }
}
