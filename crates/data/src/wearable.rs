//! Synthetic wearable-device dataset.
//!
//! Substitute for the PLOS-Biology wearable dataset of volunteer
//! `0216-0051-NHC` used in experiment 1 (§3.1): heart rate plus
//! activity data spanning 264.75 hours from 2016-02-26, resampled to
//! the MainTable granularity.
//!
//! The cadence is derived from the paper itself: the bad-network window
//! 13:00–14:59 contains 88 tuples over the 11 full days of the span,
//! i.e. 8 tuples per 2 hours → **one tuple every 15 minutes**, 1059
//! tuples total. The stream starts at 2016-02-26 23:15 so that exactly
//! 1056 tuples fall at/after 2016-02-27 (the software-update gate of
//! §3.1.2).
//!
//! The generator is calibrated so the paper's scenario counts hold
//! approximately:
//!
//! * ≈ 33 of the post-update tuples have `BPM > 100` (exercise bouts);
//! * ≈ 374 post-update tuples have `Distance > 0` (movement);
//! * ≈ 960 post-update tuples have `CaloriesBurned` with ≥ 4 decimal
//!   digits (the remainder are idle tuples with calories exactly 0);
//! * exactly 2 tuples violate the "BPM = 0 ⟹ no activity" rule, the
//!   pre-existing anomalies the paper found in the original data.

use icewafl_types::{DataType, Duration, Schema, Timestamp, Tuple, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Number of tuples in the stream.
pub const TUPLE_COUNT: usize = 1059;

/// Tuple cadence (15 minutes).
pub const CADENCE: Duration = Duration::from_minutes(15);

/// The schema of the wearable stream.
pub fn schema() -> Schema {
    Schema::from_pairs([
        ("Time", DataType::Timestamp),
        ("BPM", DataType::Int),
        ("Steps", DataType::Int),
        ("Distance", DataType::Float),
        ("CaloriesBurned", DataType::Float),
        ("ActiveMinutes", DataType::Int),
    ])
    .expect("static schema is valid")
}

/// The first tuple's timestamp: 2016-02-26 23:15.
pub fn stream_start() -> Timestamp {
    Timestamp::from_ymd_hms(2016, 2, 26, 23, 15, 0).expect("valid date")
}

/// The software-update instant of §3.1.2: 2016-02-27 00:00.
pub fn software_update_time() -> Timestamp {
    Timestamp::from_ymd(2016, 2, 27).expect("valid date")
}

/// Per-interval activity regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Regime {
    /// Tracker not worn: everything zero.
    NotWorn,
    /// Worn, resting (sleep / desk): heart rate low, no movement.
    Resting,
    /// Worn, light movement: some steps, moderate heart rate.
    Light,
    /// Worn, exercising: high heart rate, many steps.
    Exercise,
}

/// Generates the wearable stream with the default calibration seed.
pub fn generate() -> Vec<Tuple> {
    generate_seeded(2016)
}

/// Generates the wearable stream from an explicit seed. The regime
/// schedule is deterministic in the hour of day; only within-regime
/// noise depends on the seed.
pub fn generate_seeded(seed: u64) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bpm_noise: Normal<f64> = Normal::new(0.0, 3.0).expect("valid sigma");
    let start = stream_start();
    let mut tuples = Vec::with_capacity(TUPLE_COUNT);
    // Exercise schedule: one ~45-minute workout (3 intervals) on 11
    // mornings at 07:00–07:45 → 33 high-BPM tuples, all after the
    // software update.
    for i in 0..TUPLE_COUNT {
        let ts = start + Duration::from_millis(CADENCE.millis() * i as i64);
        let hour = ts.fractional_hour_of_day();
        let regime = regime_for(ts, &mut rng);
        let (bpm, steps, active_minutes) = match regime {
            Regime::NotWorn => (0i64, 0i64, 0i64),
            Regime::Resting => {
                let base = if (0.0..6.0).contains(&hour) {
                    54.0
                } else {
                    64.0
                };
                (
                    (base + bpm_noise.sample(&mut rng)).round() as i64,
                    rng.random_range(0..30),
                    0,
                )
            }
            Regime::Light => (
                (78.0 + bpm_noise.sample(&mut rng) * 2.0).round() as i64,
                rng.random_range(150..900),
                rng.random_range(3..12),
            ),
            Regime::Exercise => (
                // Base 120 with σ = 6 keeps every workout tuple above
                // the BPM > 100 gate of §3.1.2 (P(≤100) ≈ 4·10⁻⁴).
                (120.0 + bpm_noise.sample(&mut rng) * 2.0).round() as i64,
                rng.random_range(1200..2200),
                rng.random_range(12..16),
            ),
        };
        // Distance follows steps (stride ≈ 0.75 m), but strolling below
        // 50 steps does not register as distance.
        let distance_km = if steps >= 50 {
            (steps as f64) * 0.00075 * rng.random_range(0.9..1.1)
        } else {
            0.0
        };
        // Calories: zero when not worn; otherwise BMR share plus
        // activity, with full float precision.
        let calories = if regime == Regime::NotWorn {
            0.0
        } else {
            let bmr = 1700.0 / 96.0; // per 15-minute interval
            bmr + steps as f64 * 0.04 + rng.random_range(0.0..1.0)
        };
        tuples.push(Tuple::new(vec![
            Value::Timestamp(ts),
            Value::Int(bpm),
            Value::Int(steps),
            Value::Float(distance_km),
            Value::Float(calories),
            Value::Int(active_minutes),
        ]));
    }
    inject_known_anomalies(&mut tuples);
    tuples
}

/// The regime schedule. Deterministic in the timestamp except for the
/// light-activity coin flips.
fn regime_for(ts: Timestamp, rng: &mut StdRng) -> Regime {
    let hour = ts.fractional_hour_of_day();
    let day = ts.floor_to_day();
    let update = software_update_time();
    // Morning workout: 07:00–07:45 on every full day after the update.
    if day >= update && (7.0..7.75).contains(&hour) {
        return Regime::Exercise;
    }
    // Shower, charging, commute without the tracker: 08:00–10:15 not
    // worn (9 intervals/day × 11 days = 99 post-update zero tuples —
    // this calibrates the CaloriesBurned precision count to the paper's
    // 960/1056, since not-worn calories are exactly 0).
    if (8.0..10.25).contains(&hour) {
        return Regime::NotWorn;
    }
    // Night: resting.
    if !(6.0..23.0).contains(&hour) {
        return Regime::Resting;
    }
    // Daytime: mix of light activity and rest, calibrated so that
    // Distance > 0 holds for ≈ 374 of the 1056 post-update tuples.
    // Daytime spans 17 h/day = 68 intervals; exercise contributes 3
    // moving intervals per day and not-worn removes 9, so light
    // activity fills the remaining 56: (374/11 − 3) / 56 ≈ 0.557.
    if rng.random_bool(0.557) {
        Regime::Light
    } else {
        Regime::Resting
    }
}

/// Plants the two pre-existing "BPM = 0 but activity recorded"
/// violations the paper reports in the original stream (§3.1.2), at
/// fixed post-update positions.
fn inject_known_anomalies(tuples: &mut [Tuple]) {
    for &idx in &[200usize, 700usize] {
        let t = &mut tuples[idx];
        t.replace(1, Value::Int(0)); // BPM = 0 …
        t.replace(2, Value::Int(420)); // … but steps recorded
        t.replace(3, Value::Float(0.3));
        t.replace(5, Value::Int(5));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col_f64(t: &Tuple, idx: usize) -> f64 {
        t.get(idx).unwrap().as_f64().unwrap()
    }

    fn col_ts(t: &Tuple) -> Timestamp {
        t.get(0).unwrap().as_timestamp().unwrap()
    }

    #[test]
    fn has_paper_cadence_and_length() {
        let data = generate();
        assert_eq!(data.len(), TUPLE_COUNT);
        let first = col_ts(&data[0]);
        let second = col_ts(&data[1]);
        assert_eq!(second - first, Duration::from_minutes(15));
        // Span: 1058 intervals of 15 min = 264.5 h elapsed, 264.75 h of
        // coverage.
        let last = col_ts(&data[TUPLE_COUNT - 1]);
        assert!((last.hours_since(first) - 264.5).abs() < 1e-9);
    }

    #[test]
    fn exactly_1056_tuples_after_software_update() {
        let data = generate();
        let update = software_update_time();
        let after = data.iter().filter(|t| col_ts(t) >= update).count();
        assert_eq!(after, 1056, "the §3.1.2 gate must select 1056 tuples");
    }

    #[test]
    fn bad_network_window_contains_88_tuples() {
        let data = generate();
        let in_window = data
            .iter()
            .filter(|t| {
                let h = col_ts(t).hour_of_day();
                (13..15).contains(&h)
            })
            .count();
        assert_eq!(in_window, 88, "the §3.1.3 window must contain 88 tuples");
    }

    #[test]
    fn high_bpm_count_matches_paper_scale() {
        let data = generate();
        let update = software_update_time();
        let high = data
            .iter()
            .filter(|t| col_ts(t) >= update && col_f64(t, 1) > 100.0)
            .count();
        assert_eq!(high, 33, "11 workouts × 3 intervals, paper reports 33");
    }

    #[test]
    fn moving_tuples_match_paper_scale() {
        let data = generate();
        let update = software_update_time();
        let moving = data
            .iter()
            .filter(|t| col_ts(t) >= update && col_f64(t, 3) > 0.0)
            .count();
        // Paper's Distance row in Table 1: 374. Calibrated to within
        // ±10 %.
        assert!((340..=410).contains(&moving), "moving tuples: {moving}");
    }

    #[test]
    fn calories_precision_matches_paper_scale() {
        let data = generate();
        let update = software_update_time();
        let precise = data
            .iter()
            .filter(|t| {
                if col_ts(t) < update {
                    return false;
                }
                let text = t.get(4).unwrap().to_string();
                matches!(text.split_once('.'), Some((_, frac)) if frac.len() > 2)
            })
            .count();
        // Paper's CaloriesBurned row: 960 of 1056 change under rounding
        // to 2 decimals. Not-worn tuples have calories exactly 0:
        // 1056 − 99 = 957 precise values.
        assert!(
            (940..=975).contains(&precise),
            "precise calories: {precise}"
        );
    }

    #[test]
    fn exactly_two_preexisting_violations() {
        let data = generate();
        let violations = data
            .iter()
            .filter(|t| {
                let bpm = col_f64(t, 1);
                let activity = col_f64(t, 2) + col_f64(t, 3) + col_f64(t, 5);
                bpm == 0.0 && activity > 0.0
            })
            .count();
        assert_eq!(violations, 2, "the paper found 2 pre-existing anomalies");
    }

    #[test]
    fn steps_exceed_distance_on_clean_data() {
        // The §3.1.2 unit-error detector relies on Steps ≥ Distance(km)
        // holding in clean data.
        let data = generate();
        for t in &data {
            let steps = col_f64(t, 2);
            let dist = col_f64(t, 3);
            assert!(steps >= dist, "steps {steps} < distance {dist}");
        }
    }

    #[test]
    fn conforms_to_schema() {
        let s = schema();
        for t in generate() {
            s.validate(&t).unwrap();
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate_seeded(1), generate_seeded(1));
        assert_ne!(generate_seeded(1), generate_seeded(2));
        assert_eq!(generate(), generate());
    }

    #[test]
    fn timestamps_strictly_increasing() {
        let data = generate();
        for w in data.windows(2) {
            assert!(col_ts(&w[1]) > col_ts(&w[0]));
        }
    }
}
