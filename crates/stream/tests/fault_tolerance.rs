//! Fault-tolerance integration tests: a mid-stream worker panic under
//! the threaded combinators (`pipelined`, `split_merge_parallel`) must
//! neither deadlock nor silently truncate — the run terminates promptly
//! with a typed error naming the failing stage.
//!
//! Every test body runs on a watchdog thread with a generous timeout so
//! a regression shows up as a test failure, not a hung CI job.

use icewafl_stream::chaos::install_quiet_panic_hook;
use icewafl_stream::prelude::*;
use std::time::Duration;

const PANIC_AT: i64 = 5_000;
const N: i64 = 20_000;

/// Marker matching the quiet panic hook's suppression list.
const MARKER: &str = "[chaos-injected] deliberate test panic";

/// Runs `f` on its own thread; panics if it does not finish within 60 s
/// (a deadlocked channel would otherwise hang the whole test binary).
fn with_timeout<R: Send + 'static>(f: impl FnOnce() -> R + Send + 'static) -> R {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_secs(60))
        .expect("pipeline must terminate, not deadlock")
}

fn panicking_map(x: i64) -> i64 {
    if x == PANIC_AT {
        panic!("{MARKER} at {x}");
    }
    x
}

#[test]
fn mid_stream_panic_under_pipelined_terminates_with_error() {
    install_quiet_panic_hook();
    let err = with_timeout(|| {
        DataStream::from_vec((0..N).collect::<Vec<i64>>())
            .map(panicking_map)
            .pipelined(64)
            .map(|x| x + 1)
            .collect()
            .unwrap_err()
    });
    assert_eq!(err.kind(), FailureKind::Injected);
    assert!(
        err.message().contains("deliberate test panic"),
        "panic payload survives: {}",
        err.message()
    );
}

#[test]
fn mid_stream_panic_under_split_merge_parallel_terminates_with_error() {
    install_quiet_panic_hook();
    let err = with_timeout(|| {
        let builders: Vec<SubPipelineBuilder<i64, i64>> = vec![
            Box::new(|s: DataStream<i64>| s.map(panicking_map)),
            Box::new(|s: DataStream<i64>| s.map(|x| x)),
        ];
        DataStream::from_vec((0..N).collect::<Vec<i64>>())
            .split_merge_parallel(|x, out| out.push((*x % 2) as usize), builders)
            .collect()
            .unwrap_err()
    });
    assert_eq!(err.kind(), FailureKind::Injected);
}

#[test]
fn panic_in_selector_of_parallel_router_is_attributed() {
    install_quiet_panic_hook();
    let err = with_timeout(|| {
        let builders: Vec<SubPipelineBuilder<i64, i64>> =
            vec![Box::new(|s: DataStream<i64>| s.map(|x| x))];
        DataStream::from_vec((0..N).collect::<Vec<i64>>())
            .split_merge_parallel(
                |x, out| {
                    if *x == PANIC_AT {
                        panic!("{MARKER} in selector");
                    }
                    out.push(0);
                },
                builders,
            )
            .collect()
            .unwrap_err()
    });
    assert!(
        err.stage().contains("split_router"),
        "selector panics blame the router, got `{}`",
        err.stage()
    );
}

#[test]
fn healthy_parallel_pipelines_still_deliver_everything() {
    // The guard rails must not tax the success path: same combinators,
    // no fault, full delivery.
    let out = with_timeout(|| {
        let builders: Vec<SubPipelineBuilder<i64, i64>> = vec![
            Box::new(|s: DataStream<i64>| s.map(|x| x).pipelined(128)),
            Box::new(|s: DataStream<i64>| s.map(|x| -x)),
        ];
        DataStream::from_vec((0..N).collect::<Vec<i64>>())
            .split_merge_parallel(|x, out| out.push((*x % 2) as usize), builders)
            .collect()
            .unwrap()
    });
    assert_eq!(out.len(), N as usize);
}

#[test]
fn sequential_panic_truncates_loudly_not_silently() {
    install_quiet_panic_hook();
    // The sink may have received a prefix before the failure — that is
    // fine — but the caller must get Err, never an Ok with missing data.
    let sink = SharedVecSink::new();
    let result = DataStream::from_vec((0..N).collect::<Vec<i64>>())
        .map(panicking_map)
        .execute_into(sink.clone());
    let delivered = sink.take();
    assert!(result.is_err(), "truncation must be loud");
    assert!(delivered.len() < N as usize);
}
