//! Runtime stages — the glue between operators, channels, and sinks.
//!
//! A *stage* consumes [`StreamElement`]s pushed from upstream. Pipelines
//! are built back-to-front: the terminal sink stage is wrapped by the
//! last operator's stage, and so on up to the source driver.

use crate::element::StreamElement;
use crate::operator::{Collector, Operator};
use crate::sink::Sink;
use crossbeam::channel::Sender;
use icewafl_types::Timestamp;

/// A push-based consumer of stream elements.
pub trait Stage<T>: Send {
    /// Accepts the next element. Implementations must tolerate (and
    /// ignore) elements after `End`.
    fn push(&mut self, element: StreamElement<T>);
}

/// Boxed stage, the unit of pipeline composition.
pub type BoxStage<T> = Box<dyn Stage<T>>;

/// Terminal stage: feeds records into a [`Sink`].
pub struct SinkStage<S> {
    sink: S,
    finished: bool,
}

impl<S> SinkStage<S> {
    /// Wraps a sink.
    pub fn new(sink: S) -> Self {
        SinkStage { sink, finished: false }
    }
}

impl<T, S> Stage<T> for SinkStage<S>
where
    T: Send,
    S: Sink<T>,
{
    fn push(&mut self, element: StreamElement<T>) {
        match element {
            StreamElement::Record(r) => {
                if !self.finished {
                    self.sink.write(r);
                }
            }
            StreamElement::Watermark(_) => {}
            StreamElement::End => {
                if !self.finished {
                    self.finished = true;
                    self.sink.finish();
                }
            }
        }
    }
}

/// Wraps an [`Operator`] and forwards its output to the downstream
/// stage. Watermarks and the end marker are forwarded *after* the
/// operator's callback, so buffering operators flush first.
pub struct OperatorStage<Op, Out> {
    op: Op,
    down: BoxStage<Out>,
    ended: bool,
}

impl<Op, Out> OperatorStage<Op, Out> {
    /// Chains an operator in front of a downstream stage.
    pub fn new(op: Op, down: BoxStage<Out>) -> Self {
        OperatorStage { op, down, ended: false }
    }
}

/// Collector that pushes straight into a stage.
struct StageCollector<'a, T> {
    down: &'a mut dyn Stage<T>,
}

impl<T> Collector<T> for StageCollector<'_, T> {
    fn collect(&mut self, record: T) {
        self.down.push(StreamElement::Record(record));
    }
}

impl<In, Out, Op> Stage<In> for OperatorStage<Op, Out>
where
    In: Send,
    Out: Send,
    Op: Operator<In, Out>,
{
    fn push(&mut self, element: StreamElement<In>) {
        if self.ended {
            return;
        }
        match element {
            StreamElement::Record(r) => {
                let mut coll = StageCollector { down: self.down.as_mut() };
                self.op.on_element(r, &mut coll);
            }
            StreamElement::Watermark(wm) => {
                {
                    let mut coll = StageCollector { down: self.down.as_mut() };
                    self.op.on_watermark(wm, &mut coll);
                }
                self.down.push(StreamElement::Watermark(wm));
            }
            StreamElement::End => {
                self.ended = true;
                {
                    let mut coll = StageCollector { down: self.down.as_mut() };
                    self.op.on_end(&mut coll);
                }
                self.down.push(StreamElement::End);
            }
        }
    }
}

/// Stage that forwards elements into a crossbeam channel (the upstream
/// half of a thread boundary).
pub struct ChannelStage<T> {
    tx: Option<Sender<StreamElement<T>>>,
}

impl<T> ChannelStage<T> {
    /// Wraps a sender.
    pub fn new(tx: Sender<StreamElement<T>>) -> Self {
        ChannelStage { tx: Some(tx) }
    }
}

impl<T: Send> Stage<T> for ChannelStage<T> {
    fn push(&mut self, element: StreamElement<T>) {
        let is_end = element.is_end();
        if let Some(tx) = &self.tx {
            // A send error means the consumer thread is gone; nothing
            // sensible to do but stop sending.
            let _ = tx.send(element);
        }
        if is_end {
            self.tx = None;
        }
    }
}

/// Stage that drops everything (used when a side output is unused).
pub struct DiscardStage;

impl<T: Send> Stage<T> for DiscardStage {
    fn push(&mut self, _element: StreamElement<T>) {}
}

/// Testing/bench helper: drives a single operator with records and a
/// final end marker, collecting its full output. Watermarks can be
/// interleaved by the caller via `elements`.
pub fn run_operator<In, Out, Op>(mut op: Op, elements: Vec<StreamElement<In>>) -> Vec<Out>
where
    Op: Operator<In, Out>,
{
    let mut out = Vec::new();
    for e in elements {
        match e {
            StreamElement::Record(r) => op.on_element(r, &mut out),
            StreamElement::Watermark(wm) => op.on_watermark(wm, &mut out),
            StreamElement::End => op.on_end(&mut out),
        }
    }
    out
}

/// Convenience: `run_operator` over plain records with a trailing end.
pub fn run_operator_simple<In, Out, Op>(op: Op, records: Vec<In>) -> Vec<Out>
where
    Op: Operator<In, Out>,
{
    let mut elements: Vec<StreamElement<In>> =
        records.into_iter().map(StreamElement::Record).collect();
    elements.push(StreamElement::End);
    run_operator(op, elements)
}

/// Watermark utility shared by merge points: tracks per-input watermarks
/// and reports the combined (minimum) watermark when it advances.
#[derive(Debug)]
pub struct WatermarkMerger {
    inputs: Vec<Timestamp>,
    combined: Timestamp,
}

impl WatermarkMerger {
    /// A merger over `n` inputs, all starting at `Timestamp::MIN`.
    pub fn new(n: usize) -> Self {
        WatermarkMerger { inputs: vec![Timestamp::MIN; n], combined: Timestamp::MIN }
    }

    /// Records that input `idx` advanced to `wm`; returns the new
    /// combined watermark if it advanced.
    pub fn advance(&mut self, idx: usize, wm: Timestamp) -> Option<Timestamp> {
        if wm > self.inputs[idx] {
            self.inputs[idx] = wm;
        }
        let min = self.inputs.iter().copied().min().unwrap_or(Timestamp::MAX);
        if min > self.combined {
            self.combined = min;
            Some(min)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::MapOperator;
    use crate::sink::SharedVecSink;

    #[test]
    fn sink_stage_ignores_elements_after_end() {
        let sink = SharedVecSink::new();
        let mut stage = SinkStage::new(sink.clone());
        stage.push(StreamElement::Record(1));
        stage.push(StreamElement::End);
        stage.push(StreamElement::Record(2));
        assert_eq!(sink.take(), vec![1]);
    }

    #[test]
    fn operator_stage_forwards_watermarks_after_callback() {
        // A sorter-like operator releasing on watermark, observed through
        // the stage: the record released by the watermark must precede
        // the watermark itself downstream.
        struct HoldOne(Option<i32>);
        impl Operator<i32, i32> for HoldOne {
            fn on_element(&mut self, r: i32, _out: &mut dyn Collector<i32>) {
                self.0 = Some(r);
            }
            fn on_watermark(&mut self, _wm: Timestamp, out: &mut dyn Collector<i32>) {
                if let Some(r) = self.0.take() {
                    out.collect(r);
                }
            }
        }
        struct Recorder(std::sync::Arc<parking_lot::Mutex<Vec<String>>>);
        impl Stage<i32> for Recorder {
            fn push(&mut self, e: StreamElement<i32>) {
                self.0.lock().push(format!("{e:?}"));
            }
        }
        let log = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut stage = OperatorStage::new(HoldOne(None), Box::new(Recorder(log.clone())));
        stage.push(StreamElement::Record(7));
        stage.push(StreamElement::Watermark(Timestamp(1)));
        let entries = log.lock().clone();
        assert_eq!(entries, vec!["Record(7)".to_string(), "Watermark(Timestamp(1))".to_string()]);
    }

    #[test]
    fn operator_stage_end_flushes_then_forwards() {
        let sink = SharedVecSink::new();
        let mut stage = OperatorStage::new(MapOperator::new(|x: i32| x + 1), Box::new(SinkStage::new(sink.clone())));
        stage.push(StreamElement::Record(1));
        stage.push(StreamElement::End);
        stage.push(StreamElement::Record(5)); // ignored after end
        assert_eq!(sink.take(), vec![2]);
    }

    #[test]
    fn run_operator_helpers() {
        let out: Vec<i32> = run_operator_simple(MapOperator::new(|x: i32| x * 3), vec![1, 2]);
        assert_eq!(out, vec![3, 6]);
    }

    #[test]
    fn watermark_merger_takes_minimum() {
        let mut m = WatermarkMerger::new(2);
        assert_eq!(m.advance(0, Timestamp(10)), None); // other input still MIN
        assert_eq!(m.advance(1, Timestamp(5)), Some(Timestamp(5)));
        assert_eq!(m.advance(1, Timestamp(20)), Some(Timestamp(10)));
        // Regressions are ignored.
        assert_eq!(m.advance(0, Timestamp(3)), None);
        assert_eq!(m.advance(0, Timestamp(30)), Some(Timestamp(20)));
    }

    #[test]
    fn discard_stage_accepts_everything() {
        let mut d = DiscardStage;
        d.push(StreamElement::Record(1));
        d.push(StreamElement::<i32>::End);
    }
}
