//! Runtime stages — the glue between operators, channels, and sinks.
//!
//! A *stage* consumes [`StreamElement`]s pushed from upstream. Pipelines
//! are built back-to-front: the terminal sink stage is wrapped by the
//! last operator's stage, and so on up to the source driver.

use crate::element::StreamElement;
use crate::fault::{FailureCell, StageError};
use crate::metrics::{ChannelMetrics, StageMetrics, SAMPLE_MASK};
use crate::operator::{Collector, Operator};
use crate::sink::Sink;
use crossbeam::channel::{Sender, TrySendError};
use icewafl_obs::{trace, Stopwatch};
use icewafl_types::Timestamp;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Operator stages re-check the wall-clock deadline once per this many
/// records (power-of-two mask). The source driver has its own check,
/// but a source can drain into channels far ahead of a slow operator —
/// enforcing the deadline *here* is what guarantees an attempt cannot
/// outlive it no matter where the time is spent.
const DEADLINE_CHECK_MASK: u64 = 255;

/// A push-based consumer of stream elements.
pub trait Stage<T>: Send {
    /// Accepts the next element. Implementations must tolerate (and
    /// ignore) elements after `End`.
    fn push(&mut self, element: StreamElement<T>);
}

/// Boxed stage, the unit of pipeline composition.
pub type BoxStage<T> = Box<dyn Stage<T>>;

/// Terminal stage: feeds records into a [`Sink`].
///
/// Participates in the poison-propagation protocol (see
/// [`fault`](crate::fault)): an incoming [`StreamElement::Failure`] —
/// or a panic inside the sink itself — is recorded into the run's
/// shared [`FailureCell`] for the executor to report.
pub struct SinkStage<S> {
    sink: S,
    finished: bool,
    failures: FailureCell,
    /// Records committed to the sink so far — recorded into checkpoint
    /// frames so restores know where to truncate a shared sink.
    written: u64,
}

impl<S> SinkStage<S> {
    /// Wraps a sink with a detached failure cell (failures terminate the
    /// stream but are not reported anywhere).
    pub fn new(sink: S) -> Self {
        Self::with_failure_cell(sink, FailureCell::new())
    }

    /// Wraps a sink, recording the first observed failure into `cell`.
    pub fn with_failure_cell(sink: S, cell: FailureCell) -> Self {
        Self::resumed(sink, cell, 0)
    }

    /// Wraps a sink whose backing store already holds `committed_base`
    /// records from a previous (checkpoint-restored) attempt: barrier
    /// commits count from that base, so checkpoint frames always record
    /// *absolute* sink offsets — the truncation point a later restore
    /// needs — rather than per-attempt ones.
    pub fn resumed(sink: S, cell: FailureCell, committed_base: u64) -> Self {
        SinkStage {
            sink,
            finished: false,
            failures: cell,
            written: committed_base,
        }
    }
}

impl<T, S> Stage<T> for SinkStage<S>
where
    T: Send,
    S: Sink<T>,
{
    fn push(&mut self, element: StreamElement<T>) {
        if self.finished {
            return;
        }
        match element {
            StreamElement::Record(r) => {
                let sink = &mut self.sink;
                if let Err(payload) = catch_unwind(AssertUnwindSafe(move || sink.write(r))) {
                    // Do not call `finish` on a sink that just panicked.
                    self.finished = true;
                    self.failures
                        .record(StageError::from_panic("sink", payload));
                } else {
                    self.written += 1;
                }
            }
            StreamElement::Batch(batch) => {
                let len = batch.len() as u64;
                let sink = &mut self.sink;
                if let Err(payload) =
                    catch_unwind(AssertUnwindSafe(move || sink.write_batch(batch)))
                {
                    self.finished = true;
                    self.failures
                        .record(StageError::from_panic("sink", payload));
                } else {
                    self.written += len;
                }
            }
            StreamElement::Watermark(_) => {}
            StreamElement::Barrier(b) => {
                // Sink-side committer: the barrier has crossed every
                // stage, so the snapshot is complete — seal the frame
                // with the committed-record count.
                b.commit(self.written);
            }
            StreamElement::End => {
                self.finished = true;
                let sink = &mut self.sink;
                if let Err(payload) = catch_unwind(AssertUnwindSafe(move || sink.finish())) {
                    self.failures
                        .record(StageError::from_panic("sink", payload));
                }
            }
            StreamElement::Failure(e) => {
                self.finished = true;
                self.failures.record(e);
                let sink = &mut self.sink;
                if let Err(payload) = catch_unwind(AssertUnwindSafe(move || sink.finish())) {
                    // The upstream failure already won the cell; the
                    // sink's own panic during cleanup is fallout.
                    let _ = payload;
                }
            }
        }
    }
}

/// Wraps an [`Operator`] and forwards its output to the downstream
/// stage. Watermarks and the end marker are forwarded *after* the
/// operator's callback, so buffering operators flush first.
///
/// Every operator callback runs under [`catch_unwind`]; a panic is
/// converted into a [`StreamElement::Failure`] carrying this stage's
/// label, which propagates downstream like the end marker.
pub struct OperatorStage<Op, Out> {
    op: Op,
    down: BoxStage<Out>,
    ended: bool,
    metrics: StageMetrics,
    /// Stage label used to attribute failures, e.g. `stage/02_map`.
    label: String,
    /// Records seen, kept locally for the 1-in-64 sampling decision.
    seen: u64,
    /// Element counts staged in plain integers and flushed to the shared
    /// atomic cells only at watermark/end boundaries — a per-record
    /// `Arc<AtomicU64>` increment is too expensive for the hot path.
    in_pending: u64,
    out_pending: u64,
    /// Wall-clock deadline checked every [`DEADLINE_CHECK_MASK`]+1
    /// records; on expiry the stage poisons itself with a
    /// [`FailureKind::Deadline`](crate::fault::FailureKind) failure.
    deadline: Option<Instant>,
}

impl<Op, Out> OperatorStage<Op, Out> {
    /// Chains an operator in front of a downstream stage, with detached
    /// (snapshot-invisible) metrics and an anonymous label.
    pub fn new(op: Op, down: BoxStage<Out>) -> Self {
        Self::with_metrics(op, down, StageMetrics::detached(), "operator")
    }

    /// Chains an operator in front of a downstream stage, recording into
    /// the given metric handles and attributing failures to `label`.
    pub fn with_metrics(
        op: Op,
        down: BoxStage<Out>,
        metrics: StageMetrics,
        label: impl Into<String>,
    ) -> Self {
        OperatorStage {
            op,
            down,
            ended: false,
            metrics,
            label: label.into(),
            seen: 0,
            in_pending: 0,
            out_pending: 0,
            deadline: None,
        }
    }

    /// Arms the per-stage wall-clock deadline check (`None` = never
    /// expires). The executor wires this from the run deadline so slow
    /// operators are cut off even when the source has long since
    /// drained.
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    fn flush_pending(&mut self) {
        if self.in_pending > 0 {
            self.metrics.elements_in.add(self.in_pending);
            self.in_pending = 0;
        }
        if self.out_pending > 0 {
            self.metrics.elements_out.add(self.out_pending);
            self.out_pending = 0;
        }
    }

    /// Converts a caught panic payload into a poison element pushed
    /// downstream, terminating this stage.
    fn fail(&mut self, payload: Box<dyn std::any::Any + Send>)
    where
        Out: Send,
    {
        self.ended = true;
        self.metrics.failures.inc();
        self.flush_pending();
        let error = StageError::from_panic(&self.label, payload);
        self.down.push(StreamElement::Failure(error));
    }

    /// Periodic deadline enforcement: when the armed deadline has
    /// passed, poison the stage with a `Deadline` failure (which a
    /// supervisor never retries) instead of grinding out the rest of
    /// the stream.
    fn enforce_deadline(&mut self)
    where
        Out: Send,
    {
        let Some(dl) = self.deadline else { return };
        if Instant::now() < dl {
            return;
        }
        self.ended = true;
        self.metrics.failures.inc();
        self.flush_pending();
        self.down
            .push(StreamElement::Failure(StageError::deadline(&self.label)));
    }
}

/// Collector that pushes straight into a stage, counting emissions into
/// the stage's staged (plain-`u64`) output counter.
struct StageCollector<'a, T> {
    down: &'a mut dyn Stage<T>,
    out: &'a mut u64,
}

impl<T> Collector<T> for StageCollector<'_, T> {
    fn collect(&mut self, record: T) {
        *self.out += 1;
        self.down.push(StreamElement::Record(record));
    }
}

impl<In, Out, Op> Stage<In> for OperatorStage<Op, Out>
where
    In: Send,
    Out: Send,
    Op: Operator<In, Out>,
{
    fn push(&mut self, element: StreamElement<In>) {
        if self.ended {
            return;
        }
        match element {
            StreamElement::Record(r) => {
                // Every 64th record is wall-clock timed so the histogram
                // fills without paying two `Instant::now` calls per record.
                let sampled = self.seen & SAMPLE_MASK == 0;
                self.seen += 1;
                self.in_pending += 1;
                let result = {
                    let op = &mut self.op;
                    let mut coll = StageCollector {
                        down: self.down.as_mut(),
                        out: &mut self.out_pending,
                    };
                    if sampled {
                        // Sampled records double as trace sample points:
                        // when a trace session is live they emit a span
                        // covering the operator callback.
                        let _span = trace::span(&self.label, "stage");
                        let sw = Stopwatch::start();
                        let res =
                            catch_unwind(AssertUnwindSafe(move || op.on_element(r, &mut coll)));
                        self.metrics.latency_ns.record(sw.elapsed_ns());
                        res
                    } else {
                        catch_unwind(AssertUnwindSafe(move || op.on_element(r, &mut coll)))
                    }
                };
                if let Err(payload) = result {
                    self.fail(payload);
                } else if self.seen & DEADLINE_CHECK_MASK == 0 {
                    self.enforce_deadline();
                }
            }
            StreamElement::Batch(batch) => {
                if batch.is_empty() {
                    return;
                }
                let len = batch.len() as u64;
                // Time the whole batch whenever it covers one of the
                // 1-in-64 sample points the per-record path would hit.
                let next_sample = (self.seen + SAMPLE_MASK) & !SAMPLE_MASK;
                let sampled = next_sample < self.seen + len;
                // Same crossing logic for the (coarser) deadline check.
                let next_deadline_check = (self.seen + DEADLINE_CHECK_MASK) & !DEADLINE_CHECK_MASK;
                let check_deadline = next_deadline_check < self.seen + len;
                self.seen += len;
                self.in_pending += len;
                let result = {
                    let op = &mut self.op;
                    let mut coll = StageCollector {
                        down: self.down.as_mut(),
                        out: &mut self.out_pending,
                    };
                    if sampled {
                        let mut span = trace::span(&self.label, "stage");
                        if let Some(s) = span.as_mut() {
                            s.arg("batch", len);
                        }
                        let sw = Stopwatch::start();
                        let res =
                            catch_unwind(AssertUnwindSafe(move || op.on_batch(batch, &mut coll)));
                        let elapsed = sw.elapsed_ns();
                        // One histogram entry per 1-in-64 sample point the
                        // batch covers (a frame larger than the sampling
                        // period spans several), keeping the sample *count*
                        // batch-size invariant.
                        let points = (self.seen - 1 - next_sample) / (SAMPLE_MASK + 1) + 1;
                        for _ in 0..points {
                            self.metrics.latency_ns.record(elapsed);
                        }
                        res
                    } else {
                        catch_unwind(AssertUnwindSafe(move || op.on_batch(batch, &mut coll)))
                    }
                };
                if let Err(payload) = result {
                    self.fail(payload);
                } else if check_deadline {
                    self.enforce_deadline();
                }
            }
            StreamElement::Watermark(wm) => {
                // The final `W(MAX)` end-of-stream sentinel would dwarf
                // any real event time; keep it out of the high-water mark.
                if wm != Timestamp::MAX {
                    self.metrics.watermark_hwm_ms.set_max(wm.0.max(0) as u64);
                }
                let result = {
                    let op = &mut self.op;
                    let mut coll = StageCollector {
                        down: self.down.as_mut(),
                        out: &mut self.out_pending,
                    };
                    catch_unwind(AssertUnwindSafe(move || op.on_watermark(wm, &mut coll)))
                };
                match result {
                    Ok(()) => {
                        self.flush_pending();
                        self.down.push(StreamElement::Watermark(wm));
                    }
                    Err(payload) => self.fail(payload),
                }
            }
            StreamElement::Barrier(b) => {
                // Snapshot point: the operator has seen exactly the
                // records preceding the barrier. Contribute state, then
                // forward so downstream stages snapshot too.
                let op = &mut self.op;
                let result = catch_unwind(AssertUnwindSafe(|| op.on_barrier(&b)));
                match result {
                    Ok(()) => {
                        self.flush_pending();
                        self.down.push(StreamElement::Barrier(b));
                    }
                    Err(payload) => self.fail(payload),
                }
            }
            StreamElement::End => {
                self.ended = true;
                let result = {
                    let op = &mut self.op;
                    let mut coll = StageCollector {
                        down: self.down.as_mut(),
                        out: &mut self.out_pending,
                    };
                    catch_unwind(AssertUnwindSafe(move || op.on_end(&mut coll)))
                };
                match result {
                    Ok(()) => {
                        self.flush_pending();
                        self.down.push(StreamElement::End);
                    }
                    Err(payload) => self.fail(payload),
                }
            }
            StreamElement::Failure(e) => {
                // Poison: stop processing (buffered operator state is
                // dropped — the error reports the truncation) and
                // forward the failure downstream so the sink records it.
                self.ended = true;
                self.flush_pending();
                self.down.push(StreamElement::Failure(e));
            }
        }
    }
}

/// Stage that forwards elements into a crossbeam channel (the upstream
/// half of a thread boundary).
///
/// With a `batch_size > 1` the stage stages consecutive records in a
/// local buffer and ships them as one [`StreamElement::Batch`] frame,
/// amortizing the per-send channel and metering cost. The buffer is
/// flushed *before* any watermark, `End`, or `Failure` is forwarded, so
/// records never trail a control element they preceded — event-time
/// semantics are identical to the unbatched path.
pub struct ChannelStage<T> {
    tx: Option<Sender<StreamElement<T>>>,
    metrics: ChannelMetrics,
    buf: Vec<T>,
    batch_size: usize,
}

impl<T> ChannelStage<T> {
    /// Wraps a sender with detached (snapshot-invisible) metrics and no
    /// batching (every record is its own frame).
    pub fn new(tx: Sender<StreamElement<T>>) -> Self {
        Self::with_metrics(tx, ChannelMetrics::detached())
    }

    /// Wraps a sender, recording into the given metric handles; no
    /// batching.
    pub fn with_metrics(tx: Sender<StreamElement<T>>, metrics: ChannelMetrics) -> Self {
        Self::with_batch_size(tx, metrics, 1)
    }

    /// Wraps a sender that ships records in batches of `batch_size`.
    pub fn with_batch_size(
        tx: Sender<StreamElement<T>>,
        metrics: ChannelMetrics,
        batch_size: usize,
    ) -> Self {
        ChannelStage {
            tx: Some(tx),
            metrics,
            buf: Vec::new(),
            batch_size: batch_size.max(1),
        }
    }
}

/// Sends one element, counting the send (in *records* for batch frames,
/// so counters are batch-size invariant) and timing any backpressure
/// block. A disconnected consumer counts as a drop; there is nothing
/// sensible to do but stop sending.
pub(crate) fn send_metered<T: Send>(
    tx: &Sender<StreamElement<T>>,
    element: StreamElement<T>,
    metrics: &ChannelMetrics,
) {
    let units = match &element {
        StreamElement::Batch(b) => b.len() as u64,
        _ => 1,
    };
    // Batch frames are rare enough (one per `batch_size` records) that a
    // flush span per frame is affordable whenever a trace session is live.
    let mut flush_span = match &element {
        StreamElement::Batch(_) => trace::span("batch_flush", "channel"),
        _ => None,
    };
    if let Some(s) = flush_span.as_mut() {
        s.arg("records", units);
    }
    metrics.sends.add(units);
    match tx.try_send(element) {
        Ok(()) => {}
        Err(TrySendError::Full(element)) => {
            metrics.send_blocks.inc();
            let block_span = trace::span("blocked_send", "backpressure");
            let sw = Stopwatch::start();
            if tx.send(element).is_err() {
                metrics.dropped.add(units);
            }
            metrics.send_block_ns.record(sw.elapsed_ns());
            drop(block_span);
        }
        Err(TrySendError::Disconnected(_)) => {
            metrics.dropped.add(units);
        }
    }
}

impl<T: Send> Stage<T> for ChannelStage<T> {
    fn push(&mut self, element: StreamElement<T>) {
        let Some(tx) = &self.tx else { return };
        if let StreamElement::Record(r) = element {
            if self.batch_size > 1 {
                if self.buf.capacity() == 0 {
                    self.buf.reserve_exact(self.batch_size);
                }
                self.buf.push(r);
                if self.buf.len() >= self.batch_size {
                    let batch =
                        std::mem::replace(&mut self.buf, Vec::with_capacity(self.batch_size));
                    send_metered(tx, StreamElement::Batch(batch), &self.metrics);
                }
            } else {
                send_metered(tx, StreamElement::Record(r), &self.metrics);
            }
            return;
        }
        // Control elements and pre-batched frames: flush staged records
        // first so nothing overtakes them.
        if !self.buf.is_empty() {
            let batch = std::mem::take(&mut self.buf);
            send_metered(tx, StreamElement::Batch(batch), &self.metrics);
        }
        let terminal = element.is_terminal();
        send_metered(tx, element, &self.metrics);
        if terminal {
            self.tx = None;
        }
    }
}

/// Stage adapter that coalesces consecutive records into
/// [`StreamElement::Batch`] frames before forwarding to the inner
/// stage. Placed in front of contended merge points (e.g. a union's
/// shared lock) so per-record synchronization is paid once per batch.
/// Like every batching transport, staged records flush *before* any
/// watermark, pre-batched frame, or terminal marker is forwarded.
pub struct BatchingStage<T> {
    inner: BoxStage<T>,
    buf: Vec<T>,
    batch_size: usize,
}

impl<T> BatchingStage<T> {
    /// Wraps `inner`, batching up to `batch_size` records per frame.
    pub fn new(inner: BoxStage<T>, batch_size: usize) -> Self {
        BatchingStage {
            inner,
            buf: Vec::new(),
            batch_size: batch_size.max(1),
        }
    }
}

impl<T: Send> Stage<T> for BatchingStage<T> {
    fn push(&mut self, element: StreamElement<T>) {
        if let StreamElement::Record(r) = element {
            if self.batch_size > 1 {
                if self.buf.capacity() == 0 {
                    self.buf.reserve_exact(self.batch_size);
                }
                self.buf.push(r);
                if self.buf.len() >= self.batch_size {
                    let batch =
                        std::mem::replace(&mut self.buf, Vec::with_capacity(self.batch_size));
                    self.inner.push(StreamElement::Batch(batch));
                }
            } else {
                self.inner.push(StreamElement::Record(r));
            }
            return;
        }
        if !self.buf.is_empty() {
            let batch = std::mem::take(&mut self.buf);
            self.inner.push(StreamElement::Batch(batch));
        }
        self.inner.push(element);
    }
}

/// Stage that drops everything (used when a side output is unused).
pub struct DiscardStage;

impl<T: Send> Stage<T> for DiscardStage {
    fn push(&mut self, _element: StreamElement<T>) {}
}

/// Testing/bench helper: drives a single operator with records and a
/// final end marker, collecting its full output. Watermarks can be
/// interleaved by the caller via `elements`.
pub fn run_operator<In, Out, Op>(mut op: Op, elements: Vec<StreamElement<In>>) -> Vec<Out>
where
    Op: Operator<In, Out>,
{
    let mut out = Vec::new();
    for e in elements {
        match e {
            StreamElement::Record(r) => op.on_element(r, &mut out),
            StreamElement::Batch(b) => op.on_batch(b, &mut out),
            StreamElement::Watermark(wm) => op.on_watermark(wm, &mut out),
            StreamElement::Barrier(b) => op.on_barrier(&b),
            StreamElement::End => op.on_end(&mut out),
            StreamElement::Failure(_) => break,
        }
    }
    out
}

/// Convenience: `run_operator` over plain records with a trailing end.
pub fn run_operator_simple<In, Out, Op>(op: Op, records: Vec<In>) -> Vec<Out>
where
    Op: Operator<In, Out>,
{
    let mut elements: Vec<StreamElement<In>> =
        records.into_iter().map(StreamElement::Record).collect();
    elements.push(StreamElement::End);
    run_operator(op, elements)
}

/// Watermark utility shared by merge points: tracks per-input watermarks
/// and reports the combined (minimum) watermark when it advances.
#[derive(Debug)]
pub struct WatermarkMerger {
    inputs: Vec<Timestamp>,
    combined: Timestamp,
}

impl WatermarkMerger {
    /// A merger over `n` inputs, all starting at `Timestamp::MIN`.
    pub fn new(n: usize) -> Self {
        WatermarkMerger {
            inputs: vec![Timestamp::MIN; n],
            combined: Timestamp::MIN,
        }
    }

    /// Records that input `idx` advanced to `wm`; returns the new
    /// combined watermark if it advanced.
    pub fn advance(&mut self, idx: usize, wm: Timestamp) -> Option<Timestamp> {
        if wm > self.inputs[idx] {
            self.inputs[idx] = wm;
        }
        let min = self.inputs.iter().copied().min().unwrap_or(Timestamp::MAX);
        if min > self.combined {
            self.combined = min;
            Some(min)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::MapOperator;
    use crate::sink::SharedVecSink;

    #[test]
    fn sink_stage_ignores_elements_after_end() {
        let sink = SharedVecSink::new();
        let mut stage = SinkStage::new(sink.clone());
        stage.push(StreamElement::Record(1));
        stage.push(StreamElement::End);
        stage.push(StreamElement::Record(2));
        assert_eq!(sink.take(), vec![1]);
    }

    #[test]
    fn operator_stage_forwards_watermarks_after_callback() {
        // A sorter-like operator releasing on watermark, observed through
        // the stage: the record released by the watermark must precede
        // the watermark itself downstream.
        struct HoldOne(Option<i32>);
        impl Operator<i32, i32> for HoldOne {
            fn on_element(&mut self, r: i32, _out: &mut dyn Collector<i32>) {
                self.0 = Some(r);
            }
            fn on_watermark(&mut self, _wm: Timestamp, out: &mut dyn Collector<i32>) {
                if let Some(r) = self.0.take() {
                    out.collect(r);
                }
            }
        }
        struct Recorder(std::sync::Arc<parking_lot::Mutex<Vec<String>>>);
        impl Stage<i32> for Recorder {
            fn push(&mut self, e: StreamElement<i32>) {
                self.0.lock().push(format!("{e:?}"));
            }
        }
        let log = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut stage = OperatorStage::new(HoldOne(None), Box::new(Recorder(log.clone())));
        stage.push(StreamElement::Record(7));
        stage.push(StreamElement::Watermark(Timestamp(1)));
        let entries = log.lock().clone();
        assert_eq!(
            entries,
            vec![
                "Record(7)".to_string(),
                "Watermark(Timestamp(1))".to_string()
            ]
        );
    }

    #[test]
    fn operator_stage_end_flushes_then_forwards() {
        let sink = SharedVecSink::new();
        let mut stage = OperatorStage::new(
            MapOperator::new(|x: i32| x + 1),
            Box::new(SinkStage::new(sink.clone())),
        );
        stage.push(StreamElement::Record(1));
        stage.push(StreamElement::End);
        stage.push(StreamElement::Record(5)); // ignored after end
        assert_eq!(sink.take(), vec![2]);
    }

    #[test]
    fn run_operator_helpers() {
        let out: Vec<i32> = run_operator_simple(MapOperator::new(|x: i32| x * 3), vec![1, 2]);
        assert_eq!(out, vec![3, 6]);
    }

    #[test]
    fn watermark_merger_takes_minimum() {
        let mut m = WatermarkMerger::new(2);
        assert_eq!(m.advance(0, Timestamp(10)), None); // other input still MIN
        assert_eq!(m.advance(1, Timestamp(5)), Some(Timestamp(5)));
        assert_eq!(m.advance(1, Timestamp(20)), Some(Timestamp(10)));
        // Regressions are ignored.
        assert_eq!(m.advance(0, Timestamp(3)), None);
        assert_eq!(m.advance(0, Timestamp(30)), Some(Timestamp(20)));
    }

    #[test]
    fn discard_stage_accepts_everything() {
        let mut d = DiscardStage;
        d.push(StreamElement::Record(1));
        d.push(StreamElement::<i32>::End);
    }

    #[test]
    fn operator_panic_becomes_failure_element() {
        crate::chaos::install_quiet_panic_hook();
        struct Bomb;
        impl Operator<i32, i32> for Bomb {
            fn on_element(&mut self, r: i32, out: &mut dyn Collector<i32>) {
                if r == 3 {
                    panic!("{} bomb at {r}", crate::chaos::CHAOS_PANIC_MARKER);
                }
                out.collect(r);
            }
        }
        let cell = FailureCell::new();
        let sink = SharedVecSink::new();
        let mut stage = OperatorStage::with_metrics(
            Bomb,
            Box::new(SinkStage::with_failure_cell(sink.clone(), cell.clone())),
            StageMetrics::detached(),
            "stage/01_bomb",
        );
        stage.push(StreamElement::Record(1));
        stage.push(StreamElement::Record(3));
        stage.push(StreamElement::Record(4)); // ignored: stage is poisoned
        let err = cell.get().expect("failure recorded at the sink");
        assert_eq!(err.stage, "stage/01_bomb");
        assert_eq!(err.kind, crate::fault::FailureKind::Injected);
        assert!(err.message.contains("bomb at 3"));
        assert_eq!(sink.take(), vec![1]);
    }

    #[test]
    fn channel_stage_flushes_partial_batch_before_control_elements() {
        let (tx, rx) = crossbeam::channel::unbounded();
        let mut stage = ChannelStage::with_batch_size(tx, ChannelMetrics::detached(), 4);
        stage.push(StreamElement::Record(1));
        stage.push(StreamElement::Record(2));
        stage.push(StreamElement::Watermark(Timestamp(10)));
        stage.push(StreamElement::Record(3));
        stage.push(StreamElement::End);
        let frames: Vec<StreamElement<i32>> = rx.iter().collect();
        assert_eq!(
            frames,
            vec![
                StreamElement::Batch(vec![1, 2]),
                StreamElement::Watermark(Timestamp(10)),
                StreamElement::Batch(vec![3]),
                StreamElement::End,
            ]
        );
    }

    #[test]
    fn channel_stage_ships_full_batches() {
        let (tx, rx) = crossbeam::channel::unbounded();
        let metrics = ChannelMetrics::detached();
        let mut stage = ChannelStage::with_batch_size(tx, metrics, 2);
        for i in 0..5 {
            stage.push(StreamElement::Record(i));
        }
        stage.push(StreamElement::End);
        let frames: Vec<StreamElement<i32>> = rx.iter().collect();
        assert_eq!(
            frames,
            vec![
                StreamElement::Batch(vec![0, 1]),
                StreamElement::Batch(vec![2, 3]),
                StreamElement::Batch(vec![4]),
                StreamElement::End,
            ]
        );
    }

    #[test]
    fn operator_stage_treats_a_batch_like_its_records() {
        let sink = SharedVecSink::new();
        let mut stage = OperatorStage::new(
            MapOperator::new(|x: i32| x + 1),
            Box::new(SinkStage::new(sink.clone())),
        );
        stage.push(StreamElement::Batch(vec![1, 2, 3]));
        stage.push(StreamElement::Batch(vec![]));
        stage.push(StreamElement::Record(9));
        stage.push(StreamElement::End);
        assert_eq!(sink.take(), vec![2, 3, 4, 10]);
    }

    #[test]
    fn panic_inside_a_batch_poisons_the_stage() {
        crate::chaos::install_quiet_panic_hook();
        struct Bomb;
        impl Operator<i32, i32> for Bomb {
            fn on_element(&mut self, r: i32, out: &mut dyn Collector<i32>) {
                if r == 2 {
                    panic!("{} batch bomb", crate::chaos::CHAOS_PANIC_MARKER);
                }
                out.collect(r);
            }
        }
        let cell = FailureCell::new();
        let sink = SharedVecSink::new();
        let mut stage = OperatorStage::with_metrics(
            Bomb,
            Box::new(SinkStage::with_failure_cell(sink.clone(), cell.clone())),
            StageMetrics::detached(),
            "stage/01_bomb",
        );
        stage.push(StreamElement::Batch(vec![1, 2, 3]));
        stage.push(StreamElement::Batch(vec![4]));
        assert_eq!(cell.get().map(|e| e.stage), Some("stage/01_bomb".into()));
        assert_eq!(sink.take(), vec![1], "records before the panic landed");
    }

    #[test]
    fn upstream_failure_is_forwarded_not_processed() {
        let cell = FailureCell::new();
        let sink = SharedVecSink::new();
        let mut stage = OperatorStage::new(
            MapOperator::new(|x: i32| x + 1),
            Box::new(SinkStage::with_failure_cell(sink.clone(), cell.clone())),
        );
        stage.push(StreamElement::Record(1));
        stage.push(StreamElement::Failure(StageError::new(
            "stage/09_up",
            crate::fault::FailureKind::Panic,
            "boom",
        )));
        stage.push(StreamElement::Record(2));
        assert_eq!(cell.get().map(|e| e.stage), Some("stage/09_up".into()));
        assert_eq!(sink.take(), vec![2]); // 1+1 delivered before the poison
    }
}
