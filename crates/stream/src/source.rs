//! Stream sources.

/// Produces the records of a stream, pull-style.
///
/// Sources are deliberately minimal: the runtime drives them to
/// exhaustion and handles watermarking separately (see
/// [`crate::watermark`]).
pub trait Source<T>: Send {
    /// The next record, or `None` when the source is exhausted.
    fn next(&mut self) -> Option<T>;

    /// A hint of how many records remain, if known (used by sinks to
    /// pre-allocate).
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// A source over an in-memory vector (test and batch workhorse).
pub struct VecSource<T> {
    items: std::vec::IntoIter<T>,
}

impl<T> VecSource<T> {
    /// Creates a source that yields the vector's items in order.
    pub fn new(items: Vec<T>) -> Self {
        VecSource {
            items: items.into_iter(),
        }
    }
}

impl<T: Send> Source<T> for VecSource<T> {
    fn next(&mut self) -> Option<T> {
        self.items.next()
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.items.len())
    }
}

/// A source over any iterator.
pub struct IterSource<I> {
    iter: I,
}

impl<I> IterSource<I> {
    /// Wraps an iterator.
    pub fn new(iter: I) -> Self {
        IterSource { iter }
    }
}

impl<T, I> Source<T> for IterSource<I>
where
    I: Iterator<Item = T> + Send,
{
    fn next(&mut self) -> Option<T> {
        self.iter.next()
    }

    fn size_hint(&self) -> Option<usize> {
        match self.iter.size_hint() {
            (lo, Some(hi)) if lo == hi => Some(hi),
            _ => None,
        }
    }
}

/// A generator source: calls a closure with an increasing index until it
/// returns `None`. Convenient for synthetic workloads.
pub struct GenSource<F> {
    f: F,
    next_idx: u64,
}

impl<F> GenSource<F> {
    /// Creates a generator source.
    pub fn new(f: F) -> Self {
        GenSource { f, next_idx: 0 }
    }
}

impl<T, F> Source<T> for GenSource<F>
where
    F: FnMut(u64) -> Option<T> + Send,
{
    fn next(&mut self) -> Option<T> {
        let item = (self.f)(self.next_idx)?;
        self.next_idx += 1;
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T>(mut s: impl Source<T>) -> Vec<T> {
        let mut v = Vec::new();
        while let Some(x) = s.next() {
            v.push(x);
        }
        v
    }

    #[test]
    fn vec_source_yields_in_order() {
        let s = VecSource::new(vec![1, 2, 3]);
        assert_eq!(s.size_hint(), Some(3));
        assert_eq!(drain(s), vec![1, 2, 3]);
    }

    #[test]
    fn iter_source_wraps_any_iterator() {
        let s = IterSource::new((0..4).map(|x| x * x));
        assert_eq!(s.size_hint(), Some(4));
        assert_eq!(drain(s), vec![0, 1, 4, 9]);
    }

    #[test]
    fn gen_source_counts_from_zero_and_stops() {
        let s = GenSource::new(|i| if i < 3 { Some(i * 10) } else { None });
        assert_eq!(drain(s), vec![0, 10, 20]);
    }

    #[test]
    fn empty_sources() {
        assert!(drain(VecSource::<i32>::new(vec![])).is_empty());
        assert!(drain(GenSource::new(|_| None::<i32>)).is_empty());
    }
}
