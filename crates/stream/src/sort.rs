//! Watermark-driven event-time sorting.
//!
//! Algorithm 1, step 3 of the paper ends with `sortByTimestamp(Dᵖ)`:
//! after the polluted sub-streams are merged, the output is re-ordered by
//! timestamp. In a streaming setting the sort cannot wait for the end of
//! the (possibly unbounded) stream; instead the sorter buffers records
//! and releases everything at or below each incoming watermark, in
//! timestamp order. A delayed-tuple polluter upstream together with this
//! sorter reproduces exactly the "late tuple disturbs the strictly
//! increasing order" effect that experiment 3.1.3 detects.

use crate::checkpoint::{CheckpointBarrier, StateSnapshot};
use crate::metrics::SorterMetrics;
use crate::operator::{Collector, Operator};
use icewafl_obs::trace;
use icewafl_types::{Error, Result, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// Initial reorder-buffer capacity, reserved on the first record. Sized
/// to a few source watermark periods (default 64), since the buffer
/// drains at every watermark and only delayed tuples accumulate beyond
/// one period.
const INITIAL_BUFFER_CAPACITY: usize = 256;

/// Furthest a record may land from the buffer tail and still be
/// inserted in place. Beyond this the `Vec::insert` memmove dominates
/// (a long sorted run arriving behind the buffer — e.g. a sequential
/// union draining sub-streams back to back — would degrade to O(n²)),
/// so the record goes to the overflow heap instead.
const MAX_INSERT_SHIFT: usize = 64;

/// Buffers records and emits them in event-time order as the watermark
/// advances. Ties are broken by arrival order (the sort is stable).
///
/// The primary buffer is a `Vec` kept sorted ascending by timestamp.
/// The dominant case — records arriving in event-time order — appends
/// in O(1), and releasing at a watermark is then a prefix drain with no
/// per-record comparisons, where a heap pays O(log n) per push *and*
/// per pop. A mildly out-of-order record (a delayed tuple, or fine
/// interleaving across merged sub-streams) pays a binary search plus a
/// short mid-vector insert. Only a record landing further than
/// `MAX_INSERT_SHIFT` slots from the tail — the pattern a sequential union
/// produces when it concatenates whole sub-streams — falls back to a
/// min-heap, and a release stream-merges the heap with the buffer
/// prefix. Nothing is ever bulk re-sorted.
pub struct EventTimeSorter<T, F> {
    extract: F,
    /// Sorted ascending by `ts`; equal timestamps keep arrival order
    /// (insertion lands *after* existing equal-ts entries), so
    /// stability within the buffer needs no sequence number.
    buf: Vec<Entry<T>>,
    /// Overflow min-heap for far-out-of-order records, ordered by
    /// `(ts, seq)` so equal timestamps pop in arrival order.
    overflow: BinaryHeap<HeapEntry<T>>,
    /// Arrival counter for heap tie-breaking.
    seq: u64,
    /// Max `ts` in `overflow`. An in-place buffer insert at or below
    /// this would order a later arrival ahead of a heaped equal-ts
    /// record, so such records go to the heap too (keeps ties stable).
    overflow_max: Timestamp,
    last_wm: Timestamp,
    /// Freshest event time seen, for the watermark-lag gauge.
    max_event_ts: Timestamp,
    metrics: SorterMetrics,
    /// Buffer-occupancy peak staged locally; pushed to the shared gauge
    /// only at watermark/end boundaries (a per-record atomic `set_max`
    /// is too expensive for the hot path).
    buffer_peak: u64,
    /// Record codec for checkpoint snapshots; `None` leaves the sorter
    /// un-snapshotted (barriers pass through without a contribution).
    codec: Option<SorterStateCodec<T>>,
    /// Checkpoint-frame key the snapshot is contributed under.
    ckpt_key: String,
}

/// Encodes/decodes the sorter's buffered records for checkpointing.
///
/// The sorter is generic over its record type, so snapshot support is
/// installed explicitly: the runner supplies a codec for the concrete
/// record type it sorts. Records travel as typed JSON documents (see
/// [`StateSnapshot`] for why dynamic values are out).
pub struct SorterStateCodec<T> {
    encode: EncodeFn<T>,
    decode: DecodeFn<T>,
}

/// Boxed record encoder of a [`SorterStateCodec`].
type EncodeFn<T> = Box<dyn Fn(&T) -> Option<String> + Send>;
/// Boxed record decoder of a [`SorterStateCodec`].
type DecodeFn<T> = Box<dyn Fn(&str) -> Option<T> + Send>;

impl<T> SorterStateCodec<T> {
    /// A codec from explicit encode/decode functions.
    pub fn new(
        encode: impl Fn(&T) -> Option<String> + Send + 'static,
        decode: impl Fn(&str) -> Option<T> + Send + 'static,
    ) -> Self {
        SorterStateCodec {
            encode: Box::new(encode),
            decode: Box::new(decode),
        }
    }
}

impl<T: Serialize + Deserialize> SorterStateCodec<T> {
    /// The obvious codec for records that are themselves serde types.
    pub fn serde() -> Self {
        SorterStateCodec::new(
            |t: &T| serde_json::to_string(t).ok(),
            |s: &str| serde_json::from_str(s).ok(),
        )
    }
}

/// Wire form of a sorter snapshot: buffered records in buffer order and
/// heap entries in ascending `(ts, seq)` order, as parallel arrays (the
/// vendored serde has no tuple impls).
#[derive(Debug, Default, Serialize, Deserialize)]
struct SorterState {
    buf_ts: Vec<i64>,
    buf_records: Vec<String>,
    heap_ts: Vec<i64>,
    heap_seq: Vec<u64>,
    heap_records: Vec<String>,
    seq: u64,
    overflow_max: i64,
    last_wm: i64,
    max_event_ts: i64,
    buffer_peak: u64,
}

struct Entry<T> {
    ts: Timestamp,
    record: T,
}

struct HeapEntry<T> {
    ts: Timestamp,
    seq: u64,
    record: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.ts == other.ts && self.seq == other.seq
    }
}

impl<T> Eq for HeapEntry<T> {}

impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for HeapEntry<T> {
    /// Reversed `(ts, seq)` so `BinaryHeap` (a max-heap) pops the
    /// earliest timestamp first, earliest arrival on ties.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.ts, other.seq).cmp(&(self.ts, self.seq))
    }
}

impl<T, F> EventTimeSorter<T, F>
where
    F: FnMut(&T) -> Timestamp,
{
    /// Creates a sorter that orders records by the extracted timestamp.
    pub fn new(extract: F) -> Self {
        EventTimeSorter {
            extract,
            buf: Vec::new(),
            overflow: BinaryHeap::new(),
            seq: 0,
            overflow_max: Timestamp::MIN,
            last_wm: Timestamp::MIN,
            max_event_ts: Timestamp::MIN,
            metrics: SorterMetrics::detached(),
            buffer_peak: 0,
            codec: None,
            ckpt_key: "sorter".to_string(),
        }
    }

    /// Attaches metric handles (late records, lag, buffer occupancy).
    pub fn with_metrics(mut self, metrics: SorterMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Enables checkpoint snapshots: the sorter contributes its exact
    /// state (both buffers, tie-break counter, watermark position)
    /// under `key` whenever a barrier passes through.
    pub fn with_state_codec(mut self, key: impl Into<String>, codec: SorterStateCodec<T>) -> Self {
        self.codec = Some(codec);
        self.ckpt_key = key.into();
        self
    }

    /// Number of records currently held back.
    pub fn buffered(&self) -> usize {
        self.buf.len() + self.overflow.len()
    }

    /// Emits every held record with `ts <= wm` in timestamp order: the
    /// sorted buffer prefix stream-merged with the overflow heap. On a
    /// timestamp tie the buffer entry goes first — anything in `buf`
    /// with a `ts` tied against a heap entry arrived earlier (enforced
    /// by the `overflow_max` guard in `on_element`).
    fn release_up_to(&mut self, wm: Timestamp, out: &mut dyn Collector<T>) {
        let ready = self.buf.partition_point(|e| e.ts <= wm);
        if self.overflow.peek().is_none_or(|h| h.ts > wm) {
            // Fast path: nothing heaped is due, drain the prefix.
            for e in self.buf.drain(..ready) {
                out.collect(e.record);
            }
            return;
        }
        let mut from_buf = self.buf.drain(..ready).peekable();
        loop {
            let heap_due = self.overflow.peek().filter(|h| h.ts <= wm);
            match (from_buf.peek(), heap_due) {
                (Some(b), Some(h)) if h.ts < b.ts => {
                    let h = self.overflow.pop().expect("peeked entry pops");
                    out.collect(h.record);
                }
                (Some(_), _) => {
                    let b = from_buf.next().expect("peeked entry advances");
                    out.collect(b.record);
                }
                (None, Some(_)) => {
                    let h = self.overflow.pop().expect("peeked entry pops");
                    out.collect(h.record);
                }
                (None, None) => break,
            }
        }
        if self.overflow.is_empty() {
            self.overflow_max = Timestamp::MIN;
        }
    }
}

impl<T, F> StateSnapshot for EventTimeSorter<T, F> {
    /// `None` without a codec, or when any record fails to encode (a
    /// snapshot with holes would violate the byte-identical recovery
    /// invariant, so none is taken at all).
    fn snapshot_state(&self) -> Option<String> {
        let codec = self.codec.as_ref()?;
        let mut state = SorterState {
            seq: self.seq,
            overflow_max: self.overflow_max.millis(),
            last_wm: self.last_wm.millis(),
            max_event_ts: self.max_event_ts.millis(),
            buffer_peak: self.buffer_peak,
            ..SorterState::default()
        };
        for e in &self.buf {
            state.buf_ts.push(e.ts.millis());
            state.buf_records.push((codec.encode)(&e.record)?);
        }
        // `BinaryHeap` iteration order is arbitrary; fix it so equal
        // runs produce byte-identical frames.
        let mut heaped: Vec<&HeapEntry<T>> = self.overflow.iter().collect();
        heaped.sort_by_key(|e| (e.ts, e.seq));
        for e in heaped {
            state.heap_ts.push(e.ts.millis());
            state.heap_seq.push(e.seq);
            state.heap_records.push((codec.encode)(&e.record)?);
        }
        serde_json::to_string(&state).ok()
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        let Some(codec) = self.codec.as_ref() else {
            return Err(Error::config("sorter restore requires a state codec"));
        };
        let s: SorterState =
            serde_json::from_str(state).map_err(|_| Error::parse(state, "SorterState"))?;
        if s.buf_ts.len() != s.buf_records.len()
            || s.heap_ts.len() != s.heap_seq.len()
            || s.heap_ts.len() != s.heap_records.len()
        {
            return Err(Error::parse(state, "SorterState"));
        }
        self.buf.clear();
        for (ts, doc) in s.buf_ts.iter().zip(&s.buf_records) {
            let record =
                (codec.decode)(doc).ok_or_else(|| Error::parse(doc.as_str(), "sorter record"))?;
            self.buf.push(Entry {
                ts: Timestamp(*ts),
                record,
            });
        }
        self.overflow.clear();
        for ((ts, seq), doc) in s.heap_ts.iter().zip(&s.heap_seq).zip(&s.heap_records) {
            let record =
                (codec.decode)(doc).ok_or_else(|| Error::parse(doc.as_str(), "sorter record"))?;
            self.overflow.push(HeapEntry {
                ts: Timestamp(*ts),
                seq: *seq,
                record,
            });
        }
        self.seq = s.seq;
        self.overflow_max = Timestamp(s.overflow_max);
        self.last_wm = Timestamp(s.last_wm);
        self.max_event_ts = Timestamp(s.max_event_ts);
        self.buffer_peak = s.buffer_peak;
        Ok(())
    }
}

impl<T, F> Operator<T, T> for EventTimeSorter<T, F>
where
    T: Send,
    F: FnMut(&T) -> Timestamp + Send,
{
    fn on_element(&mut self, record: T, _out: &mut dyn Collector<T>) {
        let ts = (self.extract)(&record);
        if ts > self.max_event_ts {
            self.max_event_ts = ts;
        }
        // A record at or below the current watermark broke the
        // watermark's promise: it is late. It is never dropped — it goes
        // into the buffer and surfaces out of order downstream — but it
        // is counted, with its lag behind the watermark.
        if ts <= self.last_wm && self.last_wm != Timestamp::MIN {
            self.metrics.late.inc();
            self.metrics
                .late_lag_ms
                .record((self.last_wm.0.saturating_sub(ts.0)).max(0) as u64);
        }
        if self.buf.capacity() == 0 {
            self.buf.reserve(INITIAL_BUFFER_CAPACITY);
        }
        match self.buf.last() {
            // Out of order: either a short in-place insert after all
            // equal-or-earlier timestamps, or — when the slot is far
            // from the tail, or an equal-ts record is already heaped —
            // fall back to the overflow heap.
            Some(tail) if tail.ts > ts => {
                let at = self.buf.partition_point(|e| e.ts <= ts);
                if self.buf.len() - at <= MAX_INSERT_SHIFT && ts > self.overflow_max {
                    self.buf.insert(at, Entry { ts, record });
                } else {
                    self.overflow_max = self.overflow_max.max(ts);
                    self.seq += 1;
                    self.overflow.push(HeapEntry {
                        ts,
                        seq: self.seq,
                        record,
                    });
                }
            }
            // In order (the common case): append.
            _ => self.buf.push(Entry { ts, record }),
        }
        self.buffer_peak = self.buffer_peak.max(self.buffered() as u64);
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut dyn Collector<T>) {
        if wm > self.last_wm {
            self.last_wm = wm;
        }
        // How far the watermark trails the freshest event time seen —
        // the live reorder-latency signal the telemetry sampler turns
        // into a time series. The end-of-stream `W(MAX)` sentinel and
        // the pre-first-record state are excluded.
        if self.max_event_ts != Timestamp::MIN && wm != Timestamp::MAX {
            self.metrics
                .watermark_lag_ms
                .set(self.max_event_ts.0.saturating_sub(wm.0).max(0) as u64);
        }
        let held = self.buffered() as u64;
        let mut span = trace::span("sorter_release", "stage");
        if let Some(s) = span.as_mut() {
            s.arg("held", held);
        }
        self.release_up_to(wm, out);
        drop(span);
        self.metrics.buffer_max.set_max(self.buffer_peak);
    }

    fn on_barrier(&mut self, barrier: &CheckpointBarrier) {
        if let Some(doc) = self.snapshot_state() {
            barrier.contribute(self.ckpt_key.clone(), doc);
        }
    }

    fn on_end(&mut self, out: &mut dyn Collector<T>) {
        let held = self.buffered() as u64;
        let mut span = trace::span("sorter_release", "stage");
        if let Some(s) = span.as_mut() {
            s.arg("held", held);
        }
        self.release_up_to(Timestamp::MAX, out);
        drop(span);
        self.metrics.buffer_max.set_max(self.buffer_peak);
    }

    fn name(&self) -> &'static str {
        "event_time_sorter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorter(
    ) -> EventTimeSorter<(i64, &'static str), impl FnMut(&(i64, &'static str)) -> Timestamp> {
        EventTimeSorter::new(|r: &(i64, &'static str)| Timestamp(r.0))
    }

    #[test]
    fn holds_until_watermark() {
        let mut s = sorter();
        let mut out = Vec::new();
        s.on_element((5, "a"), &mut out);
        s.on_element((3, "b"), &mut out);
        assert!(out.is_empty());
        assert_eq!(s.buffered(), 2);
        s.on_watermark(Timestamp(4), &mut out);
        assert_eq!(out, vec![(3, "b")]);
        assert_eq!(s.buffered(), 1);
    }

    #[test]
    fn emits_in_timestamp_order() {
        let mut s = sorter();
        let mut out = Vec::new();
        for r in [(5, "a"), (1, "b"), (3, "c"), (2, "d")] {
            s.on_element(r, &mut out);
        }
        s.on_watermark(Timestamp(10), &mut out);
        assert_eq!(out, vec![(1, "b"), (2, "d"), (3, "c"), (5, "a")]);
    }

    #[test]
    fn stable_on_equal_timestamps() {
        let mut s = sorter();
        let mut out = Vec::new();
        for r in [(1, "first"), (1, "second"), (1, "third")] {
            s.on_element(r, &mut out);
        }
        s.on_end(&mut out);
        assert_eq!(out, vec![(1, "first"), (1, "second"), (1, "third")]);
    }

    #[test]
    fn end_flushes_everything() {
        let mut s = sorter();
        let mut out = Vec::new();
        s.on_element((9, "z"), &mut out);
        s.on_element((2, "y"), &mut out);
        s.on_end(&mut out);
        assert_eq!(out, vec![(2, "y"), (9, "z")]);
        assert_eq!(s.buffered(), 0);
    }

    #[test]
    fn records_arriving_between_watermarks_interleave_correctly() {
        let mut s = sorter();
        let mut out = Vec::new();
        s.on_element((1, "a"), &mut out);
        s.on_watermark(Timestamp(1), &mut out);
        s.on_element((3, "c"), &mut out);
        s.on_element((2, "b"), &mut out);
        s.on_watermark(Timestamp(3), &mut out);
        assert_eq!(out, vec![(1, "a"), (2, "b"), (3, "c")]);
    }

    #[test]
    fn snapshot_round_trips_buffer_heap_and_position() {
        let mut s = EventTimeSorter::new(|x: &i64| Timestamp(*x))
            .with_state_codec("sorter", SorterStateCodec::serde());
        let mut out = Vec::new();
        // Populate the sorted buffer…
        for x in 0..80i64 {
            s.on_element(x * 10, &mut out);
        }
        s.on_watermark(Timestamp(5), &mut out);
        // …and force two entries into the overflow heap (landing more
        // than MAX_INSERT_SHIFT slots behind the tail).
        s.on_element(15, &mut out);
        s.on_element(15, &mut out);
        assert!(s.overflow.len() == 2, "test must exercise the heap path");
        let doc = s.snapshot_state().expect("codec installed");

        let mut r = EventTimeSorter::new(|x: &i64| Timestamp(*x))
            .with_state_codec("sorter", SorterStateCodec::serde());
        r.restore_state(&doc).unwrap();
        assert_eq!(r.buffered(), s.buffered());
        assert_eq!(r.snapshot_state().unwrap(), doc);
        // Both drain identically from here on.
        let (mut a, mut b) = (Vec::new(), Vec::new());
        s.on_watermark(Timestamp(300), &mut a);
        r.on_watermark(Timestamp(300), &mut b);
        assert_eq!(a, b);
        s.on_end(&mut a);
        r.on_end(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_is_none_without_codec() {
        let mut s = sorter();
        let mut out = Vec::new();
        s.on_element((5, "a"), &mut out);
        assert!(s.snapshot_state().is_none());
        assert!(s.restore_state("{}").is_err());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn counts_late_records_and_buffer_high_water() {
        use icewafl_obs::MetricsRegistry;
        let r = MetricsRegistry::new();
        let mut s = EventTimeSorter::new(|r: &(i64, &'static str)| Timestamp(r.0))
            .with_metrics(SorterMetrics::register(&r, "sorter"));
        let mut out = Vec::new();
        s.on_element((1, "a"), &mut out);
        s.on_element((2, "b"), &mut out);
        s.on_watermark(Timestamp(5), &mut out);
        // ts 3 <= wm 5: late by 2 ms, but still emitted at the end.
        s.on_element((3, "late"), &mut out);
        s.on_end(&mut out);
        assert_eq!(out, vec![(1, "a"), (2, "b"), (3, "late")]);
        let snap = r.snapshot();
        assert_eq!(snap.counter("sorter/late"), 1);
        assert_eq!(snap.histogram("sorter/late_lag_ms").unwrap().sum, 2);
        assert_eq!(snap.gauge("sorter/buffer_max"), 2);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn tracks_watermark_lag_behind_freshest_event() {
        use icewafl_obs::MetricsRegistry;
        let r = MetricsRegistry::new();
        let mut s = EventTimeSorter::new(|r: &(i64, &'static str)| Timestamp(r.0))
            .with_metrics(SorterMetrics::register(&r, "sorter"));
        let mut out = Vec::new();
        s.on_element((10, "a"), &mut out);
        s.on_watermark(Timestamp(4), &mut out);
        assert_eq!(r.snapshot().gauge("sorter/watermark_lag_ms"), 6);
        s.on_watermark(Timestamp(10), &mut out);
        assert_eq!(r.snapshot().gauge("sorter/watermark_lag_ms"), 0);
        // The end-of-stream sentinel release leaves the gauge untouched.
        s.on_end(&mut out);
        assert_eq!(r.snapshot().gauge("sorter/watermark_lag_ms"), 0);
    }

    #[cfg(test)]
    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The sorter emits a permutation of its input, sorted by
            /// timestamp, regardless of watermark placement.
            #[test]
            fn emits_sorted_permutation(
                records in proptest::collection::vec((0i64..100, 0u32..1000), 0..200),
                wm_every in 1usize..10,
            ) {
                let mut s = EventTimeSorter::new(|r: &(i64, u32)| Timestamp(r.0));
                let mut out = Vec::new();
                for (i, r) in records.iter().enumerate() {
                    s.on_element(*r, &mut out);
                    if (i + 1) % wm_every == 0 {
                        // A *valid* watermark promises no future record has
                        // ts <= wm: cap the max-seen watermark by the
                        // smallest future timestamp minus one.
                        let seen = records[..=i].iter().map(|r| r.0).max().unwrap();
                        let future_min =
                            records[i + 1..].iter().map(|r| r.0).min().unwrap_or(i64::MAX - 1);
                        let wm = seen.min(future_min - 1);
                        s.on_watermark(Timestamp(wm), &mut out);
                    }
                }
                s.on_end(&mut out);
                // Sorted by ts.
                prop_assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
                // Permutation of the input.
                let mut a = records.clone();
                let mut b = out.clone();
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b);
            }
        }
    }
}
