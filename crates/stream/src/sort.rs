//! Watermark-driven event-time sorting.
//!
//! Algorithm 1, step 3 of the paper ends with `sortByTimestamp(Dᵖ)`:
//! after the polluted sub-streams are merged, the output is re-ordered by
//! timestamp. In a streaming setting the sort cannot wait for the end of
//! the (possibly unbounded) stream; instead the sorter buffers records
//! and releases everything at or below each incoming watermark, in
//! timestamp order. A delayed-tuple polluter upstream together with this
//! sorter reproduces exactly the "late tuple disturbs the strictly
//! increasing order" effect that experiment 3.1.3 detects.

use crate::metrics::SorterMetrics;
use crate::operator::{Collector, Operator};
use icewafl_types::Timestamp;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Buffers records and emits them in event-time order as the watermark
/// advances. Ties are broken by arrival order (the sort is stable).
pub struct EventTimeSorter<T, F> {
    extract: F,
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
    last_wm: Timestamp,
    metrics: SorterMetrics,
    /// Buffer-occupancy peak staged locally; pushed to the shared gauge
    /// only at watermark/end boundaries (a per-record atomic `set_max`
    /// is too expensive for the hot path).
    buffer_peak: u64,
}

struct Entry<T> {
    ts: Timestamp,
    seq: u64,
    record: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.ts == other.ts && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ts, self.seq).cmp(&(other.ts, other.seq))
    }
}

impl<T, F> EventTimeSorter<T, F>
where
    F: FnMut(&T) -> Timestamp,
{
    /// Creates a sorter that orders records by the extracted timestamp.
    pub fn new(extract: F) -> Self {
        EventTimeSorter {
            extract,
            heap: BinaryHeap::new(),
            seq: 0,
            last_wm: Timestamp::MIN,
            metrics: SorterMetrics::detached(),
            buffer_peak: 0,
        }
    }

    /// Attaches metric handles (late records, lag, buffer occupancy).
    pub fn with_metrics(mut self, metrics: SorterMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Number of records currently held back.
    pub fn buffered(&self) -> usize {
        self.heap.len()
    }

    fn release_up_to(&mut self, wm: Timestamp, out: &mut dyn Collector<T>) {
        // Peek-then-pop without an `expect`: pop first, push back the one
        // entry that is still beyond the watermark.
        while let Some(Reverse(e)) = self.heap.pop() {
            if e.ts > wm {
                self.heap.push(Reverse(e));
                break;
            }
            out.collect(e.record);
        }
    }
}

impl<T, F> Operator<T, T> for EventTimeSorter<T, F>
where
    T: Send,
    F: FnMut(&T) -> Timestamp + Send,
{
    fn on_element(&mut self, record: T, _out: &mut dyn Collector<T>) {
        let ts = (self.extract)(&record);
        // A record at or below the current watermark broke the
        // watermark's promise: it is late. It is never dropped — it goes
        // into the buffer and surfaces out of order downstream — but it
        // is counted, with its lag behind the watermark.
        if ts <= self.last_wm && self.last_wm != Timestamp::MIN {
            self.metrics.late.inc();
            self.metrics
                .late_lag_ms
                .record((self.last_wm.0.saturating_sub(ts.0)).max(0) as u64);
        }
        self.heap.push(Reverse(Entry {
            ts,
            seq: self.seq,
            record,
        }));
        self.seq += 1;
        self.buffer_peak = self.buffer_peak.max(self.heap.len() as u64);
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut dyn Collector<T>) {
        if wm > self.last_wm {
            self.last_wm = wm;
        }
        self.release_up_to(wm, out);
        self.metrics.buffer_max.set_max(self.buffer_peak);
    }

    fn on_end(&mut self, out: &mut dyn Collector<T>) {
        self.release_up_to(Timestamp::MAX, out);
        self.metrics.buffer_max.set_max(self.buffer_peak);
    }

    fn name(&self) -> &'static str {
        "event_time_sorter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorter(
    ) -> EventTimeSorter<(i64, &'static str), impl FnMut(&(i64, &'static str)) -> Timestamp> {
        EventTimeSorter::new(|r: &(i64, &'static str)| Timestamp(r.0))
    }

    #[test]
    fn holds_until_watermark() {
        let mut s = sorter();
        let mut out = Vec::new();
        s.on_element((5, "a"), &mut out);
        s.on_element((3, "b"), &mut out);
        assert!(out.is_empty());
        assert_eq!(s.buffered(), 2);
        s.on_watermark(Timestamp(4), &mut out);
        assert_eq!(out, vec![(3, "b")]);
        assert_eq!(s.buffered(), 1);
    }

    #[test]
    fn emits_in_timestamp_order() {
        let mut s = sorter();
        let mut out = Vec::new();
        for r in [(5, "a"), (1, "b"), (3, "c"), (2, "d")] {
            s.on_element(r, &mut out);
        }
        s.on_watermark(Timestamp(10), &mut out);
        assert_eq!(out, vec![(1, "b"), (2, "d"), (3, "c"), (5, "a")]);
    }

    #[test]
    fn stable_on_equal_timestamps() {
        let mut s = sorter();
        let mut out = Vec::new();
        for r in [(1, "first"), (1, "second"), (1, "third")] {
            s.on_element(r, &mut out);
        }
        s.on_end(&mut out);
        assert_eq!(out, vec![(1, "first"), (1, "second"), (1, "third")]);
    }

    #[test]
    fn end_flushes_everything() {
        let mut s = sorter();
        let mut out = Vec::new();
        s.on_element((9, "z"), &mut out);
        s.on_element((2, "y"), &mut out);
        s.on_end(&mut out);
        assert_eq!(out, vec![(2, "y"), (9, "z")]);
        assert_eq!(s.buffered(), 0);
    }

    #[test]
    fn records_arriving_between_watermarks_interleave_correctly() {
        let mut s = sorter();
        let mut out = Vec::new();
        s.on_element((1, "a"), &mut out);
        s.on_watermark(Timestamp(1), &mut out);
        s.on_element((3, "c"), &mut out);
        s.on_element((2, "b"), &mut out);
        s.on_watermark(Timestamp(3), &mut out);
        assert_eq!(out, vec![(1, "a"), (2, "b"), (3, "c")]);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn counts_late_records_and_buffer_high_water() {
        use icewafl_obs::MetricsRegistry;
        let r = MetricsRegistry::new();
        let mut s = EventTimeSorter::new(|r: &(i64, &'static str)| Timestamp(r.0))
            .with_metrics(SorterMetrics::register(&r, "sorter"));
        let mut out = Vec::new();
        s.on_element((1, "a"), &mut out);
        s.on_element((2, "b"), &mut out);
        s.on_watermark(Timestamp(5), &mut out);
        // ts 3 <= wm 5: late by 2 ms, but still emitted at the end.
        s.on_element((3, "late"), &mut out);
        s.on_end(&mut out);
        assert_eq!(out, vec![(1, "a"), (2, "b"), (3, "late")]);
        let snap = r.snapshot();
        assert_eq!(snap.counter("sorter/late"), 1);
        assert_eq!(snap.histogram("sorter/late_lag_ms").unwrap().sum, 2);
        assert_eq!(snap.gauge("sorter/buffer_max"), 2);
    }

    #[cfg(test)]
    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The sorter emits a permutation of its input, sorted by
            /// timestamp, regardless of watermark placement.
            #[test]
            fn emits_sorted_permutation(
                records in proptest::collection::vec((0i64..100, 0u32..1000), 0..200),
                wm_every in 1usize..10,
            ) {
                let mut s = EventTimeSorter::new(|r: &(i64, u32)| Timestamp(r.0));
                let mut out = Vec::new();
                for (i, r) in records.iter().enumerate() {
                    s.on_element(*r, &mut out);
                    if (i + 1) % wm_every == 0 {
                        // A *valid* watermark promises no future record has
                        // ts <= wm: cap the max-seen watermark by the
                        // smallest future timestamp minus one.
                        let seen = records[..=i].iter().map(|r| r.0).max().unwrap();
                        let future_min =
                            records[i + 1..].iter().map(|r| r.0).min().unwrap_or(i64::MAX - 1);
                        let wm = seen.min(future_min - 1);
                        s.on_watermark(Timestamp(wm), &mut out);
                    }
                }
                s.on_end(&mut out);
                // Sorted by ts.
                prop_assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
                // Permutation of the input.
                let mut a = records.clone();
                let mut b = out.clone();
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b);
            }
        }
    }
}
