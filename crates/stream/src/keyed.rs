//! Keyed, stateful processing — the analogue of Flink's
//! `KeyedProcessFunction`.
//!
//! The paper's future-work section (§5, item 2) points at keyed process
//! functions as the mechanism for stateful, per-key pollution in
//! distributed settings; this operator provides them for our runtime.
//! The *frozen value* polluter also builds on per-attribute state of this
//! shape.

use crate::operator::{Collector, Operator};
use icewafl_types::Timestamp;
use std::collections::HashMap;
use std::hash::Hash;

/// Per-key stateful operator.
///
/// Records are partitioned by `key_fn`; each key gets its own state of
/// type `S` (created by `S::default()` on first use). The process
/// function receives the state mutably and may emit any number of output
/// records.
pub struct KeyedProcessOperator<K, S, KF, PF> {
    key_fn: KF,
    process_fn: PF,
    states: HashMap<K, S>,
}

impl<K, S, KF, PF> KeyedProcessOperator<K, S, KF, PF>
where
    K: Eq + Hash,
    S: Default,
{
    /// Creates a keyed operator from a key extractor and a process
    /// function.
    pub fn new(key_fn: KF, process_fn: PF) -> Self {
        KeyedProcessOperator {
            key_fn,
            process_fn,
            states: HashMap::new(),
        }
    }

    /// Number of distinct keys seen so far.
    pub fn key_count(&self) -> usize {
        self.states.len()
    }
}

impl<In, Out, K, S, KF, PF> Operator<In, Out> for KeyedProcessOperator<K, S, KF, PF>
where
    K: Eq + Hash + Send,
    S: Default + Send,
    KF: FnMut(&In) -> K + Send,
    PF: FnMut(&mut S, In, &mut dyn Collector<Out>) + Send,
{
    fn on_element(&mut self, record: In, out: &mut dyn Collector<Out>) {
        let key = (self.key_fn)(&record);
        let state = self.states.entry(key).or_default();
        (self.process_fn)(state, record, out);
    }

    fn name(&self) -> &'static str {
        "keyed_process"
    }
}

/// Keyed rolling aggregation: emits `(key, aggregate)` after every
/// record. A convenience specialization of [`KeyedProcessOperator`]
/// covering the common monitoring pattern (running counts, running
/// means).
pub struct KeyedFoldOperator<K, A, KF, FF> {
    inner_key: KF,
    fold: FF,
    states: HashMap<K, A>,
}

impl<K, A, KF, FF> KeyedFoldOperator<K, A, KF, FF>
where
    K: Eq + Hash,
    A: Default,
{
    /// Creates a keyed fold from a key extractor and a fold function.
    pub fn new(inner_key: KF, fold: FF) -> Self {
        KeyedFoldOperator {
            inner_key,
            fold,
            states: HashMap::new(),
        }
    }
}

impl<In, K, A, KF, FF> Operator<In, (K, A)> for KeyedFoldOperator<K, A, KF, FF>
where
    K: Eq + Hash + Clone + Send,
    A: Default + Clone + Send,
    KF: FnMut(&In) -> K + Send,
    FF: FnMut(&mut A, In) + Send,
{
    fn on_element(&mut self, record: In, out: &mut dyn Collector<(K, A)>) {
        let key = (self.inner_key)(&record);
        let acc = self.states.entry(key.clone()).or_default();
        (self.fold)(acc, record);
        out.collect((key, acc.clone()));
    }

    fn on_end(&mut self, _out: &mut dyn Collector<(K, A)>) {}

    fn name(&self) -> &'static str {
        "keyed_fold"
    }
}

/// An operator that exposes watermark progress to a callback — useful
/// for tests and for instrumentation.
pub struct WatermarkProbe<F> {
    callback: F,
}

impl<F> WatermarkProbe<F> {
    /// Wraps a watermark callback.
    pub fn new(callback: F) -> Self {
        WatermarkProbe { callback }
    }
}

impl<T, F> Operator<T, T> for WatermarkProbe<F>
where
    T: Send,
    F: FnMut(Timestamp) + Send,
{
    fn on_element(&mut self, record: T, out: &mut dyn Collector<T>) {
        out.collect(record);
    }

    fn on_watermark(&mut self, wm: Timestamp, _out: &mut dyn Collector<T>) {
        (self.callback)(wm);
    }

    fn name(&self) -> &'static str {
        "watermark_probe"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_is_partitioned_by_key() {
        // Running count per parity class.
        let mut op = KeyedProcessOperator::new(
            |x: &i32| x % 2,
            |count: &mut i32, x: i32, out: &mut dyn Collector<(i32, i32)>| {
                *count += 1;
                out.collect((x, *count));
            },
        );
        let mut out = Vec::new();
        for x in [1, 2, 3, 4, 5] {
            op.on_element(x, &mut out);
        }
        assert_eq!(out, vec![(1, 1), (2, 1), (3, 2), (4, 2), (5, 3)]);
        assert_eq!(op.key_count(), 2);
    }

    #[test]
    fn keyed_fold_emits_running_aggregate() {
        let mut op = KeyedFoldOperator::new(
            |s: &(&'static str, i64)| -> &'static str { s.0 },
            |sum: &mut i64, r: (&str, i64)| *sum += r.1,
        );
        let mut out = Vec::new();
        op.on_element(("a", 1), &mut out);
        op.on_element(("b", 10), &mut out);
        op.on_element(("a", 2), &mut out);
        assert_eq!(out, vec![("a", 1), ("b", 10), ("a", 3)]);
    }

    #[test]
    fn watermark_probe_sees_watermarks() {
        let mut seen = Vec::new();
        {
            let mut op = WatermarkProbe::new(|wm| seen.push(wm));
            let mut out: Vec<i32> = Vec::new();
            op.on_element(1, &mut out);
            op.on_watermark(Timestamp(10), &mut out);
            op.on_watermark(Timestamp(20), &mut out);
            assert_eq!(out, vec![1]);
        }
        assert_eq!(seen, vec![Timestamp(10), Timestamp(20)]);
    }
}
