//! Event-time watermark generation.
//!
//! A watermark `W(t)` asserts that no future record has event time `≤ t`.
//! The source runtime consults a [`WatermarkStrategy`] after each record
//! and injects the watermarks it produces into the stream.

use icewafl_types::{Duration, Timestamp};

/// How a stream assigns event times and emits watermarks.
pub struct WatermarkStrategy<T> {
    kind: Kind<T>,
}

type Extractor<T> = Box<dyn FnMut(&T) -> Timestamp + Send>;

enum Kind<T> {
    /// No intermediate watermarks; only the final `W(MAX)` before the end
    /// marker. Stateful operators then behave like batch operators.
    None,
    /// Watermark = max event time seen − `delay`, emitted every `period`
    /// records (Flink's "bounded out-of-orderness" strategy).
    Bounded {
        extract: Extractor<T>,
        delay: Duration,
        period: u64,
    },
}

impl<T> WatermarkStrategy<T> {
    /// No watermarks until end of stream (batch-like execution).
    pub fn none() -> Self {
        WatermarkStrategy { kind: Kind::None }
    }

    /// Watermarks for perfectly ordered streams: after every record, the
    /// watermark advances to that record's event time.
    pub fn ascending(extract: impl FnMut(&T) -> Timestamp + Send + 'static) -> Self {
        Self::bounded_out_of_orderness(extract, Duration::ZERO, 1)
    }

    /// Watermarks that tolerate records up to `delay` out of order,
    /// emitted every `period` records (`period ≥ 1`).
    pub fn bounded_out_of_orderness(
        extract: impl FnMut(&T) -> Timestamp + Send + 'static,
        delay: Duration,
        period: u64,
    ) -> Self {
        WatermarkStrategy {
            kind: Kind::Bounded {
                extract: Box::new(extract),
                delay,
                period: period.max(1),
            },
        }
    }

    /// Instantiates the per-stream generator state.
    pub(crate) fn generator(self) -> WatermarkGenerator<T> {
        WatermarkGenerator {
            kind: self.kind,
            max_ts: Timestamp::MIN,
            seen: 0,
            last_emitted: None,
        }
    }
}

/// Stateful watermark generator owned by a running source.
pub(crate) struct WatermarkGenerator<T> {
    kind: Kind<T>,
    max_ts: Timestamp,
    seen: u64,
    last_emitted: Option<Timestamp>,
}

impl<T> WatermarkGenerator<T> {
    /// The generator's exact position, captured into checkpoint frames
    /// so a replayed source resumes the same emission cadence.
    pub(crate) fn state(&self) -> crate::checkpoint::WatermarkGenState {
        crate::checkpoint::WatermarkGenState {
            max_ts: self.max_ts.millis(),
            seen: self.seen,
            last_emitted: self.last_emitted.map(|t| t.millis()),
        }
    }

    /// Restores a position captured by [`WatermarkGenerator::state`].
    pub(crate) fn restore(&mut self, state: &crate::checkpoint::WatermarkGenState) {
        self.max_ts = Timestamp(state.max_ts);
        self.seen = state.seen;
        self.last_emitted = state.last_emitted.map(Timestamp);
    }

    /// Observes a record; returns a watermark to emit after it, if any.
    pub(crate) fn on_record(&mut self, record: &T) -> Option<Timestamp> {
        match &mut self.kind {
            Kind::None => None,
            Kind::Bounded {
                extract,
                delay,
                period,
            } => {
                let ts = extract(record);
                if ts > self.max_ts {
                    self.max_ts = ts;
                }
                self.seen += 1;
                if self.seen.is_multiple_of(*period) && self.max_ts > Timestamp::MIN {
                    let wm = Timestamp(self.max_ts.millis().saturating_sub(delay.millis()));
                    // Watermarks must be monotone; suppress regressions
                    // and duplicates.
                    if self.last_emitted.is_none_or(|last| wm > last) {
                        self.last_emitted = Some(wm);
                        return Some(wm);
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_strategy_never_emits() {
        let mut g = WatermarkStrategy::<i64>::none().generator();
        for x in 0..10 {
            assert_eq!(g.on_record(&x), None);
        }
    }

    #[test]
    fn ascending_tracks_each_record() {
        let mut g = WatermarkStrategy::ascending(|x: &i64| Timestamp(*x)).generator();
        assert_eq!(g.on_record(&5), Some(Timestamp(5)));
        assert_eq!(g.on_record(&7), Some(Timestamp(7)));
    }

    #[test]
    fn watermarks_are_monotone_under_disorder() {
        let mut g = WatermarkStrategy::ascending(|x: &i64| Timestamp(*x)).generator();
        assert_eq!(g.on_record(&5), Some(Timestamp(5)));
        // An out-of-order record must not drag the watermark backwards.
        assert_eq!(g.on_record(&3), None);
        assert_eq!(g.on_record(&6), Some(Timestamp(6)));
    }

    #[test]
    fn bounded_delay_subtracts() {
        let mut g = WatermarkStrategy::bounded_out_of_orderness(
            |x: &i64| Timestamp(*x),
            Duration::from_millis(10),
            1,
        )
        .generator();
        assert_eq!(g.on_record(&100), Some(Timestamp(90)));
    }

    #[test]
    fn period_batches_emissions() {
        let mut g =
            WatermarkStrategy::bounded_out_of_orderness(|x: &i64| Timestamp(*x), Duration::ZERO, 3)
                .generator();
        assert_eq!(g.on_record(&1), None);
        assert_eq!(g.on_record(&2), None);
        assert_eq!(g.on_record(&3), Some(Timestamp(3)));
        assert_eq!(g.on_record(&4), None);
    }

    #[test]
    fn zero_period_is_clamped_to_one() {
        let mut g =
            WatermarkStrategy::bounded_out_of_orderness(|x: &i64| Timestamp(*x), Duration::ZERO, 0)
                .generator();
        assert_eq!(g.on_record(&1), Some(Timestamp(1)));
    }
}
