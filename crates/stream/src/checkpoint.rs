//! Checkpointed recovery: epoch-aligned snapshots and a write-ahead
//! checkpoint log.
//!
//! The subsystem follows the classic asynchronous-barrier-snapshot
//! design, specialised to this runtime's watermark-aligned epochs
//! (the same boundaries runtime reconfiguration swaps plans at — see
//! [`crate::control`]): a [`CheckpointBarrier`] is injected by the
//! source driver right after every `interval`-th watermark and flows
//! through every stage as a regular [`StreamElement::Barrier`]
//! control element. Each stateful operator contributes its exact state
//! to the barrier's shared `PendingCheckpoint` as the barrier passes
//! (RNG stream positions, sorter buffers, temporal-polluter heaps, …);
//! the sink-side committer finalises the frame — recording how many
//! records it had written — into the run's [`CheckpointStore`] and,
//! when a directory is configured, appends it to a versioned
//! write-ahead log (length-prefixed frames + CRC32,
//! the same codec shape as [`crate::net`]).
//!
//! On a supervised retry the runner restores the latest *complete*
//! frame instead of restarting from tuple zero: the sink is truncated
//! to the committed prefix, operator state is restored, and the
//! (replayable) source resumes from the recorded offset. The
//! non-negotiable invariant is that recovered output is byte-identical
//! to an undisturbed run, which is why snapshots capture RNG positions
//! exactly rather than re-seeding.
//!
//! [`StreamElement::Barrier`]: crate::element::StreamElement::Barrier

use icewafl_types::{Error, Result, Timestamp};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Version stamped into every WAL header and frame.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Magic bytes opening a checkpoint log file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"IWCK";

/// Largest accepted frame payload (a corrupt length prefix must not
/// trigger a giant allocation).
pub const MAX_CHECKPOINT_FRAME_BYTES: usize = 64 << 20;

/// Operators that can capture and restore their exact runtime state.
///
/// `snapshot_state` must capture *everything* that influences future
/// output — RNG stream positions, buffered records, pending counters —
/// because the recovery invariant is byte-identical output, not
/// approximate resumption. Stateless operators keep the defaults.
///
/// State travels as a *typed* JSON document (each implementor
/// serialises its own state struct), never as a dynamic
/// `serde_json::Value`: the dynamic value stores all numbers as `f64`,
/// which would silently corrupt 64-bit RNG state words.
pub trait StateSnapshot {
    /// This operator's complete state as a JSON document, or `None`
    /// when stateless.
    fn snapshot_state(&self) -> Option<String> {
        None
    }

    /// Restores state captured by [`StateSnapshot::snapshot_state`] on
    /// a freshly built instance of the same configuration.
    fn restore_state(&mut self, state: &str) -> Result<()> {
        let _ = state;
        Ok(())
    }
}

/// Watermark-generator position at a barrier, captured so a replayed
/// source resumes the exact emission cadence (`seen` drives the
/// periodic trigger; `last_emitted` the monotonicity filter).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WatermarkGenState {
    /// Maximum event timestamp observed (millis).
    pub max_ts: i64,
    /// Records seen by the generator.
    pub seen: u64,
    /// Last emitted watermark (millis), if any.
    pub last_emitted: Option<i64>,
}

/// One complete, committed checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointFrame {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The epoch this barrier closed (1-based).
    pub epoch: u64,
    /// The watermark the barrier was aligned to.
    pub watermark: Timestamp,
    /// Records the source had emitted when the barrier was injected —
    /// the replay offset.
    pub source_offset: u64,
    /// Records the sink had committed when the barrier arrived — the
    /// truncation point for shared sinks on restore.
    pub sink_committed: u64,
    /// Source watermark-generator position.
    pub wm_state: WatermarkGenState,
    /// Per-operator state contributions (typed JSON documents), keyed
    /// by stable operator key (`substream_0`, `chaos_0`, `sorter`, …).
    pub states: BTreeMap<String, String>,
}

/// In-flight snapshot shared by every clone of one barrier.
#[derive(Debug)]
struct PendingCheckpoint {
    epoch: u64,
    watermark: Timestamp,
    source_offset: u64,
    wm_state: WatermarkGenState,
    states: Mutex<BTreeMap<String, String>>,
    store: Arc<CheckpointStore>,
}

/// The control element injected at epoch boundaries.
///
/// Clones share one `PendingCheckpoint`, so contributions from
/// fanned-out sub-streams all land in the same frame.
#[derive(Debug, Clone)]
pub struct CheckpointBarrier {
    pending: Arc<PendingCheckpoint>,
}

impl PartialEq for CheckpointBarrier {
    /// Two barriers are equal iff they are clones of the same injection
    /// (they share one `PendingCheckpoint`).
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.pending, &other.pending)
    }
}

impl CheckpointBarrier {
    /// The epoch this barrier closes (1-based).
    pub fn epoch(&self) -> u64 {
        self.pending.epoch
    }

    /// The watermark this barrier rides behind.
    pub fn watermark(&self) -> Timestamp {
        self.pending.watermark
    }

    /// The source replay offset captured at injection.
    pub fn source_offset(&self) -> u64 {
        self.pending.source_offset
    }

    /// Records an operator's state contribution under `key`. Keys must
    /// be unique per operator; the last write wins.
    pub fn contribute(&self, key: impl Into<String>, state: String) {
        self.pending.states.lock().insert(key.into(), state);
    }

    /// Sink-side commit: finalises the frame with the number of records
    /// the sink had written and hands it to the [`CheckpointStore`]
    /// (which appends it to the WAL when one is open).
    pub fn commit(&self, sink_committed: u64) {
        let frame = CheckpointFrame {
            version: CHECKPOINT_VERSION,
            epoch: self.pending.epoch,
            watermark: self.pending.watermark,
            source_offset: self.pending.source_offset,
            sink_committed,
            wm_state: self.pending.wm_state.clone(),
            states: self.pending.states.lock().clone(),
        };
        self.pending.store.commit(frame);
    }
}

/// Decides when barriers are injected and builds them.
///
/// Lives in the source driver: counts watermarks and, after every
/// `interval`-th one, emits a barrier capturing the source offset and
/// watermark-generator position at that instant.
pub struct CheckpointCoordinator {
    store: Arc<CheckpointStore>,
    interval: u64,
    next_epoch: u64,
    wms_since: u64,
    emitted: Arc<AtomicU64>,
}

impl CheckpointCoordinator {
    /// A coordinator checkpointing every `interval_epochs` watermarks
    /// (clamped to ≥ 1), numbering epochs from `start_epoch + 1`.
    pub fn new(store: Arc<CheckpointStore>, interval_epochs: u64, start_epoch: u64) -> Self {
        CheckpointCoordinator {
            store,
            interval: interval_epochs.max(1),
            next_epoch: start_epoch + 1,
            wms_since: 0,
            emitted: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Shared counter of records the source driver has emitted this
    /// attempt — the runner reads it to compute `replayed_tuples`.
    pub fn emitted_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.emitted)
    }

    /// Called by the source driver per emitted record.
    pub fn on_record(&mut self) {
        self.emitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Called by the source driver after pushing watermark `wm`;
    /// returns a barrier to inject when this watermark closes an epoch.
    /// `source_offset` is the *absolute* record offset (including any
    /// replayed prefix); the terminal `Timestamp::MAX` watermark never
    /// triggers a barrier.
    pub fn on_watermark(
        &mut self,
        wm: Timestamp,
        source_offset: u64,
        wm_state: WatermarkGenState,
    ) -> Option<CheckpointBarrier> {
        if wm == Timestamp::MAX {
            return None;
        }
        self.wms_since += 1;
        if self.wms_since < self.interval {
            return None;
        }
        self.wms_since = 0;
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        Some(CheckpointBarrier {
            pending: Arc::new(PendingCheckpoint {
                epoch,
                watermark: wm,
                source_offset,
                wm_state,
                states: Mutex::new(BTreeMap::new()),
                store: Arc::clone(&self.store),
            }),
        })
    }
}

/// Holds the latest complete checkpoint of a run and (optionally) the
/// on-disk write-ahead log; shared across supervised attempts.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    latest: Mutex<Option<CheckpointFrame>>,
    taken: AtomicU64,
    wal: Option<Mutex<BufWriter<File>>>,
    wal_path: Option<PathBuf>,
}

impl CheckpointStore {
    /// An in-memory store (no WAL).
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// A store appending every committed frame to `path` (the file is
    /// created with a magic + version header; an existing file is
    /// truncated — recover from it *first* via
    /// [`CheckpointStore::read_wal`]).
    pub fn with_wal(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| Error::Io(e.to_string()))?;
            }
        }
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| Error::Io(e.to_string()))?;
        let mut w = BufWriter::new(file);
        w.write_all(&CHECKPOINT_MAGIC)
            .and_then(|_| w.write_all(&CHECKPOINT_VERSION.to_le_bytes()))
            .and_then(|_| w.flush())
            .map_err(|e| Error::Io(e.to_string()))?;
        Ok(CheckpointStore {
            latest: Mutex::new(None),
            taken: AtomicU64::new(0),
            wal: Some(Mutex::new(w)),
            wal_path: Some(path.to_path_buf()),
        })
    }

    /// Path of the WAL file, when one is open.
    pub fn wal_path(&self) -> Option<&Path> {
        self.wal_path.as_deref()
    }

    /// Commits a completed frame: appends it to the WAL (when open),
    /// then publishes it as the latest restore point. WAL write errors
    /// are swallowed after poisoning nothing — a failed checkpoint
    /// must never fail the run, it only forfeits the restore point.
    pub fn commit(&self, frame: CheckpointFrame) {
        if let Some(wal) = &self.wal {
            let payload = match serde_json::to_string(&frame) {
                Ok(p) => p.into_bytes(),
                Err(_) => return,
            };
            let mut w = wal.lock();
            let ok = w
                .write_all(&(payload.len() as u32).to_le_bytes())
                .and_then(|_| w.write_all(&crc32(&payload).to_le_bytes()))
                .and_then(|_| w.write_all(&payload))
                .and_then(|_| w.flush());
            if ok.is_err() {
                return;
            }
        }
        self.taken.fetch_add(1, Ordering::Relaxed);
        *self.latest.lock() = Some(frame);
    }

    /// The latest complete frame, if any checkpoint committed yet.
    pub fn latest(&self) -> Option<CheckpointFrame> {
        self.latest.lock().clone()
    }

    /// Number of checkpoints committed through this store.
    pub fn checkpoints_taken(&self) -> u64 {
        self.taken.load(Ordering::Relaxed)
    }

    /// Reads every intact frame from a WAL file, stopping at the first
    /// truncated or corrupt record (a torn tail from a crash is
    /// expected, not an error). Fails only when the header itself is
    /// unreadable or from a different version.
    pub fn read_wal(path: impl AsRef<Path>) -> Result<Vec<CheckpointFrame>> {
        let mut file = File::open(path.as_ref()).map_err(|e| Error::Io(e.to_string()))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| Error::Io(e.to_string()))?;
        if bytes.len() < 8 || bytes[..4] != CHECKPOINT_MAGIC {
            return Err(Error::Io("not a checkpoint log (bad magic)".into()));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != CHECKPOINT_VERSION {
            return Err(Error::Io(format!(
                "checkpoint log version {version} (supported: {CHECKPOINT_VERSION})"
            )));
        }
        let mut frames = Vec::new();
        let mut at = 8usize;
        while let Some(header) = bytes.get(at..at + 8) {
            let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
            if len > MAX_CHECKPOINT_FRAME_BYTES {
                break;
            }
            let Some(payload) = bytes.get(at + 8..at + 8 + len) else {
                break;
            };
            if crc32(payload) != crc {
                break;
            }
            let Ok(text) = std::str::from_utf8(payload) else {
                break;
            };
            let Ok(frame) = serde_json::from_str::<CheckpointFrame>(text) else {
                break;
            };
            frames.push(frame);
            at += 8 + len;
        }
        Ok(frames)
    }

    /// The last intact frame of a WAL file — the restore point a fresh
    /// process resumes from.
    pub fn recover_latest(path: impl AsRef<Path>) -> Result<Option<CheckpointFrame>> {
        Ok(Self::read_wal(path)?.pop())
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Bounded in-memory replay buffer for non-seekable sources
/// (e.g. [`crate::net::NetSource`]): retains the most recent records so
/// a restore within the window can replay from an offset; trimmed at
/// checkpoint commit so the window tracks the latest restore point.
#[derive(Debug)]
pub struct ReplayBuffer<T> {
    base: u64,
    pushed: u64,
    capacity: usize,
    buf: VecDeque<T>,
}

impl<T: Clone> ReplayBuffer<T> {
    /// A buffer retaining at most `capacity` records (≥ 1).
    pub fn new(capacity: usize) -> Self {
        ReplayBuffer {
            base: 0,
            pushed: 0,
            capacity: capacity.max(1),
            buf: VecDeque::new(),
        }
    }

    /// Absolute offset of the oldest retained record.
    pub fn base_offset(&self) -> u64 {
        self.base
    }

    /// Absolute offset one past the newest retained record.
    pub fn end_offset(&self) -> u64 {
        self.pushed
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` iff nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a record, evicting the oldest when over capacity.
    pub fn push(&mut self, item: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.base += 1;
        }
        self.buf.push_back(item);
        self.pushed += 1;
    }

    /// Drops records before `offset` — called when a checkpoint at
    /// `offset` commits, since nothing before it can be replayed again.
    pub fn trim_to(&mut self, offset: u64) {
        while self.base < offset && !self.buf.is_empty() {
            self.buf.pop_front();
            self.base += 1;
        }
    }

    /// The retained records from absolute `offset` on, oldest first —
    /// `None` when `offset` has already been evicted (a restore that
    /// far back must fall into full restart).
    pub fn replay_from(&self, offset: u64) -> Option<Vec<T>> {
        if offset < self.base || offset > self.pushed {
            return None;
        }
        Some(
            self.buf
                .iter()
                .skip((offset - self.base) as usize)
                .cloned()
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Arc<CheckpointStore> {
        Arc::new(CheckpointStore::new())
    }

    fn wm_state(seen: u64) -> WatermarkGenState {
        WatermarkGenState {
            max_ts: 1_000,
            seen,
            last_emitted: Some(900),
        }
    }

    #[test]
    fn coordinator_injects_every_interval() {
        let st = store();
        let mut c = CheckpointCoordinator::new(Arc::clone(&st), 2, 0);
        assert!(c.on_watermark(Timestamp(10), 5, wm_state(5)).is_none());
        let b = c.on_watermark(Timestamp(20), 9, wm_state(9)).unwrap();
        assert_eq!(b.epoch(), 1);
        assert_eq!(b.source_offset(), 9);
        assert!(c.on_watermark(Timestamp(30), 12, wm_state(12)).is_none());
        let b2 = c.on_watermark(Timestamp(40), 15, wm_state(15)).unwrap();
        assert_eq!(b2.epoch(), 2);
        // The terminal watermark never opens a barrier.
        assert!(c.on_watermark(Timestamp::MAX, 20, wm_state(20)).is_none());
    }

    #[test]
    fn barrier_contributions_land_in_committed_frame() {
        let st = store();
        let mut c = CheckpointCoordinator::new(Arc::clone(&st), 1, 0);
        let b = c.on_watermark(Timestamp(10), 4, wm_state(4)).unwrap();
        let clone = b.clone();
        b.contribute("substream_0", "{\"rng\":[1,2,3,4]}".to_string());
        clone.contribute("sorter", "[7]".to_string());
        b.commit(3);
        let frame = st.latest().unwrap();
        assert_eq!(frame.epoch, 1);
        assert_eq!(frame.source_offset, 4);
        assert_eq!(frame.sink_committed, 3);
        assert_eq!(frame.states.len(), 2);
        assert_eq!(frame.states["sorter"], "[7]");
        assert_eq!(st.checkpoints_taken(), 1);
    }

    #[test]
    fn start_epoch_continues_numbering() {
        let st = store();
        let mut c = CheckpointCoordinator::new(st, 1, 7);
        let b = c.on_watermark(Timestamp(10), 1, wm_state(1)).unwrap();
        assert_eq!(b.epoch(), 8);
    }

    #[test]
    fn wal_round_trips_frames() {
        let dir = std::env::temp_dir().join(format!("icewafl-ckpt-{}", std::process::id()));
        let path = dir.join("round_trip.ckpt");
        let st = Arc::new(CheckpointStore::with_wal(&path).unwrap());
        let mut c = CheckpointCoordinator::new(Arc::clone(&st), 1, 0);
        for i in 1..=3u64 {
            let b = c
                .on_watermark(Timestamp(10 * i as i64), 4 * i, wm_state(4 * i))
                .unwrap();
            b.contribute("substream_0", format!("{{\"epoch\":{i}}}"));
            b.commit(3 * i);
        }
        let frames = CheckpointStore::read_wal(&path).unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[2].epoch, 3);
        assert_eq!(frames[2].sink_committed, 9);
        assert_eq!(
            CheckpointStore::recover_latest(&path).unwrap().unwrap(),
            frames[2]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_tolerates_torn_tail_and_rejects_corruption() {
        let dir = std::env::temp_dir().join(format!("icewafl-ckpt-torn-{}", std::process::id()));
        let path = dir.join("torn.ckpt");
        let st = Arc::new(CheckpointStore::with_wal(&path).unwrap());
        let mut c = CheckpointCoordinator::new(Arc::clone(&st), 1, 0);
        for i in 1..=2u64 {
            c.on_watermark(Timestamp(i as i64), i, wm_state(i))
                .unwrap()
                .commit(i);
        }
        drop(st);
        // Torn tail: truncate mid-frame — the intact prefix survives.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert_eq!(CheckpointStore::read_wal(&path).unwrap().len(), 1);
        // Bit flip in the payload: CRC rejects the frame.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 5;
        flipped[last] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert_eq!(CheckpointStore::read_wal(&path).unwrap().len(), 1);
        // Bad magic: hard error.
        std::fs::write(&path, b"nope").unwrap();
        assert!(CheckpointStore::read_wal(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn replay_buffer_windows_and_trims() {
        let mut rb = ReplayBuffer::new(4);
        for i in 0..6 {
            rb.push(i);
        }
        // 0 and 1 evicted by capacity.
        assert_eq!(rb.base_offset(), 2);
        assert_eq!(rb.end_offset(), 6);
        assert_eq!(rb.replay_from(1), None);
        assert_eq!(rb.replay_from(3), Some(vec![3, 4, 5]));
        assert_eq!(rb.replay_from(6), Some(vec![]));
        assert_eq!(rb.replay_from(7), None);
        rb.trim_to(4);
        assert_eq!(rb.base_offset(), 4);
        assert_eq!(rb.replay_from(4), Some(vec![4, 5]));
    }
}
