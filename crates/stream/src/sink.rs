//! Stream sinks.

use parking_lot::Mutex;
use std::sync::Arc;

/// Consumes the records that reach the end of a pipeline.
pub trait Sink<T>: Send {
    /// Accepts one record.
    fn write(&mut self, record: T);

    /// Accepts a whole transport batch. Sinks that synchronize per
    /// record (locks, I/O flushes) should override this to pay that
    /// cost once per batch; the default just loops over [`write`].
    ///
    /// [`write`]: Sink::write
    fn write_batch(&mut self, batch: Vec<T>) {
        for record in batch {
            self.write(record);
        }
    }

    /// Called once after the last record.
    fn finish(&mut self) {}
}

/// Collects records into a shared vector that outlives the pipeline.
///
/// `SharedVecSink` is cloneable; [`SharedVecSink::take`] extracts the
/// collected records after execution.
pub struct SharedVecSink<T> {
    items: Arc<Mutex<Vec<T>>>,
}

impl<T> SharedVecSink<T> {
    /// Creates an empty shared sink.
    pub fn new() -> Self {
        SharedVecSink {
            items: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Removes and returns everything collected so far.
    pub fn take(&self) -> Vec<T> {
        std::mem::take(&mut self.items.lock())
    }

    /// Number of records collected so far.
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// `true` iff nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.items.lock().is_empty()
    }

    /// Truncates the collection to its first `len` records — the
    /// restore path rewinds a shared sink to a checkpoint's committed
    /// prefix with this before the resumed attempt appends.
    pub fn truncate(&self, len: usize) {
        self.items.lock().truncate(len);
    }
}

impl<T> Default for SharedVecSink<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Clone for SharedVecSink<T> {
    fn clone(&self) -> Self {
        SharedVecSink {
            items: Arc::clone(&self.items),
        }
    }
}

impl<T: Send> Sink<T> for SharedVecSink<T> {
    fn write(&mut self, record: T) {
        self.items.lock().push(record);
    }

    fn write_batch(&mut self, batch: Vec<T>) {
        self.items.lock().extend(batch);
    }
}

/// Counts records, sharing the count with the caller.
pub struct CountSink {
    count: Arc<Mutex<u64>>,
}

impl CountSink {
    /// Creates a zeroed counting sink.
    pub fn new() -> Self {
        CountSink {
            count: Arc::new(Mutex::new(0)),
        }
    }

    /// The number of records seen so far.
    pub fn count(&self) -> u64 {
        *self.count.lock()
    }
}

impl Default for CountSink {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for CountSink {
    fn clone(&self) -> Self {
        CountSink {
            count: Arc::clone(&self.count),
        }
    }
}

impl<T: Send> Sink<T> for CountSink {
    fn write(&mut self, _record: T) {
        *self.count.lock() += 1;
    }

    fn write_batch(&mut self, batch: Vec<T>) {
        *self.count.lock() += batch.len() as u64;
    }
}

/// Discards every record — the baseline sink for throughput benchmarks.
pub struct NullSink;

impl<T: Send> Sink<T> for NullSink {
    fn write(&mut self, record: T) {
        // The black_box-free equivalent: just drop. Benchmarks wrap the
        // whole pipeline, so elision here is not a concern.
        drop(record);
    }
}

/// Adapts a closure into a sink.
pub struct FnSink<F> {
    f: F,
}

impl<F> FnSink<F> {
    /// Wraps a closure.
    pub fn new(f: F) -> Self {
        FnSink { f }
    }
}

impl<T, F> Sink<T> for FnSink<F>
where
    F: FnMut(T) + Send,
{
    fn write(&mut self, record: T) {
        (self.f)(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_vec_sink_collects_across_clones() {
        let sink = SharedVecSink::new();
        let mut writer = sink.clone();
        writer.write(1);
        writer.write(2);
        assert_eq!(sink.len(), 2);
        assert!(!sink.is_empty());
        assert_eq!(sink.take(), vec![1, 2]);
        assert!(sink.is_empty());
    }

    #[test]
    fn count_sink_counts() {
        let sink = CountSink::new();
        let mut writer = sink.clone();
        for i in 0..5 {
            Sink::<i32>::write(&mut writer, i);
        }
        assert_eq!(sink.count(), 5);
    }

    #[test]
    fn fn_sink_invokes_closure() {
        let mut seen = Vec::new();
        {
            let mut sink = FnSink::new(|x: i32| seen.push(x));
            sink.write(7);
            sink.finish();
        }
        assert_eq!(seen, vec![7]);
    }

    #[test]
    fn null_sink_accepts_anything() {
        let mut s = NullSink;
        Sink::<String>::write(&mut s, "gone".to_string());
    }
}
