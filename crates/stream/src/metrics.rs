//! Per-stage metric handle bundles.
//!
//! Every pipeline combinator registers its metrics against the
//! [`MetricsRegistry`] carried by the
//! [`ExecutionContext`](crate::stream::ExecutionContext) under a
//! `stage/{NN}_{name}` prefix. Because pipelines are built back-to-front
//! (sink first), stage indices count **from the sink upward**: the last
//! combinator in the fluent chain gets index `00`.
//!
//! With the `obs` feature disabled, every handle here is a zero-sized
//! no-op (see `icewafl-obs`), so instrumented code carries no runtime
//! cost and needs no `cfg` at the call sites.

use icewafl_obs::{Counter, Gauge, Histogram, MetricsRegistry};

/// Operator wall-time is sampled 1-in-`(SAMPLE_MASK + 1)` records so the
/// two `Instant::now` calls per sample stay invisible on the hot path.
pub const SAMPLE_MASK: u64 = 63;

/// Metric handles for one operator stage.
#[derive(Clone, Default)]
pub struct StageMetrics {
    /// Records entering the operator.
    pub elements_in: Counter,
    /// Records the operator emitted downstream.
    pub elements_out: Counter,
    /// Sampled per-record operator wall time, in nanoseconds.
    pub latency_ns: Histogram,
    /// Highest watermark (milliseconds, clamped at 0) seen by this
    /// stage; the end-of-stream `Timestamp::MAX` sentinel is excluded.
    pub watermark_hwm_ms: Gauge,
    /// Operator invocations that panicked and were converted into a
    /// poison [`StreamElement::Failure`](crate::element::StreamElement).
    pub failures: Counter,
}

impl StageMetrics {
    /// Registers the stage's metrics under `label` (e.g.
    /// `stage/03_map`).
    pub fn register(registry: &MetricsRegistry, label: &str) -> Self {
        StageMetrics {
            elements_in: registry.counter(&format!("{label}/elements_in")),
            elements_out: registry.counter(&format!("{label}/elements_out")),
            latency_ns: registry.histogram(
                &format!("{label}/latency_ns"),
                icewafl_obs::LATENCY_BOUNDS_NS,
            ),
            watermark_hwm_ms: registry.gauge(&format!("{label}/watermark_hwm_ms")),
            failures: registry.counter(&format!("{label}/failures")),
        }
    }

    /// Detached handles that are not visible in any registry snapshot —
    /// what [`OperatorStage::new`](crate::stage::OperatorStage::new)
    /// uses when a stage is built outside a pipeline.
    pub fn detached() -> Self {
        Self::default()
    }
}

/// Metric handles for one thread-boundary channel (`pipelined`) or
/// fan-out router (`split_merge*`).
#[derive(Clone, Default)]
pub struct ChannelMetrics {
    /// Elements offered to the channel (records, watermarks, end).
    pub sends: Counter,
    /// Sends that found the channel full and had to block —
    /// backpressure events.
    pub send_blocks: Counter,
    /// Time spent blocked per backpressure event, in nanoseconds.
    pub send_block_ns: Histogram,
    /// Sampled receive waits on the consumer side (1-in-64, mirroring
    /// operator latency sampling).
    pub recv_waits: Counter,
    /// Sampled time the consumer spent waiting in `recv`, in
    /// nanoseconds. Near-zero entries mean the producer keeps the
    /// channel full; large entries mean the consumer is starved —
    /// together with [`ChannelMetrics::send_block_ns`] this attributes
    /// blocked time to the send or the recv side of every boundary.
    pub recv_block_ns: Histogram,
    /// Elements dropped because the consumer was gone.
    pub dropped: Counter,
}

impl ChannelMetrics {
    /// Registers the channel's metrics under `label`.
    pub fn register(registry: &MetricsRegistry, label: &str) -> Self {
        ChannelMetrics {
            sends: registry.counter(&format!("{label}/sends")),
            send_blocks: registry.counter(&format!("{label}/send_blocks")),
            send_block_ns: registry.histogram(
                &format!("{label}/send_block_ns"),
                icewafl_obs::LATENCY_BOUNDS_NS,
            ),
            recv_waits: registry.counter(&format!("{label}/recv_waits")),
            recv_block_ns: registry.histogram(
                &format!("{label}/recv_block_ns"),
                icewafl_obs::LATENCY_BOUNDS_NS,
            ),
            dropped: registry.counter(&format!("{label}/dropped")),
        }
    }

    /// Detached handles, invisible to snapshots.
    pub fn detached() -> Self {
        Self::default()
    }
}

/// Metric handles for an [`EventTimeSorter`](crate::sort::EventTimeSorter).
#[derive(Clone, Default)]
pub struct SorterMetrics {
    /// Records that arrived with an event time at or below the current
    /// watermark. They are still emitted (the sorter never drops), but
    /// they surface out of order downstream.
    pub late: Counter,
    /// Event-time lag of late records behind the watermark, in
    /// milliseconds.
    pub late_lag_ms: Histogram,
    /// High-water mark of the sorter's reorder buffer occupancy.
    pub buffer_max: Gauge,
    /// How far the current watermark trails the freshest event time
    /// seen, in milliseconds — sampled by the telemetry layer into a
    /// watermark-lag time series.
    pub watermark_lag_ms: Gauge,
}

impl SorterMetrics {
    /// Registers the sorter's metrics under `label`.
    pub fn register(registry: &MetricsRegistry, label: &str) -> Self {
        SorterMetrics {
            late: registry.counter(&format!("{label}/late")),
            late_lag_ms: registry
                .histogram(&format!("{label}/late_lag_ms"), icewafl_obs::LAG_BOUNDS_MS),
            buffer_max: registry.gauge(&format!("{label}/buffer_max")),
            watermark_lag_ms: registry.gauge(&format!("{label}/watermark_lag_ms")),
        }
    }

    /// Detached handles, invisible to snapshots.
    pub fn detached() -> Self {
        Self::default()
    }
}

/// Metric handles for one chaos injector
/// ([`ChaosOperator`](crate::chaos::ChaosOperator) /
/// [`ChaosSource`](crate::chaos::ChaosSource)).
#[derive(Clone, Default)]
pub struct ChaosMetrics {
    /// Panics actually injected (after the budget check).
    pub injected_panics: Counter,
    /// Delay faults injected.
    pub injected_delays: Counter,
    /// Records dropped in flight.
    pub injected_drops: Counter,
    /// Records malformed in place.
    pub injected_malforms: Counter,
}

impl ChaosMetrics {
    /// Registers the injector's metrics under `label` (e.g. `chaos/substream_0`).
    pub fn register(registry: &MetricsRegistry, label: &str) -> Self {
        ChaosMetrics {
            injected_panics: registry.counter(&format!("{label}/injected_panics")),
            injected_delays: registry.counter(&format!("{label}/injected_delays")),
            injected_drops: registry.counter(&format!("{label}/injected_drops")),
            injected_malforms: registry.counter(&format!("{label}/injected_malforms")),
        }
    }

    /// Detached handles, invisible to snapshots.
    pub fn detached() -> Self {
        Self::default()
    }
}

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;

    #[test]
    fn stage_metrics_register_under_label() {
        let r = MetricsRegistry::new();
        let m = StageMetrics::register(&r, "stage/00_map");
        m.elements_in.inc();
        m.elements_out.add(2);
        m.latency_ns.record(100);
        m.watermark_hwm_ms.set_max(42);
        let snap = r.snapshot();
        assert_eq!(snap.counter("stage/00_map/elements_in"), 1);
        assert_eq!(snap.counter("stage/00_map/elements_out"), 2);
        assert_eq!(snap.histogram("stage/00_map/latency_ns").unwrap().count, 1);
        assert_eq!(snap.gauge("stage/00_map/watermark_hwm_ms"), 42);
    }

    #[test]
    fn detached_metrics_stay_out_of_snapshots() {
        let r = MetricsRegistry::new();
        let m = StageMetrics::detached();
        m.elements_in.inc();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn channel_and_sorter_metrics_register() {
        let r = MetricsRegistry::new();
        let c = ChannelMetrics::register(&r, "stage/01_pipelined");
        let s = SorterMetrics::register(&r, "stage/02_event_time_sorter");
        c.sends.inc();
        c.send_blocks.inc();
        c.send_block_ns.record(500);
        s.late.inc();
        s.late_lag_ms.record(3);
        s.buffer_max.set_max(9);
        let snap = r.snapshot();
        assert_eq!(snap.counter("stage/01_pipelined/sends"), 1);
        assert_eq!(snap.counter("stage/01_pipelined/send_blocks"), 1);
        assert_eq!(snap.counter("stage/02_event_time_sorter/late"), 1);
        assert_eq!(
            snap.histogram("stage/02_event_time_sorter/late_lag_ms")
                .unwrap()
                .sum,
            3
        );
        assert_eq!(snap.gauge("stage/02_event_time_sorter/buffer_max"), 9);
    }
}
