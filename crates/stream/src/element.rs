//! The unit of flow inside a stream pipeline.

use crate::checkpoint::CheckpointBarrier;
use crate::fault::StageError;
use icewafl_types::Timestamp;

/// What travels along a stream edge: data records interleaved with
/// event-time watermarks, terminated by an end-of-stream marker — or,
/// abnormally, by a poison [`StreamElement::Failure`].
///
/// This mirrors Flink's internal `StreamElement`. A watermark `W(t)` is a
/// promise that no later record will carry an event time `≤ t`; stateful
/// operators (sorters, delay buffers) use it to decide when buffered
/// records are safe to release.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamElement<T> {
    /// A data record.
    Record(T),
    /// A batch of consecutive data records, equivalent to that many
    /// [`StreamElement::Record`]s in arrival order. Channels carry
    /// batches to amortize per-element send/recv and metering cost;
    /// semantically a batch is transparent — every consumer must treat
    /// `Batch(vec![a, b])` exactly like `Record(a), Record(b)`.
    /// Transports flush partial batches *before* emitting a watermark,
    /// `End`, or `Failure`, so control elements never overtake records
    /// and event-time semantics are unchanged.
    Batch(Vec<T>),
    /// An event-time watermark.
    Watermark(Timestamp),
    /// A checkpoint barrier, injected by the source driver right after
    /// an epoch-closing watermark (see [`checkpoint`](crate::checkpoint)).
    /// Like a watermark it carries no data and must never overtake
    /// records: transports flush partial batches before forwarding it.
    /// It is *not* terminal — the stream continues after a barrier.
    Barrier(CheckpointBarrier),
    /// End of stream. Always the last element on an edge.
    End,
    /// Poison marker: an upstream stage failed. Terminates the edge like
    /// [`StreamElement::End`], but carries the typed failure so the
    /// executor can surface *which* stage died and why (see
    /// [`fault`](crate::fault) for the protocol).
    Failure(StageError),
}

impl<T> StreamElement<T> {
    /// `true` iff this is the end-of-stream marker.
    pub fn is_end(&self) -> bool {
        matches!(self, StreamElement::End)
    }

    /// `true` iff this element terminates the edge — the end marker or a
    /// poison failure. Channel loops use this to stop draining.
    pub fn is_terminal(&self) -> bool {
        matches!(self, StreamElement::End | StreamElement::Failure(_))
    }

    /// Borrows the record payload, if this is a record.
    pub fn record(&self) -> Option<&T> {
        match self {
            StreamElement::Record(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes the element, yielding the record payload if present.
    pub fn into_record(self) -> Option<T> {
        match self {
            StreamElement::Record(r) => Some(r),
            _ => None,
        }
    }

    /// Maps the record payload (of a record or every record in a
    /// batch), leaving watermarks, end markers, and failures alone.
    pub fn map<U>(self, mut f: impl FnMut(T) -> U) -> StreamElement<U> {
        match self {
            StreamElement::Record(r) => StreamElement::Record(f(r)),
            StreamElement::Batch(b) => StreamElement::Batch(b.into_iter().map(f).collect()),
            StreamElement::Watermark(w) => StreamElement::Watermark(w),
            StreamElement::Barrier(b) => StreamElement::Barrier(b),
            StreamElement::End => StreamElement::End,
            StreamElement::Failure(e) => StreamElement::Failure(e),
        }
    }

    /// The number of data records this element carries (a batch counts
    /// each record; control elements carry none).
    pub fn record_count(&self) -> usize {
        match self {
            StreamElement::Record(_) => 1,
            StreamElement::Batch(b) => b.len(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accessors() {
        let e = StreamElement::Record(5);
        assert_eq!(e.record(), Some(&5));
        assert!(!e.is_end());
        assert_eq!(e.into_record(), Some(5));
    }

    #[test]
    fn non_records() {
        let w: StreamElement<i32> = StreamElement::Watermark(Timestamp(3));
        assert_eq!(w.record(), None);
        assert_eq!(w.clone().into_record(), None);
        assert!(StreamElement::<i32>::End.is_end());
    }

    #[test]
    fn failure_is_terminal_but_not_end() {
        use crate::fault::{FailureKind, StageError};
        let f: StreamElement<i32> =
            StreamElement::Failure(StageError::new("s", FailureKind::Panic, "boom"));
        assert!(f.is_terminal());
        assert!(!f.is_end());
        assert_eq!(f.record(), None);
        assert!(StreamElement::<i32>::End.is_terminal());
        assert!(!StreamElement::Record(1).is_terminal());
    }

    #[test]
    fn batch_counts_records_and_maps_each() {
        let b = StreamElement::Batch(vec![1, 2, 3]);
        assert_eq!(b.record_count(), 3);
        assert_eq!(StreamElement::Record(9).record_count(), 1);
        assert_eq!(StreamElement::<i32>::End.record_count(), 0);
        assert_eq!(b.map(|x| x * 10), StreamElement::Batch(vec![10, 20, 30]));
        assert!(!StreamElement::<i32>::Batch(vec![]).is_terminal());
        assert_eq!(StreamElement::Batch(vec![1]).record(), None);
    }

    #[test]
    fn map_preserves_kind() {
        assert_eq!(
            StreamElement::Record(2).map(|x| x * 10),
            StreamElement::Record(20)
        );
        assert_eq!(
            StreamElement::<i32>::Watermark(Timestamp(1)).map(|x| x * 10),
            StreamElement::Watermark(Timestamp(1))
        );
        assert_eq!(
            StreamElement::<i32>::End.map(|x| x * 10),
            StreamElement::End
        );
    }
}
