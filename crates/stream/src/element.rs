//! The unit of flow inside a stream pipeline.

use icewafl_types::Timestamp;

/// What travels along a stream edge: data records interleaved with
/// event-time watermarks, terminated by an end-of-stream marker.
///
/// This mirrors Flink's internal `StreamElement`. A watermark `W(t)` is a
/// promise that no later record will carry an event time `≤ t`; stateful
/// operators (sorters, delay buffers) use it to decide when buffered
/// records are safe to release.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamElement<T> {
    /// A data record.
    Record(T),
    /// An event-time watermark.
    Watermark(Timestamp),
    /// End of stream. Always the last element on an edge.
    End,
}

impl<T> StreamElement<T> {
    /// `true` iff this is the end-of-stream marker.
    pub fn is_end(&self) -> bool {
        matches!(self, StreamElement::End)
    }

    /// Borrows the record payload, if this is a record.
    pub fn record(&self) -> Option<&T> {
        match self {
            StreamElement::Record(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes the element, yielding the record payload if present.
    pub fn into_record(self) -> Option<T> {
        match self {
            StreamElement::Record(r) => Some(r),
            _ => None,
        }
    }

    /// Maps the record payload, leaving watermarks and end markers alone.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> StreamElement<U> {
        match self {
            StreamElement::Record(r) => StreamElement::Record(f(r)),
            StreamElement::Watermark(w) => StreamElement::Watermark(w),
            StreamElement::End => StreamElement::End,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accessors() {
        let e = StreamElement::Record(5);
        assert_eq!(e.record(), Some(&5));
        assert!(!e.is_end());
        assert_eq!(e.into_record(), Some(5));
    }

    #[test]
    fn non_records() {
        let w: StreamElement<i32> = StreamElement::Watermark(Timestamp(3));
        assert_eq!(w.record(), None);
        assert_eq!(w.clone().into_record(), None);
        assert!(StreamElement::<i32>::End.is_end());
    }

    #[test]
    fn map_preserves_kind() {
        assert_eq!(
            StreamElement::Record(2).map(|x| x * 10),
            StreamElement::Record(20)
        );
        assert_eq!(
            StreamElement::<i32>::Watermark(Timestamp(1)).map(|x| x * 10),
            StreamElement::Watermark(Timestamp(1))
        );
        assert_eq!(
            StreamElement::<i32>::End.map(|x| x * 10),
            StreamElement::End
        );
    }
}
