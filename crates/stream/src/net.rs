//! Network transport for streams: frame codec, [`NetSource`], and
//! [`NetSink`].
//!
//! Two wire formats are supported, chosen per connection:
//!
//! * **NDJSON** — one JSON text per `\n`-terminated line. Human-
//!   readable, trivially scriptable with `nc`/`jq`.
//! * **Binary** — length-prefixed frames `[tag: u8][len: u32 LE]
//!   [payload]`. Compact and copy-friendly for high-rate sessions.
//!
//! This module is deliberately *payload-agnostic*: it moves
//! [`WireFrame`]s, not tuples. The mapping between frames and records
//! is supplied by the caller as encode/decode closures (the `serve`
//! crate provides the icewafl session protocol on top). That keeps the
//! stream crate free of any serialization dependency.
//!
//! Protocol failures are **typed and poisoning, never truncating**: a
//! malformed frame, an oversized frame, or a peer disconnect makes
//! [`NetSource`]/[`NetSink`] record a [`NetError`] into a shared
//! [`NetErrorCell`] and raise a typed [`StageError`] through the
//! poison-propagation protocol (see [`fault`](crate::fault)) — the
//! pipeline terminates with `Error::Pipeline` naming the failure kind
//! instead of silently ending the stream early, exactly like
//! `CsvTupleSource` does for file I/O.

use crate::fault::{FailureKind, StageError};
use crate::sink::Sink;
use crate::source::Source;
use parking_lot::Mutex;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default cap on a single frame (payload or line), in bytes.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// A typed transport-protocol failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The peer sent bytes that do not parse as a frame of the
    /// negotiated format (bad UTF-8, unknown tag, undecodable payload).
    Malformed {
        /// What failed to parse.
        detail: String,
    },
    /// A frame announced (or a line reached) a length beyond the
    /// session's cap — rejected before buffering the payload.
    Oversized {
        /// Announced or accumulated length in bytes.
        len: usize,
        /// The session's cap in bytes.
        max: usize,
    },
    /// The peer vanished mid-stream (EOF or connection reset before the
    /// end-of-stream frame).
    Disconnected,
    /// Any other socket-level I/O failure (e.g. a read timeout).
    Io {
        /// The rendered `std::io::Error`.
        detail: String,
    },
}

impl NetError {
    /// Classifies an I/O error: EOF/reset/abort mean the peer is gone,
    /// everything else is a generic I/O failure.
    pub fn from_io(e: &std::io::Error) -> Self {
        use std::io::ErrorKind::*;
        match e.kind() {
            UnexpectedEof | ConnectionReset | ConnectionAborted | BrokenPipe => {
                NetError::Disconnected
            }
            _ => NetError::Io {
                detail: e.to_string(),
            },
        }
    }

    /// A malformed-frame error with a detail message.
    pub fn malformed(detail: impl Into<String>) -> Self {
        NetError::Malformed {
            detail: detail.into(),
        }
    }

    /// Stable machine-readable code (`malformed`, `oversized`,
    /// `disconnected`, `io`) — what session error frames carry.
    pub fn code(&self) -> &'static str {
        match self {
            NetError::Malformed { .. } => "malformed",
            NetError::Oversized { .. } => "oversized",
            NetError::Disconnected => "disconnected",
            NetError::Io { .. } => "io",
        }
    }

    /// How this error is classified by the failure protocol: protocol
    /// violations are [`FailureKind::Fatal`] (retrying cannot help),
    /// vanished peers and socket trouble are [`FailureKind::Disconnect`].
    pub fn failure_kind(&self) -> FailureKind {
        match self {
            NetError::Malformed { .. } | NetError::Oversized { .. } => FailureKind::Fatal,
            NetError::Disconnected | NetError::Io { .. } => FailureKind::Disconnect,
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Malformed { detail } => write!(f, "malformed frame: {detail}"),
            NetError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes exceeds the {max}-byte cap")
            }
            NetError::Disconnected => write!(f, "peer disconnected mid-stream"),
            NetError::Io { detail } => write!(f, "transport I/O error: {detail}"),
        }
    }
}

impl std::error::Error for NetError {}

/// First-error-wins cell shared between a [`NetSource`]/[`NetSink`] and
/// the session code that reports the typed error to the peer.
#[derive(Clone, Default)]
pub struct NetErrorCell {
    slot: Arc<Mutex<Option<NetError>>>,
}

impl NetErrorCell {
    /// An empty cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `error` unless one was already recorded.
    pub fn record(&self, error: NetError) {
        let mut slot = self.slot.lock();
        if slot.is_none() {
            *slot = Some(error);
        }
    }

    /// A copy of the recorded error, if any.
    pub fn get(&self) -> Option<NetError> {
        self.slot.lock().clone()
    }
}

/// The wire format negotiated for a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// One JSON text per newline-terminated line.
    #[default]
    Ndjson,
    /// Length-prefixed binary frames: `[tag: u8][len: u32 LE][payload]`.
    Binary,
}

impl WireFormat {
    /// Parses the handshake name (`ndjson` / `binary`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ndjson" => Some(WireFormat::Ndjson),
            "binary" => Some(WireFormat::Binary),
            _ => None,
        }
    }

    /// The handshake name of this format.
    pub fn as_str(&self) -> &'static str {
        match self {
            WireFormat::Ndjson => "ndjson",
            WireFormat::Binary => "binary",
        }
    }
}

/// One frame as it crosses the wire, before any payload decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireFrame {
    /// A binary frame: tag byte plus raw payload.
    Binary {
        /// Protocol-defined frame tag.
        tag: u8,
        /// Raw payload bytes.
        payload: Vec<u8>,
    },
    /// One NDJSON line, without its trailing newline.
    Line(String),
}

impl WireFrame {
    /// Bytes this frame occupies on the wire, including framing overhead
    /// (the `[tag][len]` header for binary frames, the trailing newline
    /// for NDJSON lines).
    pub fn wire_len(&self) -> usize {
        match self {
            WireFrame::Binary { payload, .. } => 1 + 4 + payload.len(),
            WireFrame::Line(line) => line.len() + 1,
        }
    }
}

/// Serializes one frame to its exact wire bytes (the `[tag][len]`
/// header for binary frames, the trailing newline for NDJSON lines) —
/// the building block of non-blocking write paths that queue encoded
/// bytes instead of writing through a [`FrameWriter`].
pub fn frame_bytes(frame: &WireFrame) -> Vec<u8> {
    match frame {
        WireFrame::Binary { tag, payload } => {
            let mut out = Vec::with_capacity(5 + payload.len());
            out.push(*tag);
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(payload);
            out
        }
        WireFrame::Line(line) => {
            let mut out = Vec::with_capacity(line.len() + 1);
            out.extend_from_slice(line.as_bytes());
            out.push(b'\n');
            out
        }
    }
}

/// An incremental, push-based frame decoder: the non-blocking
/// counterpart of [`FrameReader`].
///
/// Bytes arrive in arbitrary slices ([`push`](FrameDecoder::push) —
/// whatever a non-blocking `read` returned before `WouldBlock`), and
/// [`next`](FrameDecoder::next) pops complete frames as they become
/// available. Frames are returned in exactly the order their bytes
/// arrived, whatever the split boundaries; a read that returned zero
/// new bytes simply leaves the decoder where it was. The per-frame size
/// cap is enforced *before* a payload is fully buffered, exactly like
/// [`FrameReader`]: an announced binary length or an accumulated
/// newline-less line beyond the cap fails with [`NetError::Oversized`]
/// without waiting for the rest of the frame.
///
/// The format can be switched mid-stream
/// ([`set_format`](FrameDecoder::set_format)) with buffered bytes
/// preserved — exactly what a session needs after its NDJSON handshake
/// line when the negotiated data format is binary.
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted opportunistically.
    start: usize,
    format: WireFormat,
    max_frame: usize,
}

impl FrameDecoder {
    /// A decoder for `format` with a per-frame cap of `max_frame` bytes.
    pub fn new(format: WireFormat, max_frame: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            start: 0,
            format,
            max_frame: max_frame.max(1),
        }
    }

    /// Switches the wire format for frames not yet decoded. Buffered
    /// bytes are preserved: data the peer pipelined behind a handshake
    /// line is re-interpreted in the new format.
    pub fn set_format(&mut self, format: WireFormat) {
        self.format = format;
    }

    /// Appends newly-read bytes to the decode buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: keeps the buffer bounded by the
        // largest in-flight frame instead of the whole stream.
        if self.start > 0 && (self.start == self.buf.len() || self.start >= 64 * 1024) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not-yet-decoded bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Takes the undecoded residue out of the decoder (e.g. to hand a
    /// connection over to a blocking reader after a handshake).
    pub fn take_residual(&mut self) -> Vec<u8> {
        let rest = self.buf.split_off(self.start);
        self.buf.clear();
        self.start = 0;
        rest
    }

    /// Pops the next complete frame, `Ok(None)` when more bytes are
    /// needed. Oversized and malformed frames fail exactly like
    /// [`FrameReader::read`]; EOF handling stays with the caller (a
    /// peer that closed while [`buffered`](FrameDecoder::buffered) is
    /// non-zero, or mid-stream, vanished before a frame boundary).
    ///
    /// Not an [`Iterator`]: `Ok(None)` means "feed me more bytes", not
    /// end of stream.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<WireFrame>, NetError> {
        match self.format {
            WireFormat::Ndjson => self.next_line(),
            WireFormat::Binary => self.next_binary(),
        }
    }

    fn next_line(&mut self) -> Result<Option<WireFrame>, NetError> {
        let window = &self.buf[self.start..];
        match window.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if pos > self.max_frame {
                    return Err(NetError::Oversized {
                        len: pos,
                        max: self.max_frame,
                    });
                }
                let line = std::str::from_utf8(&window[..pos])
                    .map_err(|_| NetError::malformed("line is not valid UTF-8"))?
                    .to_string();
                self.start += pos + 1;
                Ok(Some(WireFrame::Line(line)))
            }
            None => {
                if window.len() > self.max_frame {
                    return Err(NetError::Oversized {
                        len: window.len(),
                        max: self.max_frame,
                    });
                }
                Ok(None)
            }
        }
    }

    fn next_binary(&mut self) -> Result<Option<WireFrame>, NetError> {
        let window = &self.buf[self.start..];
        if window.len() < 5 {
            return Ok(None);
        }
        let tag = window[0];
        let len = u32::from_le_bytes([window[1], window[2], window[3], window[4]]) as usize;
        if len > self.max_frame {
            return Err(NetError::Oversized {
                len,
                max: self.max_frame,
            });
        }
        if window.len() < 5 + len {
            return Ok(None);
        }
        let payload = window[5..5 + len].to_vec();
        self.start += 5 + len;
        Ok(Some(WireFrame::Binary { tag, payload }))
    }
}

/// A queue of encoded frame bytes awaiting a non-blocking writer: the
/// `WouldBlock`-tolerant counterpart of [`FrameWriter`].
///
/// Buffers are shared `Arc<[u8]>` slices so the *same* encoded frame
/// can sit in many sessions' queues at once (pre-serialized fan-out:
/// encode once, clone the `Arc` per subscriber). [`write_to`] pushes as
/// many bytes as the transport accepts and remembers the partial-write
/// offset, so a write interrupted anywhere inside a frame resumes at
/// the exact byte.
///
/// [`write_to`]: WriteQueue::write_to
#[derive(Default)]
pub struct WriteQueue {
    bufs: std::collections::VecDeque<(Arc<[u8]>, usize)>,
    pending: usize,
}

impl WriteQueue {
    /// An empty queue.
    pub fn new() -> Self {
        WriteQueue::default()
    }

    /// Queues one encoded buffer (cheap: the bytes are shared, not
    /// copied).
    pub fn push(&mut self, bytes: Arc<[u8]>) {
        self.pending += bytes.len();
        self.bufs.push_back((bytes, 0));
    }

    /// Bytes queued and not yet accepted by the transport.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// `true` when everything queued has been written.
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// Writes queued bytes until the queue empties or the transport
    /// pushes back. Returns `Ok(true)` when the queue drained,
    /// `Ok(false)` when the transport returned `WouldBlock` (call again
    /// on writability); everything else is a typed transport error.
    pub fn write_to<W: Write>(&mut self, writer: &mut W) -> Result<bool, NetError> {
        while let Some((buf, offset)) = self.bufs.front_mut() {
            match writer.write(&buf[*offset..]) {
                Ok(0) => {
                    return Err(NetError::Io {
                        detail: "transport accepted zero bytes".into(),
                    })
                }
                Ok(n) => {
                    *offset += n;
                    self.pending -= n;
                    if *offset == buf.len() {
                        self.bufs.pop_front();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(NetError::from_io(&e)),
            }
        }
        Ok(true)
    }
}

/// Reads [`WireFrame`]s of one format from a buffered byte stream,
/// enforcing a per-frame size cap *before* buffering payloads.
pub struct FrameReader<R> {
    inner: R,
    format: WireFormat,
    max_frame: usize,
}

impl<R: BufRead> FrameReader<R> {
    /// A reader over `inner`; frames larger than `max_frame` bytes are
    /// rejected as [`NetError::Oversized`].
    pub fn new(inner: R, format: WireFormat, max_frame: usize) -> Self {
        FrameReader {
            inner,
            format,
            max_frame: max_frame.max(1),
        }
    }

    /// The underlying reader (e.g. to re-wrap it after a handshake).
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Reads the next frame. `Ok(None)` is a *clean* EOF at a frame
    /// boundary; EOF inside a frame is [`NetError::Disconnected`].
    pub fn read(&mut self) -> Result<Option<WireFrame>, NetError> {
        match self.format {
            WireFormat::Ndjson => Ok(self.read_line_bounded()?.map(WireFrame::Line)),
            WireFormat::Binary => self.read_binary(),
        }
    }

    /// Bounded line read: scans the buffered window for `\n` and fails
    /// with [`NetError::Oversized`] as soon as the accumulated line
    /// crosses the cap — a missing newline can never buffer unbounded
    /// memory.
    fn read_line_bounded(&mut self) -> Result<Option<String>, NetError> {
        let mut line: Vec<u8> = Vec::new();
        loop {
            let (advance, done) = {
                let buf = self.inner.fill_buf().map_err(|e| NetError::from_io(&e))?;
                if buf.is_empty() {
                    if line.is_empty() {
                        return Ok(None);
                    }
                    return Err(NetError::Disconnected);
                }
                match buf.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        if line.len() + pos > self.max_frame {
                            return Err(NetError::Oversized {
                                len: line.len() + pos,
                                max: self.max_frame,
                            });
                        }
                        line.extend_from_slice(&buf[..pos]);
                        (pos + 1, true)
                    }
                    None => {
                        if line.len() + buf.len() > self.max_frame {
                            return Err(NetError::Oversized {
                                len: line.len() + buf.len(),
                                max: self.max_frame,
                            });
                        }
                        line.extend_from_slice(buf);
                        (buf.len(), false)
                    }
                }
            };
            self.inner.consume(advance);
            if done {
                return String::from_utf8(line)
                    .map(Some)
                    .map_err(|_| NetError::malformed("line is not valid UTF-8"));
            }
        }
    }

    fn read_binary(&mut self) -> Result<Option<WireFrame>, NetError> {
        // A zero-byte read for the tag is the only clean EOF point.
        let mut tag = [0u8; 1];
        match self.inner.read(&mut tag) {
            Ok(0) => return Ok(None),
            Ok(_) => {}
            Err(e) => return Err(NetError::from_io(&e)),
        }
        let mut len = [0u8; 4];
        self.inner
            .read_exact(&mut len)
            .map_err(|e| NetError::from_io(&e))?;
        let len = u32::from_le_bytes(len) as usize;
        if len > self.max_frame {
            return Err(NetError::Oversized {
                len,
                max: self.max_frame,
            });
        }
        let mut payload = vec![0u8; len];
        self.inner
            .read_exact(&mut payload)
            .map_err(|e| NetError::from_io(&e))?;
        Ok(Some(WireFrame::Binary {
            tag: tag[0],
            payload,
        }))
    }
}

/// Writes [`WireFrame`]s of one format to a byte stream.
pub struct FrameWriter<W> {
    inner: W,
    format: WireFormat,
}

impl<W: Write> FrameWriter<W> {
    /// A writer over `inner`.
    pub fn new(inner: W, format: WireFormat) -> Self {
        FrameWriter { inner, format }
    }

    /// Writes one frame. The frame variant must match the negotiated
    /// format; a mismatch is a caller bug reported as
    /// [`NetError::Malformed`].
    pub fn write(&mut self, frame: &WireFrame) -> Result<(), NetError> {
        match (self.format, frame) {
            (WireFormat::Binary, WireFrame::Binary { tag, payload }) => self
                .inner
                .write_all(&[*tag])
                .and_then(|_| self.inner.write_all(&(payload.len() as u32).to_le_bytes()))
                .and_then(|_| self.inner.write_all(payload))
                .map_err(|e| NetError::from_io(&e)),
            (WireFormat::Ndjson, WireFrame::Line(line)) => {
                if line.contains('\n') {
                    return Err(NetError::malformed("NDJSON line contains a raw newline"));
                }
                self.inner
                    .write_all(line.as_bytes())
                    .and_then(|_| self.inner.write_all(b"\n"))
                    .map_err(|e| NetError::from_io(&e))
            }
            _ => Err(NetError::malformed(
                "frame variant does not match the negotiated wire format",
            )),
        }
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> Result<(), NetError> {
        self.inner.flush().map_err(|e| NetError::from_io(&e))
    }
}

/// What a decoded client frame means to the stream runtime.
pub enum NetPoll<T> {
    /// One record to feed into the pipeline.
    Record(T),
    /// A whole batch of records from one frame (columnar upload); the
    /// runtime feeds them in order, exactly as if each had arrived as
    /// its own [`Record`](NetPoll::Record).
    Batch(Vec<T>),
    /// The peer's end-of-stream marker: finish cleanly.
    End,
}

/// Decodes one wire frame into a record or the end-of-stream marker.
pub type DecodeFn<T> = Box<dyn FnMut(WireFrame) -> Result<NetPoll<T>, NetError> + Send>;

/// Encodes one record as a wire frame.
pub type EncodeFn<T> = Box<dyn FnMut(&T) -> WireFrame + Send>;

/// Encodes a whole batch of records as one wire frame (e.g. a columnar
/// frame that serializes each column contiguously).
pub type BatchEncodeFn<T> = Box<dyn FnMut(&[T]) -> WireFrame + Send>;

/// A [`Source`] that pulls records from a network peer, one frame at a
/// time.
///
/// Because the source is pulled by the execution driver, ingest is
/// naturally throttled by downstream progress: if the pipeline (or a
/// slow reader behind a [`NetSink`]) stalls, the source stops reading
/// and TCP flow control pushes back on the peer — bounded memory with
/// no explicit buffering.
///
/// Any protocol failure — including EOF *without* the end-of-stream
/// frame — records a typed [`NetError`] into the shared
/// [`NetErrorCell`] and poisons the pipeline via
/// [`std::panic::panic_any`]`(StageError)`, so the run fails loudly
/// instead of truncating.
pub struct NetSource<R, T> {
    reader: FrameReader<R>,
    decode: DecodeFn<T>,
    error: NetErrorCell,
    frames_in: Arc<AtomicU64>,
    /// Records still owed from the last batch frame, drained first.
    pending: std::collections::VecDeque<T>,
}

impl<R: BufRead + Send, T> NetSource<R, T> {
    /// A source decoding frames from `reader` with `decode`; protocol
    /// errors are mirrored into `error`.
    pub fn new(reader: FrameReader<R>, decode: DecodeFn<T>, error: NetErrorCell) -> Self {
        NetSource {
            reader,
            decode,
            error,
            frames_in: Arc::new(AtomicU64::new(0)),
            pending: std::collections::VecDeque::new(),
        }
    }

    /// A live counter of frames read so far (records only, not the end
    /// marker) — shareable with session metrics.
    pub fn frames_in_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.frames_in)
    }

    fn fail(&self, error: NetError) -> ! {
        let typed = StageError::new("net_source", error.failure_kind(), error.to_string());
        self.error.record(error);
        std::panic::panic_any(typed);
    }
}

impl<R: BufRead + Send, T: Send> Source<T> for NetSource<R, T> {
    fn next(&mut self) -> Option<T> {
        loop {
            if let Some(t) = self.pending.pop_front() {
                return Some(t);
            }
            let frame = match self.reader.read() {
                Ok(Some(frame)) => frame,
                // EOF without the protocol's end marker: the peer
                // vanished.
                Ok(None) => self.fail(NetError::Disconnected),
                Err(e) => self.fail(e),
            };
            match (self.decode)(frame) {
                Ok(NetPoll::Record(t)) => {
                    self.frames_in.fetch_add(1, Ordering::Relaxed);
                    return Some(t);
                }
                // An empty batch is legal: count the frame, keep
                // reading.
                Ok(NetPoll::Batch(batch)) => {
                    self.frames_in.fetch_add(1, Ordering::Relaxed);
                    self.pending.extend(batch);
                }
                Ok(NetPoll::End) => return None,
                Err(e) => self.fail(e),
            }
        }
    }
}

/// A [`Sink`] that streams records back to a network peer, one frame
/// per record.
///
/// A write failure (the peer hung up, the socket broke) poisons the
/// pipeline with a typed [`FailureKind::Disconnect`] error the same way
/// [`NetSource`] does, after mirroring it into the shared
/// [`NetErrorCell`].
pub struct NetSink<W, T> {
    writer: FrameWriter<W>,
    encode: EncodeFn<T>,
    /// Optional whole-batch encoder: when set, `write_batch` emits one
    /// frame per batch instead of one per record.
    encode_batch: Option<BatchEncodeFn<T>>,
    error: NetErrorCell,
    frames_out: Arc<AtomicU64>,
    bytes_out: Arc<AtomicU64>,
    encode_ns: Arc<AtomicU64>,
    blocked_write_ns: Arc<AtomicU64>,
    /// Frames written, kept locally for the 1-in-64 timing decision.
    seen: u64,
}

/// Every 64th frame through a [`NetSink`] has its encode and write
/// wall-clock timed (matching the stage latency sampling policy), so the
/// `encode_ns` / `blocked_write_ns` counters attribute where a serve
/// session spends time without paying `Instant::now` per frame.
const SINK_SAMPLE_MASK: u64 = 63;

impl<W: Write + Send, T> NetSink<W, T> {
    /// A sink encoding records with `encode` into `writer`; transport
    /// errors are mirrored into `error`.
    pub fn new(writer: FrameWriter<W>, encode: EncodeFn<T>, error: NetErrorCell) -> Self {
        NetSink {
            writer,
            encode,
            encode_batch: None,
            error,
            frames_out: Arc::new(AtomicU64::new(0)),
            bytes_out: Arc::new(AtomicU64::new(0)),
            encode_ns: Arc::new(AtomicU64::new(0)),
            blocked_write_ns: Arc::new(AtomicU64::new(0)),
            seen: 0,
        }
    }

    /// Installs a whole-batch encoder: batches delivered via
    /// `write_batch` are serialized as ONE frame (encode once, one
    /// syscall-sized write) instead of one frame per record. Singleton
    /// and empty batches still go through the per-record path, so
    /// per-tuple consumers see no format change at batch size 1.
    pub fn with_batch_encode(mut self, encode_batch: BatchEncodeFn<T>) -> Self {
        self.encode_batch = Some(encode_batch);
        self
    }

    /// A live counter of frames written so far — shareable with session
    /// metrics.
    pub fn frames_out_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.frames_out)
    }

    /// A live counter of bytes written so far, including framing
    /// overhead.
    pub fn bytes_out_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.bytes_out)
    }

    /// Sampled (1-in-64) nanoseconds spent in the encode closure.
    pub fn encode_ns_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.encode_ns)
    }

    /// Sampled (1-in-64) nanoseconds spent inside `write` on the
    /// underlying transport — time blocked on the peer (or the kernel
    /// send buffer) rather than on encoding.
    pub fn blocked_write_ns_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.blocked_write_ns)
    }

    fn fail(&self, error: NetError) -> ! {
        let typed = StageError::new("net_sink", error.failure_kind(), error.to_string());
        self.error.record(error);
        std::panic::panic_any(typed);
    }
}

impl<W: Write + Send, T: Send> Sink<T> for NetSink<W, T> {
    fn write(&mut self, record: T) {
        let sampled = self.seen & SINK_SAMPLE_MASK == 0;
        self.seen += 1;
        let frame = if sampled {
            let start = std::time::Instant::now();
            let frame = (self.encode)(&record);
            self.encode_ns
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            frame
        } else {
            (self.encode)(&record)
        };
        self.bytes_out
            .fetch_add(frame.wire_len() as u64, Ordering::Relaxed);
        let result = if sampled {
            let start = std::time::Instant::now();
            let result = self.writer.write(&frame);
            self.blocked_write_ns
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            result
        } else {
            self.writer.write(&frame)
        };
        if let Err(e) = result {
            self.fail(e);
        }
        self.frames_out.fetch_add(1, Ordering::Relaxed);
    }

    fn write_batch(&mut self, batch: Vec<T>) {
        // No batch encoder, or a batch too small to amortize the frame
        // header: the per-record path keeps the wire identical to what
        // per-tuple consumers already parse.
        if self.encode_batch.is_none() || batch.len() < 2 {
            for record in batch {
                self.write(record);
            }
            return;
        }
        let sampled = self.seen & SINK_SAMPLE_MASK == 0;
        self.seen += 1;
        let encode_batch = self.encode_batch.as_mut().expect("checked above");
        let frame = if sampled {
            let start = std::time::Instant::now();
            let frame = encode_batch(&batch);
            self.encode_ns
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            frame
        } else {
            encode_batch(&batch)
        };
        self.bytes_out
            .fetch_add(frame.wire_len() as u64, Ordering::Relaxed);
        let result = if sampled {
            let start = std::time::Instant::now();
            let result = self.writer.write(&frame);
            self.blocked_write_ns
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            result
        } else {
            self.writer.write(&frame)
        };
        if let Err(e) = result {
            self.fail(e);
        }
        self.frames_out.fetch_add(1, Ordering::Relaxed);
    }

    fn finish(&mut self) {
        if let Err(e) = self.writer.flush() {
            self.fail(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn binary_reader(bytes: Vec<u8>, max: usize) -> FrameReader<Cursor<Vec<u8>>> {
        FrameReader::new(Cursor::new(bytes), WireFormat::Binary, max)
    }

    #[test]
    fn binary_frames_round_trip() {
        let mut buf = Vec::new();
        {
            let mut w = FrameWriter::new(&mut buf, WireFormat::Binary);
            w.write(&WireFrame::Binary {
                tag: 7,
                payload: b"hello".to_vec(),
            })
            .unwrap();
            w.write(&WireFrame::Binary {
                tag: 2,
                payload: Vec::new(),
            })
            .unwrap();
            w.flush().unwrap();
        }
        let mut r = binary_reader(buf, 1024);
        assert_eq!(
            r.read().unwrap(),
            Some(WireFrame::Binary {
                tag: 7,
                payload: b"hello".to_vec()
            })
        );
        assert_eq!(
            r.read().unwrap(),
            Some(WireFrame::Binary {
                tag: 2,
                payload: Vec::new()
            })
        );
        assert_eq!(r.read().unwrap(), None, "clean EOF at a frame boundary");
    }

    #[test]
    fn ndjson_lines_round_trip() {
        let mut buf = Vec::new();
        {
            let mut w = FrameWriter::new(&mut buf, WireFormat::Ndjson);
            w.write(&WireFrame::Line("{\"a\":1}".into())).unwrap();
            w.write(&WireFrame::Line("{\"end\":true}".into())).unwrap();
        }
        let mut r = FrameReader::new(Cursor::new(buf), WireFormat::Ndjson, 1024);
        assert_eq!(r.read().unwrap(), Some(WireFrame::Line("{\"a\":1}".into())));
        assert_eq!(
            r.read().unwrap(),
            Some(WireFrame::Line("{\"end\":true}".into()))
        );
        assert_eq!(r.read().unwrap(), None);
    }

    #[test]
    fn oversized_binary_frame_is_rejected_before_buffering() {
        let mut buf = vec![1u8];
        buf.extend_from_slice(&(u32::MAX).to_le_bytes()); // 4 GiB announced
        let mut r = binary_reader(buf, 64);
        assert!(matches!(
            r.read().unwrap_err(),
            NetError::Oversized { max: 64, .. }
        ));
    }

    #[test]
    fn oversized_line_is_rejected_mid_scan() {
        let line = vec![b'x'; 200]; // no newline at all
        let mut r = FrameReader::new(Cursor::new(line), WireFormat::Ndjson, 64);
        assert!(matches!(r.read().unwrap_err(), NetError::Oversized { .. }));
    }

    #[test]
    fn eof_inside_a_frame_is_disconnected() {
        let mut buf = vec![1u8];
        buf.extend_from_slice(&8u32.to_le_bytes());
        buf.extend_from_slice(b"abc"); // 3 of 8 payload bytes
        let mut r = binary_reader(buf, 1024);
        assert_eq!(r.read().unwrap_err(), NetError::Disconnected);

        // An NDJSON line cut off before its newline, likewise.
        let mut r = FrameReader::new(Cursor::new(b"{\"a\":1".to_vec()), WireFormat::Ndjson, 1024);
        assert_eq!(r.read().unwrap_err(), NetError::Disconnected);
    }

    #[test]
    fn invalid_utf8_line_is_malformed() {
        let mut r = FrameReader::new(
            Cursor::new(vec![0xff, 0xfe, b'\n']),
            WireFormat::Ndjson,
            1024,
        );
        assert!(matches!(r.read().unwrap_err(), NetError::Malformed { .. }));
    }

    #[test]
    fn net_source_poisons_with_typed_error_on_disconnect() {
        let reader = binary_reader(Vec::new(), 1024); // immediate EOF, no end frame
        let cell = NetErrorCell::new();
        let mut source: NetSource<_, u32> =
            NetSource::new(reader, Box::new(|_| Ok(NetPoll::End)), cell.clone());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| source.next()))
            .expect_err("EOF without end frame must poison");
        let typed = StageError::from_panic("stage/03_source", caught);
        assert_eq!(typed.kind, FailureKind::Disconnect);
        assert_eq!(cell.get(), Some(NetError::Disconnected));
    }

    #[test]
    fn net_source_decodes_records_until_end() {
        let mut buf = Vec::new();
        {
            let mut w = FrameWriter::new(&mut buf, WireFormat::Binary);
            for v in [10u8, 20, 30] {
                w.write(&WireFrame::Binary {
                    tag: 1,
                    payload: vec![v],
                })
                .unwrap();
            }
            w.write(&WireFrame::Binary {
                tag: 2,
                payload: Vec::new(),
            })
            .unwrap();
        }
        let mut source: NetSource<_, u8> = NetSource::new(
            binary_reader(buf, 1024),
            Box::new(|frame| match frame {
                WireFrame::Binary { tag: 1, payload } => Ok(NetPoll::Record(payload[0])),
                WireFrame::Binary { tag: 2, .. } => Ok(NetPoll::End),
                _ => Err(NetError::malformed("unexpected frame")),
            }),
            NetErrorCell::new(),
        );
        let frames = source.frames_in_handle();
        let mut got = Vec::new();
        while let Some(v) = source.next() {
            got.push(v);
        }
        assert_eq!(got, vec![10, 20, 30]);
        assert_eq!(frames.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn net_sink_writes_frames_and_flushes() {
        let buf: Vec<u8> = Vec::new();
        let cell = NetErrorCell::new();
        let mut sink: NetSink<_, u8> = NetSink::new(
            FrameWriter::new(buf, WireFormat::Binary),
            Box::new(|v: &u8| WireFrame::Binary {
                tag: 3,
                payload: vec![*v],
            }),
            cell.clone(),
        );
        sink.write(9);
        sink.write(8);
        sink.finish();
        assert_eq!(sink.frames_out_handle().load(Ordering::Relaxed), 2);
        // Two binary frames of 1 payload byte: (1 tag + 4 len + 1) each.
        assert_eq!(sink.bytes_out_handle().load(Ordering::Relaxed), 12);
        assert!(cell.get().is_none());
    }

    #[test]
    fn net_sink_batch_encoder_emits_one_frame_per_batch() {
        let buf: Vec<u8> = Vec::new();
        let mut sink: NetSink<_, u8> = NetSink::new(
            FrameWriter::new(buf, WireFormat::Binary),
            Box::new(|v: &u8| WireFrame::Binary {
                tag: 3,
                payload: vec![*v],
            }),
            NetErrorCell::new(),
        )
        .with_batch_encode(Box::new(|batch: &[u8]| WireFrame::Binary {
            tag: 7,
            payload: batch.to_vec(),
        }));
        let frames_out = sink.frames_out_handle();
        let bytes_out = sink.bytes_out_handle();
        sink.write_batch(vec![1, 2, 3]);
        assert_eq!(frames_out.load(Ordering::Relaxed), 1, "one frame, not 3");
        // One frame: 1 tag + 4 len + 3 payload bytes.
        assert_eq!(bytes_out.load(Ordering::Relaxed), 8);
        // Singletons take the per-record path: same wire as unbatched.
        sink.write_batch(vec![9]);
        assert_eq!(frames_out.load(Ordering::Relaxed), 2);
        assert_eq!(bytes_out.load(Ordering::Relaxed), 14);
        sink.finish();
    }

    #[test]
    fn net_sink_without_batch_encoder_falls_back_per_record() {
        let buf: Vec<u8> = Vec::new();
        let mut sink: NetSink<_, u8> = NetSink::new(
            FrameWriter::new(buf, WireFormat::Binary),
            Box::new(|v: &u8| WireFrame::Binary {
                tag: 3,
                payload: vec![*v],
            }),
            NetErrorCell::new(),
        );
        sink.write_batch(vec![1, 2, 3]);
        assert_eq!(sink.frames_out_handle().load(Ordering::Relaxed), 3);
    }

    #[test]
    fn net_sink_poisons_on_broken_pipe() {
        /// A writer that fails every write like a closed socket.
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let cell = NetErrorCell::new();
        let mut sink: NetSink<_, u8> = NetSink::new(
            FrameWriter::new(Broken, WireFormat::Binary),
            Box::new(|v: &u8| WireFrame::Binary {
                tag: 3,
                payload: vec![*v],
            }),
            cell.clone(),
        );
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sink.write(1)))
            .expect_err("write to a dead peer must poison");
        let typed = StageError::from_panic("stage/00_sink", caught);
        assert_eq!(typed.kind, FailureKind::Disconnect);
        assert_eq!(cell.get(), Some(NetError::Disconnected));
    }

    #[test]
    fn wire_format_parses() {
        assert_eq!(WireFormat::parse("ndjson"), Some(WireFormat::Ndjson));
        assert_eq!(WireFormat::parse("binary"), Some(WireFormat::Binary));
        assert_eq!(WireFormat::parse("msgpack"), None);
        assert_eq!(WireFormat::Binary.as_str(), "binary");
    }

    #[test]
    fn decoder_pops_frames_across_arbitrary_pushes() {
        let mut dec = FrameDecoder::new(WireFormat::Binary, 1024);
        let bytes = frame_bytes(&WireFrame::Binary {
            tag: 3,
            payload: vec![9, 8, 7],
        });
        // One byte at a time: no frame until the last byte lands.
        for b in &bytes[..bytes.len() - 1] {
            dec.push(&[*b]);
            assert!(dec.next().unwrap().is_none());
        }
        dec.push(&bytes[bytes.len() - 1..]);
        assert_eq!(
            dec.next().unwrap(),
            Some(WireFrame::Binary {
                tag: 3,
                payload: vec![9, 8, 7]
            })
        );
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decoder_switches_format_with_residual_bytes() {
        // A handshake line with binary data pipelined right behind it —
        // the exact shape a non-blocking session read produces.
        let mut dec = FrameDecoder::new(WireFormat::Ndjson, 1024);
        let mut bytes = frame_bytes(&WireFrame::Line("{\"hello\":true}".into()));
        bytes.extend_from_slice(&frame_bytes(&WireFrame::Binary {
            tag: 1,
            payload: vec![42],
        }));
        dec.push(&bytes);
        assert_eq!(
            dec.next().unwrap(),
            Some(WireFrame::Line("{\"hello\":true}".into()))
        );
        dec.set_format(WireFormat::Binary);
        assert_eq!(
            dec.next().unwrap(),
            Some(WireFrame::Binary {
                tag: 1,
                payload: vec![42]
            })
        );
    }

    #[test]
    fn decoder_enforces_cap_before_buffering() {
        // Binary: the announced length alone trips the cap.
        let mut dec = FrameDecoder::new(WireFormat::Binary, 16);
        let mut header = vec![3u8];
        header.extend_from_slice(&1_000_000u32.to_le_bytes());
        dec.push(&header);
        assert!(matches!(
            dec.next(),
            Err(NetError::Oversized {
                len: 1_000_000,
                max: 16
            })
        ));
        // NDJSON: a newline-less run past the cap fails without
        // waiting for the terminator.
        let mut dec = FrameDecoder::new(WireFormat::Ndjson, 16);
        dec.push(&[b'x'; 17]);
        assert!(matches!(dec.next(), Err(NetError::Oversized { .. })));
    }

    #[test]
    fn decoder_rejects_invalid_utf8_lines() {
        let mut dec = FrameDecoder::new(WireFormat::Ndjson, 64);
        dec.push(&[0xFF, 0xFE, b'\n']);
        assert!(matches!(dec.next(), Err(NetError::Malformed { .. })));
    }

    #[test]
    fn write_queue_resumes_partial_writes() {
        /// A writer that accepts two bytes, pushes back once, then
        /// accepts the rest — a miniature slow reader.
        struct Trickle {
            out: Vec<u8>,
            calls: usize,
        }
        impl Write for Trickle {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.calls += 1;
                if self.calls == 2 {
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                let n = buf.len().min(2);
                self.out.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut q = WriteQueue::new();
        q.push(Arc::from(&b"abcdef"[..]));
        q.push(Arc::from(&b"gh"[..]));
        let mut w = Trickle {
            out: Vec::new(),
            calls: 0,
        };
        assert!(!q.write_to(&mut w).unwrap()); // parked on WouldBlock
        assert_eq!(q.pending(), 6);
        while !q.write_to(&mut w).unwrap() {}
        assert_eq!(w.out, b"abcdefgh");
        assert!(q.is_empty());
        assert_eq!(q.pending(), 0);
    }

    mod split_properties {
        use super::*;
        use proptest::prelude::*;

        /// Deterministically builds a frame sequence from a seed:
        /// binary frames with varied tags/payloads or NDJSON lines.
        fn frames_from(seed: u64, count: usize, format: WireFormat) -> Vec<WireFrame> {
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            (0..count)
                .map(|i| {
                    state = state
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(1_442_695_040_888_963_407);
                    match format {
                        WireFormat::Binary => WireFrame::Binary {
                            tag: (state % 7) as u8 + 1,
                            payload: (0..(state % 40) as usize)
                                .map(|j| (state as usize + i + j) as u8)
                                .collect(),
                        },
                        WireFormat::Ndjson => {
                            WireFrame::Line(format!("{{\"i\":{i},\"s\":{}}}", state % 1000))
                        }
                    }
                })
                .collect()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            /// Core partial-read property: however the byte stream is
            /// split — including zero-length reads standing in for
            /// `WouldBlock` — the decoder yields the identical frame
            /// sequence, in order, with no corruption.
            #[test]
            fn decoder_survives_arbitrary_split_boundaries(
                seed in 0u64..u64::MAX,
                count in 0usize..20,
                fmt in 0u8..2,
                chunk_seed in 0u64..u64::MAX,
            ) {
                let format = if fmt == 0 { WireFormat::Binary } else { WireFormat::Ndjson };
                let frames = frames_from(seed, count, format);
                let bytes: Vec<u8> = frames.iter().flat_map(frame_bytes).collect();

                let mut dec = FrameDecoder::new(format, 1 << 20);
                let mut got = Vec::new();
                let mut pos = 0usize;
                let mut cstate = chunk_seed | 1;
                while pos < bytes.len() {
                    cstate = cstate
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(1_442_695_040_888_963_407);
                    // 0 stands in for a read that returned WouldBlock.
                    let step = (cstate % 9) as usize;
                    let end = (pos + step).min(bytes.len());
                    dec.push(&bytes[pos..end]);
                    pos = end;
                    while let Some(frame) = dec.next().unwrap() {
                        got.push(frame);
                    }
                }
                prop_assert_eq!(got, frames);
                prop_assert_eq!(dec.buffered(), 0);
            }

            /// The incremental decoder agrees byte-for-byte with the
            /// blocking `FrameReader` over the same stream.
            #[test]
            fn decoder_matches_frame_reader(
                seed in 0u64..u64::MAX,
                count in 1usize..16,
                fmt in 0u8..2,
            ) {
                let format = if fmt == 0 { WireFormat::Binary } else { WireFormat::Ndjson };
                let frames = frames_from(seed, count, format);
                let bytes: Vec<u8> = frames.iter().flat_map(frame_bytes).collect();

                let mut reader =
                    FrameReader::new(Cursor::new(bytes.clone()), format, DEFAULT_MAX_FRAME_BYTES);
                let mut via_reader = Vec::new();
                while let Some(f) = reader.read().unwrap() {
                    via_reader.push(f);
                }

                let mut dec = FrameDecoder::new(format, DEFAULT_MAX_FRAME_BYTES);
                dec.push(&bytes);
                let mut via_decoder = Vec::new();
                while let Some(f) = dec.next().unwrap() {
                    via_decoder.push(f);
                }
                prop_assert_eq!(via_reader, via_decoder);
            }

            /// A `WriteQueue` fed through a transport that accepts
            /// arbitrary partial writes and interleaves `WouldBlock`
            /// reproduces the exact byte stream.
            #[test]
            fn write_queue_survives_partial_writes(
                seed in 0u64..u64::MAX,
                count in 0usize..12,
                fmt in 0u8..2,
                chunk_seed in 0u64..u64::MAX,
            ) {
                struct Choppy {
                    out: Vec<u8>,
                    state: u64,
                }
                impl Write for Choppy {
                    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                        self.state = self
                            .state
                            .wrapping_mul(6_364_136_223_846_793_005)
                            .wrapping_add(1_442_695_040_888_963_407);
                        match self.state % 7 {
                            0 => Err(std::io::ErrorKind::WouldBlock.into()),
                            1 => Err(std::io::ErrorKind::Interrupted.into()),
                            r => {
                                let n = buf.len().min(r as usize);
                                self.out.extend_from_slice(&buf[..n]);
                                Ok(n)
                            }
                        }
                    }
                    fn flush(&mut self) -> std::io::Result<()> {
                        Ok(())
                    }
                }

                let format = if fmt == 0 { WireFormat::Binary } else { WireFormat::Ndjson };
                let frames = frames_from(seed, count, format);
                let bytes: Vec<u8> = frames.iter().flat_map(frame_bytes).collect();

                let mut q = WriteQueue::new();
                for f in &frames {
                    q.push(Arc::from(frame_bytes(f).into_boxed_slice()));
                }
                let mut w = Choppy { out: Vec::new(), state: chunk_seed | 1 };
                while !q.write_to(&mut w).unwrap() {}
                prop_assert_eq!(w.out, bytes);
            }
        }
    }
}
