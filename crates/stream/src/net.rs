//! Network transport for streams: frame codec, [`NetSource`], and
//! [`NetSink`].
//!
//! Two wire formats are supported, chosen per connection:
//!
//! * **NDJSON** — one JSON text per `\n`-terminated line. Human-
//!   readable, trivially scriptable with `nc`/`jq`.
//! * **Binary** — length-prefixed frames `[tag: u8][len: u32 LE]
//!   [payload]`. Compact and copy-friendly for high-rate sessions.
//!
//! This module is deliberately *payload-agnostic*: it moves
//! [`WireFrame`]s, not tuples. The mapping between frames and records
//! is supplied by the caller as encode/decode closures (the `serve`
//! crate provides the icewafl session protocol on top). That keeps the
//! stream crate free of any serialization dependency.
//!
//! Protocol failures are **typed and poisoning, never truncating**: a
//! malformed frame, an oversized frame, or a peer disconnect makes
//! [`NetSource`]/[`NetSink`] record a [`NetError`] into a shared
//! [`NetErrorCell`] and raise a typed [`StageError`] through the
//! poison-propagation protocol (see [`fault`](crate::fault)) — the
//! pipeline terminates with `Error::Pipeline` naming the failure kind
//! instead of silently ending the stream early, exactly like
//! `CsvTupleSource` does for file I/O.

use crate::fault::{FailureKind, StageError};
use crate::sink::Sink;
use crate::source::Source;
use parking_lot::Mutex;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default cap on a single frame (payload or line), in bytes.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// A typed transport-protocol failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The peer sent bytes that do not parse as a frame of the
    /// negotiated format (bad UTF-8, unknown tag, undecodable payload).
    Malformed {
        /// What failed to parse.
        detail: String,
    },
    /// A frame announced (or a line reached) a length beyond the
    /// session's cap — rejected before buffering the payload.
    Oversized {
        /// Announced or accumulated length in bytes.
        len: usize,
        /// The session's cap in bytes.
        max: usize,
    },
    /// The peer vanished mid-stream (EOF or connection reset before the
    /// end-of-stream frame).
    Disconnected,
    /// Any other socket-level I/O failure (e.g. a read timeout).
    Io {
        /// The rendered `std::io::Error`.
        detail: String,
    },
}

impl NetError {
    /// Classifies an I/O error: EOF/reset/abort mean the peer is gone,
    /// everything else is a generic I/O failure.
    pub fn from_io(e: &std::io::Error) -> Self {
        use std::io::ErrorKind::*;
        match e.kind() {
            UnexpectedEof | ConnectionReset | ConnectionAborted | BrokenPipe => {
                NetError::Disconnected
            }
            _ => NetError::Io {
                detail: e.to_string(),
            },
        }
    }

    /// A malformed-frame error with a detail message.
    pub fn malformed(detail: impl Into<String>) -> Self {
        NetError::Malformed {
            detail: detail.into(),
        }
    }

    /// Stable machine-readable code (`malformed`, `oversized`,
    /// `disconnected`, `io`) — what session error frames carry.
    pub fn code(&self) -> &'static str {
        match self {
            NetError::Malformed { .. } => "malformed",
            NetError::Oversized { .. } => "oversized",
            NetError::Disconnected => "disconnected",
            NetError::Io { .. } => "io",
        }
    }

    /// How this error is classified by the failure protocol: protocol
    /// violations are [`FailureKind::Fatal`] (retrying cannot help),
    /// vanished peers and socket trouble are [`FailureKind::Disconnect`].
    pub fn failure_kind(&self) -> FailureKind {
        match self {
            NetError::Malformed { .. } | NetError::Oversized { .. } => FailureKind::Fatal,
            NetError::Disconnected | NetError::Io { .. } => FailureKind::Disconnect,
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Malformed { detail } => write!(f, "malformed frame: {detail}"),
            NetError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes exceeds the {max}-byte cap")
            }
            NetError::Disconnected => write!(f, "peer disconnected mid-stream"),
            NetError::Io { detail } => write!(f, "transport I/O error: {detail}"),
        }
    }
}

impl std::error::Error for NetError {}

/// First-error-wins cell shared between a [`NetSource`]/[`NetSink`] and
/// the session code that reports the typed error to the peer.
#[derive(Clone, Default)]
pub struct NetErrorCell {
    slot: Arc<Mutex<Option<NetError>>>,
}

impl NetErrorCell {
    /// An empty cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `error` unless one was already recorded.
    pub fn record(&self, error: NetError) {
        let mut slot = self.slot.lock();
        if slot.is_none() {
            *slot = Some(error);
        }
    }

    /// A copy of the recorded error, if any.
    pub fn get(&self) -> Option<NetError> {
        self.slot.lock().clone()
    }
}

/// The wire format negotiated for a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// One JSON text per newline-terminated line.
    #[default]
    Ndjson,
    /// Length-prefixed binary frames: `[tag: u8][len: u32 LE][payload]`.
    Binary,
}

impl WireFormat {
    /// Parses the handshake name (`ndjson` / `binary`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ndjson" => Some(WireFormat::Ndjson),
            "binary" => Some(WireFormat::Binary),
            _ => None,
        }
    }

    /// The handshake name of this format.
    pub fn as_str(&self) -> &'static str {
        match self {
            WireFormat::Ndjson => "ndjson",
            WireFormat::Binary => "binary",
        }
    }
}

/// One frame as it crosses the wire, before any payload decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireFrame {
    /// A binary frame: tag byte plus raw payload.
    Binary {
        /// Protocol-defined frame tag.
        tag: u8,
        /// Raw payload bytes.
        payload: Vec<u8>,
    },
    /// One NDJSON line, without its trailing newline.
    Line(String),
}

impl WireFrame {
    /// Bytes this frame occupies on the wire, including framing overhead
    /// (the `[tag][len]` header for binary frames, the trailing newline
    /// for NDJSON lines).
    pub fn wire_len(&self) -> usize {
        match self {
            WireFrame::Binary { payload, .. } => 1 + 4 + payload.len(),
            WireFrame::Line(line) => line.len() + 1,
        }
    }
}

/// Reads [`WireFrame`]s of one format from a buffered byte stream,
/// enforcing a per-frame size cap *before* buffering payloads.
pub struct FrameReader<R> {
    inner: R,
    format: WireFormat,
    max_frame: usize,
}

impl<R: BufRead> FrameReader<R> {
    /// A reader over `inner`; frames larger than `max_frame` bytes are
    /// rejected as [`NetError::Oversized`].
    pub fn new(inner: R, format: WireFormat, max_frame: usize) -> Self {
        FrameReader {
            inner,
            format,
            max_frame: max_frame.max(1),
        }
    }

    /// The underlying reader (e.g. to re-wrap it after a handshake).
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Reads the next frame. `Ok(None)` is a *clean* EOF at a frame
    /// boundary; EOF inside a frame is [`NetError::Disconnected`].
    pub fn read(&mut self) -> Result<Option<WireFrame>, NetError> {
        match self.format {
            WireFormat::Ndjson => Ok(self.read_line_bounded()?.map(WireFrame::Line)),
            WireFormat::Binary => self.read_binary(),
        }
    }

    /// Bounded line read: scans the buffered window for `\n` and fails
    /// with [`NetError::Oversized`] as soon as the accumulated line
    /// crosses the cap — a missing newline can never buffer unbounded
    /// memory.
    fn read_line_bounded(&mut self) -> Result<Option<String>, NetError> {
        let mut line: Vec<u8> = Vec::new();
        loop {
            let (advance, done) = {
                let buf = self.inner.fill_buf().map_err(|e| NetError::from_io(&e))?;
                if buf.is_empty() {
                    if line.is_empty() {
                        return Ok(None);
                    }
                    return Err(NetError::Disconnected);
                }
                match buf.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        if line.len() + pos > self.max_frame {
                            return Err(NetError::Oversized {
                                len: line.len() + pos,
                                max: self.max_frame,
                            });
                        }
                        line.extend_from_slice(&buf[..pos]);
                        (pos + 1, true)
                    }
                    None => {
                        if line.len() + buf.len() > self.max_frame {
                            return Err(NetError::Oversized {
                                len: line.len() + buf.len(),
                                max: self.max_frame,
                            });
                        }
                        line.extend_from_slice(buf);
                        (buf.len(), false)
                    }
                }
            };
            self.inner.consume(advance);
            if done {
                return String::from_utf8(line)
                    .map(Some)
                    .map_err(|_| NetError::malformed("line is not valid UTF-8"));
            }
        }
    }

    fn read_binary(&mut self) -> Result<Option<WireFrame>, NetError> {
        // A zero-byte read for the tag is the only clean EOF point.
        let mut tag = [0u8; 1];
        match self.inner.read(&mut tag) {
            Ok(0) => return Ok(None),
            Ok(_) => {}
            Err(e) => return Err(NetError::from_io(&e)),
        }
        let mut len = [0u8; 4];
        self.inner
            .read_exact(&mut len)
            .map_err(|e| NetError::from_io(&e))?;
        let len = u32::from_le_bytes(len) as usize;
        if len > self.max_frame {
            return Err(NetError::Oversized {
                len,
                max: self.max_frame,
            });
        }
        let mut payload = vec![0u8; len];
        self.inner
            .read_exact(&mut payload)
            .map_err(|e| NetError::from_io(&e))?;
        Ok(Some(WireFrame::Binary {
            tag: tag[0],
            payload,
        }))
    }
}

/// Writes [`WireFrame`]s of one format to a byte stream.
pub struct FrameWriter<W> {
    inner: W,
    format: WireFormat,
}

impl<W: Write> FrameWriter<W> {
    /// A writer over `inner`.
    pub fn new(inner: W, format: WireFormat) -> Self {
        FrameWriter { inner, format }
    }

    /// Writes one frame. The frame variant must match the negotiated
    /// format; a mismatch is a caller bug reported as
    /// [`NetError::Malformed`].
    pub fn write(&mut self, frame: &WireFrame) -> Result<(), NetError> {
        match (self.format, frame) {
            (WireFormat::Binary, WireFrame::Binary { tag, payload }) => self
                .inner
                .write_all(&[*tag])
                .and_then(|_| self.inner.write_all(&(payload.len() as u32).to_le_bytes()))
                .and_then(|_| self.inner.write_all(payload))
                .map_err(|e| NetError::from_io(&e)),
            (WireFormat::Ndjson, WireFrame::Line(line)) => {
                if line.contains('\n') {
                    return Err(NetError::malformed("NDJSON line contains a raw newline"));
                }
                self.inner
                    .write_all(line.as_bytes())
                    .and_then(|_| self.inner.write_all(b"\n"))
                    .map_err(|e| NetError::from_io(&e))
            }
            _ => Err(NetError::malformed(
                "frame variant does not match the negotiated wire format",
            )),
        }
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> Result<(), NetError> {
        self.inner.flush().map_err(|e| NetError::from_io(&e))
    }
}

/// What a decoded client frame means to the stream runtime.
pub enum NetPoll<T> {
    /// One record to feed into the pipeline.
    Record(T),
    /// The peer's end-of-stream marker: finish cleanly.
    End,
}

/// Decodes one wire frame into a record or the end-of-stream marker.
pub type DecodeFn<T> = Box<dyn FnMut(WireFrame) -> Result<NetPoll<T>, NetError> + Send>;

/// Encodes one record as a wire frame.
pub type EncodeFn<T> = Box<dyn FnMut(&T) -> WireFrame + Send>;

/// Encodes a whole batch of records as one wire frame (e.g. a columnar
/// frame that serializes each column contiguously).
pub type BatchEncodeFn<T> = Box<dyn FnMut(&[T]) -> WireFrame + Send>;

/// A [`Source`] that pulls records from a network peer, one frame at a
/// time.
///
/// Because the source is pulled by the execution driver, ingest is
/// naturally throttled by downstream progress: if the pipeline (or a
/// slow reader behind a [`NetSink`]) stalls, the source stops reading
/// and TCP flow control pushes back on the peer — bounded memory with
/// no explicit buffering.
///
/// Any protocol failure — including EOF *without* the end-of-stream
/// frame — records a typed [`NetError`] into the shared
/// [`NetErrorCell`] and poisons the pipeline via
/// [`std::panic::panic_any`]`(StageError)`, so the run fails loudly
/// instead of truncating.
pub struct NetSource<R, T> {
    reader: FrameReader<R>,
    decode: DecodeFn<T>,
    error: NetErrorCell,
    frames_in: Arc<AtomicU64>,
}

impl<R: BufRead + Send, T> NetSource<R, T> {
    /// A source decoding frames from `reader` with `decode`; protocol
    /// errors are mirrored into `error`.
    pub fn new(reader: FrameReader<R>, decode: DecodeFn<T>, error: NetErrorCell) -> Self {
        NetSource {
            reader,
            decode,
            error,
            frames_in: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A live counter of frames read so far (records only, not the end
    /// marker) — shareable with session metrics.
    pub fn frames_in_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.frames_in)
    }

    fn fail(&self, error: NetError) -> ! {
        let typed = StageError::new("net_source", error.failure_kind(), error.to_string());
        self.error.record(error);
        std::panic::panic_any(typed);
    }
}

impl<R: BufRead + Send, T: Send> Source<T> for NetSource<R, T> {
    fn next(&mut self) -> Option<T> {
        let frame = match self.reader.read() {
            Ok(Some(frame)) => frame,
            // EOF without the protocol's end marker: the peer vanished.
            Ok(None) => self.fail(NetError::Disconnected),
            Err(e) => self.fail(e),
        };
        match (self.decode)(frame) {
            Ok(NetPoll::Record(t)) => {
                self.frames_in.fetch_add(1, Ordering::Relaxed);
                Some(t)
            }
            Ok(NetPoll::End) => None,
            Err(e) => self.fail(e),
        }
    }
}

/// A [`Sink`] that streams records back to a network peer, one frame
/// per record.
///
/// A write failure (the peer hung up, the socket broke) poisons the
/// pipeline with a typed [`FailureKind::Disconnect`] error the same way
/// [`NetSource`] does, after mirroring it into the shared
/// [`NetErrorCell`].
pub struct NetSink<W, T> {
    writer: FrameWriter<W>,
    encode: EncodeFn<T>,
    /// Optional whole-batch encoder: when set, `write_batch` emits one
    /// frame per batch instead of one per record.
    encode_batch: Option<BatchEncodeFn<T>>,
    error: NetErrorCell,
    frames_out: Arc<AtomicU64>,
    bytes_out: Arc<AtomicU64>,
    encode_ns: Arc<AtomicU64>,
    blocked_write_ns: Arc<AtomicU64>,
    /// Frames written, kept locally for the 1-in-64 timing decision.
    seen: u64,
}

/// Every 64th frame through a [`NetSink`] has its encode and write
/// wall-clock timed (matching the stage latency sampling policy), so the
/// `encode_ns` / `blocked_write_ns` counters attribute where a serve
/// session spends time without paying `Instant::now` per frame.
const SINK_SAMPLE_MASK: u64 = 63;

impl<W: Write + Send, T> NetSink<W, T> {
    /// A sink encoding records with `encode` into `writer`; transport
    /// errors are mirrored into `error`.
    pub fn new(writer: FrameWriter<W>, encode: EncodeFn<T>, error: NetErrorCell) -> Self {
        NetSink {
            writer,
            encode,
            encode_batch: None,
            error,
            frames_out: Arc::new(AtomicU64::new(0)),
            bytes_out: Arc::new(AtomicU64::new(0)),
            encode_ns: Arc::new(AtomicU64::new(0)),
            blocked_write_ns: Arc::new(AtomicU64::new(0)),
            seen: 0,
        }
    }

    /// Installs a whole-batch encoder: batches delivered via
    /// `write_batch` are serialized as ONE frame (encode once, one
    /// syscall-sized write) instead of one frame per record. Singleton
    /// and empty batches still go through the per-record path, so
    /// per-tuple consumers see no format change at batch size 1.
    pub fn with_batch_encode(mut self, encode_batch: BatchEncodeFn<T>) -> Self {
        self.encode_batch = Some(encode_batch);
        self
    }

    /// A live counter of frames written so far — shareable with session
    /// metrics.
    pub fn frames_out_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.frames_out)
    }

    /// A live counter of bytes written so far, including framing
    /// overhead.
    pub fn bytes_out_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.bytes_out)
    }

    /// Sampled (1-in-64) nanoseconds spent in the encode closure.
    pub fn encode_ns_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.encode_ns)
    }

    /// Sampled (1-in-64) nanoseconds spent inside `write` on the
    /// underlying transport — time blocked on the peer (or the kernel
    /// send buffer) rather than on encoding.
    pub fn blocked_write_ns_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.blocked_write_ns)
    }

    fn fail(&self, error: NetError) -> ! {
        let typed = StageError::new("net_sink", error.failure_kind(), error.to_string());
        self.error.record(error);
        std::panic::panic_any(typed);
    }
}

impl<W: Write + Send, T: Send> Sink<T> for NetSink<W, T> {
    fn write(&mut self, record: T) {
        let sampled = self.seen & SINK_SAMPLE_MASK == 0;
        self.seen += 1;
        let frame = if sampled {
            let start = std::time::Instant::now();
            let frame = (self.encode)(&record);
            self.encode_ns
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            frame
        } else {
            (self.encode)(&record)
        };
        self.bytes_out
            .fetch_add(frame.wire_len() as u64, Ordering::Relaxed);
        let result = if sampled {
            let start = std::time::Instant::now();
            let result = self.writer.write(&frame);
            self.blocked_write_ns
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            result
        } else {
            self.writer.write(&frame)
        };
        if let Err(e) = result {
            self.fail(e);
        }
        self.frames_out.fetch_add(1, Ordering::Relaxed);
    }

    fn write_batch(&mut self, batch: Vec<T>) {
        // No batch encoder, or a batch too small to amortize the frame
        // header: the per-record path keeps the wire identical to what
        // per-tuple consumers already parse.
        if self.encode_batch.is_none() || batch.len() < 2 {
            for record in batch {
                self.write(record);
            }
            return;
        }
        let sampled = self.seen & SINK_SAMPLE_MASK == 0;
        self.seen += 1;
        let encode_batch = self.encode_batch.as_mut().expect("checked above");
        let frame = if sampled {
            let start = std::time::Instant::now();
            let frame = encode_batch(&batch);
            self.encode_ns
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            frame
        } else {
            encode_batch(&batch)
        };
        self.bytes_out
            .fetch_add(frame.wire_len() as u64, Ordering::Relaxed);
        let result = if sampled {
            let start = std::time::Instant::now();
            let result = self.writer.write(&frame);
            self.blocked_write_ns
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            result
        } else {
            self.writer.write(&frame)
        };
        if let Err(e) = result {
            self.fail(e);
        }
        self.frames_out.fetch_add(1, Ordering::Relaxed);
    }

    fn finish(&mut self) {
        if let Err(e) = self.writer.flush() {
            self.fail(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn binary_reader(bytes: Vec<u8>, max: usize) -> FrameReader<Cursor<Vec<u8>>> {
        FrameReader::new(Cursor::new(bytes), WireFormat::Binary, max)
    }

    #[test]
    fn binary_frames_round_trip() {
        let mut buf = Vec::new();
        {
            let mut w = FrameWriter::new(&mut buf, WireFormat::Binary);
            w.write(&WireFrame::Binary {
                tag: 7,
                payload: b"hello".to_vec(),
            })
            .unwrap();
            w.write(&WireFrame::Binary {
                tag: 2,
                payload: Vec::new(),
            })
            .unwrap();
            w.flush().unwrap();
        }
        let mut r = binary_reader(buf, 1024);
        assert_eq!(
            r.read().unwrap(),
            Some(WireFrame::Binary {
                tag: 7,
                payload: b"hello".to_vec()
            })
        );
        assert_eq!(
            r.read().unwrap(),
            Some(WireFrame::Binary {
                tag: 2,
                payload: Vec::new()
            })
        );
        assert_eq!(r.read().unwrap(), None, "clean EOF at a frame boundary");
    }

    #[test]
    fn ndjson_lines_round_trip() {
        let mut buf = Vec::new();
        {
            let mut w = FrameWriter::new(&mut buf, WireFormat::Ndjson);
            w.write(&WireFrame::Line("{\"a\":1}".into())).unwrap();
            w.write(&WireFrame::Line("{\"end\":true}".into())).unwrap();
        }
        let mut r = FrameReader::new(Cursor::new(buf), WireFormat::Ndjson, 1024);
        assert_eq!(r.read().unwrap(), Some(WireFrame::Line("{\"a\":1}".into())));
        assert_eq!(
            r.read().unwrap(),
            Some(WireFrame::Line("{\"end\":true}".into()))
        );
        assert_eq!(r.read().unwrap(), None);
    }

    #[test]
    fn oversized_binary_frame_is_rejected_before_buffering() {
        let mut buf = vec![1u8];
        buf.extend_from_slice(&(u32::MAX).to_le_bytes()); // 4 GiB announced
        let mut r = binary_reader(buf, 64);
        assert!(matches!(
            r.read().unwrap_err(),
            NetError::Oversized { max: 64, .. }
        ));
    }

    #[test]
    fn oversized_line_is_rejected_mid_scan() {
        let line = vec![b'x'; 200]; // no newline at all
        let mut r = FrameReader::new(Cursor::new(line), WireFormat::Ndjson, 64);
        assert!(matches!(r.read().unwrap_err(), NetError::Oversized { .. }));
    }

    #[test]
    fn eof_inside_a_frame_is_disconnected() {
        let mut buf = vec![1u8];
        buf.extend_from_slice(&8u32.to_le_bytes());
        buf.extend_from_slice(b"abc"); // 3 of 8 payload bytes
        let mut r = binary_reader(buf, 1024);
        assert_eq!(r.read().unwrap_err(), NetError::Disconnected);

        // An NDJSON line cut off before its newline, likewise.
        let mut r = FrameReader::new(Cursor::new(b"{\"a\":1".to_vec()), WireFormat::Ndjson, 1024);
        assert_eq!(r.read().unwrap_err(), NetError::Disconnected);
    }

    #[test]
    fn invalid_utf8_line_is_malformed() {
        let mut r = FrameReader::new(
            Cursor::new(vec![0xff, 0xfe, b'\n']),
            WireFormat::Ndjson,
            1024,
        );
        assert!(matches!(r.read().unwrap_err(), NetError::Malformed { .. }));
    }

    #[test]
    fn net_source_poisons_with_typed_error_on_disconnect() {
        let reader = binary_reader(Vec::new(), 1024); // immediate EOF, no end frame
        let cell = NetErrorCell::new();
        let mut source: NetSource<_, u32> =
            NetSource::new(reader, Box::new(|_| Ok(NetPoll::End)), cell.clone());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| source.next()))
            .expect_err("EOF without end frame must poison");
        let typed = StageError::from_panic("stage/03_source", caught);
        assert_eq!(typed.kind, FailureKind::Disconnect);
        assert_eq!(cell.get(), Some(NetError::Disconnected));
    }

    #[test]
    fn net_source_decodes_records_until_end() {
        let mut buf = Vec::new();
        {
            let mut w = FrameWriter::new(&mut buf, WireFormat::Binary);
            for v in [10u8, 20, 30] {
                w.write(&WireFrame::Binary {
                    tag: 1,
                    payload: vec![v],
                })
                .unwrap();
            }
            w.write(&WireFrame::Binary {
                tag: 2,
                payload: Vec::new(),
            })
            .unwrap();
        }
        let mut source: NetSource<_, u8> = NetSource::new(
            binary_reader(buf, 1024),
            Box::new(|frame| match frame {
                WireFrame::Binary { tag: 1, payload } => Ok(NetPoll::Record(payload[0])),
                WireFrame::Binary { tag: 2, .. } => Ok(NetPoll::End),
                _ => Err(NetError::malformed("unexpected frame")),
            }),
            NetErrorCell::new(),
        );
        let frames = source.frames_in_handle();
        let mut got = Vec::new();
        while let Some(v) = source.next() {
            got.push(v);
        }
        assert_eq!(got, vec![10, 20, 30]);
        assert_eq!(frames.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn net_sink_writes_frames_and_flushes() {
        let buf: Vec<u8> = Vec::new();
        let cell = NetErrorCell::new();
        let mut sink: NetSink<_, u8> = NetSink::new(
            FrameWriter::new(buf, WireFormat::Binary),
            Box::new(|v: &u8| WireFrame::Binary {
                tag: 3,
                payload: vec![*v],
            }),
            cell.clone(),
        );
        sink.write(9);
        sink.write(8);
        sink.finish();
        assert_eq!(sink.frames_out_handle().load(Ordering::Relaxed), 2);
        // Two binary frames of 1 payload byte: (1 tag + 4 len + 1) each.
        assert_eq!(sink.bytes_out_handle().load(Ordering::Relaxed), 12);
        assert!(cell.get().is_none());
    }

    #[test]
    fn net_sink_batch_encoder_emits_one_frame_per_batch() {
        let buf: Vec<u8> = Vec::new();
        let mut sink: NetSink<_, u8> = NetSink::new(
            FrameWriter::new(buf, WireFormat::Binary),
            Box::new(|v: &u8| WireFrame::Binary {
                tag: 3,
                payload: vec![*v],
            }),
            NetErrorCell::new(),
        )
        .with_batch_encode(Box::new(|batch: &[u8]| WireFrame::Binary {
            tag: 7,
            payload: batch.to_vec(),
        }));
        let frames_out = sink.frames_out_handle();
        let bytes_out = sink.bytes_out_handle();
        sink.write_batch(vec![1, 2, 3]);
        assert_eq!(frames_out.load(Ordering::Relaxed), 1, "one frame, not 3");
        // One frame: 1 tag + 4 len + 3 payload bytes.
        assert_eq!(bytes_out.load(Ordering::Relaxed), 8);
        // Singletons take the per-record path: same wire as unbatched.
        sink.write_batch(vec![9]);
        assert_eq!(frames_out.load(Ordering::Relaxed), 2);
        assert_eq!(bytes_out.load(Ordering::Relaxed), 14);
        sink.finish();
    }

    #[test]
    fn net_sink_without_batch_encoder_falls_back_per_record() {
        let buf: Vec<u8> = Vec::new();
        let mut sink: NetSink<_, u8> = NetSink::new(
            FrameWriter::new(buf, WireFormat::Binary),
            Box::new(|v: &u8| WireFrame::Binary {
                tag: 3,
                payload: vec![*v],
            }),
            NetErrorCell::new(),
        );
        sink.write_batch(vec![1, 2, 3]);
        assert_eq!(sink.frames_out_handle().load(Ordering::Relaxed), 3);
    }

    #[test]
    fn net_sink_poisons_on_broken_pipe() {
        /// A writer that fails every write like a closed socket.
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let cell = NetErrorCell::new();
        let mut sink: NetSink<_, u8> = NetSink::new(
            FrameWriter::new(Broken, WireFormat::Binary),
            Box::new(|v: &u8| WireFrame::Binary {
                tag: 3,
                payload: vec![*v],
            }),
            cell.clone(),
        );
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sink.write(1)))
            .expect_err("write to a dead peer must poison");
        let typed = StageError::from_panic("stage/00_sink", caught);
        assert_eq!(typed.kind, FailureKind::Disconnect);
        assert_eq!(cell.get(), Some(NetError::Disconnected));
    }

    #[test]
    fn wire_format_parses() {
        assert_eq!(WireFormat::parse("ndjson"), Some(WireFormat::Ndjson));
        assert_eq!(WireFormat::parse("binary"), Some(WireFormat::Binary));
        assert_eq!(WireFormat::parse("msgpack"), None);
        assert_eq!(WireFormat::Binary.as_str(), "binary");
    }
}
