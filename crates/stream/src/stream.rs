//! The fluent `DataStream` pipeline API and its executors.
//!
//! A [`DataStream<T>`] is a *description* of a pipeline, composed
//! back-to-front: each combinator wraps the eventual downstream stage in
//! another [`Stage`]. Calling
//! [`DataStream::execute_into`] materializes the chain and drives the
//! source to completion.
//!
//! Two execution flavours exist, mirroring the paper's deterministic
//! single-node mode and Flink's distributed mode:
//!
//! * **sequential** — everything runs on the calling thread, in a fully
//!   deterministic order (what Icewafl needs for reproducible pollution);
//! * **parallel** — [`DataStream::pipelined`] inserts a thread boundary
//!   backed by a bounded crossbeam channel, and
//!   [`DataStream::split_merge_parallel`] runs sub-pipelines on their own
//!   threads, with watermark-merged union.

use crate::checkpoint::{CheckpointBarrier, CheckpointCoordinator, WatermarkGenState};
use crate::element::StreamElement;
use crate::fault::{FailureCell, FailureKind, PipelineError, StageError};
use crate::keyed::KeyedProcessOperator;
use crate::metrics::{ChannelMetrics, SorterMetrics, StageMetrics, SAMPLE_MASK};
use crate::operator::{
    Collector, FilterOperator, FlatMapOperator, InspectOperator, MapOperator, Operator,
};
use crate::sink::{SharedVecSink, Sink};
use crate::sort::EventTimeSorter;
use crate::source::{Source, VecSource};
use crate::stage::{
    send_metered, BatchingStage, BoxStage, ChannelStage, OperatorStage, SinkStage, Stage,
    WatermarkMerger,
};
use crate::watermark::WatermarkStrategy;
use crate::window::{MicroBatcher, TumblingWindow, WindowPane};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use icewafl_obs::{MetricsRegistry, Stopwatch};
use icewafl_types::{Duration, Timestamp};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Runs a fully built pipeline's source to completion.
type Driver = Box<dyn FnOnce() + Send>;

/// The source driver checks the wall-clock deadline once per this many
/// records (power-of-two mask), keeping `Instant::now` off the per-record
/// hot path.
const DEADLINE_CHECK_MASK: u64 = 255;

/// Deferred pipeline construction: given the downstream stage and the
/// execution context, produce the driver.
type BuildFn<T> = Box<dyn FnOnce(BoxStage<T>, &mut ExecutionContext) -> Driver + Send>;

/// Builder for a sub-pipeline inside [`DataStream::split_merge`].
pub type SubPipelineBuilder<T, U> = Box<dyn FnOnce(DataStream<T>) -> DataStream<U> + Send>;

/// Collects the worker threads spawned while building a pipeline so the
/// executor can join them, and carries the [`MetricsRegistry`] that
/// stages register their instrumentation against.
#[derive(Default)]
pub struct ExecutionContext {
    handles: Vec<JoinHandle<()>>,
    registry: MetricsRegistry,
    stage_seq: u32,
    /// First-failure-wins cell shared with every fault-catching point of
    /// this execution (see [`fault`](crate::fault)).
    failures: FailureCell,
    /// Wall-clock instant after which source drivers poison the stream
    /// with a [`FailureKind::Deadline`] failure.
    deadline: Option<Instant>,
}

impl ExecutionContext {
    /// A context whose stages record into `registry`.
    pub fn with_registry(registry: MetricsRegistry) -> Self {
        ExecutionContext {
            registry,
            ..Default::default()
        }
    }

    /// The registry pipeline stages register their metrics against.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// A clone of the run's shared failure cell.
    pub fn failure_cell(&self) -> FailureCell {
        self.failures.clone()
    }

    /// Sets the wall-clock deadline source drivers enforce.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// The label for the next stage, e.g. `stage/03_map`. Pipelines are
    /// built back-to-front, so indices count from the **sink** upward.
    pub fn next_stage_label(&mut self, name: &str) -> String {
        let label = format!("stage/{:02}_{}", self.stage_seq, name);
        self.stage_seq += 1;
        label
    }

    fn join_all(&mut self) {
        for h in self.handles.drain(..) {
            if let Err(panic) = h.join() {
                // Workers catch their own panics; a panic escaping the
                // catch wrapper itself is still converted, never rethrown.
                self.failures
                    .record(StageError::from_panic("worker", panic));
            }
        }
    }
}

/// Receives one element, tracing every 64th wait as a `recv_wait`
/// span — blocked-time attribution for channel edges (split-router
/// replays) that have no [`ChannelMetrics`] of their own. `None` means
/// the channel disconnected.
fn sampled_recv<T>(rx: &Receiver<T>, recvs: &mut u64) -> Option<T> {
    let sampled = *recvs & SAMPLE_MASK == 0;
    *recvs += 1;
    if sampled {
        let span = icewafl_obs::trace::span("recv_wait", "backpressure");
        let received = rx.recv().ok();
        drop(span);
        received
    } else {
        rx.recv().ok()
    }
}

/// A lazily composed stream pipeline over records of type `T`.
pub struct DataStream<T: Send + 'static> {
    build: BuildFn<T>,
}

impl<T: Send + 'static> DataStream<T> {
    /// A stream fed by `source`, with watermarks per `strategy`.
    ///
    /// The runtime always emits a final `W(MAX)` watermark before the end
    /// marker, so buffering operators flush even under
    /// [`WatermarkStrategy::none`].
    pub fn from_source(source: impl Source<T> + 'static, strategy: WatermarkStrategy<T>) -> Self {
        DataStream {
            build: Box::new(move |mut down, ctx| {
                let mut source = source;
                let mut generator = strategy.generator();
                let label = ctx.next_stage_label("source");
                let failures = ctx.failure_cell();
                let deadline = ctx.deadline;
                Box::new(move || {
                    let mut seen: u64 = 0;
                    loop {
                        // `source.next()` and watermark generation run
                        // under `catch_unwind`: a panicking source poisons
                        // the stream instead of unwinding the driver (which
                        // would drop channel senders without an end marker).
                        let step = {
                            let source = &mut source;
                            let generator = &mut generator;
                            catch_unwind(AssertUnwindSafe(move || {
                                source.next().map(|r| {
                                    let wm = generator.on_record(&r);
                                    (r, wm)
                                })
                            }))
                        };
                        match step {
                            Ok(Some((record, wm))) => {
                                down.push(StreamElement::Record(record));
                                if let Some(wm) = wm {
                                    down.push(StreamElement::Watermark(wm));
                                }
                            }
                            Ok(None) => {
                                down.push(StreamElement::Watermark(Timestamp::MAX));
                                down.push(StreamElement::End);
                                return;
                            }
                            Err(payload) => {
                                let error = StageError::from_panic(&label, payload);
                                failures.record(error.clone());
                                down.push(StreamElement::Failure(error));
                                return;
                            }
                        }
                        seen += 1;
                        if seen & DEADLINE_CHECK_MASK == 0 {
                            if let Some(dl) = deadline {
                                if Instant::now() >= dl {
                                    let error = StageError::deadline(&label);
                                    failures.record(error.clone());
                                    down.push(StreamElement::Failure(error));
                                    return;
                                }
                            }
                        }
                    }
                })
            }),
        }
    }

    /// A stream over an in-memory vector, without intermediate
    /// watermarks.
    pub fn from_vec(items: Vec<T>) -> Self {
        Self::from_source(VecSource::new(items), WatermarkStrategy::none())
    }

    /// Like [`DataStream::from_source`], but the driver additionally
    /// injects [`CheckpointBarrier`]s right after epoch-closing
    /// watermarks, as decided by `coordinator`.
    ///
    /// `base_offset` is the absolute record offset the source starts at
    /// (non-zero when resuming a replayable source mid-stream) and
    /// `resume_wm` the watermark-generator position captured at that
    /// offset — together they make a restored run's barrier cadence and
    /// watermark sequence identical to the undisturbed tail.
    pub fn from_source_checkpointed(
        source: impl Source<T> + 'static,
        strategy: WatermarkStrategy<T>,
        mut coordinator: CheckpointCoordinator,
        base_offset: u64,
        resume_wm: Option<WatermarkGenState>,
    ) -> Self {
        DataStream {
            build: Box::new(move |mut down, ctx| {
                let mut source = source;
                let mut generator = strategy.generator();
                if let Some(state) = &resume_wm {
                    generator.restore(state);
                }
                let label = ctx.next_stage_label("source");
                let failures = ctx.failure_cell();
                let deadline = ctx.deadline;
                Box::new(move || {
                    let mut emitted: u64 = 0;
                    loop {
                        let step = {
                            let source = &mut source;
                            let generator = &mut generator;
                            catch_unwind(AssertUnwindSafe(move || {
                                source.next().map(|r| {
                                    let wm = generator.on_record(&r);
                                    (r, wm)
                                })
                            }))
                        };
                        match step {
                            Ok(Some((record, wm))) => {
                                down.push(StreamElement::Record(record));
                                emitted += 1;
                                coordinator.on_record();
                                if let Some(wm) = wm {
                                    down.push(StreamElement::Watermark(wm));
                                    if let Some(barrier) = coordinator.on_watermark(
                                        wm,
                                        base_offset + emitted,
                                        generator.state(),
                                    ) {
                                        down.push(StreamElement::Barrier(barrier));
                                    }
                                }
                            }
                            Ok(None) => {
                                down.push(StreamElement::Watermark(Timestamp::MAX));
                                down.push(StreamElement::End);
                                return;
                            }
                            Err(payload) => {
                                let error = StageError::from_panic(&label, payload);
                                failures.record(error.clone());
                                down.push(StreamElement::Failure(error));
                                return;
                            }
                        }
                        if emitted & DEADLINE_CHECK_MASK == 0 {
                            if let Some(dl) = deadline {
                                if Instant::now() >= dl {
                                    let error = StageError::deadline(&label);
                                    failures.record(error.clone());
                                    down.push(StreamElement::Failure(error));
                                    return;
                                }
                            }
                        }
                    }
                })
            }),
        }
    }

    /// Internal: a stream that replays raw elements (records *and*
    /// watermarks) from a channel. Used by split/merge plumbing.
    #[allow(dead_code)]
    fn from_element_channel(rx: Receiver<StreamElement<T>>) -> Self {
        DataStream {
            build: Box::new(move |mut down, ctx| {
                let failures = ctx.failure_cell();
                Box::new(move || {
                    let mut got_terminal = false;
                    let mut recvs: u64 = 0;
                    loop {
                        let Some(element) = sampled_recv(&rx, &mut recvs) else {
                            break;
                        };
                        let terminal = element.is_terminal();
                        down.push(element);
                        if terminal {
                            got_terminal = true;
                            break;
                        }
                    }
                    if !got_terminal {
                        // Upstream hung up without an end marker — a dead
                        // producer. Record the disconnect (first failure
                        // wins, so a caught root-cause panic is preserved)
                        // and still close the pipeline cleanly.
                        failures.record(StageError::new(
                            "channel_source",
                            FailureKind::Disconnect,
                            "upstream hung up before end of stream",
                        ));
                        down.push(StreamElement::End);
                    }
                })
            }),
        }
    }

    /// Internal: like [`DataStream::from_element_channel`] but over
    /// [`Routed<T>`] envelopes from a split router; each record is
    /// unwrapped (moved when this sub-stream is the only member, cloned
    /// from the shared `Arc` otherwise) as it enters the sub-pipeline.
    fn from_routed_channel(rx: Receiver<StreamElement<Routed<T>>>) -> Self
    where
        T: Clone + Sync,
    {
        DataStream {
            build: Box::new(move |mut down, ctx| {
                let failures = ctx.failure_cell();
                Box::new(move || {
                    let mut got_terminal = false;
                    let mut recvs: u64 = 0;
                    loop {
                        let Some(element) = sampled_recv(&rx, &mut recvs) else {
                            break;
                        };
                        let terminal = element.is_terminal();
                        down.push(element.map(Routed::into_owned));
                        if terminal {
                            got_terminal = true;
                            break;
                        }
                    }
                    if !got_terminal {
                        failures.record(StageError::new(
                            "channel_source",
                            FailureKind::Disconnect,
                            "upstream hung up before end of stream",
                        ));
                        down.push(StreamElement::End);
                    }
                })
            }),
        }
    }

    /// Applies an arbitrary [`Operator`].
    pub fn transform<U: Send + 'static>(self, op: impl Operator<T, U> + 'static) -> DataStream<U> {
        let upstream = self.build;
        DataStream {
            build: Box::new(move |down, ctx| {
                let label = ctx.next_stage_label(Operator::<T, U>::name(&op));
                let metrics = StageMetrics::register(ctx.registry(), &label);
                let deadline = ctx.deadline;
                upstream(
                    Box::new(
                        OperatorStage::with_metrics(op, down, metrics, label)
                            .with_deadline(deadline),
                    ),
                    ctx,
                )
            }),
        }
    }

    /// 1:1 record transformation.
    pub fn map<U: Send + 'static>(self, f: impl FnMut(T) -> U + Send + 'static) -> DataStream<U> {
        self.transform(MapOperator::new(f))
    }

    /// Keeps records matching the predicate.
    pub fn filter(self, predicate: impl FnMut(&T) -> bool + Send + 'static) -> DataStream<T> {
        self.transform(FilterOperator::new(predicate))
    }

    /// 1:n record transformation; `f` emits through the collector.
    pub fn flat_map<U: Send + 'static>(
        self,
        f: impl FnMut(T, &mut dyn Collector<U>) + Send + 'static,
    ) -> DataStream<U> {
        self.transform(FlatMapOperator::new(f))
    }

    /// Observes records without changing them.
    pub fn inspect(self, f: impl FnMut(&T) + Send + 'static) -> DataStream<T> {
        self.transform(InspectOperator::new(f))
    }

    /// Keyed stateful processing (see
    /// [`KeyedProcessOperator`]).
    pub fn keyed_process<K, S, U>(
        self,
        key_fn: impl FnMut(&T) -> K + Send + 'static,
        process_fn: impl FnMut(&mut S, T, &mut dyn Collector<U>) + Send + 'static,
    ) -> DataStream<U>
    where
        K: Eq + Hash + Send + 'static,
        S: Default + Send + 'static,
        U: Send + 'static,
    {
        self.transform(KeyedProcessOperator::new(key_fn, process_fn))
    }

    /// Re-orders records by event time, releasing on watermarks.
    pub fn sort_by_event_time(
        self,
        extract: impl FnMut(&T) -> Timestamp + Send + 'static,
    ) -> DataStream<T> {
        let upstream = self.build;
        DataStream {
            build: Box::new(move |down, ctx| {
                // One label for both the generic stage metrics and the
                // sorter-specific late/lag/buffer metrics.
                let label = ctx.next_stage_label("event_time_sorter");
                let stage_metrics = StageMetrics::register(ctx.registry(), &label);
                let sorter = EventTimeSorter::new(extract)
                    .with_metrics(SorterMetrics::register(ctx.registry(), &label));
                let deadline = ctx.deadline;
                upstream(
                    Box::new(
                        OperatorStage::with_metrics(sorter, down, stage_metrics, label)
                            .with_deadline(deadline),
                    ),
                    ctx,
                )
            }),
        }
    }

    /// Like [`DataStream::sort_by_event_time`], but over a caller-built
    /// sorter — the hook checkpointing runners use to install a
    /// state-snapshot codec (see
    /// [`EventTimeSorter::with_state_codec`]) before the sorter enters
    /// the pipeline. Metrics registration and stage labelling are
    /// identical to the plain combinator.
    pub fn sort_with<F>(self, sorter: EventTimeSorter<T, F>) -> DataStream<T>
    where
        F: FnMut(&T) -> Timestamp + Send + 'static,
    {
        let upstream = self.build;
        DataStream {
            build: Box::new(move |down, ctx| {
                let label = ctx.next_stage_label("event_time_sorter");
                let stage_metrics = StageMetrics::register(ctx.registry(), &label);
                let sorter = sorter.with_metrics(SorterMetrics::register(ctx.registry(), &label));
                let deadline = ctx.deadline;
                upstream(
                    Box::new(
                        OperatorStage::with_metrics(sorter, down, stage_metrics, label)
                            .with_deadline(deadline),
                    ),
                    ctx,
                )
            }),
        }
    }

    /// Coalesces consecutive records into [`StreamElement::Batch`]
    /// frames of up to `batch_size` before the next stage — e.g. so a
    /// sink with a whole-batch fast path (columnar frame encode) sees
    /// batches even behind a per-record emitter like the event-time
    /// sorter. Record order is unchanged and buffered records flush
    /// before any watermark, barrier, or terminal marker, so this is
    /// invisible to event-time and checkpoint semantics. A `batch_size`
    /// of 0 or 1 is the identity.
    pub fn rebatched(self, batch_size: usize) -> DataStream<T> {
        if batch_size <= 1 {
            return self;
        }
        let upstream = self.build;
        DataStream {
            build: Box::new(move |down, ctx| {
                upstream(Box::new(BatchingStage::new(down, batch_size)), ctx)
            }),
        }
    }

    /// Groups records into count-based micro-batches.
    pub fn micro_batch(self, size: usize) -> DataStream<Vec<T>> {
        self.transform(MicroBatcher::new(size))
    }

    /// Groups records into tumbling event-time windows.
    pub fn tumbling_window(
        self,
        size: Duration,
        extract: impl FnMut(&T) -> Timestamp + Send + 'static,
    ) -> DataStream<WindowPane<T>> {
        self.transform(TumblingWindow::new(size, extract))
    }

    /// Inserts a thread boundary: everything downstream of this point
    /// runs on its own worker thread, connected through a bounded channel
    /// of `capacity` elements.
    pub fn pipelined(self, capacity: usize) -> DataStream<T> {
        self.pipelined_batched(capacity, 1)
    }

    /// Like [`DataStream::pipelined`], but ships records across the
    /// thread boundary in [`StreamElement::Batch`] frames of up to
    /// `batch_size` records, amortizing per-element channel cost. The
    /// channel capacity counts *frames*. Partial batches flush before
    /// every watermark and terminal marker, so semantics are identical
    /// to the unbatched boundary.
    pub fn pipelined_batched(self, capacity: usize, batch_size: usize) -> DataStream<T> {
        let upstream = self.build;
        DataStream {
            build: Box::new(move |down, ctx| {
                let label = ctx.next_stage_label("pipelined");
                let metrics = ChannelMetrics::register(ctx.registry(), &label);
                let (tx, rx) = bounded::<StreamElement<T>>(capacity.max(1));
                let mut down = down;
                let failures = ctx.failure_cell();
                let worker_label = label.clone();
                let worker_metrics = metrics.clone();
                let handle = std::thread::spawn(move || {
                    // Stages catch their own panics; this outer guard only
                    // fires if the protocol itself breaks, and still
                    // converts the panic instead of killing the thread.
                    let result = catch_unwind(AssertUnwindSafe(move || {
                        // Every 64th receive is wall-clock timed (mirroring
                        // operator latency sampling): near-zero waits mean
                        // the producer keeps the channel full, large waits
                        // mean this worker is starved. Together with the
                        // producer-side `send_block_ns` this attributes
                        // blocked time to either end of the boundary.
                        let mut recvs: u64 = 0;
                        loop {
                            let sampled = recvs & SAMPLE_MASK == 0;
                            recvs += 1;
                            let received = if sampled {
                                let span = icewafl_obs::trace::span("recv_wait", "backpressure");
                                let sw = Stopwatch::start();
                                let received = rx.recv();
                                worker_metrics.recv_block_ns.record(sw.elapsed_ns());
                                worker_metrics.recv_waits.inc();
                                drop(span);
                                received
                            } else {
                                rx.recv()
                            };
                            let Ok(element) = received else { break };
                            let terminal = element.is_terminal();
                            down.push(element);
                            if terminal {
                                break;
                            }
                        }
                    }));
                    if let Err(payload) = result {
                        failures.record(StageError::from_panic(&worker_label, payload));
                    }
                });
                ctx.handles.push(handle);
                upstream(
                    Box::new(ChannelStage::with_batch_size(tx, metrics, batch_size)),
                    ctx,
                )
            }),
        }
    }

    /// Merges several streams into one. Watermarks are combined by
    /// minimum; the merged stream ends when all inputs have ended.
    ///
    /// With `parallel = false` the input drivers run sequentially on the
    /// calling thread (deterministic). With `parallel = true` each input
    /// gets its own thread and records interleave by scheduling order —
    /// follow with [`DataStream::sort_by_event_time`] to restore order.
    pub fn union(streams: Vec<DataStream<T>>, parallel: bool) -> DataStream<T> {
        Self::union_batched(streams, parallel, 1)
    }

    /// Like [`DataStream::union`], but each input leg coalesces its
    /// records into [`StreamElement::Batch`] frames of up to
    /// `batch_size` before taking the shared merge lock, so contention
    /// is paid per batch instead of per record.
    pub fn union_batched(
        streams: Vec<DataStream<T>>,
        parallel: bool,
        batch_size: usize,
    ) -> DataStream<T> {
        DataStream {
            build: Box::new(move |down, ctx| {
                let n = streams.len();
                if n == 0 {
                    let mut down = down;
                    return Box::new(move || {
                        down.push(StreamElement::Watermark(Timestamp::MAX));
                        down.push(StreamElement::End);
                    });
                }
                let shared = Arc::new(Mutex::new(UnionInner::new(down, n)));
                let drivers: Vec<Driver> = streams
                    .into_iter()
                    .enumerate()
                    .map(|(idx, s)| {
                        let input: BoxStage<T> = Box::new(UnionInput {
                            inner: Arc::clone(&shared),
                            idx,
                        });
                        let input: BoxStage<T> = if batch_size > 1 {
                            Box::new(BatchingStage::new(input, batch_size))
                        } else {
                            input
                        };
                        (s.build)(input, ctx)
                    })
                    .collect();
                if parallel {
                    let failures = ctx.failure_cell();
                    Box::new(move || {
                        let handles: Vec<_> = drivers
                            .into_iter()
                            .map(|d| {
                                let failures = failures.clone();
                                std::thread::spawn(move || {
                                    if let Err(payload) = catch_unwind(AssertUnwindSafe(d)) {
                                        failures
                                            .record(StageError::from_panic("union_input", payload));
                                    }
                                })
                            })
                            .collect();
                        for h in handles {
                            // The catch wrapper cannot panic; a join error
                            // here would be fallout already recorded.
                            let _ = h.join();
                        }
                    })
                } else {
                    Box::new(move || {
                        for d in drivers {
                            d();
                        }
                    })
                }
            }),
        }
    }

    /// Fans the stream out into `builders.len()` sub-pipelines and merges
    /// their outputs — Icewafl's *integration scenario* (§2.2.2).
    ///
    /// For every record, `selector` fills `memberships` with the indices
    /// of the sub-pipelines that should receive it; indices may overlap,
    /// which is how "overlapping sub-streams" (Algorithm 1, line 4)
    /// arise. A record with a single membership is *moved* into its
    /// sub-stream; overlapping memberships share one `Arc` and clone
    /// lazily on entry (via the internal `Routed` wrapper). Runs sequentially and
    /// deterministically; see [`DataStream::split_merge_parallel`] for
    /// the threaded variant.
    pub fn split_merge<U: Send + 'static>(
        self,
        selector: impl FnMut(&T, &mut Vec<usize>) + Send + 'static,
        builders: Vec<SubPipelineBuilder<T, U>>,
    ) -> DataStream<U>
    where
        T: Clone + Sync,
    {
        self.split_merge_impl(selector, builders, false, 1)
    }

    /// Like [`DataStream::split_merge`], but ships records into the
    /// sub-streams in [`StreamElement::Batch`] frames of up to
    /// `batch_size` records (flushed at every watermark and terminal
    /// marker, so event-time semantics are unchanged).
    pub fn split_merge_batched<U: Send + 'static>(
        self,
        selector: impl FnMut(&T, &mut Vec<usize>) + Send + 'static,
        builders: Vec<SubPipelineBuilder<T, U>>,
        batch_size: usize,
    ) -> DataStream<U>
    where
        T: Clone + Sync,
    {
        self.split_merge_impl(selector, builders, false, batch_size)
    }

    /// Like [`DataStream::split_merge`], but each sub-pipeline runs on
    /// its own thread over bounded channels. Output interleaving is
    /// nondeterministic; sort downstream if order matters.
    pub fn split_merge_parallel<U: Send + 'static>(
        self,
        selector: impl FnMut(&T, &mut Vec<usize>) + Send + 'static,
        builders: Vec<SubPipelineBuilder<T, U>>,
    ) -> DataStream<U>
    where
        T: Clone + Sync,
    {
        self.split_merge_impl(selector, builders, true, 1)
    }

    /// Like [`DataStream::split_merge_parallel`], with batched
    /// sub-stream transport (see [`DataStream::split_merge_batched`]).
    pub fn split_merge_parallel_batched<U: Send + 'static>(
        self,
        selector: impl FnMut(&T, &mut Vec<usize>) + Send + 'static,
        builders: Vec<SubPipelineBuilder<T, U>>,
        batch_size: usize,
    ) -> DataStream<U>
    where
        T: Clone + Sync,
    {
        self.split_merge_impl(selector, builders, true, batch_size)
    }

    fn split_merge_impl<U: Send + 'static>(
        self,
        selector: impl FnMut(&T, &mut Vec<usize>) + Send + 'static,
        builders: Vec<SubPipelineBuilder<T, U>>,
        parallel: bool,
        batch_size: usize,
    ) -> DataStream<U>
    where
        T: Clone + Sync,
    {
        let upstream = self.build;
        let batch_size = batch_size.max(1);
        DataStream {
            build: Box::new(move |down, ctx| {
                let m = builders.len();
                let mut txs = Vec::with_capacity(m);
                let mut subs: Vec<DataStream<U>> = Vec::with_capacity(m);
                for builder in builders {
                    let (tx, rx) = if parallel {
                        bounded::<StreamElement<Routed<T>>>(1024)
                    } else {
                        unbounded::<StreamElement<Routed<T>>>()
                    };
                    txs.push(tx);
                    subs.push(builder(DataStream::from_routed_channel(rx)));
                }
                let label = ctx.next_stage_label("split_router");
                let router = RouterStage {
                    txs,
                    bufs: (0..m).map(|_| Vec::new()).collect(),
                    batch_size,
                    selector,
                    memberships: Vec::with_capacity(m),
                    metrics: ChannelMetrics::register(ctx.registry(), &label),
                    label,
                };
                // Build the union (and with it the sub-pipelines) before
                // the upstream so stage numbering stays sink-first: the
                // source keeps the highest index.
                let union_driver =
                    (DataStream::union_batched(subs, parallel, batch_size).build)(down, ctx);
                let parent_driver = upstream(Box::new(router), ctx);
                if parallel {
                    let failures = ctx.failure_cell();
                    Box::new(move || {
                        let parent = std::thread::spawn(move || {
                            if let Err(payload) = catch_unwind(AssertUnwindSafe(parent_driver)) {
                                failures.record(StageError::from_panic("split_router", payload));
                            }
                        });
                        union_driver();
                        let _ = parent.join();
                    })
                } else {
                    Box::new(move || {
                        // Unbounded channels: the parent fills all
                        // sub-stream buffers, then the sub-pipelines
                        // drain them one after another.
                        parent_driver();
                        union_driver();
                    })
                }
            }),
        }
    }

    /// Builds and runs the pipeline, writing results into `sink`.
    ///
    /// Returns `Err` with the first [`StageError`] observed (failing
    /// stage label, failure kind, panic payload) if any stage panicked,
    /// a chaos fault fired, the deadline passed, or a worker died. The
    /// pipeline always terminates — no caller-visible panics, no hangs.
    pub fn execute_into(self, sink: impl Sink<T> + 'static) -> Result<(), PipelineError> {
        self.execute_into_with_registry(sink, &MetricsRegistry::new())
    }

    /// Like [`DataStream::execute_into`], but stages register their
    /// metrics against the given registry, which can be snapshotted
    /// after the run.
    pub fn execute_into_with_registry(
        self,
        sink: impl Sink<T> + 'static,
        registry: &MetricsRegistry,
    ) -> Result<(), PipelineError> {
        self.execute_into_with_options(sink, registry, None)
    }

    /// Full-control executor: instrumentation registry plus an optional
    /// wall-clock deadline enforced by the source driver.
    pub fn execute_into_with_options(
        self,
        sink: impl Sink<T> + 'static,
        registry: &MetricsRegistry,
        deadline: Option<Instant>,
    ) -> Result<(), PipelineError> {
        self.execute_into_resumed(sink, registry, deadline, 0)
    }

    /// Like [`DataStream::execute_into_with_options`], but for a
    /// checkpoint-restored attempt whose sink already holds
    /// `committed_base` records from before the restore: barrier commits
    /// record absolute sink offsets (`committed_base` + this attempt's
    /// writes), keeping checkpoint frames valid across nested restores.
    pub fn execute_into_resumed(
        self,
        sink: impl Sink<T> + 'static,
        registry: &MetricsRegistry,
        deadline: Option<Instant>,
        committed_base: u64,
    ) -> Result<(), PipelineError> {
        let mut ctx = ExecutionContext::with_registry(registry.clone());
        ctx.set_deadline(deadline);
        let cell = ctx.failure_cell();
        let driver = (self.build)(
            Box::new(SinkStage::resumed(sink, cell.clone(), committed_base)),
            &mut ctx,
        );
        // Stages and workers catch their own panics; this guard converts
        // anything that still escapes the driver (e.g. a panicking
        // `Source::next` on the calling thread before the first stage).
        if let Err(payload) = catch_unwind(AssertUnwindSafe(driver)) {
            cell.record(StageError::from_panic("driver", payload));
        }
        ctx.join_all();
        match ctx.failure_cell().take() {
            Some(error) => Err(PipelineError::from(error)),
            None => Ok(()),
        }
    }

    /// Builds and runs the pipeline, collecting all results.
    pub fn collect(self) -> Result<Vec<T>, PipelineError> {
        let sink = SharedVecSink::new();
        self.execute_into(sink.clone())?;
        Ok(sink.take())
    }

    /// Like [`DataStream::collect`], but instrumented against `registry`.
    pub fn collect_with_registry(
        self,
        registry: &MetricsRegistry,
    ) -> Result<Vec<T>, PipelineError> {
        let sink = SharedVecSink::new();
        self.execute_into_with_registry(sink.clone(), registry)?;
        Ok(sink.take())
    }

    /// Builds and runs the pipeline, counting results.
    pub fn count(self) -> Result<u64, PipelineError> {
        let sink = crate::sink::CountSink::new();
        self.execute_into(sink.clone())?;
        Ok(sink.count())
    }
}

/// Shared downstream state of a union point.
struct UnionInner<T> {
    down: BoxStage<T>,
    merger: WatermarkMerger,
    pending: usize,
    ended: bool,
    /// Checkpoint-barrier alignment (Chandy–Lamport style): the barrier
    /// in flight, how many inputs have delivered it, which inputs are
    /// blocked waiting for the rest, and the elements those blocked
    /// inputs delivered in the meantime. A consistent snapshot requires
    /// that the barrier reaches downstream state *after* every
    /// pre-barrier record and *before* any post-barrier record, from
    /// every input.
    current_barrier: Option<CheckpointBarrier>,
    arrived: usize,
    blocked: Vec<bool>,
    done: Vec<bool>,
    held: Vec<VecDeque<StreamElement<T>>>,
}

impl<T: Send> UnionInner<T> {
    fn new(down: BoxStage<T>, n: usize) -> Self {
        UnionInner {
            down,
            merger: WatermarkMerger::new(n),
            pending: n,
            ended: false,
            current_barrier: None,
            arrived: 0,
            blocked: vec![false; n],
            done: vec![false; n],
            held: (0..n).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Entry point for input `idx` (called under the union lock):
    /// elements from barrier-blocked inputs are parked, everything else
    /// merges immediately, then any completed alignment releases.
    fn handle(&mut self, idx: usize, element: StreamElement<T>) {
        if self.ended {
            return;
        }
        if self.blocked[idx] {
            self.held[idx].push_back(element);
        } else {
            self.process(idx, element);
        }
        self.release_aligned();
    }

    fn process(&mut self, idx: usize, element: StreamElement<T>) {
        match element {
            StreamElement::Record(r) => self.down.push(StreamElement::Record(r)),
            // Forwarded intact: one lock acquisition for the whole batch.
            StreamElement::Batch(b) => self.down.push(StreamElement::Batch(b)),
            StreamElement::Watermark(wm) => {
                if let Some(combined) = self.merger.advance(idx, wm) {
                    self.down.push(StreamElement::Watermark(combined));
                }
            }
            StreamElement::Barrier(b) => {
                // First arrival carries the barrier; the input blocks
                // until every live input delivers its copy.
                self.blocked[idx] = true;
                self.arrived += 1;
                if self.current_barrier.is_none() {
                    self.current_barrier = Some(b);
                }
            }
            StreamElement::End => {
                self.done[idx] = true;
                // An ended input can no longer hold the watermark back.
                if let Some(combined) = self.merger.advance(idx, Timestamp::MAX) {
                    self.down.push(StreamElement::Watermark(combined));
                }
                self.pending -= 1;
                if self.pending == 0 {
                    self.ended = true;
                    self.down.push(StreamElement::End);
                }
            }
            StreamElement::Failure(e) => {
                // Poison from any input terminates the merged stream
                // immediately; the other inputs see `ended` and drop
                // whatever they still deliver. An in-flight alignment is
                // abandoned — its checkpoint simply never commits.
                self.ended = true;
                self.down.push(StreamElement::Failure(e));
            }
        }
    }

    /// Forwards the in-flight barrier once every live (non-ended) input
    /// has delivered it, then replays the elements blocked inputs
    /// parked — in input order, each input up to its next barrier.
    /// Loops because the replay may immediately complete the next
    /// alignment.
    fn release_aligned(&mut self) {
        loop {
            if self.ended {
                return;
            }
            let live = self.done.iter().filter(|d| !**d).count();
            if self.current_barrier.is_none() || live == 0 || self.arrived < live {
                return;
            }
            let barrier = self.current_barrier.take().expect("barrier checked above");
            self.arrived = 0;
            for flag in self.blocked.iter_mut() {
                *flag = false;
            }
            self.down.push(StreamElement::Barrier(barrier));
            for idx in 0..self.held.len() {
                while !self.blocked[idx] && !self.ended {
                    let Some(element) = self.held[idx].pop_front() else {
                        break;
                    };
                    self.process(idx, element);
                }
            }
        }
    }
}

/// One input leg of a union.
struct UnionInput<T> {
    inner: Arc<Mutex<UnionInner<T>>>,
    idx: usize,
}

impl<T: Send> Stage<T> for UnionInput<T> {
    fn push(&mut self, element: StreamElement<T>) {
        self.inner.lock().handle(self.idx, element);
    }
}

/// A record envelope on a router → sub-stream edge.
///
/// The split router used to deep-clone every record into each member
/// sub-stream, on the router's (serial) hot path. Instead, a record
/// with exactly one membership is *moved* (zero overhead, the common
/// disjoint-partition case), and an overlapping record is wrapped in
/// one shared `Arc` whose clones are cheap reference bumps — the deep
/// clone happens lazily on entry into each sub-pipeline (in parallel
/// mode: on the receiving threads, off the serial router).
enum Routed<T> {
    /// Sole member: the record moved in directly.
    Owned(T),
    /// Overlapping memberships: a shared handle, cloned on unwrap. The
    /// last sub-stream to unwrap takes the value without cloning.
    Shared(Arc<T>),
}

impl<T: Clone> Routed<T> {
    fn into_owned(self) -> T {
        match self {
            Routed::Owned(r) => r,
            Routed::Shared(a) => Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()),
        }
    }
}

/// Routes records to selected sub-streams, broadcasting watermarks and
/// terminal markers (end or poison) to all of them. Records are staged
/// in per-target buffers and shipped as [`StreamElement::Batch`] frames
/// of up to `batch_size`; every buffer is flushed before any watermark
/// or terminal marker is sent, so no control element overtakes a
/// record (and poison never strands a partial batch).
struct RouterStage<T, F> {
    txs: Vec<Sender<StreamElement<Routed<T>>>>,
    bufs: Vec<Vec<Routed<T>>>,
    batch_size: usize,
    selector: F,
    memberships: Vec<usize>,
    metrics: ChannelMetrics,
    label: String,
}

impl<T: Clone + Send + Sync, F> RouterStage<T, F> {
    /// Stages one routed record for target `i`, shipping a full batch.
    fn route(&mut self, i: usize, r: Routed<T>) {
        if self.batch_size == 1 {
            send_metered(&self.txs[i], StreamElement::Record(r), &self.metrics);
            return;
        }
        let buf = &mut self.bufs[i];
        if buf.capacity() == 0 {
            buf.reserve_exact(self.batch_size);
        }
        buf.push(r);
        if buf.len() >= self.batch_size {
            let batch = std::mem::replace(buf, Vec::with_capacity(self.batch_size));
            send_metered(&self.txs[i], StreamElement::Batch(batch), &self.metrics);
        }
    }

    /// Flushes every target's staged records.
    fn flush_all(&mut self) {
        for (buf, tx) in self.bufs.iter_mut().zip(&self.txs) {
            if !buf.is_empty() {
                let batch = std::mem::take(buf);
                send_metered(tx, StreamElement::Batch(batch), &self.metrics);
            }
        }
    }

    /// Broadcasts a failure to every sub-stream and stops routing.
    /// Staged records are flushed first — poison terminates the stream
    /// but must not swallow records that preceded it.
    fn fail(&mut self, error: StageError) {
        self.flush_all();
        for tx in self.txs.drain(..) {
            send_metered(&tx, StreamElement::Failure(error.clone()), &self.metrics);
        }
    }
}

impl<T, F> Stage<T> for RouterStage<T, F>
where
    T: Clone + Send + Sync,
    F: FnMut(&T, &mut Vec<usize>) + Send,
{
    fn push(&mut self, element: StreamElement<T>) {
        match element {
            StreamElement::Record(r) => {
                self.memberships.clear();
                // A panicking selector poisons every sub-stream (instead
                // of unwinding the parent driver and dropping the senders
                // without a terminal marker).
                let result = {
                    let selector = &mut self.selector;
                    let memberships = &mut self.memberships;
                    catch_unwind(AssertUnwindSafe(|| (selector)(&r, memberships)))
                };
                if let Err(payload) = result {
                    let error = StageError::from_panic(&self.label, payload);
                    self.fail(error);
                    return;
                }
                self.memberships.retain(|&i| i < self.txs.len());
                self.memberships.dedup();
                match self.memberships.len() {
                    0 => {}
                    1 => {
                        let i = self.memberships[0];
                        self.route(i, Routed::Owned(r));
                    }
                    n => {
                        let shared = Arc::new(r);
                        for k in 0..n {
                            let i = self.memberships[k];
                            self.route(i, Routed::Shared(Arc::clone(&shared)));
                        }
                    }
                }
            }
            StreamElement::Batch(batch) => {
                // Routers sit directly under per-record sources today,
                // but stay batch-transparent like every other stage.
                for r in batch {
                    self.push(StreamElement::Record(r));
                }
            }
            StreamElement::Watermark(wm) => {
                self.flush_all();
                for tx in &self.txs {
                    send_metered(tx, StreamElement::Watermark(wm), &self.metrics);
                }
            }
            StreamElement::Barrier(b) => {
                // Broadcast like a watermark: clones share one pending
                // snapshot, so every sub-stream contributes to the same
                // frame and the union re-aligns them downstream.
                self.flush_all();
                for tx in &self.txs {
                    send_metered(tx, StreamElement::Barrier(b.clone()), &self.metrics);
                }
            }
            StreamElement::End => {
                self.flush_all();
                for tx in self.txs.drain(..) {
                    send_metered(&tx, StreamElement::End, &self.metrics);
                }
            }
            StreamElement::Failure(e) => self.fail(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_filter_collect() {
        let out = DataStream::from_vec(vec![1, 2, 3, 4, 5])
            .map(|x| x * 10)
            .filter(|x| *x > 20)
            .collect()
            .unwrap();
        assert_eq!(out, vec![30, 40, 50]);
    }

    #[test]
    fn flat_map_expands() {
        let out = DataStream::from_vec(vec![2, 0, 1])
            .flat_map(|x, out| {
                for _ in 0..x {
                    out.collect(x);
                }
            })
            .collect()
            .unwrap();
        assert_eq!(out, vec![2, 2, 1]);
    }

    #[test]
    fn inspect_and_count() {
        let seen = Arc::new(Mutex::new(0));
        let seen2 = Arc::clone(&seen);
        let n = DataStream::from_vec(vec![1, 2, 3])
            .inspect(move |_| *seen2.lock() += 1)
            .count()
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(*seen.lock(), 3);
    }

    #[test]
    fn sort_with_ascending_watermarks() {
        // Slightly out-of-order input, bounded disorder of 2.
        let items = vec![3i64, 1, 2, 6, 4, 5];
        let src = VecSource::new(items);
        let strategy = WatermarkStrategy::bounded_out_of_orderness(
            |x: &i64| Timestamp(*x),
            Duration::from_millis(2),
            1,
        );
        let out = DataStream::from_source(src, strategy)
            .sort_by_event_time(|x| Timestamp(*x))
            .collect()
            .unwrap();
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn pipelined_preserves_order_and_content() {
        let input: Vec<i64> = (0..10_000).collect();
        let out = DataStream::from_vec(input.clone())
            .map(|x| x + 1)
            .pipelined(64)
            .map(|x| x - 1)
            .pipelined(64)
            .collect()
            .unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn union_sequential_merges_all_records() {
        let a = DataStream::from_vec(vec![1, 2]);
        let b = DataStream::from_vec(vec![3, 4]);
        let mut out = DataStream::union(vec![a, b], false).collect().unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn union_parallel_merges_all_records() {
        let a = DataStream::from_vec((0..500).collect::<Vec<i64>>());
        let b = DataStream::from_vec((500..1000).collect::<Vec<i64>>());
        let mut out = DataStream::union(vec![a, b], true).collect().unwrap();
        out.sort_unstable();
        assert_eq!(out, (0..1000).collect::<Vec<i64>>());
    }

    #[test]
    fn union_of_nothing_is_empty() {
        let out: Vec<i64> = DataStream::union(vec![], false).collect().unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn union_watermarks_are_merged_by_min() {
        // Two sources with ascending watermarks; a sorter downstream of
        // the union sees only combined (min) watermarks, so the merged
        // output is globally sorted.
        let mk = |items: Vec<i64>| {
            DataStream::from_source(
                VecSource::new(items),
                WatermarkStrategy::ascending(|x: &i64| Timestamp(*x)),
            )
        };
        let out = DataStream::union(vec![mk(vec![1, 3, 5]), mk(vec![2, 4, 6])], false)
            .sort_by_event_time(|x| Timestamp(*x))
            .collect()
            .unwrap();
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn split_merge_round_robin() {
        let builders: Vec<SubPipelineBuilder<i64, i64>> = vec![
            Box::new(|s| s.map(|x| x + 1000)),
            Box::new(|s| s.map(|x| x + 2000)),
        ];
        let mut out = DataStream::from_vec(vec![0, 1, 2, 3])
            .split_merge(|x, m| m.push((*x % 2) as usize), builders)
            .collect()
            .unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![1000, 1002, 2001, 2003]);
    }

    #[test]
    fn split_merge_overlapping_memberships_clone_records() {
        let builders: Vec<SubPipelineBuilder<i64, i64>> = vec![
            Box::new(|s| s.map(|x| x * 10)),
            Box::new(|s| s.map(|x| x * 100)),
        ];
        let mut out = DataStream::from_vec(vec![1, 2])
            .split_merge(
                |_x, m| {
                    m.push(0);
                    m.push(1);
                },
                builders,
            )
            .collect()
            .unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![10, 20, 100, 200]);
    }

    #[test]
    fn split_merge_ignores_out_of_range_and_duplicate_memberships() {
        let builders: Vec<SubPipelineBuilder<i64, i64>> = vec![Box::new(|s| s)];
        let out = DataStream::from_vec(vec![7])
            .split_merge(
                |_x, m| {
                    m.push(0);
                    m.push(0);
                    m.push(5);
                },
                builders,
            )
            .collect()
            .unwrap();
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn split_merge_parallel_matches_sequential() {
        let input: Vec<i64> = (0..5_000).collect();
        let mk_builders = || -> Vec<SubPipelineBuilder<i64, i64>> {
            vec![
                Box::new(|s: DataStream<i64>| s.map(|x| x * 2)),
                Box::new(|s: DataStream<i64>| s.filter(|x| x % 3 == 0)),
                Box::new(|s: DataStream<i64>| s.map(|x| -x)),
            ]
        };
        let selector = |x: &i64, m: &mut Vec<usize>| {
            m.push((*x % 3) as usize);
            if *x % 10 == 0 {
                m.push(((*x + 1) % 3) as usize);
            }
        };
        let mut seq = DataStream::from_vec(input.clone())
            .split_merge(selector, mk_builders())
            .collect()
            .unwrap();
        let mut par = DataStream::from_vec(input)
            .split_merge_parallel(selector, mk_builders())
            .collect()
            .unwrap();
        seq.sort_unstable();
        par.sort_unstable();
        assert_eq!(seq, par);
    }

    #[test]
    fn keyed_process_through_pipeline() {
        let out = DataStream::from_vec(vec![1, 2, 3, 4, 5, 6])
            .keyed_process(
                |x: &i32| x % 2,
                |sum: &mut i32, x, out: &mut dyn Collector<i32>| {
                    *sum += x;
                    out.collect(*sum);
                },
            )
            .collect()
            .unwrap();
        // odd: 1, 4, 9 — even: 2, 6, 12 — interleaved by arrival
        assert_eq!(out, vec![1, 2, 4, 6, 9, 12]);
    }

    #[test]
    fn micro_batch_through_pipeline() {
        let out = DataStream::from_vec(vec![1, 2, 3, 4, 5])
            .micro_batch(2)
            .collect()
            .unwrap();
        assert_eq!(out, vec![vec![1, 2], vec![3, 4], vec![5]]);
    }

    #[test]
    fn tumbling_window_through_pipeline() {
        let out = DataStream::from_vec(vec![1i64, 5, 12])
            .tumbling_window(Duration::from_millis(10), |x| Timestamp(*x))
            .collect()
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].records, vec![1, 5]);
        assert_eq!(out[1].records, vec![12]);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn pipeline_metrics_count_elements_per_stage() {
        let registry = MetricsRegistry::new();
        let out = DataStream::from_vec(vec![1i64, 2, 3, 4])
            .map(|x| x + 1)
            .filter(|x| *x % 2 == 0)
            .collect_with_registry(&registry)
            .unwrap();
        assert_eq!(out, vec![2, 4]);
        let snap = registry.snapshot();
        // Built sink-first: `filter` is stage 00, `map` is stage 01.
        assert_eq!(snap.counter("stage/01_map/elements_in"), 4);
        assert_eq!(snap.counter("stage/01_map/elements_out"), 4);
        assert_eq!(snap.counter("stage/00_filter/elements_in"), 4);
        assert_eq!(snap.counter("stage/00_filter/elements_out"), 2);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn pipelined_channel_counts_sends() {
        let registry = MetricsRegistry::new();
        let out = DataStream::from_vec((0..100i64).collect::<Vec<_>>())
            .pipelined(4)
            .collect_with_registry(&registry)
            .unwrap();
        assert_eq!(out.len(), 100);
        // 100 records + the final W(MAX) + End = 102 elements offered.
        let snap = registry.snapshot();
        assert_eq!(snap.counter("stage/00_pipelined/sends"), 102);
        // The worker samples its first receive, so any traffic at all
        // records at least one consumer-side wait.
        assert!(snap.counter("stage/00_pipelined/recv_waits") >= 1);
        assert!(snap.histogram("stage/00_pipelined/recv_block_ns").is_some());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn watermark_high_water_mark_excludes_end_sentinel() {
        let registry = MetricsRegistry::new();
        let src = VecSource::new(vec![1i64, 5, 3]);
        let out =
            DataStream::from_source(src, WatermarkStrategy::ascending(|x: &i64| Timestamp(*x)))
                .sort_by_event_time(|x| Timestamp(*x))
                .collect_with_registry(&registry)
                .unwrap();
        // 3 arrived after W(5) had already released 5 — it is late and
        // surfaces out of order (exactly what the late counter tracks).
        assert_eq!(out, vec![1, 5, 3]);
        let snap = registry.snapshot();
        // Highest real watermark was W(5); the closing W(MAX) is excluded.
        assert_eq!(snap.gauge("stage/00_event_time_sorter/watermark_hwm_ms"), 5);
        assert_eq!(
            snap.counter("stage/00_event_time_sorter/late"),
            1,
            "record 3 after W(5)"
        );
    }

    #[test]
    fn nested_split_merge() {
        // A split inside a sub-pipeline of another split.
        let inner_builders = || -> Vec<SubPipelineBuilder<i64, i64>> {
            vec![
                Box::new(|s: DataStream<i64>| s.map(|x| x + 1)),
                Box::new(|s: DataStream<i64>| s.map(|x| x + 2)),
            ]
        };
        let outer: Vec<SubPipelineBuilder<i64, i64>> = vec![
            Box::new(move |s: DataStream<i64>| {
                s.split_merge(|x, m| m.push((x % 2) as usize), inner_builders())
            }),
            Box::new(|s: DataStream<i64>| s.map(|x| x * 100)),
        ];
        let mut out = DataStream::from_vec(vec![0, 1])
            .split_merge(
                |_x, m| {
                    m.push(0);
                    m.push(1);
                },
                outer,
            )
            .collect()
            .unwrap();
        out.sort_unstable();
        // inner: 0 -> +1 = 1 ; 1 -> +2 = 3 ; outer2: 0 -> 0, 1 -> 100
        assert_eq!(out, vec![0, 1, 3, 100]);
    }
}
