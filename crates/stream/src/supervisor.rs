//! Supervised retries: per-stage restart budgets, exponential backoff
//! with jitter, and a per-run wall-clock deadline.
//!
//! The [`Supervisor`] does not run anything itself — it is the *policy
//! oracle* a retry loop consults after each failed attempt:
//!
//! ```
//! use icewafl_stream::supervisor::{Supervisor, SupervisorPolicy};
//! use icewafl_stream::fault::{FailureKind, StageError};
//!
//! let mut sup = Supervisor::new(SupervisorPolicy {
//!     max_retries: 2,
//!     deterministic: true, // no sleeping, no jitter: tests stay fast
//!     ..SupervisorPolicy::default()
//! });
//! let err = StageError::new("stage/01_map", FailureKind::Panic, "boom");
//! assert!(sup.next_retry(&err).is_some()); // retry 1
//! assert!(sup.next_retry(&err).is_some()); // retry 2
//! assert!(sup.next_retry(&err).is_none()); // budget exhausted
//! assert_eq!(sup.restarts(), 2);
//! ```
//!
//! Deadline ([`SupervisorPolicy::deadline`]) and fatal failures are
//! never retried; everything else (panics, injected chaos faults,
//! disconnects) is retried up to [`SupervisorPolicy::max_retries`]
//! times *per stage*, with backoff `min(base · 2^(n−1), max)` scaled by
//! a jitter factor in `[0.5, 1.5)` drawn from a seeded
//! [`SplitMix64`] — deterministic across runs with equal seeds. In
//! `deterministic` mode the backoff is zero so single-threaded runs
//! stay reproducible and fast.

use crate::chaos::SplitMix64;
use crate::fault::{FailureKind, StageError};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Restart policy knobs.
#[derive(Debug, Clone)]
pub struct SupervisorPolicy {
    /// Retries allowed *per stage* before the failure becomes fatal.
    /// `0` disables retries ("fail-fast").
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each retry.
    pub backoff_base: Duration,
    /// Upper bound on the (pre-jitter) backoff.
    pub backoff_max: Duration,
    /// When `true`, retries happen immediately with no jitter —
    /// the deterministic single-threaded mode.
    pub deterministic: bool,
    /// Wall-clock budget for the whole supervised run (attempts and
    /// backoff included). `None` = unlimited.
    pub deadline: Option<Duration>,
    /// Seed for the jitter RNG.
    pub seed: u64,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_retries: 0,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(5),
            deterministic: false,
            deadline: None,
            seed: 0,
        }
    }
}

/// Tracks retry budgets across the attempts of one supervised run.
pub struct Supervisor {
    policy: SupervisorPolicy,
    started: Instant,
    retries: HashMap<String, u32>,
    restarts: u64,
    rng: SplitMix64,
}

impl Supervisor {
    /// A supervisor for one run; the deadline clock starts now.
    pub fn new(policy: SupervisorPolicy) -> Self {
        let rng = SplitMix64::new(policy.seed);
        Supervisor {
            policy,
            started: Instant::now(),
            retries: HashMap::new(),
            restarts: 0,
            rng,
        }
    }

    /// The policy this supervisor enforces.
    pub fn policy(&self) -> &SupervisorPolicy {
        &self.policy
    }

    /// Total restarts granted so far (across all stages).
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// The absolute instant of the run deadline, if one is configured —
    /// pass it to
    /// [`execute_into_with_options`](crate::stream::DataStream::execute_into_with_options)
    /// so source drivers enforce it mid-run.
    pub fn deadline_instant(&self) -> Option<Instant> {
        self.policy.deadline.map(|d| self.started + d)
    }

    /// `true` iff the run deadline has passed.
    pub fn deadline_exceeded(&self) -> bool {
        matches!(self.deadline_instant(), Some(dl) if Instant::now() >= dl)
    }

    /// Consulted after a failed attempt: `Some(backoff)` grants a retry
    /// after sleeping `backoff` (zero in deterministic mode), `None`
    /// means the failure is final.
    pub fn next_retry(&mut self, error: &StageError) -> Option<Duration> {
        self.next_retry_for(&error.stage, error.kind)
    }

    /// [`Supervisor::next_retry`] from the stage label and kind alone —
    /// what callers holding a stringly-typed
    /// `icewafl_types::Error::Pipeline` use (via [`FailureKind::parse`]).
    pub fn next_retry_for(&mut self, stage: &str, kind: FailureKind) -> Option<Duration> {
        match kind {
            // Retrying past the deadline can only blow it further; a
            // fatal failure is by definition not transient.
            FailureKind::Deadline | FailureKind::Fatal => return None,
            FailureKind::Panic | FailureKind::Injected | FailureKind::Disconnect => {}
        }
        if self.deadline_exceeded() {
            return None;
        }
        let count = self.retries.entry(stage.to_string()).or_insert(0);
        if *count >= self.policy.max_retries {
            return None;
        }
        *count += 1;
        let attempt = *count;
        self.restarts += 1;
        Some(self.backoff(attempt))
    }

    /// Pre-jitter backoff in nanoseconds: `min(base · 2^(n−1), max)`,
    /// saturating at `max` for any attempt count. Once the doubling
    /// count reaches 127 the shift itself would overflow `u128`, so the
    /// cap is taken *before* shifting — high attempt counts can never
    /// wrap into a short (or zero) sleep.
    fn raw_backoff_nanos(&self, attempt: u32) -> u128 {
        let base = self.policy.backoff_base.as_nanos();
        let max = self.policy.backoff_max.as_nanos();
        if base == 0 {
            return 0;
        }
        let doublings = attempt.saturating_sub(1);
        if doublings >= 127 {
            return max;
        }
        base.checked_mul(1u128 << doublings)
            .map_or(max, |exp| exp.min(max))
    }

    /// `min(base · 2^(n−1), max)` scaled by jitter in `[0.5, 1.5)`.
    fn backoff(&mut self, attempt: u32) -> Duration {
        if self.policy.deterministic {
            return Duration::ZERO;
        }
        let capped = self.raw_backoff_nanos(attempt).min(u64::MAX as u128) as f64;
        let jitter = 0.5 + self.rng.next_f64();
        Duration::from_nanos((capped * jitter).min(u64::MAX as f64) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn err(stage: &str) -> StageError {
        StageError::new(stage, FailureKind::Panic, "boom")
    }

    #[test]
    fn retry_budget_is_per_stage() {
        let mut sup = Supervisor::new(SupervisorPolicy {
            max_retries: 1,
            deterministic: true,
            ..SupervisorPolicy::default()
        });
        assert_eq!(sup.next_retry(&err("a")), Some(Duration::ZERO));
        assert_eq!(sup.next_retry(&err("a")), None);
        // A different stage has its own budget.
        assert_eq!(sup.next_retry(&err("b")), Some(Duration::ZERO));
        assert_eq!(sup.restarts(), 2);
    }

    #[test]
    fn fail_fast_policy_never_retries() {
        let mut sup = Supervisor::new(SupervisorPolicy::default());
        assert_eq!(sup.next_retry(&err("a")), None);
        assert_eq!(sup.restarts(), 0);
    }

    #[test]
    fn deadline_and_fatal_failures_are_final() {
        let mut sup = Supervisor::new(SupervisorPolicy {
            max_retries: 10,
            deterministic: true,
            ..SupervisorPolicy::default()
        });
        let deadline = StageError::new("s", FailureKind::Deadline, "late");
        let fatal = StageError::new("s", FailureKind::Fatal, "bad config");
        assert_eq!(sup.next_retry(&deadline), None);
        assert_eq!(sup.next_retry(&fatal), None);
        // Injected chaos faults and disconnects *are* retryable.
        let injected = StageError::new("s", FailureKind::Injected, "chaos");
        assert!(sup.next_retry(&injected).is_some());
    }

    #[test]
    fn expired_deadline_stops_retries() {
        let mut sup = Supervisor::new(SupervisorPolicy {
            max_retries: 10,
            deterministic: true,
            deadline: Some(Duration::ZERO),
            ..SupervisorPolicy::default()
        });
        assert!(sup.deadline_exceeded());
        assert_eq!(sup.next_retry(&err("a")), None);
    }

    #[test]
    fn backoff_doubles_caps_and_jitters_within_bounds() {
        let mut sup = Supervisor::new(SupervisorPolicy {
            max_retries: 16,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(80),
            seed: 7,
            ..SupervisorPolicy::default()
        });
        let expect_ms = [10.0, 20.0, 40.0, 80.0, 80.0];
        for &base_ms in &expect_ms {
            let d = sup.next_retry(&err("s")).unwrap();
            let ms = d.as_secs_f64() * 1e3;
            assert!(
                (0.5 * base_ms..1.5 * base_ms).contains(&ms),
                "backoff {ms}ms outside [{}, {})",
                0.5 * base_ms,
                1.5 * base_ms
            );
        }
    }

    #[test]
    fn raw_backoff_table_is_pinned() {
        let sup = Supervisor::new(SupervisorPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(80),
            ..SupervisorPolicy::default()
        });
        let ms = |n: u32| sup.raw_backoff_nanos(n) / 1_000_000;
        // Exact pre-jitter schedule: doubling until the cap, then flat.
        let table: Vec<u128> = (1..=8).map(ms).collect();
        assert_eq!(table, vec![10, 20, 40, 80, 80, 80, 80, 80]);
        // Attempt 0 behaves like attempt 1 (no negative doubling).
        assert_eq!(ms(0), 10);
    }

    #[test]
    fn backoff_saturates_at_high_attempt_counts() {
        let sup = Supervisor::new(SupervisorPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_secs(5),
            ..SupervisorPolicy::default()
        });
        let cap = Duration::from_secs(5).as_nanos();
        // Past the doubling range the backoff is exactly the cap — it
        // must never wrap around to a short or zero sleep.
        for attempt in [64, 65, 127, 128, 1_000, u32::MAX] {
            assert_eq!(sup.raw_backoff_nanos(attempt), cap, "attempt {attempt}");
        }
        // A zero base stays zero at any attempt (no backoff configured).
        let zero = Supervisor::new(SupervisorPolicy {
            backoff_base: Duration::ZERO,
            ..SupervisorPolicy::default()
        });
        assert_eq!(zero.raw_backoff_nanos(u32::MAX), 0);
    }

    #[test]
    fn jittered_backoff_is_bounded_even_at_extreme_attempts() {
        let mut sup = Supervisor::new(SupervisorPolicy {
            max_retries: u32::MAX,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(40),
            seed: 3,
            ..SupervisorPolicy::default()
        });
        for attempt in [1, 63, 64, 65, 500, u32::MAX] {
            let d = sup.backoff(attempt);
            assert!(
                d <= Duration::from_millis(60),
                "attempt {attempt}: {d:?} exceeds 1.5 × cap"
            );
        }
    }

    #[test]
    fn equal_seeds_give_equal_backoff_sequences() {
        let mk = || {
            Supervisor::new(SupervisorPolicy {
                max_retries: 5,
                seed: 99,
                ..SupervisorPolicy::default()
            })
        };
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..5 {
            assert_eq!(a.next_retry(&err("s")), b.next_retry(&err("s")));
        }
    }
}
