//! Chaos-injection harness: deliberately breaking the runtime to prove
//! the fault-tolerance layer works.
//!
//! Icewafl pollutes *data*; this module pollutes the *runtime*. A
//! [`ChaosSource`] or [`ChaosOperator`] wraps a normal source/identity
//! stage and, at configurable per-record rates drawn from a seeded
//! deterministic RNG ([`SplitMix64`]), injects:
//!
//! * **panics** — marked with [`CHAOS_PANIC_MARKER`] so the fault layer
//!   classifies them as [`FailureKind::Injected`](crate::fault::FailureKind)
//!   rather than real bugs;
//! * **delays** — a blocking sleep, exercising backpressure and
//!   deadline enforcement;
//! * **drops** — the record is silently lost in flight, as if a channel
//!   dropped it;
//! * **malformed records** — a caller-supplied mutator corrupts the
//!   record in place.
//!
//! Panic injection can be bounded by a *budget* shared across supervised
//! retries ([`ChaosConfig::panic_budget`]): a budget of 1 models a
//! transient fault that heals after the first restart — exactly what the
//! `chaos_recovery` integration suite asserts recovers.

use crate::checkpoint::{CheckpointBarrier, StateSnapshot};
use crate::metrics::ChaosMetrics;
use icewafl_types::{Error, Result};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Marker embedded in every injected panic's payload. The fault layer
/// uses it to classify the failure as
/// [`FailureKind::Injected`](crate::fault::FailureKind), and the quiet
/// panic hook uses it to suppress backtrace noise in tests.
pub const CHAOS_PANIC_MARKER: &str = "[chaos-injected]";

/// A tiny, dependency-free, deterministic RNG (SplitMix64). Good enough
/// for fault scheduling and backoff jitter; not for cryptography.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed` (equal seeds ⇒ equal sequences).
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The generator's exact position. SplitMix64's state *is* its
    /// counter, so `SplitMix64::new(state)` reproduces the stream from
    /// here — captured into checkpoint frames.
    pub fn state(&self) -> u64 {
        self.state
    }
}

/// What faults to inject, and how often.
///
/// All rates are per-record probabilities in `[0, 1]`. The default
/// config injects nothing.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the injector's deterministic RNG.
    pub seed: u64,
    /// Probability that processing a record panics.
    pub panic_rate: f64,
    /// Deterministic fault point: panic exactly when the `n`-th record
    /// (1-based) reaches this injector, regardless of `panic_rate`. The
    /// kill draws nothing from the RNG (probabilistic decisions for
    /// surrounding records are unchanged) but does consume a panic
    /// token, so with a budget of 1 it fires once across supervised
    /// retries — the exact-offset kill the recovery tests need.
    pub kill_at_tuple: Option<u64>,
    /// At most this many panics are actually injected (`None` =
    /// unbounded). The budget is shared across supervised retries, so a
    /// budget of 1 models a transient fault that heals after restart.
    pub panic_budget: Option<u64>,
    /// Probability that processing a record sleeps for
    /// [`ChaosConfig::delay_ms`].
    pub delay_rate: f64,
    /// Injected delay duration, in milliseconds.
    pub delay_ms: u64,
    /// Probability that a record is dropped in flight.
    pub drop_rate: f64,
    /// Probability that a record is malformed (requires a mutator, see
    /// [`ChaosOperator::with_malform`]).
    pub malform_rate: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            panic_rate: 0.0,
            kill_at_tuple: None,
            panic_budget: None,
            delay_rate: 0.0,
            delay_ms: 1,
            drop_rate: 0.0,
            malform_rate: 0.0,
        }
    }
}

impl ChaosConfig {
    /// `true` iff every rate is a valid probability.
    pub fn is_valid(&self) -> bool {
        [
            self.panic_rate,
            self.delay_rate,
            self.drop_rate,
            self.malform_rate,
        ]
        .iter()
        .all(|r| (0.0..=1.0).contains(r) && r.is_finite())
    }

    /// A fresh atomic panic budget matching
    /// [`ChaosConfig::panic_budget`] (`u64::MAX` when unbounded).
    /// Create it **once per job** and share it across retries via
    /// [`ChaosOperator::with_shared_budget`] so a bounded fault is
    /// transient rather than re-armed on every restart.
    pub fn new_budget(&self) -> Arc<AtomicU64> {
        Arc::new(AtomicU64::new(self.panic_budget.unwrap_or(u64::MAX)))
    }
}

/// The fault chosen for one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    None,
    Panic,
    Delay,
    Drop,
    Malform,
}

/// Shared decision engine of the source and operator wrappers.
struct FaultPlan {
    cfg: ChaosConfig,
    rng: SplitMix64,
    budget: Arc<AtomicU64>,
    metrics: ChaosMetrics,
    seen: u64,
}

impl FaultPlan {
    fn new(cfg: ChaosConfig, budget: Arc<AtomicU64>, metrics: ChaosMetrics) -> Self {
        let rng = SplitMix64::new(cfg.seed);
        FaultPlan {
            cfg,
            rng,
            budget,
            metrics,
            seen: 0,
        }
    }

    /// Tries to take one panic token from the shared budget.
    fn take_panic_token(&self) -> bool {
        self.budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
            .is_ok()
    }

    /// Decides the fault for the next record and updates the counters.
    /// The faults are checked in severity order; at most one fires per
    /// record.
    fn decide(&mut self) -> Fault {
        self.seen += 1;
        if self.cfg.kill_at_tuple == Some(self.seen) && self.take_panic_token() {
            self.metrics.injected_panics.inc();
            return Fault::Panic;
        }
        if self.cfg.panic_rate > 0.0
            && self.rng.next_f64() < self.cfg.panic_rate
            && self.take_panic_token()
        {
            self.metrics.injected_panics.inc();
            return Fault::Panic;
        }
        if self.cfg.delay_rate > 0.0 && self.rng.next_f64() < self.cfg.delay_rate {
            self.metrics.injected_delays.inc();
            return Fault::Delay;
        }
        if self.cfg.drop_rate > 0.0 && self.rng.next_f64() < self.cfg.drop_rate {
            self.metrics.injected_drops.inc();
            return Fault::Drop;
        }
        if self.cfg.malform_rate > 0.0 && self.rng.next_f64() < self.cfg.malform_rate {
            self.metrics.injected_malforms.inc();
            return Fault::Malform;
        }
        Fault::None
    }

    fn panic_now(&self) -> ! {
        panic!(
            "{CHAOS_PANIC_MARKER} injected panic at record {}",
            self.seen
        );
    }

    fn delay_now(&self) {
        std::thread::sleep(std::time::Duration::from_millis(self.cfg.delay_ms));
    }
}

/// Record mutator used for malformed-record faults.
pub type MalformFn<T> = Box<dyn FnMut(&mut T) + Send>;

/// Identity operator that injects faults per [`ChaosConfig`]. Insert it
/// anywhere in a pipeline via
/// [`DataStream::transform`](crate::stream::DataStream::transform).
pub struct ChaosOperator<T> {
    plan: FaultPlan,
    malform: Option<MalformFn<T>>,
    /// Checkpoint-frame key; `None` leaves the injector un-snapshotted.
    ckpt_key: Option<String>,
}

/// Wire form of a chaos injector snapshot: the record counter and the
/// RNG position (everything `decide` depends on besides the shared
/// budget, which lives outside the attempt and survives it).
#[derive(Debug, Serialize, Deserialize)]
struct ChaosState {
    seen: u64,
    rng: u64,
}

impl<T> ChaosOperator<T> {
    /// An injector with its own (private) panic budget and detached
    /// metrics.
    pub fn new(cfg: ChaosConfig) -> Self {
        let budget = cfg.new_budget();
        Self::with_shared_budget(cfg, budget)
    }

    /// An injector that panics exactly when the `n`-th record (1-based)
    /// passes through, and never again: the kill carries a one-shot
    /// panic budget, so sharing that budget across supervised retries
    /// (via [`ChaosOperator::with_shared_budget`] and
    /// [`ChaosConfig::new_budget`]) models a transient fault at an
    /// exact, reproducible offset.
    pub fn kill_at_tuple(n: u64) -> Self {
        ChaosOperator::new(ChaosConfig {
            kill_at_tuple: Some(n),
            panic_budget: Some(1),
            ..ChaosConfig::default()
        })
    }

    /// An injector whose panic budget is shared (typically across
    /// supervised retries of the same job).
    pub fn with_shared_budget(cfg: ChaosConfig, budget: Arc<AtomicU64>) -> Self {
        ChaosOperator {
            plan: FaultPlan::new(cfg, budget, ChaosMetrics::detached()),
            malform: None,
            ckpt_key: None,
        }
    }

    /// Records injection counters into the given metric handles.
    pub fn with_metrics(mut self, metrics: ChaosMetrics) -> Self {
        self.plan.metrics = metrics;
        self
    }

    /// Sets the mutator applied on malformed-record faults.
    pub fn with_malform(mut self, f: impl FnMut(&mut T) + Send + 'static) -> Self {
        self.malform = Some(Box::new(f));
        self
    }

    /// Enables checkpoint snapshots under `key`: the injector's record
    /// counter and RNG position are captured so a restored attempt
    /// replays the *same* fault schedule instead of re-rolling it.
    pub fn with_checkpoint_key(mut self, key: impl Into<String>) -> Self {
        self.ckpt_key = Some(key.into());
        self
    }
}

impl<T> StateSnapshot for ChaosOperator<T> {
    fn snapshot_state(&self) -> Option<String> {
        self.ckpt_key.as_ref()?;
        serde_json::to_string(&ChaosState {
            seen: self.plan.seen,
            rng: self.plan.rng.state(),
        })
        .ok()
    }

    fn restore_state(&mut self, state: &str) -> Result<()> {
        let s: ChaosState =
            serde_json::from_str(state).map_err(|_| Error::parse(state, "ChaosState"))?;
        self.plan.seen = s.seen;
        self.plan.rng = SplitMix64::new(s.rng);
        Ok(())
    }
}

impl<T: Send> crate::operator::Operator<T, T> for ChaosOperator<T> {
    fn on_element(&mut self, mut record: T, out: &mut dyn crate::operator::Collector<T>) {
        match self.plan.decide() {
            Fault::Panic => self.plan.panic_now(),
            Fault::Delay => {
                self.plan.delay_now();
                out.collect(record);
            }
            Fault::Drop => {}
            Fault::Malform => {
                if let Some(f) = self.malform.as_mut() {
                    f(&mut record);
                }
                out.collect(record);
            }
            Fault::None => out.collect(record),
        }
    }

    fn on_barrier(&mut self, barrier: &CheckpointBarrier) {
        if let (Some(key), Some(doc)) = (self.ckpt_key.clone(), self.snapshot_state()) {
            barrier.contribute(key, doc);
        }
    }

    fn name(&self) -> &'static str {
        "chaos"
    }
}

/// Source wrapper that injects faults per [`ChaosConfig`] as records are
/// pulled. A panic here exercises the *source driver's* catch path
/// (distinct from the operator path).
pub struct ChaosSource<S> {
    inner: S,
    plan: FaultPlan,
}

impl<S> ChaosSource<S> {
    /// Wraps `inner` with its own (private) panic budget and detached
    /// metrics.
    pub fn new(inner: S, cfg: ChaosConfig) -> Self {
        let budget = cfg.new_budget();
        Self::with_shared_budget(inner, cfg, budget)
    }

    /// Wraps `inner` with a shared panic budget.
    pub fn with_shared_budget(inner: S, cfg: ChaosConfig, budget: Arc<AtomicU64>) -> Self {
        ChaosSource {
            inner,
            plan: FaultPlan::new(cfg, budget, ChaosMetrics::detached()),
        }
    }

    /// Records injection counters into the given metric handles.
    pub fn with_metrics(mut self, metrics: ChaosMetrics) -> Self {
        self.plan.metrics = metrics;
        self
    }
}

impl<T, S: crate::source::Source<T>> crate::source::Source<T> for ChaosSource<S> {
    fn next(&mut self) -> Option<T> {
        loop {
            let record = self.inner.next()?;
            match self.plan.decide() {
                Fault::Panic => self.plan.panic_now(),
                Fault::Delay => {
                    self.plan.delay_now();
                    return Some(record);
                }
                Fault::Drop => continue,
                // Sources have no mutator; malform degrades to a no-op.
                Fault::Malform | Fault::None => return Some(record),
            }
        }
    }

    fn size_hint(&self) -> Option<usize> {
        // Drops make the true count unknowable in advance.
        None
    }
}

/// Installs (once, process-wide) a panic hook that suppresses the
/// default "thread panicked" report for chaos-injected panics — they are
/// expected, caught, and converted into typed errors; printing a
/// backtrace per injection would drown test output. Real panics still
/// report through the previous hook.
pub fn install_quiet_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            // Typed stage errors raised via `panic_any(StageError)` are
            // deliberate, always-caught poison — never backtrace noise.
            if payload.downcast_ref::<crate::fault::StageError>().is_some() {
                return;
            }
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains(CHAOS_PANIC_MARKER) {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::Operator;
    use crate::stage::run_operator_simple;

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut c = SplitMix64::new(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], c.next_u64());
        for _ in 0..1000 {
            let f = c.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn default_config_injects_nothing() {
        let out: Vec<i64> = run_operator_simple(
            ChaosOperator::new(ChaosConfig::default()),
            (0..100).collect(),
        );
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn config_validation_rejects_bad_rates() {
        assert!(ChaosConfig::default().is_valid());
        let bad = ChaosConfig {
            panic_rate: 1.5,
            ..ChaosConfig::default()
        };
        assert!(!bad.is_valid());
        let nan = ChaosConfig {
            drop_rate: f64::NAN,
            ..ChaosConfig::default()
        };
        assert!(!nan.is_valid());
    }

    #[test]
    fn drop_rate_one_drops_everything() {
        let cfg = ChaosConfig {
            drop_rate: 1.0,
            ..ChaosConfig::default()
        };
        let out: Vec<i64> = run_operator_simple(ChaosOperator::new(cfg), (0..50).collect());
        assert!(out.is_empty());
    }

    #[test]
    fn malform_mutates_records() {
        let cfg = ChaosConfig {
            malform_rate: 1.0,
            ..ChaosConfig::default()
        };
        let op = ChaosOperator::new(cfg).with_malform(|x: &mut i64| *x = -1);
        let out: Vec<i64> = run_operator_simple(op, vec![1, 2, 3]);
        assert_eq!(out, vec![-1, -1, -1]);
    }

    #[test]
    fn panic_budget_limits_injections() {
        install_quiet_panic_hook();
        let cfg = ChaosConfig {
            panic_rate: 1.0,
            panic_budget: Some(1),
            ..ChaosConfig::default()
        };
        let budget = cfg.new_budget();
        // First run panics (budget 1 -> 0)…
        let op = ChaosOperator::<i64>::with_shared_budget(cfg.clone(), Arc::clone(&budget));
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_operator_simple::<i64, i64, _>(op, vec![1])
        }))
        .is_err();
        assert!(panicked);
        // …the retry with the same shared budget heals.
        let op = ChaosOperator::<i64>::with_shared_budget(cfg, budget);
        let out: Vec<i64> = run_operator_simple(op, vec![1, 2]);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn kill_at_tuple_fires_exactly_once_at_exact_offset() {
        install_quiet_panic_hook();
        let cfg = ChaosConfig {
            kill_at_tuple: Some(3),
            panic_budget: Some(1),
            ..ChaosConfig::default()
        };
        let budget = cfg.new_budget();
        let mut op = ChaosOperator::<i64>::with_shared_budget(cfg.clone(), Arc::clone(&budget));
        let mut out = Vec::new();
        // Records 1 and 2 pass; record 3 kills.
        op.on_element(1, &mut out);
        op.on_element(2, &mut out);
        assert_eq!(out, vec![1, 2]);
        let killed =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| op.on_element(3, &mut out)))
                .is_err();
        assert!(killed);
        // The retry with the shared budget passes record 3 through.
        let op = ChaosOperator::<i64>::with_shared_budget(cfg, budget);
        let out: Vec<i64> = run_operator_simple(op, vec![1, 2, 3, 4]);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn chaos_snapshot_restores_fault_schedule_position() {
        let cfg = ChaosConfig {
            drop_rate: 0.3,
            seed: 7,
            ..ChaosConfig::default()
        };
        let mut a = ChaosOperator::<i64>::new(cfg.clone()).with_checkpoint_key("chaos_0");
        let mut sink = Vec::new();
        for x in 0..50 {
            a.on_element(x, &mut sink);
        }
        let doc = a.snapshot_state().expect("key installed");
        // A fresh injector restored from the snapshot continues the
        // exact drop schedule the original would have produced.
        let mut b = ChaosOperator::<i64>::new(cfg).with_checkpoint_key("chaos_0");
        b.restore_state(&doc).unwrap();
        let (mut ya, mut yb) = (Vec::new(), Vec::new());
        for x in 50..100 {
            a.on_element(x, &mut ya);
            b.on_element(x, &mut yb);
        }
        assert_eq!(ya, yb);
        assert!(ya.len() < 50, "some records must have dropped");
    }

    #[test]
    fn chaos_source_drops_and_panics() {
        install_quiet_panic_hook();
        let cfg = ChaosConfig {
            drop_rate: 1.0,
            ..ChaosConfig::default()
        };
        let mut s = ChaosSource::new(crate::source::VecSource::new(vec![1, 2, 3]), cfg);
        assert_eq!(crate::source::Source::<i32>::next(&mut s), None);

        let cfg = ChaosConfig {
            panic_rate: 1.0,
            ..ChaosConfig::default()
        };
        let mut s = ChaosSource::new(crate::source::VecSource::new(vec![1]), cfg);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::source::Source::<i32>::next(&mut s)
        }))
        .is_err();
        assert!(panicked);
    }
}
