//! Event-time windows and micro-batching.
//!
//! Icewafl accepts "a real data stream or a data stream split into small
//! batches (micro-batching)" (§2.1). The [`MicroBatcher`] turns a tuple
//! stream into batches; [`TumblingWindow`] groups records by event time
//! and fires complete windows as the watermark passes them — the DQ
//! experiments validate per-hour windows this way.

use crate::operator::{Collector, Operator};
use icewafl_types::{Duration, Timestamp};
use std::collections::BTreeMap;

/// Groups records into fixed-size count batches. The final partial batch
/// is flushed at end of stream.
pub struct MicroBatcher<T> {
    size: usize,
    buf: Vec<T>,
}

impl<T> MicroBatcher<T> {
    /// Creates a batcher emitting `size`-record batches (`size ≥ 1`).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        MicroBatcher {
            size,
            buf: Vec::with_capacity(size),
        }
    }
}

impl<T: Send> Operator<T, Vec<T>> for MicroBatcher<T> {
    fn on_element(&mut self, record: T, out: &mut dyn Collector<Vec<T>>) {
        self.buf.push(record);
        if self.buf.len() == self.size {
            let batch = std::mem::replace(&mut self.buf, Vec::with_capacity(self.size));
            out.collect(batch);
        }
    }

    fn on_end(&mut self, out: &mut dyn Collector<Vec<T>>) {
        if !self.buf.is_empty() {
            out.collect(std::mem::take(&mut self.buf));
        }
    }

    fn name(&self) -> &'static str {
        "micro_batcher"
    }
}

/// A fired tumbling window: its start time and contents.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowPane<T> {
    /// Inclusive start of the window.
    pub start: Timestamp,
    /// Exclusive end of the window.
    pub end: Timestamp,
    /// Records whose event time fell in `[start, end)`, in arrival
    /// order.
    pub records: Vec<T>,
}

/// Tumbling event-time windows of fixed size.
///
/// A window `[k·size, (k+1)·size)` fires when the watermark reaches its
/// end; remaining windows fire at end of stream. Empty windows do not
/// fire.
pub struct TumblingWindow<T, F> {
    size: Duration,
    extract: F,
    panes: BTreeMap<i64, Vec<T>>,
}

impl<T, F> TumblingWindow<T, F>
where
    F: FnMut(&T) -> Timestamp,
{
    /// Creates tumbling windows of `size` over the extracted event time.
    /// `size` must be positive.
    pub fn new(size: Duration, extract: F) -> Self {
        assert!(size.millis() > 0, "window size must be positive");
        TumblingWindow {
            size,
            extract,
            panes: BTreeMap::new(),
        }
    }

    fn fire_up_to(&mut self, wm: Timestamp, out: &mut dyn Collector<WindowPane<T>>) {
        let size = self.size.millis();
        // A window k fires when wm >= its end (k+1)*size - 1ms is
        // covered, i.e. (k+1)*size <= wm + 1. Popping the first (lowest)
        // key until it stops firing avoids a key list and the
        // remove-after-peek `expect`.
        while let Some(entry) = self.panes.first_entry() {
            let k = *entry.key();
            let fires = match (k + 1).checked_mul(size) {
                Some(end) => end <= wm.millis().saturating_add(1),
                None => false,
            };
            if !fires {
                break;
            }
            let records = entry.remove();
            out.collect(WindowPane {
                start: Timestamp(k * size),
                end: Timestamp((k + 1) * size),
                records,
            });
        }
    }
}

impl<T, F> Operator<T, WindowPane<T>> for TumblingWindow<T, F>
where
    T: Send,
    F: FnMut(&T) -> Timestamp + Send,
{
    fn on_element(&mut self, record: T, _out: &mut dyn Collector<WindowPane<T>>) {
        let ts = (self.extract)(&record);
        let key = ts.millis().div_euclid(self.size.millis());
        self.panes.entry(key).or_default().push(record);
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut dyn Collector<WindowPane<T>>) {
        self.fire_up_to(wm, out);
    }

    fn on_end(&mut self, out: &mut dyn Collector<WindowPane<T>>) {
        while let Some((k, records)) = self.panes.pop_first() {
            out.collect(WindowPane {
                start: Timestamp(k * self.size.millis()),
                end: Timestamp((k + 1) * self.size.millis()),
                records,
            });
        }
    }

    fn name(&self) -> &'static str {
        "tumbling_window"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::StreamElement;
    use crate::stage::{run_operator, run_operator_simple};

    #[test]
    fn micro_batcher_full_batches() {
        let out: Vec<Vec<i32>> = run_operator_simple(MicroBatcher::new(2), vec![1, 2, 3, 4]);
        assert_eq!(out, vec![vec![1, 2], vec![3, 4]]);
    }

    #[test]
    fn micro_batcher_flushes_partial_on_end() {
        let out: Vec<Vec<i32>> = run_operator_simple(MicroBatcher::new(3), vec![1, 2, 3, 4]);
        assert_eq!(out, vec![vec![1, 2, 3], vec![4]]);
    }

    #[test]
    fn micro_batcher_empty_input() {
        let out: Vec<Vec<i32>> = run_operator_simple(MicroBatcher::new(3), vec![]);
        assert!(out.is_empty());
    }

    #[test]
    fn micro_batcher_size_zero_clamped() {
        let out: Vec<Vec<i32>> = run_operator_simple(MicroBatcher::new(0), vec![7]);
        assert_eq!(out, vec![vec![7]]);
    }

    #[test]
    fn tumbling_window_groups_by_event_time() {
        let w = TumblingWindow::new(Duration::from_millis(10), |r: &(i64, char)| Timestamp(r.0));
        let out: Vec<WindowPane<(i64, char)>> =
            run_operator_simple(w, vec![(1, 'a'), (5, 'b'), (12, 'c'), (19, 'd'), (25, 'e')]);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].start, Timestamp(0));
        assert_eq!(out[0].records, vec![(1, 'a'), (5, 'b')]);
        assert_eq!(out[1].start, Timestamp(10));
        assert_eq!(out[1].end, Timestamp(20));
        assert_eq!(out[1].records, vec![(12, 'c'), (19, 'd')]);
        assert_eq!(out[2].records, vec![(25, 'e')]);
    }

    #[test]
    fn tumbling_window_fires_on_watermark() {
        let w = TumblingWindow::new(Duration::from_millis(10), |r: &i64| Timestamp(*r));
        let out: Vec<WindowPane<i64>> = run_operator(
            w,
            vec![
                StreamElement::Record(3),
                StreamElement::Record(15),
                // Watermark 8: a record with ts 9 could still arrive, so
                // window [0,10) must not fire yet.
                StreamElement::Watermark(Timestamp(8)),
                StreamElement::Watermark(Timestamp(9)),
                StreamElement::End,
            ],
        );
        // First window fired by the watermark at 9, second at end.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].records, vec![3]);
        assert_eq!(out[1].records, vec![15]);
    }

    #[test]
    fn tumbling_window_watermark_9_does_not_fire_window_0_10() {
        let w = TumblingWindow::new(Duration::from_millis(10), |r: &i64| Timestamp(*r));
        let out: Vec<WindowPane<i64>> = run_operator(
            w,
            vec![
                StreamElement::Record(3),
                StreamElement::Watermark(Timestamp(8)),
                StreamElement::End,
            ],
        );
        assert_eq!(out.len(), 1, "window only fires at end");
    }

    #[test]
    fn tumbling_window_watermark_at_9ms_fires_via_inclusive_edge() {
        // wm = 9 means no record with ts <= 9 is pending; window [0,10)
        // contains ts 0..=9, so it may fire: end (10) <= wm+1 (10).
        let w = TumblingWindow::new(Duration::from_millis(10), |r: &i64| Timestamp(*r));
        let out: Vec<WindowPane<i64>> = run_operator(
            w,
            vec![
                StreamElement::Record(3),
                StreamElement::Watermark(Timestamp(9)),
                StreamElement::End,
            ],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].records, vec![3]);
    }

    #[test]
    fn negative_event_times_window_correctly() {
        let w = TumblingWindow::new(Duration::from_millis(10), |r: &i64| Timestamp(*r));
        let out: Vec<WindowPane<i64>> = run_operator_simple(w, vec![-5, -15]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].start, Timestamp(-20));
        assert_eq!(out[0].records, vec![-15]);
        assert_eq!(out[1].start, Timestamp(-10));
        assert_eq!(out[1].records, vec![-5]);
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_window_size_panics() {
        let _ = TumblingWindow::new(Duration::ZERO, |r: &i64| Timestamp(*r));
    }
}
