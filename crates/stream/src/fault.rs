//! Fault types and the poison-propagation protocol.
//!
//! Icewafl injects faults into *data*; this module is about faults in
//! the *runtime itself*. Before it existed, a panicking operator on a
//! worker thread was silently discarded (its `JoinHandle` dropped),
//! which could deadlock the merge stage or truncate output with no
//! error surfaced. The protocol implemented across
//! [`stage`](crate::stage) and [`stream`](crate::stream) is:
//!
//! 1. every operator callback and every spawned worker runs under
//!    [`std::panic::catch_unwind`];
//! 2. a caught panic becomes a typed [`StageError`] wrapped in the
//!    poison element [`StreamElement::Failure`](crate::element::StreamElement),
//!    which travels *downstream* exactly like the end marker: stages
//!    stop processing, forward it, and drain;
//! 3. the terminal sink stage records the first failure into the run's
//!    shared [`FailureCell`]; the executor turns it into a
//!    [`PipelineError`] returned from
//!    [`DataStream::execute_into`](crate::stream::DataStream::execute_into).
//!
//! The pipeline therefore always terminates — cleanly on success,
//! loudly on failure — and never hangs on a dead worker.

use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Why a stage failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// An operator, source, or worker panicked.
    Panic,
    /// A fault deliberately injected by the [`chaos`](crate::chaos)
    /// harness.
    Injected,
    /// The run exceeded its wall-clock deadline.
    Deadline,
    /// A channel peer disappeared before the stream ended.
    Disconnect,
    /// A non-retryable error (bad configuration, exhausted retries).
    Fatal,
}

impl FailureKind {
    /// Stable string form (used when the kind crosses crate boundaries
    /// as part of `icewafl_types::Error::Pipeline`).
    pub fn as_str(&self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Injected => "injected",
            FailureKind::Deadline => "deadline",
            FailureKind::Disconnect => "disconnect",
            FailureKind::Fatal => "fatal",
        }
    }

    /// Parses the stable string form; unknown strings map to
    /// [`FailureKind::Fatal`] (never silently retried).
    pub fn parse(s: &str) -> Self {
        match s {
            "panic" => FailureKind::Panic,
            "injected" => FailureKind::Injected,
            "deadline" => FailureKind::Deadline,
            "disconnect" => FailureKind::Disconnect,
            _ => FailureKind::Fatal,
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed stage failure: which stage failed, why, and the rendered
/// panic payload (or diagnostic message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageError {
    /// Label of the failing stage, e.g. `stage/02_map`.
    pub stage: String,
    /// Failure class.
    pub kind: FailureKind,
    /// Human-readable detail — the panic message for panics.
    pub message: String,
}

impl StageError {
    /// A failure of `stage` with an explicit kind and message.
    pub fn new(stage: impl Into<String>, kind: FailureKind, message: impl Into<String>) -> Self {
        StageError {
            stage: stage.into(),
            kind,
            message: message.into(),
        }
    }

    /// Converts a caught panic payload into a `StageError`, extracting
    /// the `&str` / `String` message when present.
    ///
    /// A payload that *is* a `StageError` (thrown via
    /// [`std::panic::panic_any`]) passes its kind and message through
    /// verbatim — this is how sources and sinks raise *typed* failures
    /// (e.g. a network disconnect) instead of a generic panic; only the
    /// stage label is replaced with the label the runtime assigned.
    pub fn from_panic(stage: &str, payload: Box<dyn std::any::Any + Send>) -> Self {
        if let Some(typed) = payload.downcast_ref::<StageError>() {
            return StageError::new(stage, typed.kind, typed.message.clone());
        }
        let message = panic_message(&payload);
        // Faults injected by the chaos harness mark their payload so
        // the supervisor can distinguish deliberate faults from real
        // bugs in retry statistics.
        let kind = if message.contains(crate::chaos::CHAOS_PANIC_MARKER) {
            FailureKind::Injected
        } else {
            FailureKind::Panic
        };
        StageError::new(stage, kind, message)
    }

    /// A wall-clock deadline failure attributed to `stage`.
    pub fn deadline(stage: &str) -> Self {
        StageError::new(stage, FailureKind::Deadline, "run deadline exceeded")
    }
}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stage `{}` failed ({}): {}",
            self.stage, self.kind, self.message
        )
    }
}

impl std::error::Error for StageError {}

/// Renders a panic payload the way the default hook would.
pub(crate) fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The error returned by pipeline executors: the first [`StageError`]
/// observed during the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineError {
    /// The failure that terminated the pipeline.
    pub error: StageError,
}

impl PipelineError {
    /// Label of the failing stage.
    pub fn stage(&self) -> &str {
        &self.error.stage
    }

    /// Failure class.
    pub fn kind(&self) -> FailureKind {
        self.error.kind
    }

    /// Human-readable detail.
    pub fn message(&self) -> &str {
        &self.error.message
    }
}

impl From<StageError> for PipelineError {
    fn from(error: StageError) -> Self {
        PipelineError { error }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipeline failed: {}", self.error)
    }
}

impl std::error::Error for PipelineError {}

impl From<PipelineError> for icewafl_types::Error {
    fn from(e: PipelineError) -> Self {
        icewafl_types::Error::Pipeline {
            stage: e.error.stage,
            kind: e.error.kind.as_str().to_string(),
            message: e.error.message,
        }
    }
}

/// First-failure-wins cell shared between every fault-catching point of
/// one pipeline execution and the executor that reports the result.
///
/// Cloning shares the cell. Recording is cheap (one short mutex hold)
/// and only ever happens on the failure path.
#[derive(Clone, Default)]
pub struct FailureCell {
    slot: Arc<Mutex<Option<StageError>>>,
}

impl FailureCell {
    /// An empty cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `error` unless a failure was already recorded (the first
    /// failure is the root cause; later ones are usually fallout).
    pub fn record(&self, error: StageError) {
        let mut slot = self.slot.lock();
        if slot.is_none() {
            *slot = Some(error);
        }
    }

    /// `true` iff a failure has been recorded.
    pub fn is_failed(&self) -> bool {
        self.slot.lock().is_some()
    }

    /// A copy of the recorded failure, if any.
    pub fn get(&self) -> Option<StageError> {
        self.slot.lock().clone()
    }

    /// Removes and returns the recorded failure, if any.
    pub fn take(&self) -> Option<StageError> {
        self.slot.lock().take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_cell_first_wins() {
        let cell = FailureCell::new();
        assert!(!cell.is_failed());
        cell.record(StageError::new("a", FailureKind::Panic, "first"));
        cell.record(StageError::new("b", FailureKind::Panic, "second"));
        let e = cell.get().unwrap();
        assert_eq!(e.stage, "a");
        assert_eq!(e.message, "first");
        assert!(cell.is_failed());
        assert!(cell.take().is_some());
        assert!(cell.take().is_none());
    }

    #[test]
    fn from_panic_extracts_str_and_string() {
        let e = StageError::from_panic("s", Box::new("boom"));
        assert_eq!(e.message, "boom");
        assert_eq!(e.kind, FailureKind::Panic);
        let e = StageError::from_panic("s", Box::new("heap".to_string()));
        assert_eq!(e.message, "heap");
        let e = StageError::from_panic("s", Box::new(42u32));
        assert_eq!(e.message, "non-string panic payload");
    }

    #[test]
    fn chaos_marker_is_classified_injected() {
        let e = StageError::from_panic(
            "s",
            Box::new(format!("{} at element 3", crate::chaos::CHAOS_PANIC_MARKER)),
        );
        assert_eq!(e.kind, FailureKind::Injected);
    }

    #[test]
    fn kind_round_trips_through_strings() {
        for kind in [
            FailureKind::Panic,
            FailureKind::Injected,
            FailureKind::Deadline,
            FailureKind::Disconnect,
            FailureKind::Fatal,
        ] {
            assert_eq!(FailureKind::parse(kind.as_str()), kind);
        }
        assert_eq!(FailureKind::parse("???"), FailureKind::Fatal);
    }

    #[test]
    fn display_formats() {
        let e = StageError::new("stage/01_map", FailureKind::Panic, "boom");
        let p: PipelineError = e.into();
        assert_eq!(p.stage(), "stage/01_map");
        assert!(p
            .to_string()
            .contains("stage `stage/01_map` failed (panic): boom"));
    }

    #[test]
    fn converts_into_types_error() {
        let p: PipelineError = StageError::new("s", FailureKind::Deadline, "late").into();
        let e: icewafl_types::Error = p.into();
        match e {
            icewafl_types::Error::Pipeline {
                stage,
                kind,
                message,
            } => {
                assert_eq!(stage, "s");
                assert_eq!(kind, "deadline");
                assert_eq!(message, "late");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
