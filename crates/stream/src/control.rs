//! Epoch-barrier runtime reconfiguration (the Fries model).
//!
//! A [`ControlChannel`] is a side channel into a *running* pipeline:
//! commands are scheduled against an event-time timestamp, and every
//! [`ControlSubscriber`] (typically one per reconfigurable operator)
//! applies a command at the first **watermark** at or past that
//! timestamp. Because the runtime broadcasts watermarks to every
//! sub-stream (see `RouterStage`), all subscribers observe the same
//! watermark sequence and therefore switch at the same epoch boundary —
//! no record is ever processed under a half-applied configuration.
//!
//! The channel is deliberately generic: the stream layer provides the
//! barrier mechanics, the command payload `C` (e.g. a re-compiled
//! pollution plan) is the caller's business.

use icewafl_types::Timestamp;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Scheduled<C> {
    at: Timestamp,
    command: Arc<C>,
}

struct Inner<C> {
    commands: Mutex<Vec<Scheduled<C>>>,
    /// Highest epoch sequence number applied by any subscriber.
    applied_hwm: AtomicU64,
}

/// A shared, thread-safe queue of timestamp-scheduled commands.
///
/// Cloning the channel shares the queue; commands may be scheduled
/// before the run starts or live from another thread while it executes.
pub struct ControlChannel<C> {
    inner: Arc<Inner<C>>,
}

impl<C> Clone for ControlChannel<C> {
    fn clone(&self) -> Self {
        ControlChannel {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<C> Default for ControlChannel<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C> ControlChannel<C> {
    /// An empty channel.
    pub fn new() -> Self {
        ControlChannel {
            inner: Arc::new(Inner {
                commands: Mutex::new(Vec::new()),
                applied_hwm: AtomicU64::new(0),
            }),
        }
    }

    /// Schedules `command` to apply at the first watermark `wm >= at`.
    ///
    /// Epoch timestamps are forced monotone: a command scheduled before
    /// an already-queued one is clamped forward to the latest queued
    /// timestamp, so it still applies at the next boundary instead of
    /// being silently skipped by subscribers that passed it.
    pub fn schedule(&self, at: Timestamp, command: C) {
        let mut commands = self.inner.commands.lock();
        let at = commands.last().map_or(at, |last| at.max(last.at));
        commands.push(Scheduled {
            at,
            command: Arc::new(command),
        });
    }

    /// Number of scheduled commands (applied or not).
    pub fn len(&self) -> usize {
        self.inner.commands.lock().len()
    }

    /// `true` when no command was ever scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest epoch sequence number any subscriber has applied so far
    /// (1-based; 0 = nothing applied).
    pub fn applied(&self) -> u64 {
        self.inner.applied_hwm.load(Ordering::Relaxed)
    }

    /// A new subscriber starting before the first scheduled command.
    pub fn subscriber(&self) -> ControlSubscriber<C> {
        ControlSubscriber {
            channel: self.clone(),
            next: 0,
        }
    }
}

/// One operator's cursor into a [`ControlChannel`].
///
/// Each reconfigurable operator holds its own subscriber and calls
/// [`ControlSubscriber::poll`] from its watermark callback; subscribers
/// advance independently, which is exactly what keeps restarts sound: a
/// supervised retry rebuilds its operators with fresh subscribers and
/// re-applies every epoch at the same deterministic boundaries.
pub struct ControlSubscriber<C> {
    channel: ControlChannel<C>,
    next: usize,
}

impl<C> ControlSubscriber<C> {
    /// Returns the newest command due at watermark `wm`, with its epoch
    /// sequence number (1-based), advancing past every due command.
    ///
    /// Multiple commands due at the same watermark collapse to the last
    /// one scheduled — intermediate epochs were never observable, so
    /// only the final configuration is applied.
    pub fn poll(&mut self, wm: Timestamp) -> Option<(u64, Arc<C>)> {
        let commands = self.channel.inner.commands.lock();
        let mut latest = None;
        while let Some(scheduled) = commands.get(self.next) {
            if scheduled.at > wm {
                break;
            }
            self.next += 1;
            latest = Some((self.next as u64, Arc::clone(&scheduled.command)));
        }
        drop(commands);
        if let Some((epoch, _)) = &latest {
            self.channel
                .inner
                .applied_hwm
                .fetch_max(*epoch, Ordering::Relaxed);
        }
        latest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_before_epoch_returns_nothing() {
        let chan = ControlChannel::new();
        chan.schedule(Timestamp(100), "a");
        let mut sub = chan.subscriber();
        assert!(sub.poll(Timestamp(99)).is_none());
        assert_eq!(chan.applied(), 0);
    }

    #[test]
    fn poll_at_epoch_returns_command_once() {
        let chan = ControlChannel::new();
        chan.schedule(Timestamp(100), "a");
        let mut sub = chan.subscriber();
        let (epoch, cmd) = sub.poll(Timestamp(100)).expect("due");
        assert_eq!(epoch, 1);
        assert_eq!(*cmd, "a");
        assert!(sub.poll(Timestamp(200)).is_none(), "already applied");
        assert_eq!(chan.applied(), 1);
    }

    #[test]
    fn multiple_due_commands_collapse_to_last() {
        let chan = ControlChannel::new();
        chan.schedule(Timestamp(10), "a");
        chan.schedule(Timestamp(20), "b");
        chan.schedule(Timestamp(30), "c");
        let mut sub = chan.subscriber();
        let (epoch, cmd) = sub.poll(Timestamp(25)).expect("two due");
        assert_eq!((epoch, *cmd), (2, "b"));
        let (epoch, cmd) = sub.poll(Timestamp(1000)).expect("third due");
        assert_eq!((epoch, *cmd), (3, "c"));
        assert_eq!(chan.applied(), 3);
    }

    #[test]
    fn subscribers_advance_independently() {
        let chan = ControlChannel::new();
        chan.schedule(Timestamp(10), 1u32);
        let mut a = chan.subscriber();
        let mut b = chan.subscriber();
        assert!(a.poll(Timestamp(10)).is_some());
        assert!(b.poll(Timestamp(10)).is_some(), "b has its own cursor");
    }

    #[test]
    fn out_of_order_schedule_is_clamped_monotone() {
        let chan = ControlChannel::new();
        chan.schedule(Timestamp(100), "late");
        chan.schedule(Timestamp(50), "early"); // clamped to 100
        let mut sub = chan.subscriber();
        assert!(sub.poll(Timestamp(60)).is_none(), "clamp keeps order");
        let (epoch, cmd) = sub.poll(Timestamp(100)).expect("both due");
        assert_eq!((epoch, *cmd), (2, "early"));
    }
}
