//! # icewafl-stream
//!
//! A miniature stream-processing framework — the Apache Flink substitute
//! of the Icewafl reproduction.
//!
//! The original Icewafl is a library of Flink operators; everything it
//! needs from Flink is provided here, from scratch:
//!
//! * typed, stateful [`Operator`]s with event-time
//!   [watermark](watermark::WatermarkStrategy) callbacks;
//! * a fluent, lazily composed [`DataStream`] pipeline API with
//!   `map`/`filter`/`flat_map`/keyed-process/sort/window combinators;
//! * stream **union** with per-input watermark merging and **fan-out**
//!   into (overlapping) sub-pipelines
//!   ([`DataStream::split_merge`]) — the substrate for Icewafl's
//!   integration scenarios (paper §2.2.2, Algorithm 1);
//! * a deterministic single-threaded executor plus thread-parallel
//!   execution via [`DataStream::pipelined`] and
//!   [`DataStream::split_merge_parallel`], built on crossbeam channels;
//! * **fault tolerance**: operator panics are caught and propagated as
//!   typed poison elements ([`fault`]), runs can be retried under a
//!   [`Supervisor`] policy, and the
//!   [`chaos`] harness injects faults to prove it all works.
//!
//! ```
//! use icewafl_stream::prelude::*;
//! use icewafl_types::Timestamp;
//!
//! let out = DataStream::from_vec(vec![3i64, 1, 2])
//!     .map(|x| x * 10)
//!     .sort_by_event_time(|x| Timestamp(*x))
//!     .collect()
//!     .unwrap();
//! assert_eq!(out, vec![10, 20, 30]);
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod checkpoint;
pub mod control;
pub mod element;
pub mod fault;
pub mod keyed;
pub mod metrics;
pub mod net;
pub mod operator;
pub mod sink;
pub mod sort;
pub mod source;
pub mod stage;
pub mod stream;
pub mod supervisor;
pub mod watermark;
pub mod window;

pub use chaos::{ChaosConfig, ChaosOperator, ChaosSource, CHAOS_PANIC_MARKER};
pub use checkpoint::{
    CheckpointBarrier, CheckpointCoordinator, CheckpointFrame, CheckpointStore, ReplayBuffer,
    StateSnapshot, WatermarkGenState,
};
pub use control::{ControlChannel, ControlSubscriber};
pub use element::StreamElement;
pub use fault::{FailureCell, FailureKind, PipelineError, StageError};
pub use metrics::{ChannelMetrics, ChaosMetrics, SorterMetrics, StageMetrics};
pub use net::{
    FrameReader, FrameWriter, NetError, NetErrorCell, NetPoll, NetSink, NetSource, WireFormat,
    WireFrame,
};
pub use operator::{Collector, Operator};
pub use sink::{CountSink, FnSink, NullSink, SharedVecSink, Sink};
pub use sort::{EventTimeSorter, SorterStateCodec};
pub use source::{GenSource, IterSource, Source, VecSource};
pub use stream::{DataStream, SubPipelineBuilder};
pub use supervisor::{Supervisor, SupervisorPolicy};
pub use watermark::WatermarkStrategy;
pub use window::{MicroBatcher, TumblingWindow, WindowPane};

/// Everything needed to build and run pipelines.
pub mod prelude {
    pub use crate::chaos::{ChaosConfig, ChaosOperator, ChaosSource};
    pub use crate::control::{ControlChannel, ControlSubscriber};
    pub use crate::element::StreamElement;
    pub use crate::fault::{FailureKind, PipelineError, StageError};
    pub use crate::operator::{Collector, Operator};
    pub use crate::sink::{CountSink, FnSink, NullSink, SharedVecSink, Sink};
    pub use crate::source::{GenSource, IterSource, Source, VecSource};
    pub use crate::stream::{DataStream, SubPipelineBuilder};
    pub use crate::supervisor::{Supervisor, SupervisorPolicy};
    pub use crate::watermark::WatermarkStrategy;
}
