//! # icewafl-stream
//!
//! A miniature stream-processing framework — the Apache Flink substitute
//! of the Icewafl reproduction.
//!
//! The original Icewafl is a library of Flink operators; everything it
//! needs from Flink is provided here, from scratch:
//!
//! * typed, stateful [`Operator`]s with event-time
//!   [watermark](watermark::WatermarkStrategy) callbacks;
//! * a fluent, lazily composed [`DataStream`] pipeline API with
//!   `map`/`filter`/`flat_map`/keyed-process/sort/window combinators;
//! * stream **union** with per-input watermark merging and **fan-out**
//!   into (overlapping) sub-pipelines
//!   ([`DataStream::split_merge`]) — the substrate for Icewafl's
//!   integration scenarios (paper §2.2.2, Algorithm 1);
//! * a deterministic single-threaded executor plus thread-parallel
//!   execution via [`DataStream::pipelined`] and
//!   [`DataStream::split_merge_parallel`], built on crossbeam channels.
//!
//! ```
//! use icewafl_stream::prelude::*;
//! use icewafl_types::Timestamp;
//!
//! let out = DataStream::from_vec(vec![3i64, 1, 2])
//!     .map(|x| x * 10)
//!     .sort_by_event_time(|x| Timestamp(*x))
//!     .collect();
//! assert_eq!(out, vec![10, 20, 30]);
//! ```

#![warn(missing_docs)]

pub mod element;
pub mod keyed;
pub mod metrics;
pub mod operator;
pub mod sink;
pub mod sort;
pub mod source;
pub mod stage;
pub mod stream;
pub mod watermark;
pub mod window;

pub use element::StreamElement;
pub use metrics::{ChannelMetrics, SorterMetrics, StageMetrics};
pub use operator::{Collector, Operator};
pub use sink::{CountSink, FnSink, NullSink, SharedVecSink, Sink};
pub use sort::EventTimeSorter;
pub use source::{GenSource, IterSource, Source, VecSource};
pub use stream::{DataStream, SubPipelineBuilder};
pub use watermark::WatermarkStrategy;
pub use window::{MicroBatcher, TumblingWindow, WindowPane};

/// Everything needed to build and run pipelines.
pub mod prelude {
    pub use crate::element::StreamElement;
    pub use crate::operator::{Collector, Operator};
    pub use crate::sink::{CountSink, FnSink, NullSink, SharedVecSink, Sink};
    pub use crate::source::{GenSource, IterSource, Source, VecSource};
    pub use crate::stream::{DataStream, SubPipelineBuilder};
    pub use crate::watermark::WatermarkStrategy;
}
