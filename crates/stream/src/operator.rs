//! The operator abstraction and the basic stateless operators.

use icewafl_types::Timestamp;

/// Receives the records an operator emits.
///
/// Operators never talk to channels or downstream stages directly — they
/// emit through a `Collector`, which keeps them testable in isolation
/// (collect into a `Vec`) and lets the runtime decide where records go.
pub trait Collector<T> {
    /// Emits one record downstream.
    fn collect(&mut self, record: T);
}

impl<T> Collector<T> for Vec<T> {
    fn collect(&mut self, record: T) {
        self.push(record);
    }
}

/// A (possibly stateful) stream transformation from `In` records to `Out`
/// records.
///
/// An operator may emit zero, one, or many records per input — that is
/// exactly the freedom Icewafl's temporal polluters need (a *dropped
/// tuple* emits zero, a *duplicate* emits two, a *delayed tuple* emits
/// later, from [`on_watermark`](Operator::on_watermark)).
///
/// The runtime forwards watermarks and the end marker downstream *after*
/// the respective callback, so operators only need to flush state they
/// hold back.
pub trait Operator<In, Out>: Send {
    /// Processes one input record.
    fn on_element(&mut self, record: In, out: &mut dyn Collector<Out>);

    /// Processes a batch of consecutive records (see
    /// [`StreamElement::Batch`](crate::StreamElement::Batch)). The
    /// default delegates to [`on_element`](Operator::on_element) per
    /// record; stateful operators override it to amortize per-batch
    /// work (e.g. taking a lock once instead of once per record). The
    /// override must emit exactly what the element-wise default would.
    fn on_batch(&mut self, batch: Vec<In>, out: &mut dyn Collector<Out>) {
        for record in batch {
            self.on_element(record, out);
        }
    }

    /// Called when the event-time watermark advances to `wm`. Operators
    /// holding back records release everything with event time `≤ wm`
    /// here.
    fn on_watermark(&mut self, wm: Timestamp, out: &mut dyn Collector<Out>) {
        let _ = (wm, out);
    }

    /// Called when a [`CheckpointBarrier`] passes through this
    /// operator: at that instant the operator has processed exactly the
    /// records preceding the barrier, so stateful operators contribute
    /// their snapshot via [`CheckpointBarrier::contribute`]. Barriers
    /// never emit records — that would break the pre/post-barrier
    /// partitioning the snapshot relies on. The default ignores the
    /// barrier (stateless operators need nothing).
    ///
    /// [`CheckpointBarrier`]: crate::checkpoint::CheckpointBarrier
    /// [`CheckpointBarrier::contribute`]: crate::checkpoint::CheckpointBarrier::contribute
    fn on_barrier(&mut self, barrier: &crate::checkpoint::CheckpointBarrier) {
        let _ = barrier;
    }

    /// Called once when the input is exhausted; flush any remaining
    /// state.
    fn on_end(&mut self, out: &mut dyn Collector<Out>) {
        let _ = out;
    }

    /// A short name for diagnostics.
    fn name(&self) -> &'static str {
        "operator"
    }
}

/// 1:1 record transformation.
pub struct MapOperator<F> {
    f: F,
}

impl<F> MapOperator<F> {
    /// Wraps a mapping function.
    pub fn new(f: F) -> Self {
        MapOperator { f }
    }
}

impl<In, Out, F> Operator<In, Out> for MapOperator<F>
where
    F: FnMut(In) -> Out + Send,
{
    fn on_element(&mut self, record: In, out: &mut dyn Collector<Out>) {
        out.collect((self.f)(record));
    }

    fn name(&self) -> &'static str {
        "map"
    }
}

/// Keeps records matching a predicate.
pub struct FilterOperator<F> {
    predicate: F,
}

impl<F> FilterOperator<F> {
    /// Wraps a predicate.
    pub fn new(predicate: F) -> Self {
        FilterOperator { predicate }
    }
}

impl<T, F> Operator<T, T> for FilterOperator<F>
where
    F: FnMut(&T) -> bool + Send,
{
    fn on_element(&mut self, record: T, out: &mut dyn Collector<T>) {
        if (self.predicate)(&record) {
            out.collect(record);
        }
    }

    fn name(&self) -> &'static str {
        "filter"
    }
}

/// 1:n record transformation; the function emits through the collector.
pub struct FlatMapOperator<F> {
    f: F,
}

impl<F> FlatMapOperator<F> {
    /// Wraps an emitting function.
    pub fn new(f: F) -> Self {
        FlatMapOperator { f }
    }
}

impl<In, Out, F> Operator<In, Out> for FlatMapOperator<F>
where
    F: FnMut(In, &mut dyn Collector<Out>) + Send,
{
    fn on_element(&mut self, record: In, out: &mut dyn Collector<Out>) {
        (self.f)(record, out);
    }

    fn name(&self) -> &'static str {
        "flat_map"
    }
}

/// Observes records without changing them (for logging / counting).
pub struct InspectOperator<F> {
    f: F,
}

impl<F> InspectOperator<F> {
    /// Wraps an observer function.
    pub fn new(f: F) -> Self {
        InspectOperator { f }
    }
}

impl<T, F> Operator<T, T> for InspectOperator<F>
where
    F: FnMut(&T) + Send,
{
    fn on_element(&mut self, record: T, out: &mut dyn Collector<T>) {
        (self.f)(&record);
        out.collect(record);
    }

    fn name(&self) -> &'static str {
        "inspect"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<O: Operator<i32, i32>>(op: &mut O, input: &[i32]) -> Vec<i32> {
        let mut out = Vec::new();
        for &x in input {
            op.on_element(x, &mut out);
        }
        op.on_end(&mut out);
        out
    }

    #[test]
    fn map_transforms_every_record() {
        let mut op = MapOperator::new(|x: i32| x * 2);
        assert_eq!(drive(&mut op, &[1, 2, 3]), vec![2, 4, 6]);
        assert_eq!(Operator::<i32, i32>::name(&op), "map");
    }

    #[test]
    fn filter_keeps_matching() {
        let mut op = FilterOperator::new(|x: &i32| x % 2 == 0);
        assert_eq!(drive(&mut op, &[1, 2, 3, 4]), vec![2, 4]);
    }

    #[test]
    fn flat_map_can_emit_zero_or_many() {
        let mut op = FlatMapOperator::new(|x: i32, out: &mut dyn Collector<i32>| {
            for _ in 0..x {
                out.collect(x);
            }
        });
        assert_eq!(drive(&mut op, &[0, 1, 3]), vec![1, 3, 3, 3]);
    }

    #[test]
    fn inspect_observes_without_change() {
        let mut seen = Vec::new();
        let mut out = Vec::new();
        let mut op = InspectOperator::new(|x: &i32| seen.push(*x));
        op.on_element(7, &mut out);
        op.on_element(8, &mut out);
        let _ = op;
        assert_eq!(seen, vec![7, 8]);
        assert_eq!(out, vec![7, 8]);
    }

    #[test]
    fn default_watermark_and_end_are_noops() {
        struct Identity;
        impl Operator<i32, i32> for Identity {
            fn on_element(&mut self, r: i32, out: &mut dyn Collector<i32>) {
                out.collect(r);
            }
        }
        let mut op = Identity;
        let mut out = Vec::new();
        op.on_watermark(Timestamp(5), &mut out);
        op.on_end(&mut out);
        assert!(out.is_empty());
        assert_eq!(op.name(), "operator");
    }
}
