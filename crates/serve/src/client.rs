//! A blocking client for one serve session — the reference
//! implementation of the protocol's client side, used by the bench
//! harness, the integration tests, and the CI smoke step.
//!
//! [`run_session`] connects, handshakes, then **writes and reads
//! concurrently**: a writer thread streams the input tuples while the
//! calling thread drains polluted tuples. Concurrent draining matters —
//! the server applies backpressure, so a client that writes its whole
//! stream before reading deadlocks against TCP flow control once the
//! stream outgrows the kernel socket buffers.

use crate::protocol::{
    coerce_tuple, decode_server_frame, encode_end_frame, encode_tuple_columns_frame,
    encode_tuple_frame, Handshake, HandshakeReply, ServerEvent, SessionErrorFrame, TelemetryFrame,
};
use icewafl_core::report::RunReport;
use icewafl_stream::net::{FrameReader, FrameWriter, NetError, WireFormat, WireFrame};
use icewafl_types::Schema;
use icewafl_types::{StampedTuple, Tuple};
use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::time::Duration;

/// Tuples per columnar upload frame on binary sessions: large enough
/// to amortize framing and decode dispatch, small enough that a frame
/// stays far under the server's per-frame cap.
const UPLOAD_BATCH: usize = 512;

/// Splits `tuples` into chunks of at most `max` where every tuple in a
/// chunk has the same arity — the invariant columnar frames require.
fn uniform_arity_chunks(tuples: &[Tuple], max: usize) -> impl Iterator<Item = &[Tuple]> {
    let mut rest = tuples;
    std::iter::from_fn(move || {
        let first = rest.first()?;
        let arity = first.values().len();
        let len = rest
            .iter()
            .take(max)
            .take_while(|t| t.values().len() == arity)
            .count();
        let (run, tail) = rest.split_at(len);
        rest = tail;
        Some(run)
    })
}

/// Client-side knobs for [`run_session`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address, e.g. `127.0.0.1:7341`.
    pub addr: String,
    /// The handshake to open with (plan, schema, format).
    pub handshake: Handshake,
    /// Sleep this long after each received tuple — simulates a slow
    /// reader to exercise server-side backpressure.
    pub slow_reader: Option<Duration>,
    /// Per-frame size cap for server frames.
    pub max_frame_bytes: usize,
}

impl ClientConfig {
    /// A config for `addr` with the given handshake and defaults
    /// otherwise.
    pub fn new(addr: impl Into<String>, handshake: Handshake) -> Self {
        ClientConfig {
            addr: addr.into(),
            handshake,
            slow_reader: None,
            max_frame_bytes: icewafl_stream::net::DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

/// Everything one session produced.
#[derive(Debug)]
pub struct SessionOutcome {
    /// The server's handshake reply. When `reply.ok` is false the
    /// session was rejected and the other fields are empty.
    pub reply: HandshakeReply,
    /// Polluted tuples received, in arrival order.
    pub tuples: Vec<StampedTuple>,
    /// The final run report — present iff the session completed.
    pub report: Option<RunReport>,
    /// The typed session error — present iff the session failed
    /// server-side.
    pub error: Option<SessionErrorFrame>,
}

impl SessionOutcome {
    /// `true` when the session was accepted and ran to a report.
    pub fn completed(&self) -> bool {
        self.reply.ok && self.report.is_some()
    }
}

/// Runs one full session: connect, handshake, stream `tuples`, drain
/// the polluted stream until the report (or error) frame.
///
/// Transport-level failures — the server vanishing, undecodable frames
/// — surface as `Err`; a *session* failure the server reports cleanly
/// arrives as `Ok` with [`SessionOutcome::error`] set.
pub fn run_session(config: &ClientConfig, tuples: Vec<Tuple>) -> Result<SessionOutcome, NetError> {
    let stream = TcpStream::connect(&config.addr).map_err(|e| NetError::from_io(&e))?;
    let _ = stream.set_nodelay(true);
    let write_stream = stream.try_clone().map_err(|e| NetError::from_io(&e))?;

    // Handshake line out, reply line in — both NDJSON.
    {
        let mut hs_writer = FrameWriter::new(&write_stream, WireFormat::Ndjson);
        let line = serde_json::to_string(&config.handshake)
            .expect("protocol frames are always serializable");
        hs_writer.write(&WireFrame::Line(line))?;
        hs_writer.flush()?;
    }
    let mut reader = FrameReader::new(
        BufReader::new(stream),
        WireFormat::Ndjson,
        config.max_frame_bytes,
    );
    let reply: HandshakeReply = match reader.read()? {
        Some(WireFrame::Line(line)) => serde_json::from_str(&line)
            .map_err(|e| NetError::malformed(format!("bad handshake reply: {e}")))?,
        Some(WireFrame::Binary { .. }) => {
            return Err(NetError::malformed("binary frame before handshake reply"))
        }
        None => return Err(NetError::Disconnected),
    };
    if !reply.ok {
        return Ok(SessionOutcome {
            reply,
            tuples: Vec::new(),
            report: None,
            error: None,
        });
    }

    let format = config
        .handshake
        .wire_format()
        .map_err(NetError::malformed)?;

    // Writer thread: stream the input and the end marker. Write errors
    // are swallowed — if the server killed the session, the interesting
    // signal is the error frame (or disconnect) the reader sees. A
    // `subscribe` session sends nothing after its handshake: the data
    // comes from the publisher it attached to.
    let subscriber = config.handshake.session.as_deref() == Some("subscribe");
    let writer_thread = (!subscriber).then(|| {
        std::thread::spawn(move || {
            let mut writer = FrameWriter::new(BufWriter::new(write_stream), format);
            if format == WireFormat::Binary {
                // Columnar upload: one frame per run of same-arity
                // tuples, so the server decodes a batch at a time
                // instead of 5 header bytes + one payload per tuple.
                for run in uniform_arity_chunks(&tuples, UPLOAD_BATCH) {
                    let frame = if run.len() >= 2 {
                        encode_tuple_columns_frame(run)
                    } else {
                        encode_tuple_frame(&run[0], format)
                    };
                    if writer.write(&frame).is_err() {
                        return;
                    }
                }
            } else {
                for tuple in &tuples {
                    if writer.write(&encode_tuple_frame(tuple, format)).is_err() {
                        return;
                    }
                }
            }
            let _ = writer.write(&encode_end_frame(format));
            let _ = writer.flush();
        })
    });

    // Reader: drain the session to its tail frame. Over NDJSON the
    // value encoding is untagged, so received payloads are coerced back
    // to the session schema's column types when the client knows it.
    let schema = session_schema(&config.handshake).filter(|_| format == WireFormat::Ndjson);
    let mut reader = FrameReader::new(reader.into_inner(), format, config.max_frame_bytes);
    let mut outcome = SessionOutcome {
        reply,
        tuples: Vec::new(),
        report: None,
        error: None,
    };
    let result = loop {
        match reader.read() {
            Ok(Some(frame)) => match decode_server_frame(frame) {
                Ok(ServerEvent::Tuple(mut t)) => {
                    if let Some(schema) = &schema {
                        t.tuple = coerce_tuple(schema, t.tuple);
                    }
                    outcome.tuples.push(t);
                    if let Some(pause) = config.slow_reader {
                        std::thread::sleep(pause);
                    }
                }
                // Columnar frames arrive only on binary sessions, whose
                // typed codec never needs schema coercion.
                Ok(ServerEvent::Batch(batch)) => {
                    outcome.tuples.extend(batch);
                    if let Some(pause) = config.slow_reader {
                        std::thread::sleep(pause);
                    }
                }
                Ok(ServerEvent::Report(report)) => {
                    outcome.report = Some(*report);
                    break Ok(());
                }
                Ok(ServerEvent::Error(error)) => {
                    outcome.error = Some(error);
                    break Ok(());
                }
                Ok(ServerEvent::Telemetry(_)) => {
                    break Err(NetError::malformed("telemetry frame in a pollute session"))
                }
                Err(e) => break Err(e),
            },
            // The server closing without a tail frame is itself a
            // protocol violation worth surfacing.
            Ok(None) => break Err(NetError::Disconnected),
            Err(e) => break Err(e),
        }
    };
    if let Some(writer_thread) = writer_thread {
        let _ = writer_thread.join();
    }
    result.map(|()| outcome)
}

/// Subscribes to a server's telemetry stream and collects up to
/// `max_frames` [`TelemetryFrame`]s (a `max_frames` of 0 reads until the
/// server closes the stream — i.e. until it drains).
///
/// This is the client side of the `telemetry` session type: handshake
/// with `session: "telemetry"`, then read frames; nothing is ever sent
/// after the handshake. Both wire formats work; `format` defaults to
/// NDJSON when `None`.
pub fn subscribe_telemetry(
    addr: &str,
    format: Option<WireFormat>,
    max_frames: usize,
) -> Result<Vec<TelemetryFrame>, NetError> {
    let mut frames = Vec::new();
    watch_telemetry(addr, format, max_frames, |f| frames.push(f.clone()))?;
    Ok(frames)
}

/// Connect attempts [`connect_with_retry`] makes before giving up.
const CONNECT_ATTEMPTS: u32 = 5;
/// Backoff before the second connect attempt; doubles per attempt.
const CONNECT_BACKOFF_BASE: Duration = Duration::from_millis(100);
/// Upper bound on the per-attempt connect backoff.
const CONNECT_BACKOFF_MAX: Duration = Duration::from_millis(800);

/// Bounded TCP connect with exponential backoff: up to
/// [`CONNECT_ATTEMPTS`] tries, sleeping `min(base · 2^(n−1), max)`
/// between them. This is what lets `icewafl top` be started *before*
/// (or concurrently with) the server it watches instead of failing
/// hard on the first refused connection; after the final attempt the
/// last error surfaces unchanged.
fn connect_with_retry(addr: &str) -> Result<TcpStream, NetError> {
    let mut backoff = CONNECT_BACKOFF_BASE;
    let mut last = None;
    for attempt in 0..CONNECT_ATTEMPTS {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(CONNECT_BACKOFF_MAX);
        }
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(NetError::from_io(&e)),
        }
    }
    Err(last.unwrap_or(NetError::Disconnected))
}

/// [`subscribe_telemetry`], streaming: `on_frame` runs on each
/// [`TelemetryFrame`] *as it arrives* instead of buffering the whole
/// stream. This is what `icewafl top` renders from. Returns the number
/// of frames observed.
///
/// The initial connect retries with bounded backoff (5 attempts,
/// 100 ms doubling to an 800 ms cap), so `icewafl top` started
/// moments before its server still attaches.
pub fn watch_telemetry(
    addr: &str,
    format: Option<WireFormat>,
    max_frames: usize,
    mut on_frame: impl FnMut(&TelemetryFrame),
) -> Result<u64, NetError> {
    let stream = connect_with_retry(addr)?;
    let _ = stream.set_nodelay(true);
    let format = format.unwrap_or_default();
    {
        let handshake = Handshake {
            session: Some("telemetry".into()),
            format: Some(format.as_str().into()),
            ..Handshake::default()
        };
        let mut hs_writer = FrameWriter::new(&stream, WireFormat::Ndjson);
        let line =
            serde_json::to_string(&handshake).expect("protocol frames are always serializable");
        hs_writer.write(&WireFrame::Line(line))?;
        hs_writer.flush()?;
    }
    let mut reader = FrameReader::new(
        BufReader::new(stream),
        WireFormat::Ndjson,
        icewafl_stream::net::DEFAULT_MAX_FRAME_BYTES,
    );
    let reply: HandshakeReply = match reader.read()? {
        Some(WireFrame::Line(line)) => serde_json::from_str(&line)
            .map_err(|e| NetError::malformed(format!("bad handshake reply: {e}")))?,
        Some(WireFrame::Binary { .. }) => {
            return Err(NetError::malformed("binary frame before handshake reply"))
        }
        None => return Err(NetError::Disconnected),
    };
    if !reply.ok {
        return Err(NetError::malformed(format!(
            "telemetry session rejected: {}",
            reply.error.unwrap_or_default()
        )));
    }
    let mut reader = FrameReader::new(
        reader.into_inner(),
        format,
        icewafl_stream::net::DEFAULT_MAX_FRAME_BYTES,
    );
    let mut seen: u64 = 0;
    loop {
        match reader.read()? {
            Some(frame) => match decode_server_frame(frame)? {
                ServerEvent::Telemetry(f) => {
                    seen += 1;
                    on_frame(&f);
                    if max_frames > 0 && seen >= max_frames as u64 {
                        return Ok(seen);
                    }
                }
                other => {
                    return Err(NetError::malformed(format!(
                        "unexpected frame in a telemetry session: {other:?}"
                    )))
                }
            },
            // Server drained: a clean end of the telemetry stream.
            None => return Ok(seen),
        }
    }
}

/// The schema this handshake will run under, when the client can tell:
/// inline schemas verbatim, built-in names resolved the same way the
/// server resolves them.
fn session_schema(hs: &Handshake) -> Option<Schema> {
    if let Some(schema) = &hs.schema_inline {
        return Some(schema.clone());
    }
    match hs.schema.as_deref() {
        Some("wearable") => Some(icewafl_data::wearable::schema()),
        Some("airquality") => Some(icewafl_data::airquality::schema()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn connect_retry_attaches_to_a_late_binding_server() {
        // Reserve a port, release it, then re-bind it only after the
        // client has already failed its first connect attempt(s).
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let server = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(250));
            let listener = TcpListener::bind(addr).unwrap();
            let _conn = listener.accept().unwrap();
        });
        let stream = connect_with_retry(&addr.to_string()).expect("late server still reachable");
        drop(stream);
        server.join().unwrap();
    }

    #[test]
    fn connect_retry_is_bounded() {
        // A port nothing ever listens on: the retry loop must give up
        // with the underlying error instead of spinning forever.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);
        let start = std::time::Instant::now();
        let err = connect_with_retry(&addr).unwrap_err();
        assert!(matches!(err, NetError::Io { .. } | NetError::Disconnected));
        // 4 backoffs of at most 100+200+400+800 ms, plus connect time.
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "gave up in bounded time"
        );
    }
}
