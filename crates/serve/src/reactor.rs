//! The event-driven session core (Linux).
//!
//! One [`Poller`] (epoll) watches every connection; a worker pool sized
//! to cores drives per-connection state machines through the phases
//!
//! ```text
//! accept → Handshake → Ingest → (execute) → Drain → close
//!                    ↘ telemetry hand-off (interval thread)
//!                    ↘ Subscribe ————————————————↗
//!                    ↘ Closing (rejections)
//! ```
//!
//! Every registration is one-shot: a readiness event parks the socket
//! until the worker that handled it re-arms, so at most one worker ever
//! drives a given connection and the per-connection mutex is
//! uncontended on the hot path. A slow reader parks its state machine
//! on `EPOLLOUT` instead of blocking a thread — backpressure costs a
//! heap-side write queue per session, never a stalled worker.
//!
//! The engine itself is fill-then-drain (sources are consumed fully
//! before output flows), so the session machine buffers the decoded
//! input and, on the end frame, runs the *identical* offline execution
//! path (`PhysicalPlan::execute_streaming` over a `VecSource`). Served
//! output is byte-identical to offline by construction, not by a
//! parallel re-implementation.
//!
//! Shared streams: a `pollute` session with a `stream` name publishes
//! its encoded output frames (`Arc<[u8]>`) into a hub; `subscribe`
//! sessions naming the same stream get the same buffers cloned into
//! their write queues — encode once, fan out to every session sharing
//! the plan.

#![cfg(target_os = "linux")]

use crate::poll::{Poller, EPOLLIN, EPOLLOUT};
use crate::protocol::{
    coerce_tuple, decode_client_frame, encode_columns_frame, encode_error_frame,
    encode_report_frame, encode_stamped_frame, Handshake, HandshakeReply, SessionErrorFrame,
};
use crate::server::{run_telemetry_session, HubState, Server, SessionHandles, Shared};
use icewafl_core::plan::PhysicalPlan;
use icewafl_stream::net::{
    frame_bytes, FrameDecoder, NetError, NetPoll, WireFormat, WireFrame, WriteQueue,
};
use icewafl_stream::sink::Sink;
use icewafl_stream::source::VecSource;
use icewafl_types::{Error, Result, Schema, StampedTuple, Tuple};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::net::TcpStream;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The listener's epoll token; session ids start at 1.
const LISTENER_TOKEN: u64 = 0;

/// How long one `epoll_wait` may park before shutdown/SIGINT is
/// re-checked.
const POLL_TIMEOUT_MS: i32 = 25;

/// Connection-table shards (token-hashed) so session churn never
/// contends on one map lock.
const CONN_SHARDS: usize = 16;

/// Read chunk per `read(2)` call.
const READ_CHUNK: usize = 64 * 1024;

/// Per-drive read budget: a firehose client yields the worker back to
/// the pool after this many bytes (its socket re-arms immediately).
const READ_BUDGET: usize = 1 << 20;

/// Outbox high-water mark: drains pause encoding while this many bytes
/// are already queued, so a parked slow reader holds one window of
/// encoded frames, not its whole output stream.
const OUTBOX_HIGH: usize = 256 * 1024;

/// Sample 1-in-N encodes for the `encode_ns` telemetry counter.
const ENCODE_SAMPLE_MASK: u64 = 63;

/// What a session ultimately was, counted once at close.
enum SessionResult {
    Completed,
    Failed { protocol: bool },
}

/// Lifecycle phase of one connection's state machine.
enum Phase {
    /// Waiting for the one NDJSON handshake line.
    Handshake,
    /// Decoding data frames into the input buffer until the end frame.
    Ingest,
    /// Encoding output units / the tail frame into the outbox.
    Drain,
    /// Pulling pre-serialized frames from a shared-stream hub.
    Subscribe,
    /// Nothing left to produce: flush the outbox, then close.
    Closing,
    /// Closed (or handed off to a telemetry thread); terminal.
    Closed,
}

/// Live counter cells shared with the session-table row.
struct ConnCounters {
    frames_in: Arc<std::sync::atomic::AtomicU64>,
    frames_out: Arc<std::sync::atomic::AtomicU64>,
    bytes_out: Arc<std::sync::atomic::AtomicU64>,
    encode_ns: Arc<std::sync::atomic::AtomicU64>,
    blocked_write_ns: Arc<std::sync::atomic::AtomicU64>,
}

impl ConnCounters {
    fn new() -> Self {
        let zero = || Arc::new(std::sync::atomic::AtomicU64::new(0));
        ConnCounters {
            frames_in: zero(),
            frames_out: zero(),
            bytes_out: zero(),
            encode_ns: zero(),
            blocked_write_ns: zero(),
        }
    }

    fn handles(&self, kind: &'static str, format: WireFormat, repr: String) -> SessionHandles {
        SessionHandles {
            kind,
            format: format.as_str(),
            repr,
            frames_in: Arc::clone(&self.frames_in),
            frames_out: Arc::clone(&self.frames_out),
            bytes_out: Arc::clone(&self.bytes_out),
            encode_ns: Arc::clone(&self.encode_ns),
            blocked_write_ns: Arc::clone(&self.blocked_write_ns),
        }
    }
}

/// One connection's full state. Only ever touched under its slot mutex.
struct Conn {
    id: u64,
    sock: TcpStream,
    decoder: FrameDecoder,
    outbox: WriteQueue,
    phase: Phase,
    format: WireFormat,
    /// Session schema for NDJSON value coercion (`None` on binary).
    coerce_schema: Option<Schema>,
    plan: Option<PhysicalPlan>,
    input: Vec<Tuple>,
    /// Output units not yet encoded: singletons or whole batches, in
    /// emission order (mirrors the `NetSink` framing rules).
    units: VecDeque<Vec<StampedTuple>>,
    /// The encoded tail frame (report or error), queued after `units`.
    tail: Option<Arc<[u8]>>,
    /// Whether this connection holds a capacity slot.
    counts_active: bool,
    /// Registered in the session table (row removed at close).
    in_table: bool,
    counters: ConnCounters,
    /// Hub this session publishes to (pollute + `stream`).
    publish: Option<Arc<Mutex<HubState>>>,
    /// Hub this session subscribes to, plus its read cursor.
    subscribe: Option<(Arc<Mutex<HubState>>, usize)>,
    /// Stream name for hub-map cleanup at close.
    stream_name: Option<String>,
    /// Set when parked on a full socket; elapsed time lands in
    /// `blocked_write_ns` on the next drive.
    blocked_since: Option<Instant>,
    result: Option<SessionResult>,
    frames_encoded: u64,
}

impl Conn {
    fn new(id: u64, sock: TcpStream, max_frame: usize, counts_active: bool) -> Self {
        Conn {
            id,
            sock,
            decoder: FrameDecoder::new(WireFormat::Ndjson, max_frame),
            outbox: WriteQueue::new(),
            phase: Phase::Handshake,
            format: WireFormat::Ndjson,
            coerce_schema: None,
            plan: None,
            input: Vec::new(),
            units: VecDeque::new(),
            tail: None,
            counts_active,
            in_table: false,
            counters: ConnCounters::new(),
            publish: None,
            subscribe: None,
            stream_name: None,
            blocked_since: None,
            result: None,
            frames_encoded: 0,
        }
    }

    fn queue_line<T: serde::Serialize>(&mut self, value: &T) {
        let line = serde_json::to_string(value).expect("protocol frames are always serializable");
        self.outbox.push(Arc::from(
            frame_bytes(&WireFrame::Line(line)).into_boxed_slice(),
        ));
    }
}

/// A connection slot: the raw fd (stable, readable without the lock)
/// plus the state machine.
struct Slot {
    fd: RawFd,
    conn: Mutex<Conn>,
}

/// A tiny blocking work queue (tokens → workers). `std::sync::Condvar`
/// because the vendored `parking_lot` has no condvar; this lock is held
/// for queue ops only, never across a drive.
struct WorkQueue {
    state: std::sync::Mutex<(VecDeque<u64>, bool)>,
    ready: std::sync::Condvar,
}

impl WorkQueue {
    fn new() -> Self {
        WorkQueue {
            state: std::sync::Mutex::new((VecDeque::new(), false)),
            ready: std::sync::Condvar::new(),
        }
    }

    fn push(&self, token: u64) {
        let mut state = self.state.lock().unwrap();
        state.0.push_back(token);
        drop(state);
        self.ready.notify_one();
    }

    fn close(&self) {
        self.state.lock().unwrap().1 = true;
        self.ready.notify_all();
    }

    /// Blocks for the next token; `None` once closed and empty.
    fn pop(&self) -> Option<u64> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(token) = state.0.pop_front() {
                return Some(token);
            }
            if state.1 {
                return None;
            }
            state = self.ready.wait(state).unwrap();
        }
    }
}

/// Everything the poller thread and the workers share.
struct Reactor {
    poller: Poller,
    shared: Arc<Shared>,
    conns: Vec<Mutex<HashMap<u64, Arc<Slot>>>>,
    conn_count: AtomicUsize,
    queue: WorkQueue,
    telemetry_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Reactor {
    fn shard(&self, token: u64) -> &Mutex<HashMap<u64, Arc<Slot>>> {
        &self.conns[(token as usize) % CONN_SHARDS]
    }

    fn slot(&self, token: u64) -> Option<Arc<Slot>> {
        self.shard(token).lock().get(&token).map(Arc::clone)
    }

    fn insert(&self, token: u64, slot: Arc<Slot>) {
        self.shard(token).lock().insert(token, slot);
        self.conn_count.fetch_add(1, Ordering::SeqCst);
    }

    fn remove(&self, token: u64) {
        if self.shard(token).lock().remove(&token).is_some() {
            self.conn_count.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Wakes a parked subscriber so it pulls newly published frames.
    /// The target's lock is held across the re-arm so the fd cannot be
    /// closed (and its number reused) mid-kick.
    fn kick(&self, token: u64) {
        if let Some(slot) = self.slot(token) {
            let conn = slot.conn.lock();
            if !matches!(conn.phase, Phase::Closed) {
                let _ = self.poller.rearm(slot.fd, token, EPOLLIN | EPOLLOUT);
            }
        }
    }
}

/// The server's event loop: accepts, polls, dispatches to workers,
/// drains on shutdown. Runs on the thread that called [`Server::run`].
pub(crate) fn run(server: &Server) -> Result<()> {
    let shared = server.shared_arc();
    let poller = Poller::new()
        .map_err(|e| Error::config(format_args!("cannot create the event poller: {e}")))?;
    let listener = server.listener();
    poller
        .register_level(listener.as_raw_fd(), LISTENER_TOKEN, EPOLLIN)
        .map_err(|e| Error::config(format_args!("cannot register the listener: {e}")))?;

    let workers = match shared.workers {
        0 => std::thread::available_parallelism().map_or(4, |n| n.get()),
        n => n,
    };
    let rt = Arc::new(Reactor {
        poller,
        shared: Arc::clone(&shared),
        conns: (0..CONN_SHARDS)
            .map(|_| Mutex::new(HashMap::new()))
            .collect(),
        conn_count: AtomicUsize::new(0),
        queue: WorkQueue::new(),
        telemetry_threads: Mutex::new(Vec::new()),
    });
    let worker_threads: Vec<_> = (0..workers)
        .map(|i| {
            let rt = Arc::clone(&rt);
            std::thread::Builder::new()
                .name(format!("icewafl-worker-{i}"))
                .spawn(move || {
                    while let Some(token) = rt.queue.pop() {
                        if let Some(slot) = rt.slot(token) {
                            drive(&rt, &slot, token);
                        }
                    }
                })
                .expect("spawning a reactor worker")
        })
        .collect();

    let mut events = Vec::with_capacity(256);
    let mut draining = false;
    let run_result = loop {
        if !draining && server.stop_requested() {
            draining = true;
            let _ = rt.poller.deregister(listener.as_raw_fd());
            fail_orphan_subscribers(&rt);
        }
        if draining && rt.conn_count.load(Ordering::SeqCst) == 0 {
            break Ok(());
        }
        events.clear();
        if let Err(e) = rt.poller.wait(&mut events, POLL_TIMEOUT_MS) {
            break Err(Error::config(format_args!("event poll failed: {e}")));
        }
        let mut accept_err = None;
        for ev in &events {
            if ev.token == LISTENER_TOKEN {
                if let Err(e) = accept_ready(&rt, server, draining) {
                    accept_err = Some(e);
                }
            } else {
                rt.queue.push(ev.token);
            }
        }
        if let Some(e) = accept_err {
            break Err(e);
        }
    };

    rt.queue.close();
    for handle in worker_threads {
        let _ = handle.join();
    }
    for handle in rt.telemetry_threads.lock().drain(..) {
        let _ = handle.join();
    }
    // Join the sampler thread: after drain the server leaves no
    // background thread behind.
    drop(shared.sampler.lock().take());
    run_result
}

/// Accepts every pending connection (the listener is level-triggered
/// and non-blocking).
fn accept_ready(rt: &Arc<Reactor>, server: &Server, draining: bool) -> Result<()> {
    loop {
        match server.listener().accept() {
            Ok((sock, _peer)) => {
                if !draining {
                    accept_one(rt, server, sock);
                }
                // Mid-drain stragglers are dropped unanswered, exactly
                // like the races the blocking accept loop always had.
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(Error::config(format_args!("accept failed: {e}"))),
        }
    }
}

/// Books one accepted connection in: capacity check, slot insert, epoll
/// registration.
fn accept_one(rt: &Arc<Reactor>, server: &Server, sock: TcpStream) {
    let shared = &rt.shared;
    let id = server.next_session_id();
    shared.counter("serve/connections_total").inc();
    let _ = sock.set_nodelay(true);
    if sock.set_nonblocking(true).is_err() {
        shared.counter("serve/sessions_rejected").inc();
        return;
    }

    let at_capacity = shared.active.load(Ordering::SeqCst) >= shared.max_sessions;
    let mut conn = Conn::new(id, sock, shared.max_frame_bytes, !at_capacity);
    let interest = if at_capacity {
        shared.counter("serve/sessions_rejected").inc();
        conn.queue_line(&HandshakeReply::rejected("server at capacity"));
        conn.phase = Phase::Closing;
        EPOLLOUT
    } else {
        shared.active.fetch_add(1, Ordering::SeqCst);
        shared.registry.gauge("serve/sessions_active").add(1);
        EPOLLIN
    };

    let fd = conn.sock.as_raw_fd();
    let slot = Arc::new(Slot {
        fd,
        conn: Mutex::new(conn),
    });
    // Insert before registering: a worker may get the first event the
    // instant the fd is armed.
    rt.insert(id, Arc::clone(&slot));
    if rt.poller.register(fd, id, interest).is_err() {
        let mut conn = slot.conn.lock();
        close_conn(rt, &mut conn);
    }
}

/// On drain start, sessions subscribed to a stream that never got a
/// publisher would wait forever; fail them so the drain completes.
fn fail_orphan_subscribers(rt: &Arc<Reactor>) {
    let tokens: Vec<u64> = rt
        .conns
        .iter()
        .flat_map(|shard| shard.lock().keys().copied().collect::<Vec<_>>())
        .collect();
    for token in tokens {
        let Some(slot) = rt.slot(token) else { continue };
        let mut conn = slot.conn.lock();
        let orphaned = matches!(conn.phase, Phase::Subscribe)
            && conn
                .subscribe
                .as_ref()
                .is_some_and(|(hub, _)| !hub.lock().has_publisher);
        if orphaned {
            fail_session(
                rt,
                &mut conn,
                "subscribe",
                "disconnect",
                "server drained before a publisher appeared".into(),
                None,
            );
            drive_flush_and_rearm(rt, &slot, &mut conn);
        }
    }
}

// ---------------------------------------------------------------------
// The per-connection drive
// ---------------------------------------------------------------------

/// What a phase step decided.
enum Step {
    /// Phase advanced; run the next phase's step in the same drive.
    Continue,
    /// Park: flush what's queued and re-arm with the phase's interest.
    Park,
    /// The connection is finished (already closed).
    Done,
}

/// Drives one connection as far as it can go without blocking, then
/// flushes and re-arms. The slot mutex is held throughout, so drives,
/// publisher kicks, and closes are mutually serialized per connection.
fn drive(rt: &Arc<Reactor>, slot: &Arc<Slot>, token: u64) {
    let mut conn = slot.conn.lock();
    if matches!(conn.phase, Phase::Closed) {
        return;
    }
    if let Some(parked_at) = conn.blocked_since.take() {
        conn.counters
            .blocked_write_ns
            .fetch_add(parked_at.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
    debug_assert_eq!(conn.id, token);
    loop {
        let step = match conn.phase {
            Phase::Handshake => step_handshake(rt, slot, &mut conn),
            Phase::Ingest => step_ingest(rt, &mut conn),
            Phase::Drain => step_drain(rt, &mut conn),
            Phase::Subscribe => step_subscribe(rt, &mut conn),
            Phase::Closing => Step::Park,
            Phase::Closed => Step::Done,
        };
        match step {
            Step::Continue => continue,
            Step::Park => break,
            Step::Done => return,
        }
    }
    drive_flush_and_rearm(rt, slot, &mut conn);
}

/// Common drive tail: push queued bytes, then close or re-arm.
fn drive_flush_and_rearm(rt: &Arc<Reactor>, slot: &Arc<Slot>, conn: &mut Conn) {
    if matches!(conn.phase, Phase::Closed) {
        return;
    }
    match conn.outbox.write_to(&mut &conn.sock) {
        Ok(true) => {
            if matches!(conn.phase, Phase::Closing) {
                close_conn(rt, conn);
                return;
            }
        }
        Ok(false) => {
            conn.blocked_since = Some(Instant::now());
        }
        Err(_) => {
            // The peer is gone; whatever we still owed it is moot. A
            // session that had completed its plan now counts as failed
            // on the wire (like the sink poison path); one that already
            // failed keeps its original classification.
            if matches!(conn.result, Some(SessionResult::Completed)) {
                conn.result = Some(SessionResult::Failed { protocol: true });
            }
            close_conn(rt, conn);
            return;
        }
    }
    let mut interest = match conn.phase {
        Phase::Handshake | Phase::Ingest => EPOLLIN,
        Phase::Drain | Phase::Closing => EPOLLOUT,
        // Subscribers watch for hangup; EPOLLOUT only while indebted —
        // otherwise a publisher kick re-arms the write side.
        Phase::Subscribe => EPOLLIN,
        Phase::Closed => return,
    };
    if !conn.outbox.is_empty() {
        interest |= EPOLLOUT;
    }
    if rt.poller.rearm(slot.fd, conn.id, interest).is_err() {
        close_conn(rt, conn);
    }
}

/// Reads everything available (up to the drive budget).
struct ReadEnd {
    eof: bool,
    error: Option<NetError>,
}

fn read_available(conn: &mut Conn) -> ReadEnd {
    let mut budget = READ_BUDGET;
    let mut buf = [0u8; READ_CHUNK];
    loop {
        match (&conn.sock).read(&mut buf) {
            Ok(0) => {
                return ReadEnd {
                    eof: true,
                    error: None,
                }
            }
            Ok(n) => {
                conn.decoder.push(&buf[..n]);
                budget = budget.saturating_sub(n);
                if budget == 0 {
                    // Yield the worker; the re-arm reports readiness
                    // again immediately.
                    return ReadEnd {
                        eof: false,
                        error: None,
                    };
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                return ReadEnd {
                    eof: false,
                    error: None,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                return ReadEnd {
                    eof: false,
                    error: Some(NetError::from_io(&e)),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------

fn step_handshake(rt: &Arc<Reactor>, slot: &Arc<Slot>, conn: &mut Conn) -> Step {
    let shared = Arc::clone(&rt.shared);
    let end = read_available(conn);
    let frame = match conn.decoder.next() {
        Ok(Some(frame)) => frame,
        Ok(None) => {
            if end.eof || end.error.is_some() {
                // Disconnected before (or instead of) a handshake line.
                shared.counter("serve/sessions_rejected").inc();
                close_conn(rt, conn);
                return Step::Done;
            }
            return Step::Park;
        }
        Err(e) => {
            shared.counter("serve/protocol_errors").inc();
            shared.counter("serve/sessions_rejected").inc();
            conn.queue_line(&HandshakeReply::rejected(format!("bad handshake: {e}")));
            conn.phase = Phase::Closing;
            return Step::Park;
        }
    };
    let WireFrame::Line(line) = frame else {
        unreachable!("the handshake decoder is NDJSON");
    };
    let hs: Handshake = match serde_json::from_str(&line) {
        Ok(hs) => hs,
        Err(e) => {
            shared.counter("serve/protocol_errors").inc();
            shared.counter("serve/sessions_rejected").inc();
            conn.queue_line(&HandshakeReply::rejected(format!("bad handshake: {e}")));
            conn.phase = Phase::Closing;
            return Step::Park;
        }
    };

    match hs.session.as_deref() {
        None | Some("pollute") => open_pollute(&shared, conn, &hs),
        Some("telemetry") => open_telemetry(rt, &shared, slot, conn, &hs),
        Some("subscribe") => open_subscribe(&shared, conn, &hs),
        Some(other) => {
            shared.counter("serve/sessions_rejected").inc();
            conn.queue_line(&HandshakeReply::rejected(format!(
                "unknown session type `{other}` (expected pollute, subscribe, or telemetry)"
            )));
            conn.phase = Phase::Closing;
            Step::Park
        }
    }
}

fn open_pollute(shared: &Arc<Shared>, conn: &mut Conn, hs: &Handshake) -> Step {
    let (mut plan, format) = match crate::server::resolve(hs, &shared.plans) {
        Ok(resolved) => resolved,
        Err(reason) => {
            shared.counter("serve/sessions_rejected").inc();
            conn.queue_line(&HandshakeReply::rejected(reason));
            conn.phase = Phase::Closing;
            return Step::Park;
        }
    };
    // Checkpointing plans get a per-session WAL subdirectory: sessions
    // sharing a checkpoint dir must not overwrite each other's WAL.
    plan.scope_checkpoint_dir(&format!("session_{}", conn.id));

    // Publisher registration (shared-stream fan-out).
    if let Some(name) = &hs.stream {
        let hub = Arc::clone(
            shared
                .hubs
                .lock()
                .entry(name.clone())
                .or_insert_with(|| Arc::new(Mutex::new(HubState::default()))),
        );
        {
            let mut state = hub.lock();
            if state.has_publisher {
                shared.counter("serve/sessions_rejected").inc();
                conn.queue_line(&HandshakeReply::rejected(format!(
                    "stream `{name}` already has a publisher"
                )));
                conn.phase = Phase::Closing;
                return Step::Park;
            }
            state.has_publisher = true;
            state.format = Some(format);
        }
        conn.publish = Some(hub);
        conn.stream_name = Some(name.clone());
    }

    conn.queue_line(&HandshakeReply::accepted(
        conn.id,
        plan.strategy().to_string(),
        plan.logical().substreams(),
    ));
    shared.register_session(
        conn.id,
        conn.counters
            .handles("pollute", format, plan.repr_summary()),
    );
    conn.in_table = true;
    conn.coerce_schema = match format {
        WireFormat::Ndjson => Some(plan.schema().clone()),
        WireFormat::Binary => None,
    };
    conn.plan = Some(plan);
    conn.format = format;
    conn.decoder.set_format(format);
    conn.phase = Phase::Ingest;
    // Re-enter the loop: frames the client pipelined behind its
    // handshake are already sitting in the decoder.
    Step::Continue
}

fn open_subscribe(shared: &Arc<Shared>, conn: &mut Conn, hs: &Handshake) -> Step {
    let format = match hs.wire_format() {
        Ok(format) => format,
        Err(reason) => {
            shared.counter("serve/sessions_rejected").inc();
            conn.queue_line(&HandshakeReply::rejected(reason));
            conn.phase = Phase::Closing;
            return Step::Park;
        }
    };
    let Some(name) = &hs.stream else {
        shared.counter("serve/sessions_rejected").inc();
        conn.queue_line(&HandshakeReply::rejected(
            "subscribe sessions must name a `stream`",
        ));
        conn.phase = Phase::Closing;
        return Step::Park;
    };
    let hub = Arc::clone(
        shared
            .hubs
            .lock()
            .entry(name.clone())
            .or_insert_with(|| Arc::new(Mutex::new(HubState::default()))),
    );
    hub.lock().subscribers.push(conn.id);
    conn.subscribe = Some((hub, 0));
    conn.stream_name = Some(name.clone());
    conn.format = format;
    conn.queue_line(&HandshakeReply::accepted(conn.id, "subscribe".into(), 0));
    shared.register_session(
        conn.id,
        conn.counters.handles("subscribe", format, "-".into()),
    );
    conn.in_table = true;
    conn.phase = Phase::Subscribe;
    Step::Continue
}

/// Telemetry sessions are interval-driven and write a frame every few
/// hundred milliseconds — a thread apiece is the right shape, so the
/// event loop hands the socket off instead of multiplexing it.
fn open_telemetry(
    rt: &Arc<Reactor>,
    shared: &Arc<Shared>,
    slot: &Arc<Slot>,
    conn: &mut Conn,
    hs: &Handshake,
) -> Step {
    let format = match hs.wire_format() {
        Ok(format) => format,
        Err(reason) => {
            shared.counter("serve/sessions_rejected").inc();
            conn.queue_line(&HandshakeReply::rejected(reason));
            conn.phase = Phase::Closing;
            return Step::Park;
        }
    };
    // Flush anything queued (nothing, normally) plus the acceptance
    // reply on a blocking socket, then hand the stream to the thread.
    let _ = rt.poller.deregister(slot.fd);
    conn.phase = Phase::Closed;
    rt.remove(conn.id);
    let sock = match conn.sock.try_clone() {
        Ok(sock) => sock,
        Err(_) => {
            shared.counter("serve/sessions_failed").inc();
            release_active(shared, conn);
            return Step::Done;
        }
    };
    let _ = sock.set_nonblocking(false);
    let reply = HandshakeReply::accepted(conn.id, "telemetry".into(), 0);
    if crate::server::write_json_line(&sock, &reply).is_err() {
        shared.counter("serve/sessions_failed").inc();
        release_active(shared, conn);
        return Step::Done;
    }
    let id = conn.id;
    let counts_active = std::mem::take(&mut conn.counts_active);
    let shared = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("icewafl-session-{id}"))
        .spawn(move || {
            run_telemetry_session(sock, &shared, id, format);
            if counts_active {
                shared.active.fetch_sub(1, Ordering::SeqCst);
                shared.registry.gauge("serve/sessions_active").sub(1);
            }
        })
        .expect("spawning a telemetry session thread");
    rt.telemetry_threads.lock().push(handle);
    Step::Done
}

fn release_active(shared: &Arc<Shared>, conn: &mut Conn) {
    if std::mem::take(&mut conn.counts_active) {
        shared.active.fetch_sub(1, Ordering::SeqCst);
        shared.registry.gauge("serve/sessions_active").sub(1);
    }
}

// ---------------------------------------------------------------------
// Ingest → execute
// ---------------------------------------------------------------------

fn step_ingest(rt: &Arc<Reactor>, conn: &mut Conn) -> Step {
    let end = read_available(conn);
    loop {
        match conn.decoder.next() {
            Ok(Some(frame)) => {
                let poll = decode_client_frame(frame).map(|poll| match poll {
                    NetPoll::Record(t) => match &conn.coerce_schema {
                        Some(schema) => NetPoll::Record(coerce_tuple(schema, t)),
                        None => NetPoll::Record(t),
                    },
                    NetPoll::Batch(batch) => match &conn.coerce_schema {
                        Some(schema) => NetPoll::Batch(
                            batch.into_iter().map(|t| coerce_tuple(schema, t)).collect(),
                        ),
                        None => NetPoll::Batch(batch),
                    },
                    end => end,
                });
                match poll {
                    Ok(NetPoll::Record(t)) => {
                        conn.input.push(t);
                        conn.counters.frames_in.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(NetPoll::Batch(batch)) => {
                        conn.input.extend(batch);
                        conn.counters.frames_in.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(NetPoll::End) => return execute(rt, conn),
                    Err(e) => return fail_ingest(rt, conn, e),
                }
            }
            Ok(None) => break,
            Err(e) => return fail_ingest(rt, conn, e),
        }
    }
    if let Some(e) = end.error {
        return fail_ingest(rt, conn, e);
    }
    if end.eof {
        return fail_ingest(rt, conn, NetError::Disconnected);
    }
    Step::Park
}

/// A typed transport failure while ingesting: answer with the same
/// error frame the poisoned `NetSource` path produced.
fn fail_ingest(rt: &Arc<Reactor>, conn: &mut Conn, e: NetError) -> Step {
    fail_session(
        rt,
        conn,
        "net_source",
        e.failure_kind().as_str(),
        e.to_string(),
        Some(e.code().to_string()),
    );
    Step::Continue
}

/// Queues the tail error frame and records the failure.
fn fail_session(
    rt: &Arc<Reactor>,
    conn: &mut Conn,
    stage: &str,
    kind: &str,
    message: String,
    protocol: Option<String>,
) {
    let frame = SessionErrorFrame {
        stage: stage.into(),
        kind: kind.into(),
        message,
        protocol: protocol.clone(),
    };
    conn.result = Some(SessionResult::Failed {
        protocol: protocol.is_some(),
    });
    conn.units.clear();
    let bytes: Arc<[u8]> =
        Arc::from(frame_bytes(&encode_error_frame(&frame, conn.format)).into_boxed_slice());
    publish_frame(rt, conn, &bytes, true);
    conn.outbox.push(bytes);
    conn.tail = None;
    conn.phase = Phase::Closing;
}

/// Collects pipeline output while preserving transport batch
/// boundaries, so drain-side framing mirrors the `NetSink` rules
/// (singletons → per-record frames, real batches → columnar frames).
#[derive(Clone)]
struct CollectSink {
    units: Arc<Mutex<VecDeque<Vec<StampedTuple>>>>,
}

impl Sink<StampedTuple> for CollectSink {
    fn write(&mut self, record: StampedTuple) {
        self.units.lock().push_back(vec![record]);
    }

    fn write_batch(&mut self, batch: Vec<StampedTuple>) {
        if !batch.is_empty() {
            self.units.lock().push_back(batch);
        }
    }
}

/// The end frame arrived: run the buffered input through the *same*
/// execution path offline runs use, then switch to draining the
/// collected output.
fn execute(rt: &Arc<Reactor>, conn: &mut Conn) -> Step {
    let plan = conn.plan.take().expect("an ingesting session has a plan");
    let input = std::mem::take(&mut conn.input);
    let units = Arc::new(Mutex::new(VecDeque::new()));
    let sink = CollectSink {
        units: Arc::clone(&units),
    };
    let outcome = plan.execute_streaming(VecSource::new(input), sink);
    match outcome {
        Ok(report) => {
            conn.units = std::mem::take(&mut units.lock());
            conn.tail = Some(Arc::from(
                frame_bytes(&encode_report_frame(&report, conn.format)).into_boxed_slice(),
            ));
            conn.result = Some(SessionResult::Completed);
            conn.phase = Phase::Drain;
        }
        Err(error) => {
            let (stage, kind, message) = match error {
                Error::Pipeline {
                    stage,
                    kind,
                    message,
                } => (stage, kind, message),
                other => ("session".into(), "fatal".into(), other.to_string()),
            };
            fail_session(rt, conn, &stage, &kind, message, None);
        }
    }
    Step::Continue
}

// ---------------------------------------------------------------------
// Drain (and pre-serialized fan-out)
// ---------------------------------------------------------------------

/// Encodes one output unit to wire bytes, counting frames/bytes and
/// (sampled) encode time.
fn encode_unit(conn: &mut Conn, unit: &[StampedTuple]) -> Arc<[u8]> {
    let sample = conn.frames_encoded & ENCODE_SAMPLE_MASK == 0;
    let t0 = sample.then(Instant::now);
    let (bytes, frames) = match conn.format {
        WireFormat::Binary if unit.len() >= 2 => (frame_bytes(&encode_columns_frame(unit)), 1u64),
        format => {
            let mut out = Vec::new();
            for t in unit {
                out.extend_from_slice(&frame_bytes(&encode_stamped_frame(t, format)));
            }
            (out, unit.len() as u64)
        }
    };
    if let Some(t0) = t0 {
        conn.counters
            .encode_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
    conn.frames_encoded += frames;
    conn.counters
        .frames_out
        .fetch_add(frames, Ordering::Relaxed);
    conn.counters
        .bytes_out
        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
    Arc::from(bytes.into_boxed_slice())
}

/// Appends an encoded frame to this session's hub (if it publishes) and
/// kicks subscribers; `done` marks the stream complete.
fn publish_frame(rt: &Arc<Reactor>, conn: &mut Conn, bytes: &Arc<[u8]>, done: bool) {
    let Some(hub) = &conn.publish else { return };
    let waiting: Vec<u64> = {
        let mut state = hub.lock();
        state.frames.push(Arc::clone(bytes));
        if done {
            state.done = true;
        }
        state.subscribers.clone()
    };
    for token in waiting {
        rt.kick(token);
    }
}

fn step_drain(rt: &Arc<Reactor>, conn: &mut Conn) -> Step {
    loop {
        // Top up the outbox to the high-water mark.
        while conn.outbox.pending() < OUTBOX_HIGH {
            if let Some(unit) = conn.units.pop_front() {
                let bytes = encode_unit(conn, &unit);
                publish_frame(rt, conn, &bytes, false);
                conn.outbox.push(bytes);
            } else if let Some(tail) = conn.tail.take() {
                publish_frame(rt, conn, &tail, true);
                conn.outbox.push(tail);
            } else {
                // Everything encoded: the generic flush-then-close path
                // takes it from here.
                conn.phase = Phase::Closing;
                return Step::Park;
            }
        }
        match conn.outbox.write_to(&mut &conn.sock) {
            Ok(true) => continue,
            Ok(false) => return Step::Park,
            Err(_) => {
                if matches!(conn.result, Some(SessionResult::Completed)) {
                    conn.result = Some(SessionResult::Failed { protocol: true });
                }
                close_conn(rt, conn);
                return Step::Done;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Subscribe
// ---------------------------------------------------------------------

fn step_subscribe(rt: &Arc<Reactor>, conn: &mut Conn) -> Step {
    // A subscriber never sends data frames; consume (and discard) any
    // bytes so hangup is observable through the read side.
    let end = read_available(conn);
    if conn.decoder.buffered() > 0 {
        let _ = conn.decoder.take_residual();
    }
    if end.eof || end.error.is_some() {
        conn.result = Some(SessionResult::Failed { protocol: true });
        close_conn(rt, conn);
        return Step::Done;
    }

    let Some((hub, cursor)) = conn.subscribe.clone() else {
        close_conn(rt, conn);
        return Step::Done;
    };
    let mut cursor = cursor;
    let finished = {
        let state = hub.lock();
        if let Some(hub_format) = state.format {
            if hub_format != conn.format {
                drop(state);
                fail_session(
                    rt,
                    conn,
                    "subscribe",
                    "fatal",
                    format!(
                        "stream format mismatch: publisher speaks {}, subscriber asked for {}",
                        hub_format.as_str(),
                        conn.format.as_str()
                    ),
                    None,
                );
                return Step::Continue;
            }
        }
        while cursor < state.frames.len() && conn.outbox.pending() < OUTBOX_HIGH {
            let bytes = Arc::clone(&state.frames[cursor]);
            cursor += 1;
            conn.counters.frames_out.fetch_add(1, Ordering::Relaxed);
            conn.counters
                .bytes_out
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            conn.outbox.push(bytes);
        }
        state.done && cursor == state.frames.len()
    };
    conn.subscribe = Some((hub, cursor));
    if finished {
        conn.result = Some(SessionResult::Completed);
        conn.phase = Phase::Closing;
    }
    Step::Park
}

// ---------------------------------------------------------------------
// Close
// ---------------------------------------------------------------------

/// Final bookkeeping for one connection: result counters, global frame
/// counters, session-table row, capacity slot, hub detach, epoll
/// deregistration. Safe to call from any phase; idempotent via the
/// `Closed` phase.
fn close_conn(rt: &Arc<Reactor>, conn: &mut Conn) {
    if matches!(conn.phase, Phase::Closed) {
        return;
    }
    conn.phase = Phase::Closed;
    let shared = Arc::clone(&rt.shared);

    match conn.result.take() {
        Some(SessionResult::Completed) => {
            shared.counter("serve/sessions_completed").inc();
        }
        Some(SessionResult::Failed { protocol }) => {
            shared.counter("serve/sessions_failed").inc();
            if protocol {
                shared.counter("serve/protocol_errors").inc();
            }
        }
        None => {}
    }
    let frames_in = conn.counters.frames_in.load(Ordering::Relaxed);
    let frames_out = conn.counters.frames_out.load(Ordering::Relaxed);
    if frames_in > 0 {
        shared.counter("serve/frames_in").add(frames_in);
    }
    if frames_out > 0 {
        shared.counter("serve/frames_out").add(frames_out);
    }

    if std::mem::take(&mut conn.in_table) {
        shared.remove_session(conn.id);
    }
    release_active(&shared, conn);

    // Publisher: seal the hub (synthesizing a failure frame if the
    // stream never completed) and retire the name.
    if let Some(hub) = conn.publish.take() {
        let waiting: Vec<u64> = {
            let mut state = hub.lock();
            if !state.done {
                let frame = SessionErrorFrame {
                    stage: "publisher".into(),
                    kind: "disconnect".into(),
                    message: "publisher session ended before completing its stream".into(),
                    protocol: None,
                };
                let format = state.format.unwrap_or(WireFormat::Binary);
                state.frames.push(Arc::from(
                    frame_bytes(&encode_error_frame(&frame, format)).into_boxed_slice(),
                ));
                state.done = true;
            }
            state.has_publisher = false;
            state.subscribers.clone()
        };
        if let Some(name) = &conn.stream_name {
            shared.hubs.lock().remove(name);
        }
        for token in waiting {
            rt.kick(token);
        }
    }
    // Subscriber: detach, and garbage-collect a publisher-less hub
    // placeholder once the last subscriber leaves.
    if let Some((hub, _)) = conn.subscribe.take() {
        let id = conn.id;
        let empty = {
            let mut state = hub.lock();
            state.subscribers.retain(|t| *t != id);
            state.subscribers.is_empty() && !state.has_publisher
        };
        if empty {
            if let Some(name) = &conn.stream_name {
                let mut hubs = shared.hubs.lock();
                if hubs.get(name).is_some_and(|h| Arc::ptr_eq(h, &hub)) {
                    hubs.remove(name);
                }
            }
        }
    }

    let _ = rt.poller.deregister(conn.sock.as_raw_fd());
    let _ = conn.sock.shutdown(std::net::Shutdown::Both);
    rt.remove(conn.id);
}
