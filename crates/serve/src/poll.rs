//! A tiny readiness-polling abstraction over `epoll(7)`.
//!
//! This is the whole "async runtime" of the event-driven server: a
//! [`Poller`] owns one epoll instance, sockets register with a `u64`
//! token, and [`Poller::wait`] parks until some of them are readable or
//! writable. No `libc`, tokio, or mio — the four syscalls the loop
//! needs (`epoll_create1`, `epoll_ctl`, `epoll_wait`, `close`, plus
//! `fcntl` for `O_NONBLOCK`) are declared directly against the C ABI,
//! the same way [`crate::signal`] binds `signal(2)`.
//!
//! All registrations use `EPOLLONESHOT`: after a token is reported, its
//! socket goes quiet until re-armed with [`Poller::rearm`]. That gives
//! the worker pool its exclusivity guarantee for free — at most one
//! worker ever holds a given session, because the kernel won't report
//! the same fd twice between re-arms. Re-arming is thread-safe
//! (`epoll_ctl` is), so workers re-arm from wherever they finish.
//!
//! Only compiled on Linux; the server falls back to a thread-per-session
//! blocking driver elsewhere.

#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::RawFd;
use std::os::raw::c_int;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

/// Readiness: data to read (or a pending accept / peer hangup).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the socket's send buffer has room again.
pub const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLONESHOT: u32 = 1 << 30;

/// Mirrors `struct epoll_event`. `packed` matters: on x86-64 the kernel
/// ABI has no padding between the 32-bit mask and the 64-bit data word.
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn __errno_location() -> *mut c_int;
}

fn last_errno() -> i32 {
    unsafe { *__errno_location() }
}

const EINTR: i32 = 4;

/// A readiness event: which registration fired and how.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the socket registered under.
    pub token: u64,
    /// `true` when the socket is readable (or hung up / errored — the
    /// subsequent `read` surfaces the exact condition).
    pub readable: bool,
    /// `true` when the socket is writable.
    pub writable: bool,
}

/// One epoll instance plus the event buffer for [`wait`](Poller::wait).
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates the epoll instance.
    pub fn new() -> io::Result<Self> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    /// Registers `fd` under `token` with one-shot `interest`
    /// ([`EPOLLIN`] | [`EPOLLOUT`]). Level-triggered semantics apply at
    /// arm time: if the condition already holds, the next
    /// [`wait`](Poller::wait) reports it immediately.
    pub fn register(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest | EPOLLONESHOT)
    }

    /// Registers `fd` *without* one-shot — for the listener, which the
    /// poller thread itself services on every wakeup.
    pub fn register_level(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Re-arms a one-shot registration with a fresh `interest` mask.
    /// Thread-safe; callable concurrently with [`wait`](Poller::wait).
    pub fn rearm(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest | EPOLLONESHOT)
    }

    /// Removes `fd` from the instance (before closing it).
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Blocks up to `timeout_ms` for readiness, appending into `out`.
    /// Returns the number of events delivered (0 on timeout). `EINTR`
    /// is reported as 0 events, not an error, so signal arrival just
    /// turns into an early shutdown-check.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        const MAX_EVENTS: usize = 256;
        let mut raw = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let n = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), MAX_EVENTS as c_int, timeout_ms) };
        if n < 0 {
            if last_errno() == EINTR {
                return Ok(0);
            }
            return Err(io::Error::last_os_error());
        }
        for ev in raw.iter().take(n as usize) {
            let mask = ev.events;
            out.push(Event {
                token: ev.data,
                // Error/hangup wake the read path so it can observe the
                // failure from the socket itself.
                readable: mask & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                writable: mask & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(n as usize)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.epfd);
        }
    }
}

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const O_NONBLOCK: c_int = 0o4000;

/// Puts a raw fd into non-blocking mode via `fcntl` (the std
/// `set_nonblocking` equivalent, kept here so the reactor can flip fds
/// it only holds raw).
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn readiness_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.register(server.as_raw_fd(), 7, EPOLLIN).unwrap();

        // Nothing to read yet: timeout.
        let mut events = Vec::new();
        poller.wait(&mut events, 20).unwrap();
        assert!(events.is_empty());

        client.write_all(b"ping").unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // One-shot: the same readiness is not reported again...
        let mut again = Vec::new();
        poller.wait(&mut again, 20).unwrap();
        assert!(again.is_empty());

        // ...until re-armed, and a writable socket reports EPOLLOUT
        // immediately (level-triggered at arm time).
        poller
            .rearm(server.as_raw_fd(), 7, EPOLLIN | EPOLLOUT)
            .unwrap();
        let mut rearmed = Vec::new();
        poller.wait(&mut rearmed, 1000).unwrap();
        assert_eq!(rearmed.len(), 1);
        assert!(rearmed[0].writable);

        let mut buf = [0u8; 4];
        (&server).read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        poller.deregister(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn nonblocking_flag_sticks() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        set_nonblocking(server.as_raw_fd()).unwrap();
        let mut buf = [0u8; 8];
        let err = (&server).read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
    }
}
