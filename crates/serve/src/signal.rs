//! A minimal SIGINT latch for graceful server drain.
//!
//! The CLI installs the latch before starting the accept loop; the
//! server polls [`triggered`] between accepts and, once set, stops
//! accepting and drains in-flight sessions. No `libc` dependency: the
//! handler is registered through the C `signal(2)` symbol directly,
//! and does nothing but store into an atomic (async-signal-safe).

use std::sync::atomic::{AtomicBool, Ordering};

static SIGINT: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
const SIGINT_NUM: i32 = 2;

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

#[cfg(unix)]
extern "C" fn on_sigint(_signum: i32) {
    SIGINT.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT handler. Safe to call more than once. On
/// non-Unix targets this is a no-op and [`triggered`] only ever fires
/// via [`trigger`].
pub fn install() {
    #[cfg(unix)]
    unsafe {
        signal(SIGINT_NUM, on_sigint as *const () as usize);
    }
}

/// `true` once SIGINT has been received (or [`trigger`] called).
pub fn triggered() -> bool {
    SIGINT.load(Ordering::SeqCst)
}

/// Sets the latch programmatically — what the signal handler does,
/// callable from tests and embedding code.
pub fn trigger() {
    SIGINT.store(true, Ordering::SeqCst);
}

/// Clears the latch (tests and long-lived embedders that survive a
/// drain).
pub fn reset() {
    SIGINT.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_sets_and_resets() {
        reset();
        assert!(!triggered());
        trigger();
        assert!(triggered());
        reset();
        assert!(!triggered());
    }
}
