//! # icewafl-serve
//!
//! Pollution as a network service: a multi-client TCP server that runs
//! a compiled pollution plan per connection and streams polluted tuples
//! back as they are produced.
//!
//! A session is one connection: the client opens with a one-line JSON
//! [handshake](protocol::Handshake) naming a preloaded plan (or
//! inlining one) and a schema, then streams tuples in either NDJSON or
//! length-prefixed binary [frames](protocol); the server pulls them
//! straight into the regular batched pipeline through a network source
//! and pushes polluted [`StampedTuple`](icewafl_types::StampedTuple)s
//! back through a network sink, closing with the session's
//! [`RunReport`](icewafl_core::RunReport). Backpressure is inherited
//! from the runtime's bounded channels plus TCP flow control, so a slow
//! reader throttles its own ingest without growing server memory — and
//! without affecting any other session.
//!
//! Protocol errors (malformed frames, oversized frames, mid-stream
//! disconnects) poison only the offending session through the typed
//! failure path of `icewafl-stream` and are answered with a typed
//! [error frame](protocol::SessionErrorFrame).
//!
//! On Linux the server core is event-driven: an epoll readiness loop
//! (hand-rolled behind the tiny [`poll`]-module abstraction — no tokio,
//! mio, or libc crate) multiplexes every session over a worker pool
//! sized to cores, so concurrency is bounded by file descriptors and
//! buffered bytes rather than threads. Sessions that publish to a named
//! `stream` are fanned out to `subscribe` sessions from pre-serialized
//! frames — each output frame is encoded once and shared as
//! `Arc<[u8]>`. Other platforms fall back to the original blocking
//! thread-per-session driver.
//!
//! Entry points: [`Server::bind`] + [`Server::run`] on the server side,
//! [`client::run_session`] on the client side, `icewafl serve` on the
//! command line.

#![warn(missing_docs)]

pub mod client;
pub mod poll;
pub mod protocol;
#[cfg(target_os = "linux")]
mod reactor;
pub mod server;
pub mod signal;

pub use client::{run_session, subscribe_telemetry, watch_telemetry, ClientConfig, SessionOutcome};
pub use protocol::{
    Handshake, HandshakeReply, ServerEvent, SessionErrorFrame, SessionTelemetry, TelemetryFrame,
};
pub use server::{ServeConfig, Server};
