//! The multi-client streaming server.
//!
//! [`Server::bind`] opens a listener; [`Server::run`] serves sessions
//! until shutdown is requested (via the
//! [handle](Server::shutdown_handle) or [SIGINT](crate::signal)) and
//! then drains: no new sessions are accepted, in-flight sessions run to
//! completion, and `run` returns once the last one finishes.
//!
//! On Linux the session core is event-driven (see the private
//! `reactor` module):
//! one epoll loop watches every socket and a worker pool sized to cores
//! drives per-connection state machines, so thousands of concurrent
//! sessions cost file descriptors and buffered bytes, not threads. A
//! session buffers its decoded input and, at the end frame, runs the
//! identical offline execution path — served output is byte-identical
//! to offline by construction. Per-session memory during ingest is
//! O(stream), the same order the engine's sorter already holds.
//! Elsewhere the server falls back to the original thread-per-session
//! blocking driver in this module.
//!
//! Backpressure: a client that stops reading parks its session's state
//! machine on write readiness (event-driven) or blocks its driver
//! thread (fallback); either way only that session slows down. A
//! protocol error (malformed frame, oversized frame, mid-stream
//! disconnect) fails only the offending session, which replies with an
//! error frame naming the failure kind and transport code; every other
//! session is untouched.
//!
//! The [`PlanCatalog`] is immutable behind the shared `Arc` — plan
//! lookups at handshake time are lock-free reads. The per-session
//! telemetry table is sharded (`SESSION_SHARDS` ways) so session
//! churn never contends on a single map lock.

#[cfg(not(target_os = "linux"))]
use crate::protocol::HandshakeReply;
use crate::protocol::{encode_telemetry_frame, Handshake, SessionTelemetry, TelemetryFrame};
use icewafl_core::plan::PhysicalPlan;
use icewafl_core::PlanCatalog;
use icewafl_obs::{MetricsRegistry, TelemetrySampler};
use icewafl_stream::net::{FrameWriter, WireFormat, DEFAULT_MAX_FRAME_BYTES};
use icewafl_types::{Error, Result};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::io::{BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the fallback accept loop sleeps when no connection is
/// pending.
#[cfg(not(target_os = "linux"))]
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// How long a telemetry session sleeps per slice while waiting for the
/// next frame boundary, so shutdown and SIGINT are noticed promptly.
const TELEMETRY_POLL: Duration = Duration::from_millis(5);

/// Ring capacity handed to the server's [`TelemetrySampler`]: how many
/// delta frames / series points are retained for late subscribers.
const SAMPLER_CAPACITY: usize = 256;

/// Shards of the live session table. Registration and removal hash by
/// session id, so 1k sessions arriving at once spread across 16 locks
/// instead of convoying on one.
const SESSION_SHARDS: usize = 16;

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to listen on, e.g. `127.0.0.1:7341`. Port `0` picks a
    /// free port (see [`Server::local_addr`]).
    pub addr: String,
    /// Plans sessions may select by name in their handshake.
    pub plans: PlanCatalog,
    /// Maximum concurrent sessions; further connections are rejected at
    /// handshake time with a capacity error.
    pub max_sessions: usize,
    /// Per-frame size cap, bytes. Oversized frames poison the offending
    /// session before any payload is buffered.
    pub max_frame_bytes: usize,
    /// Interval between registry samples and telemetry frames, in
    /// milliseconds (clamped to at least 1).
    pub telemetry_interval_ms: u64,
    /// Worker threads driving session state machines on the
    /// event-driven path; `0` sizes the pool to the machine's cores.
    /// Ignored by the thread-per-session fallback.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            plans: PlanCatalog::new(),
            max_sessions: 8,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            telemetry_interval_ms: 250,
            workers: 0,
        }
    }
}

/// Live transfer counters one session exposes to the telemetry table.
/// Handles are plain atomics shared with the session's driver, so
/// reading them never touches the session itself.
pub(crate) struct SessionHandles {
    pub(crate) kind: &'static str,
    /// Wire format on the session's socket (`ndjson` / `binary`).
    pub(crate) format: &'static str,
    /// Compiled batch representation of the session's plan; `-` when
    /// the session runs no plan (telemetry and subscribe sessions).
    pub(crate) repr: String,
    pub(crate) frames_in: Arc<AtomicU64>,
    pub(crate) frames_out: Arc<AtomicU64>,
    pub(crate) bytes_out: Arc<AtomicU64>,
    pub(crate) encode_ns: Arc<AtomicU64>,
    pub(crate) blocked_write_ns: Arc<AtomicU64>,
}

impl SessionHandles {
    fn new(kind: &'static str, format: WireFormat, repr: String) -> Self {
        SessionHandles {
            kind,
            format: format.as_str(),
            repr,
            frames_in: Arc::new(AtomicU64::new(0)),
            frames_out: Arc::new(AtomicU64::new(0)),
            bytes_out: Arc::new(AtomicU64::new(0)),
            encode_ns: Arc::new(AtomicU64::new(0)),
            blocked_write_ns: Arc::new(AtomicU64::new(0)),
        }
    }
}

/// One shared stream: the frames a publisher session has emitted so
/// far, pre-serialized to wire bytes exactly once, plus the subscriber
/// sessions waiting on more. Fan-out clones the `Arc`, never the bytes.
#[derive(Default)]
pub(crate) struct HubState {
    /// Wire format the publisher negotiated (fixed at registration;
    /// mismatched subscribers are failed at pull time).
    pub(crate) format: Option<WireFormat>,
    /// Every frame published so far, in emission order.
    pub(crate) frames: Vec<Arc<[u8]>>,
    /// The publisher finished (tail frame included in `frames`).
    pub(crate) done: bool,
    pub(crate) has_publisher: bool,
    /// Tokens of subscribed sessions, kicked when frames arrive.
    pub(crate) subscribers: Vec<u64>,
}

/// Shared state every session driver sees.
pub(crate) struct Shared {
    pub(crate) plans: PlanCatalog,
    pub(crate) max_sessions: usize,
    pub(crate) max_frame_bytes: usize,
    pub(crate) telemetry_interval_ms: u64,
    #[cfg_attr(not(target_os = "linux"), allow(dead_code))]
    pub(crate) workers: usize,
    pub(crate) registry: MetricsRegistry,
    pub(crate) active: AtomicUsize,
    /// Mirrors the server's shutdown flag so long-lived telemetry
    /// sessions stop at drain instead of holding the join forever.
    pub(crate) shutdown: Arc<AtomicBool>,
    /// When the server started, the zero point of frame `at_ms` stamps.
    pub(crate) started: Instant,
    /// Per-session live counters, sharded by session id. Entries appear
    /// when a handshake is accepted and vanish when the session ends.
    sessions: Vec<Mutex<BTreeMap<u64, SessionHandles>>>,
    /// Shared-stream hubs by stream name (see [`HubState`]).
    #[cfg_attr(not(target_os = "linux"), allow(dead_code))]
    pub(crate) hubs: Mutex<HashMap<String, Arc<Mutex<HubState>>>>,
    /// The background registry sampler; taken (and thereby joined) at
    /// drain. `None` after drain or when metrics are compiled out of
    /// any use.
    pub(crate) sampler: Mutex<Option<TelemetrySampler>>,
}

impl Shared {
    pub(crate) fn counter(&self, name: &str) -> icewafl_obs::Counter {
        self.registry.counter(name)
    }

    pub(crate) fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || crate::signal::triggered()
    }

    pub(crate) fn register_session(&self, id: u64, handles: SessionHandles) {
        self.sessions[(id as usize) % SESSION_SHARDS]
            .lock()
            .insert(id, handles);
    }

    pub(crate) fn remove_session(&self, id: u64) {
        self.sessions[(id as usize) % SESSION_SHARDS]
            .lock()
            .remove(&id);
    }

    /// A snapshot of the active-session table, ordered by id.
    pub(crate) fn session_table(&self) -> Vec<SessionTelemetry> {
        let mut rows: Vec<SessionTelemetry> = self
            .sessions
            .iter()
            .flat_map(|shard| {
                shard
                    .lock()
                    .iter()
                    .map(|(id, h)| SessionTelemetry {
                        id: *id,
                        kind: h.kind.to_string(),
                        format: h.format.to_string(),
                        repr: h.repr.clone(),
                        frames_in: h.frames_in.load(Ordering::Relaxed),
                        frames_out: h.frames_out.load(Ordering::Relaxed),
                        bytes_out: h.bytes_out.load(Ordering::Relaxed),
                        encode_ns: h.encode_ns.load(Ordering::Relaxed),
                        blocked_write_ns: h.blocked_write_ns.load(Ordering::Relaxed),
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        rows.sort_by_key(|row| row.id);
        rows
    }
}

/// Removes a session's row from the telemetry table when its driver
/// exits, however it exits.
struct SessionEntry<'a> {
    shared: &'a Shared,
    id: u64,
}

impl<'a> SessionEntry<'a> {
    fn register(shared: &'a Shared, id: u64, handles: SessionHandles) -> Self {
        shared.register_session(id, handles);
        SessionEntry { shared, id }
    }
}

impl Drop for SessionEntry<'_> {
    fn drop(&mut self) {
        self.shared.remove_session(self.id);
    }
}

/// Decrements the live-session count (and gauge) when a session thread
/// exits, however it exits.
#[cfg(not(target_os = "linux"))]
struct ActiveGuard<'a>(&'a Shared);

#[cfg(not(target_os = "linux"))]
impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
        self.0.registry.gauge("serve/sessions_active").sub(1);
    }
}

/// The pollution streaming server. See the [module docs](self) for the
/// lifecycle and [`crate::protocol`] for the wire protocol.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    next_session: AtomicU64,
}

impl Server {
    /// Binds the listener. Serving does not start until
    /// [`run`](Server::run) is called.
    pub fn bind(config: ServeConfig) -> Result<Server> {
        let listener = TcpListener::bind(&config.addr).map_err(|e| {
            Error::config(format_args!(
                "cannot bind serve address {}: {e}",
                config.addr
            ))
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::config(format_args!("cannot make listener non-blocking: {e}")))?;
        let registry = MetricsRegistry::new();
        registry
            .gauge("serve/max_sessions")
            .set(config.max_sessions as u64);
        let interval_ms = config.telemetry_interval_ms.max(1);
        let sampler = TelemetrySampler::start(
            &registry,
            Duration::from_millis(interval_ms),
            SAMPLER_CAPACITY,
        );
        let shutdown = Arc::new(AtomicBool::new(false));
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                plans: config.plans,
                max_sessions: config.max_sessions,
                max_frame_bytes: config.max_frame_bytes,
                telemetry_interval_ms: interval_ms,
                workers: config.workers,
                registry,
                active: AtomicUsize::new(0),
                shutdown: Arc::clone(&shutdown),
                started: Instant::now(),
                sessions: (0..SESSION_SHARDS)
                    .map(|_| Mutex::new(BTreeMap::new()))
                    .collect(),
                hubs: Mutex::new(HashMap::new()),
                sampler: Mutex::new(Some(sampler)),
            }),
            shutdown,
            next_session: AtomicU64::new(0),
        })
    }

    /// The bound address — the actual port when the config asked for
    /// port `0`.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("a bound listener has a local address")
    }

    /// A handle that stops the accept loop when set; [`run`](Server::run)
    /// then drains in-flight sessions and returns.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The server's metrics registry (`serve/*` counters and gauges).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.shared.registry
    }

    /// Number of sessions currently running.
    pub fn active_sessions(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    pub(crate) fn shared_arc(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }

    pub(crate) fn listener(&self) -> &TcpListener {
        &self.listener
    }

    pub(crate) fn stop_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || crate::signal::triggered()
    }

    /// Allocates the next session id (ids start at 1; the reactor uses
    /// 0 for its listener token).
    pub(crate) fn next_session_id(&self) -> u64 {
        self.next_session.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Accepts and serves sessions until the [shutdown
    /// handle](Server::shutdown_handle) is set or [SIGINT
    /// arrives](crate::signal::triggered), then drains: in-flight
    /// sessions run to completion before this returns.
    #[cfg(target_os = "linux")]
    pub fn run(&self) -> Result<()> {
        crate::reactor::run(self)
    }

    /// Accepts and serves sessions until the [shutdown
    /// handle](Server::shutdown_handle) is set or [SIGINT
    /// arrives](crate::signal::triggered), then drains: in-flight
    /// sessions run to completion before this returns.
    ///
    /// Non-Linux fallback: one blocking driver thread per session.
    #[cfg(not(target_os = "linux"))]
    pub fn run(&self) -> Result<()> {
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.stop_requested() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.dispatch(stream, &mut handles);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    handles.retain(|h| !h.is_finished());
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(Error::config(format_args!("accept failed: {e}")));
                }
            }
        }
        for handle in handles {
            let _ = handle.join();
        }
        // Join the sampler thread too: after drain the server must leave
        // no background thread behind (dropping the sampler blocks until
        // its thread exits).
        drop(self.shared.sampler.lock().take());
        Ok(())
    }

    /// Routes one accepted connection: rejects it at capacity, or
    /// spawns a session thread.
    #[cfg(not(target_os = "linux"))]
    fn dispatch(&self, stream: TcpStream, handles: &mut Vec<std::thread::JoinHandle<()>>) {
        let shared = Arc::clone(&self.shared);
        let session_id = self.next_session_id();
        shared.counter("serve/connections_total").inc();
        let _ = stream.set_nodelay(true);
        let _ = stream.set_nonblocking(false);

        if shared.active.load(Ordering::SeqCst) >= shared.max_sessions {
            shared.counter("serve/sessions_rejected").inc();
            // Best-effort rejection on a throwaway thread so a peer that
            // never reads cannot stall the accept loop.
            handles.push(std::thread::spawn(move || {
                let reply = HandshakeReply::rejected("server at capacity");
                let _ = write_json_line(&stream, &reply);
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }));
            return;
        }

        shared.active.fetch_add(1, Ordering::SeqCst);
        shared.registry.gauge("serve/sessions_active").add(1);
        handles.push(
            std::thread::Builder::new()
                .name(format!("icewafl-session-{session_id}"))
                .spawn(move || {
                    let _guard = ActiveGuard(&shared);
                    run_session(stream, &shared, session_id);
                })
                .expect("spawning a session thread"),
        );
    }
}

/// Writes one JSON value as an NDJSON line straight to the socket
/// (handshake replies and rejections, which precede format
/// negotiation).
pub(crate) fn write_json_line<T: serde::Serialize>(
    mut stream: &TcpStream,
    value: &T,
) -> std::io::Result<()> {
    let line = serde_json::to_string(value).expect("protocol frames are always serializable");
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// Resolves a handshake to a compiled plan and wire format, or a
/// rejection reason.
pub(crate) fn resolve(
    hs: &Handshake,
    plans: &PlanCatalog,
) -> std::result::Result<(PhysicalPlan, WireFormat), String> {
    let format = hs.wire_format()?;
    let schema = match (&hs.schema_inline, hs.schema.as_deref()) {
        (Some(schema), _) => schema.clone(),
        (None, Some("wearable")) => icewafl_data::wearable::schema(),
        (None, Some("airquality")) => icewafl_data::airquality::schema(),
        (None, Some(other)) => {
            return Err(format!(
                "unknown schema `{other}` (expected wearable or airquality, or ship schema_inline)"
            ))
        }
        (None, None) => return Err("handshake must carry `schema` or `schema_inline`".into()),
    };
    let logical = match (&hs.plan_inline, hs.plan.as_deref()) {
        (Some(plan), _) => plan.clone(),
        (None, Some(name)) => plans
            .get(name)
            .cloned()
            .ok_or_else(|| format!("unknown plan `{name}` (available: {:?})", plans.names()))?,
        (None, None) => return Err("handshake must carry `plan` or `plan_inline`".into()),
    };
    let physical = logical
        .compile(&schema)
        .map_err(|e| format!("plan does not compile against the schema: {e}"))?;
    Ok((physical, format))
}

/// One session, handshake to tail frame, on its own blocking thread.
/// Every exit path is local to the session: errors are answered on the
/// wire (best effort) and recorded in `serve/*` metrics, never
/// propagated.
#[cfg(not(target_os = "linux"))]
fn run_session(stream: TcpStream, shared: &Shared, session_id: u64) {
    use crate::protocol::{
        coerce_tuple, decode_client_frame, encode_columns_frame, encode_error_frame,
        encode_report_frame, encode_stamped_frame, SessionErrorFrame,
    };
    use icewafl_stream::net::{FrameReader, NetErrorCell, NetSink, NetSource};
    use icewafl_types::StampedTuple;
    use std::io::BufReader;

    let Ok(write_stream) = stream.try_clone() else {
        shared.counter("serve/sessions_failed").inc();
        return;
    };
    let Ok(tail_stream) = stream.try_clone() else {
        shared.counter("serve/sessions_failed").inc();
        return;
    };

    // Handshake: always one NDJSON line, whatever the data format.
    let mut hs_reader = FrameReader::new(
        BufReader::new(stream),
        WireFormat::Ndjson,
        shared.max_frame_bytes,
    );
    let hs: Handshake = match hs_reader.read() {
        Ok(Some(icewafl_stream::net::WireFrame::Line(line))) => match serde_json::from_str(&line) {
            Ok(hs) => hs,
            Err(e) => {
                shared.counter("serve/protocol_errors").inc();
                shared.counter("serve/sessions_rejected").inc();
                let reply = HandshakeReply::rejected(format!("bad handshake: {e}"));
                let _ = write_json_line(&tail_stream, &reply);
                return;
            }
        },
        Ok(_) => {
            // Disconnected before (or instead of) a handshake line.
            shared.counter("serve/sessions_rejected").inc();
            return;
        }
        Err(e) => {
            shared.counter("serve/protocol_errors").inc();
            shared.counter("serve/sessions_rejected").inc();
            let reply = HandshakeReply::rejected(format!("bad handshake: {e}"));
            let _ = write_json_line(&tail_stream, &reply);
            return;
        }
    };

    match hs.session.as_deref() {
        None | Some("pollute") => {}
        Some("telemetry") => {
            let format = match hs.wire_format() {
                Ok(format) => format,
                Err(reason) => {
                    shared.counter("serve/sessions_rejected").inc();
                    let _ = write_json_line(&tail_stream, &HandshakeReply::rejected(reason));
                    return;
                }
            };
            let reply = HandshakeReply::accepted(session_id, "telemetry".into(), 0);
            if write_json_line(&tail_stream, &reply).is_err() {
                shared.counter("serve/sessions_failed").inc();
                return;
            }
            run_telemetry_session(write_stream, shared, session_id, format);
            return;
        }
        Some("subscribe") => {
            shared.counter("serve/sessions_rejected").inc();
            let reply =
                HandshakeReply::rejected("subscribe sessions require the event-driven server");
            let _ = write_json_line(&tail_stream, &reply);
            return;
        }
        Some(other) => {
            shared.counter("serve/sessions_rejected").inc();
            let reply = HandshakeReply::rejected(format!(
                "unknown session type `{other}` (expected pollute or telemetry)"
            ));
            let _ = write_json_line(&tail_stream, &reply);
            return;
        }
    }

    let (mut plan, format) = match resolve(&hs, &shared.plans) {
        Ok(resolved) => resolved,
        Err(reason) => {
            shared.counter("serve/sessions_rejected").inc();
            let _ = write_json_line(&tail_stream, &HandshakeReply::rejected(reason));
            return;
        }
    };
    // Checkpointing plans get a per-session WAL subdirectory: sessions
    // running the same plan (or any plans sharing a checkpoint dir)
    // must not overwrite each other's `checkpoint.wal`.
    plan.scope_checkpoint_dir(&format!("session_{session_id}"));

    let reply = HandshakeReply::accepted(
        session_id,
        plan.strategy().to_string(),
        plan.logical().substreams(),
    );
    if write_json_line(&tail_stream, &reply).is_err() {
        shared.counter("serve/sessions_failed").inc();
        return;
    }

    // Data plane: the session's pipeline pulls straight from the socket
    // and pushes straight back out; the error cell carries the typed
    // root cause out of the poison path.
    let error_cell = NetErrorCell::new();
    // NDJSON is untagged, so decoded tuples are coerced back to the
    // session schema's column types (Int → Float/Timestamp); the binary
    // codec is typed and skips the pass.
    let schema = plan.schema().clone();
    let decode: icewafl_stream::net::DecodeFn<icewafl_types::Tuple> = match format {
        WireFormat::Ndjson => Box::new(move |frame| {
            decode_client_frame(frame).map(|poll| match poll {
                icewafl_stream::net::NetPoll::Record(t) => {
                    icewafl_stream::net::NetPoll::Record(coerce_tuple(&schema, t))
                }
                icewafl_stream::net::NetPoll::Batch(batch) => icewafl_stream::net::NetPoll::Batch(
                    batch
                        .into_iter()
                        .map(|t| coerce_tuple(&schema, t))
                        .collect(),
                ),
                end => end,
            })
        }),
        WireFormat::Binary => Box::new(decode_client_frame),
    };
    let source = NetSource::new(
        FrameReader::new(hs_reader.into_inner(), format, shared.max_frame_bytes),
        decode,
        error_cell.clone(),
    );
    let sink = NetSink::new(
        FrameWriter::new(BufWriter::new(write_stream), format),
        Box::new(move |t: &StampedTuple| encode_stamped_frame(t, format)),
        error_cell.clone(),
    );
    // Binary sessions serialize whole output batches as one columnar
    // frame — encode once per batch instead of once per tuple. NDJSON
    // stays line-per-tuple so `nc`/`jq` consumers keep working.
    let sink = match format {
        WireFormat::Binary => sink.with_batch_encode(Box::new(|batch: &[StampedTuple]| {
            encode_columns_frame(batch)
        })),
        WireFormat::Ndjson => sink,
    };
    let frames_in = source.frames_in_handle();
    let frames_out = sink.frames_out_handle();
    let _entry = SessionEntry::register(
        shared,
        session_id,
        SessionHandles {
            kind: "pollute",
            format: format.as_str(),
            repr: plan.repr_summary(),
            frames_in: Arc::clone(&frames_in),
            frames_out: Arc::clone(&frames_out),
            bytes_out: sink.bytes_out_handle(),
            encode_ns: sink.encode_ns_handle(),
            blocked_write_ns: sink.blocked_write_ns_handle(),
        },
    );

    let outcome = plan.execute_streaming(source, sink);

    shared
        .counter("serve/frames_in")
        .add(frames_in.load(Ordering::Relaxed));
    shared
        .counter("serve/frames_out")
        .add(frames_out.load(Ordering::Relaxed));

    let mut tail = FrameWriter::new(tail_stream, format);
    match outcome {
        Ok(report) => {
            shared.counter("serve/sessions_completed").inc();
            let _ = tail.write(&encode_report_frame(&report, format));
            let _ = tail.flush();
        }
        Err(error) => {
            shared.counter("serve/sessions_failed").inc();
            let protocol = error_cell.get().map(|net| net.code().to_string());
            if protocol.is_some() {
                shared.counter("serve/protocol_errors").inc();
            }
            let frame = match error {
                Error::Pipeline {
                    stage,
                    kind,
                    message,
                } => SessionErrorFrame {
                    stage,
                    kind,
                    message,
                    protocol,
                },
                other => SessionErrorFrame {
                    stage: "session".into(),
                    kind: "fatal".into(),
                    message: other.to_string(),
                    protocol,
                },
            };
            let _ = tail.write(&encode_error_frame(&frame, format));
            let _ = tail.flush();
        }
    }
}

/// A `telemetry` session: one [`TelemetryFrame`] per sampling interval
/// until the client disconnects or the server drains. The session
/// registers itself in the table it reports, so a subscriber always
/// sees at least its own row.
pub(crate) fn run_telemetry_session(
    stream: TcpStream,
    shared: &Shared,
    session_id: u64,
    format: WireFormat,
) {
    let handles = SessionHandles::new("telemetry", format, "-".into());
    let frames_out = Arc::clone(&handles.frames_out);
    let bytes_out = Arc::clone(&handles.bytes_out);
    let _entry = SessionEntry::register(shared, session_id, handles);

    let mut writer = FrameWriter::new(BufWriter::new(stream), format);
    let interval = Duration::from_millis(shared.telemetry_interval_ms);
    let mut seq = 0u64;
    // Sampler deltas already consumed; new subscribers skip history and
    // start from the next tick.
    let mut after_seq = shared
        .sampler
        .lock()
        .as_ref()
        .and_then(|s| s.latest())
        .map(|d| d.seq)
        .unwrap_or(0);
    loop {
        // Sleep to the next frame boundary in short slices so drain and
        // SIGINT are honoured promptly (satellite of the no-leaked-thread
        // guarantee: a telemetry session must not hold up the join).
        let deadline = Instant::now() + interval;
        loop {
            if shared.stopping() {
                shared.counter("serve/sessions_completed").inc();
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            std::thread::sleep((deadline - now).min(TELEMETRY_POLL));
        }
        seq += 1;
        let delta = shared.sampler.lock().as_ref().and_then(|s| {
            let frames = s.frames_since(after_seq);
            frames.into_iter().last()
        });
        if let Some(d) = &delta {
            after_seq = d.seq;
        }
        let frame = TelemetryFrame {
            seq,
            at_ms: shared.started.elapsed().as_millis() as u64,
            interval_ms: shared.telemetry_interval_ms,
            delta,
            sessions: shared.session_table(),
        };
        let wire = encode_telemetry_frame(&frame, format);
        bytes_out.fetch_add(wire.wire_len() as u64, Ordering::Relaxed);
        if writer.write(&wire).is_err() || writer.flush().is_err() {
            // The subscriber went away: a normal way to end the session.
            shared.counter("serve/sessions_completed").inc();
            return;
        }
        frames_out.fetch_add(1, Ordering::Relaxed);
        shared.counter("serve/telemetry_frames").inc();
    }
}
