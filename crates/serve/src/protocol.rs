//! The icewafl session protocol: handshake, frame tags, and the tuple
//! codecs for both wire formats.
//!
//! A session is one TCP connection:
//!
//! 1. **Handshake** — the client sends one NDJSON line (always JSON,
//!    regardless of the negotiated data format): a [`Handshake`] naming
//!    a preloaded plan (`plan`) *or* inlining a full [`LogicalPlan`]
//!    (`plan_inline`), a schema by name (`schema`: `wearable`,
//!    `airquality`) *or* inline (`schema_inline`), and the data
//!    `format` (`ndjson`, default, or `binary`).
//! 2. **Reply** — the server answers with one [`HandshakeReply`] line.
//!    `ok: false` carries the reason (unknown plan, plan does not
//!    compile against the schema, server at capacity) and closes.
//! 3. **Data** — the client streams tuple frames and finishes with an
//!    end frame; the server concurrently streams polluted stamped-tuple
//!    frames back. Clients must read while they write: the server
//!    applies backpressure, so a client that writes a large stream
//!    without draining replies deadlocks itself against TCP flow
//!    control.
//! 4. **Tail** — after the end frame has flushed through the plan, the
//!    server sends one report frame (the session's [`RunReport`]) and
//!    closes. On a session failure it sends an error frame (a
//!    [`SessionErrorFrame`]) instead.
//!
//! Binary frames are `[tag: u8][len: u32 LE][payload]` (see the `TAG_*`
//! constants); NDJSON frames are single-key objects (`{"tuple": …}`,
//! `{"end": true}`, `{"report": …}`, `{"error": …}`). Report and error
//! payloads are JSON in both formats — they occur once per session, so
//! compactness is irrelevant.

use icewafl_core::plan::LogicalPlan;
use icewafl_core::report::RunReport;
use icewafl_stream::net::{NetError, NetPoll, WireFormat, WireFrame};
use icewafl_types::{DataType, Schema, StampedTuple, Timestamp, Tuple, Value};
use serde::{Deserialize, Serialize};

/// Binary frame tag: client → server, one [`Tuple`] payload.
pub const TAG_TUPLE: u8 = 1;
/// Binary frame tag: client → server, end of stream (empty payload).
pub const TAG_END: u8 = 2;
/// Binary frame tag: server → client, one polluted [`StampedTuple`].
pub const TAG_STAMPED: u8 = 3;
/// Binary frame tag: server → client, the session [`RunReport`] (JSON
/// payload).
pub const TAG_REPORT: u8 = 4;
/// Binary frame tag: server → client, a [`SessionErrorFrame`] (JSON
/// payload).
pub const TAG_ERROR: u8 = 5;
/// Binary frame tag: server → client, a periodic [`TelemetryFrame`]
/// (JSON payload; telemetry sessions only).
pub const TAG_TELEMETRY: u8 = 6;
/// Binary frame tag: server → client, a batch of polluted
/// [`StampedTuple`]s in columnar layout (see [`encode_columns`]).
pub const TAG_COLUMNS: u8 = 7;
/// Binary frame tag: client → server, a batch of input [`Tuple`]s in
/// columnar layout (see [`encode_tuple_columns`]). The upload-side
/// counterpart of [`TAG_COLUMNS`]: one frame header and one decode per
/// batch instead of per tuple.
pub const TAG_TUPLE_COLUMNS: u8 = 8;

/// The first line of every session: what to run and how to talk.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct Handshake {
    /// Name of a plan preloaded from the server's `--plans-dir`.
    #[serde(default)]
    pub plan: Option<String>,
    /// A full plan shipped inline instead of a catalog name.
    #[serde(default)]
    pub plan_inline: Option<LogicalPlan>,
    /// Name of a built-in schema (`wearable`, `airquality`).
    #[serde(default)]
    pub schema: Option<String>,
    /// A schema shipped inline instead of a built-in name.
    #[serde(default)]
    pub schema_inline: Option<Schema>,
    /// Data wire format: `ndjson` (default) or `binary`.
    #[serde(default)]
    pub format: Option<String>,
    /// Session type: `pollute` (default) runs a plan over the client's
    /// tuples; `telemetry` subscribes to periodic [`TelemetryFrame`]s
    /// instead (no plan or schema required, nothing is sent upstream);
    /// `subscribe` attaches to a named shared stream (see `stream`) and
    /// receives the publisher's pre-serialized output frames.
    #[serde(default)]
    pub session: Option<String>,
    /// Shared-stream name. On a `pollute` session this *publishes*: the
    /// session's output frames are encoded once and fanned out (as
    /// shared `Arc<[u8]>` buffers) to every `subscribe` session naming
    /// the same stream. Subscribers must use the publisher's wire
    /// format. At most one live publisher per name.
    #[serde(default)]
    pub stream: Option<String>,
}

impl Handshake {
    /// The negotiated wire format, or an error naming the bad value.
    pub fn wire_format(&self) -> Result<WireFormat, String> {
        match self.format.as_deref() {
            None => Ok(WireFormat::Ndjson),
            Some(name) => WireFormat::parse(name)
                .ok_or_else(|| format!("unknown format `{name}` (expected ndjson or binary)")),
        }
    }
}

/// The server's one-line answer to a [`Handshake`].
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct HandshakeReply {
    /// Whether the session was accepted.
    pub ok: bool,
    /// Rejection reason when `ok` is false.
    #[serde(default)]
    pub error: Option<String>,
    /// Server-assigned session id (connection counter).
    #[serde(default)]
    pub session: u64,
    /// The compiled plan's execution strategy (accepted sessions).
    #[serde(default)]
    pub strategy: Option<String>,
    /// The compiled plan's sub-stream count (accepted sessions).
    #[serde(default)]
    pub substreams: usize,
}

impl HandshakeReply {
    /// An acceptance reply.
    pub fn accepted(session: u64, strategy: String, substreams: usize) -> Self {
        HandshakeReply {
            ok: true,
            error: None,
            session,
            strategy: Some(strategy),
            substreams,
        }
    }

    /// A rejection reply with a reason.
    pub fn rejected(error: impl Into<String>) -> Self {
        HandshakeReply {
            ok: false,
            error: Some(error.into()),
            ..HandshakeReply::default()
        }
    }
}

/// The typed error a failed session sends as its final frame: which
/// stage failed, the failure kind (`panic`, `disconnect`, `fatal`, …),
/// and — for protocol failures — the transport error code
/// (`malformed`, `oversized`, `disconnected`, `io`).
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct SessionErrorFrame {
    /// Label of the failing stage (e.g. `stage/03_source`).
    #[serde(default)]
    pub stage: String,
    /// Failure kind from the poison protocol.
    #[serde(default)]
    pub kind: String,
    /// Human-readable detail.
    #[serde(default)]
    pub message: String,
    /// Transport error code when the root cause was a protocol error.
    #[serde(default)]
    pub protocol: Option<String>,
}

/// One active session as seen in a [`TelemetryFrame`]'s session table.
#[derive(Debug, Clone, Serialize, Deserialize, Default, PartialEq, Eq)]
pub struct SessionTelemetry {
    /// Server-assigned session id.
    pub id: u64,
    /// Session type: `pollute` or `telemetry`.
    pub kind: String,
    /// Wire format on this session's socket: `ndjson` or `binary`.
    #[serde(default)]
    pub format: String,
    /// Compiled batch representation of the session's plan (`columnar`,
    /// `row`, or `mixed(k/m columnar)`); `-` for sessions that run no
    /// plan (telemetry subscribers).
    #[serde(default)]
    pub repr: String,
    /// Frames received from the session's client so far.
    #[serde(default)]
    pub frames_in: u64,
    /// Frames written to the session's client so far.
    #[serde(default)]
    pub frames_out: u64,
    /// Bytes written to the session's client so far (framing included).
    #[serde(default)]
    pub bytes_out: u64,
    /// Sampled (1-in-64) nanoseconds the session spent encoding output
    /// frames.
    #[serde(default)]
    pub encode_ns: u64,
    /// Sampled (1-in-64) nanoseconds the session spent blocked writing
    /// to its socket.
    #[serde(default)]
    pub blocked_write_ns: u64,
}

/// One periodic frame streamed to a `telemetry` session: the latest
/// registry delta produced by the server's
/// [`TelemetrySampler`](icewafl_obs::TelemetrySampler) plus a table of
/// the currently active sessions with their live transfer counters.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct TelemetryFrame {
    /// Monotonic frame number within this telemetry session, from 1.
    pub seq: u64,
    /// Milliseconds since the server started.
    pub at_ms: u64,
    /// The server's sampling interval, in milliseconds.
    pub interval_ms: u64,
    /// The newest registry delta, if the sampler has ticked since the
    /// last frame (absent when metrics are compiled out or no tick
    /// landed in this interval).
    #[serde(default)]
    pub delta: Option<icewafl_obs::MetricsDelta>,
    /// Currently active sessions, ordered by id.
    #[serde(default)]
    pub sessions: Vec<SessionTelemetry>,
}

/// One NDJSON line in the client → server direction.
#[derive(Serialize, Deserialize, Default)]
struct ClientLine {
    #[serde(default)]
    tuple: Option<Tuple>,
    #[serde(default)]
    end: Option<bool>,
}

/// One NDJSON line in the server → client direction.
#[derive(Serialize, Deserialize, Default)]
struct ServerLine {
    #[serde(default)]
    tuple: Option<StampedTuple>,
    #[serde(default)]
    report: Option<RunReport>,
    #[serde(default)]
    error: Option<SessionErrorFrame>,
    #[serde(default)]
    telemetry: Option<TelemetryFrame>,
}

/// What the client sees in one server frame.
#[derive(Debug)]
pub enum ServerEvent {
    /// One polluted tuple.
    Tuple(StampedTuple),
    /// A batch of polluted tuples from one columnar frame (binary
    /// sessions only; NDJSON sessions always stream per-tuple lines).
    Batch(Vec<StampedTuple>),
    /// The final session report — the stream completed.
    Report(Box<RunReport>),
    /// The session failed with a typed error.
    Error(SessionErrorFrame),
    /// One periodic telemetry frame (telemetry sessions only).
    Telemetry(Box<TelemetryFrame>),
}

/// Restores schema types the untagged NDJSON value encoding cannot
/// express: a JSON integer deserializes as [`Value::Int`] even when the
/// column is a timestamp or float, so both sides of an NDJSON session
/// coerce decoded tuples against the session schema. Values already of
/// the right type (and `Null`, a member of every domain) pass through;
/// columns beyond the schema's arity are left for downstream
/// validation. The binary codec is typed and never needs this.
pub fn coerce_tuple(schema: &Schema, tuple: Tuple) -> Tuple {
    let lossy = tuple.values().iter().zip(schema.fields()).any(|(v, f)| {
        matches!(
            (f.dtype, v),
            (DataType::Float | DataType::Timestamp, Value::Int(_))
        )
    });
    if !lossy {
        return tuple;
    }
    Tuple::new(
        tuple
            .values()
            .iter()
            .enumerate()
            .map(|(i, v)| match (schema.field(i).map(|f| f.dtype), v) {
                (Some(DataType::Float), Value::Int(n)) => Value::Float(*n as f64),
                (Some(DataType::Timestamp), Value::Int(n)) => Value::Timestamp(Timestamp(*n)),
                _ => v.clone(),
            })
            .collect(),
    )
}

// ---------------------------------------------------------------------
// Binary value/tuple codec
// ---------------------------------------------------------------------

const VAL_NULL: u8 = 0;
const VAL_BOOL: u8 = 1;
const VAL_INT: u8 = 2;
const VAL_FLOAT: u8 = 3;
const VAL_STR: u8 = 4;
const VAL_TIMESTAMP: u8 = 5;

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(VAL_NULL),
        Value::Bool(b) => {
            out.push(VAL_BOOL);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(VAL_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(VAL_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(VAL_STR);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Timestamp(t) => {
            out.push(VAL_TIMESTAMP);
            out.extend_from_slice(&t.0.to_le_bytes());
        }
    }
}

/// A bounds-checked cursor over a binary payload.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| NetError::malformed("payload truncated"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, NetError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, NetError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, NetError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, NetError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn finish(self) -> Result<(), NetError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(NetError::malformed("trailing bytes after payload"))
        }
    }
}

fn get_value(d: &mut Dec<'_>) -> Result<Value, NetError> {
    Ok(match d.u8()? {
        VAL_NULL => Value::Null,
        VAL_BOOL => Value::Bool(d.u8()? != 0),
        VAL_INT => Value::Int(d.i64()?),
        VAL_FLOAT => Value::Float(f64::from_bits(d.u64()?)),
        VAL_STR => {
            let len = d.u32()? as usize;
            let bytes = d.take(len)?;
            Value::Str(
                std::str::from_utf8(bytes)
                    .map_err(|_| NetError::malformed("string value is not valid UTF-8"))?
                    .to_string(),
            )
        }
        VAL_TIMESTAMP => Value::Timestamp(Timestamp(d.i64()?)),
        tag => return Err(NetError::malformed(format!("unknown value tag {tag}"))),
    })
}

fn put_tuple(out: &mut Vec<u8>, t: &Tuple) {
    out.extend_from_slice(&(t.values().len() as u16).to_le_bytes());
    for v in t.values() {
        put_value(out, v);
    }
}

fn get_tuple(d: &mut Dec<'_>) -> Result<Tuple, NetError> {
    let arity = d.u16()? as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(get_value(d)?);
    }
    Ok(Tuple::new(values))
}

/// Encodes a [`Tuple`] as a binary payload (`u16` arity, then tagged
/// values).
pub fn encode_tuple(t: &Tuple) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + t.values().len() * 9);
    put_tuple(&mut out, t);
    out
}

/// Decodes a binary [`Tuple`] payload, rejecting trailing garbage.
pub fn decode_tuple(buf: &[u8]) -> Result<Tuple, NetError> {
    let mut d = Dec::new(buf);
    let t = get_tuple(&mut d)?;
    d.finish()?;
    Ok(t)
}

/// Encodes a [`StampedTuple`] as a binary payload (`id`, `tau`,
/// `arrival`, `sub_stream`, then the tuple).
pub fn encode_stamped(t: &StampedTuple) -> Vec<u8> {
    let mut out = Vec::with_capacity(30 + t.tuple.values().len() * 9);
    out.extend_from_slice(&t.id.to_le_bytes());
    out.extend_from_slice(&t.tau.0.to_le_bytes());
    out.extend_from_slice(&t.arrival.0.to_le_bytes());
    out.extend_from_slice(&t.sub_stream.to_le_bytes());
    put_tuple(&mut out, &t.tuple);
    out
}

/// Decodes a binary [`StampedTuple`] payload, rejecting trailing
/// garbage.
pub fn decode_stamped(buf: &[u8]) -> Result<StampedTuple, NetError> {
    let mut d = Dec::new(buf);
    let id = d.u64()?;
    let tau = Timestamp(d.i64()?);
    let arrival = Timestamp(d.i64()?);
    let sub_stream = d.u32()?;
    let tuple = get_tuple(&mut d)?;
    d.finish()?;
    let mut t = StampedTuple::new(id, tau, tuple);
    t.arrival = arrival;
    t.sub_stream = sub_stream;
    Ok(t)
}

/// Encodes a batch of [`StampedTuple`]s as one columnar binary payload:
/// `u32` row count, the four stamp fields as contiguous arrays (`id`,
/// `tau`, `arrival`, `sub_stream`), a `u16` arity, then tagged values
/// column-major (`values[col][row]`). The column-major layout lets a
/// columnar plan serialize each output column in one pass, and packs
/// same-typed tags together. Rows beyond the stated arity are rejected
/// at encode time: every row must have the same arity, which holds for
/// plan output (pollution is value-preserving per column).
pub fn encode_columns(batch: &[StampedTuple]) -> Vec<u8> {
    let rows = batch.len();
    let arity = batch.first().map_or(0, |t| t.tuple.values().len());
    debug_assert!(
        batch.iter().all(|t| t.tuple.values().len() == arity),
        "columnar frames require a uniform arity"
    );
    let mut out = Vec::with_capacity(4 + rows * 28 + 2 + rows * arity * 9);
    out.extend_from_slice(&(rows as u32).to_le_bytes());
    for t in batch {
        out.extend_from_slice(&t.id.to_le_bytes());
    }
    for t in batch {
        out.extend_from_slice(&t.tau.0.to_le_bytes());
    }
    for t in batch {
        out.extend_from_slice(&t.arrival.0.to_le_bytes());
    }
    for t in batch {
        out.extend_from_slice(&t.sub_stream.to_le_bytes());
    }
    out.extend_from_slice(&(arity as u16).to_le_bytes());
    for col in 0..arity {
        for t in batch {
            put_value(&mut out, &t.tuple.values()[col]);
        }
    }
    out
}

/// Decodes a columnar binary payload back into row-major
/// [`StampedTuple`]s, rejecting trailing garbage.
pub fn decode_columns(buf: &[u8]) -> Result<Vec<StampedTuple>, NetError> {
    let mut d = Dec::new(buf);
    let rows = d.u32()? as usize;
    // Bound the allocation by what the payload could actually hold:
    // each row needs at least the 28 stamp bytes.
    if rows.saturating_mul(28) > buf.len() {
        return Err(NetError::malformed("columnar row count exceeds payload"));
    }
    let mut ids = Vec::with_capacity(rows);
    for _ in 0..rows {
        ids.push(d.u64()?);
    }
    let mut taus = Vec::with_capacity(rows);
    for _ in 0..rows {
        taus.push(d.i64()?);
    }
    let mut arrivals = Vec::with_capacity(rows);
    for _ in 0..rows {
        arrivals.push(d.i64()?);
    }
    let mut sub_streams = Vec::with_capacity(rows);
    for _ in 0..rows {
        sub_streams.push(d.u32()?);
    }
    let arity = d.u16()? as usize;
    let mut columns: Vec<Vec<Value>> = Vec::with_capacity(arity);
    for _ in 0..arity {
        let mut col = Vec::with_capacity(rows);
        for _ in 0..rows {
            col.push(get_value(&mut d)?);
        }
        columns.push(col);
    }
    d.finish()?;
    let mut batch = Vec::with_capacity(rows);
    for row in (0..rows).rev() {
        let values = columns.iter_mut().map(|col| col.pop().unwrap()).collect();
        let mut t = StampedTuple::new(ids[row], Timestamp(taus[row]), Tuple::new(values));
        t.arrival = Timestamp(arrivals[row]);
        t.sub_stream = sub_streams[row];
        batch.push(t);
    }
    batch.reverse();
    Ok(batch)
}

/// Encodes a batch of input [`Tuple`]s as one columnar binary payload:
/// `u32` row count, `u16` arity, then tagged values column-major. The
/// client-upload mirror of [`encode_columns`] minus the stamp arrays
/// (inputs are unstamped). Every row must share the batch's arity;
/// callers chunk on arity boundaries.
pub fn encode_tuple_columns(batch: &[Tuple]) -> Vec<u8> {
    let rows = batch.len();
    let arity = batch.first().map_or(0, |t| t.values().len());
    debug_assert!(
        batch.iter().all(|t| t.values().len() == arity),
        "columnar upload frames require a uniform arity"
    );
    let mut out = Vec::with_capacity(6 + rows * arity * 9);
    out.extend_from_slice(&(rows as u32).to_le_bytes());
    out.extend_from_slice(&(arity as u16).to_le_bytes());
    for col in 0..arity {
        for t in batch {
            put_value(&mut out, &t.values()[col]);
        }
    }
    out
}

/// Decodes a columnar upload payload back into row-major [`Tuple`]s,
/// rejecting trailing garbage.
pub fn decode_tuple_columns(buf: &[u8]) -> Result<Vec<Tuple>, NetError> {
    let mut d = Dec::new(buf);
    let rows = d.u32()? as usize;
    let arity = d.u16()? as usize;
    // Bound the allocation by what the payload could actually hold:
    // every value is at least one tag byte (arity 0 still caps rows at
    // the payload length).
    if rows.saturating_mul(arity.max(1)) > buf.len() {
        return Err(NetError::malformed("columnar row count exceeds payload"));
    }
    let mut columns: Vec<Vec<Value>> = Vec::with_capacity(arity);
    for _ in 0..arity {
        let mut col = Vec::with_capacity(rows);
        for _ in 0..rows {
            col.push(get_value(&mut d)?);
        }
        columns.push(col);
    }
    d.finish()?;
    let mut batch = Vec::with_capacity(rows);
    for _ in 0..rows {
        let values = columns.iter_mut().map(|col| col.pop().unwrap()).collect();
        batch.push(Tuple::new(values));
    }
    batch.reverse();
    Ok(batch)
}

// ---------------------------------------------------------------------
// Frame construction / interpretation
// ---------------------------------------------------------------------

fn json_line<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("protocol frames are always serializable")
}

/// Client → server: one tuple frame.
pub fn encode_tuple_frame(t: &Tuple, format: WireFormat) -> WireFrame {
    match format {
        WireFormat::Binary => WireFrame::Binary {
            tag: TAG_TUPLE,
            payload: encode_tuple(t),
        },
        WireFormat::Ndjson => WireFrame::Line(json_line(&ClientLine {
            tuple: Some(t.clone()),
            end: None,
        })),
    }
}

/// Client → server: a batch of input tuples as one columnar frame.
/// Binary only — NDJSON sessions stay line-per-tuple — and every tuple
/// in the batch must share one arity (chunk on arity boundaries).
pub fn encode_tuple_columns_frame(batch: &[Tuple]) -> WireFrame {
    WireFrame::Binary {
        tag: TAG_TUPLE_COLUMNS,
        payload: encode_tuple_columns(batch),
    }
}

/// Client → server: the end-of-stream frame.
pub fn encode_end_frame(format: WireFormat) -> WireFrame {
    match format {
        WireFormat::Binary => WireFrame::Binary {
            tag: TAG_END,
            payload: Vec::new(),
        },
        WireFormat::Ndjson => WireFrame::Line(json_line(&ClientLine {
            tuple: None,
            end: Some(true),
        })),
    }
}

/// Server → client: one polluted stamped tuple.
pub fn encode_stamped_frame(t: &StampedTuple, format: WireFormat) -> WireFrame {
    match format {
        WireFormat::Binary => WireFrame::Binary {
            tag: TAG_STAMPED,
            payload: encode_stamped(t),
        },
        WireFormat::Ndjson => WireFrame::Line(json_line(&ServerLine {
            tuple: Some(t.clone()),
            ..ServerLine::default()
        })),
    }
}

/// Server → client: a batch of polluted stamped tuples as one columnar
/// frame. Binary only — NDJSON sessions fall back to per-tuple
/// [`encode_stamped_frame`] lines, so callers gate on the wire format.
pub fn encode_columns_frame(batch: &[StampedTuple]) -> WireFrame {
    WireFrame::Binary {
        tag: TAG_COLUMNS,
        payload: encode_columns(batch),
    }
}

/// Server → client: the final session report.
pub fn encode_report_frame(report: &RunReport, format: WireFormat) -> WireFrame {
    match format {
        WireFormat::Binary => WireFrame::Binary {
            tag: TAG_REPORT,
            payload: json_line(report).into_bytes(),
        },
        WireFormat::Ndjson => WireFrame::Line(json_line(&ServerLine {
            report: Some(report.clone()),
            ..ServerLine::default()
        })),
    }
}

/// Server → client: the session failed with a typed error.
pub fn encode_error_frame(error: &SessionErrorFrame, format: WireFormat) -> WireFrame {
    match format {
        WireFormat::Binary => WireFrame::Binary {
            tag: TAG_ERROR,
            payload: json_line(error).into_bytes(),
        },
        WireFormat::Ndjson => WireFrame::Line(json_line(&ServerLine {
            error: Some(error.clone()),
            ..ServerLine::default()
        })),
    }
}

/// Server → client: one periodic telemetry frame.
pub fn encode_telemetry_frame(frame: &TelemetryFrame, format: WireFormat) -> WireFrame {
    match format {
        WireFormat::Binary => WireFrame::Binary {
            tag: TAG_TELEMETRY,
            payload: json_line(frame).into_bytes(),
        },
        WireFormat::Ndjson => WireFrame::Line(json_line(&ServerLine {
            telemetry: Some(frame.clone()),
            ..ServerLine::default()
        })),
    }
}

/// Server side: interprets one client frame as a record or the end
/// marker. Anything else — unknown tag, undecodable payload, a
/// server-direction frame — is [`NetError::Malformed`].
pub fn decode_client_frame(frame: WireFrame) -> Result<NetPoll<Tuple>, NetError> {
    match frame {
        WireFrame::Binary {
            tag: TAG_TUPLE,
            payload,
        } => Ok(NetPoll::Record(decode_tuple(&payload)?)),
        WireFrame::Binary {
            tag: TAG_TUPLE_COLUMNS,
            payload,
        } => Ok(NetPoll::Batch(decode_tuple_columns(&payload)?)),
        WireFrame::Binary { tag: TAG_END, .. } => Ok(NetPoll::End),
        WireFrame::Binary { tag, .. } => Err(NetError::malformed(format!(
            "unexpected client frame tag {tag}"
        ))),
        WireFrame::Line(line) => {
            let parsed: ClientLine = serde_json::from_str(&line)
                .map_err(|e| NetError::malformed(format!("bad client line: {e}")))?;
            match (parsed.tuple, parsed.end) {
                (Some(t), _) => Ok(NetPoll::Record(t)),
                (None, Some(true)) => Ok(NetPoll::End),
                _ => Err(NetError::malformed(
                    "client line carries neither a tuple nor an end marker",
                )),
            }
        }
    }
}

/// Client side: interprets one server frame.
pub fn decode_server_frame(frame: WireFrame) -> Result<ServerEvent, NetError> {
    match frame {
        WireFrame::Binary {
            tag: TAG_STAMPED,
            payload,
        } => Ok(ServerEvent::Tuple(decode_stamped(&payload)?)),
        WireFrame::Binary {
            tag: TAG_COLUMNS,
            payload,
        } => Ok(ServerEvent::Batch(decode_columns(&payload)?)),
        WireFrame::Binary {
            tag: TAG_REPORT,
            payload,
        } => {
            let json = String::from_utf8(payload)
                .map_err(|_| NetError::malformed("report payload is not UTF-8"))?;
            let report: RunReport = serde_json::from_str(&json)
                .map_err(|e| NetError::malformed(format!("bad report payload: {e}")))?;
            Ok(ServerEvent::Report(Box::new(report)))
        }
        WireFrame::Binary {
            tag: TAG_ERROR,
            payload,
        } => {
            let json = String::from_utf8(payload)
                .map_err(|_| NetError::malformed("error payload is not UTF-8"))?;
            let error: SessionErrorFrame = serde_json::from_str(&json)
                .map_err(|e| NetError::malformed(format!("bad error payload: {e}")))?;
            Ok(ServerEvent::Error(error))
        }
        WireFrame::Binary {
            tag: TAG_TELEMETRY,
            payload,
        } => {
            let json = String::from_utf8(payload)
                .map_err(|_| NetError::malformed("telemetry payload is not UTF-8"))?;
            let frame: TelemetryFrame = serde_json::from_str(&json)
                .map_err(|e| NetError::malformed(format!("bad telemetry payload: {e}")))?;
            Ok(ServerEvent::Telemetry(Box::new(frame)))
        }
        WireFrame::Binary { tag, .. } => Err(NetError::malformed(format!(
            "unexpected server frame tag {tag}"
        ))),
        WireFrame::Line(line) => {
            let parsed: ServerLine = serde_json::from_str(&line)
                .map_err(|e| NetError::malformed(format!("bad server line: {e}")))?;
            if let Some(t) = parsed.tuple {
                Ok(ServerEvent::Tuple(t))
            } else if let Some(r) = parsed.report {
                Ok(ServerEvent::Report(Box::new(r)))
            } else if let Some(e) = parsed.error {
                Ok(ServerEvent::Error(e))
            } else if let Some(f) = parsed.telemetry {
                Ok(ServerEvent::Telemetry(Box::new(f)))
            } else {
                Err(NetError::malformed(
                    "server line carries neither tuple, report, error, nor telemetry",
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamped(id: u64, values: Vec<Value>) -> StampedTuple {
        let mut t = StampedTuple::new(id, Timestamp(id as i64 * 1000), Tuple::new(values));
        t.arrival = Timestamp(id as i64 * 1000 + 5);
        t.sub_stream = (id % 3) as u32;
        t
    }

    #[test]
    fn binary_tuple_round_trip() {
        let t = Tuple::new(vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(3.25),
            Value::Str("hℓlo".into()),
            Value::Timestamp(Timestamp(1_700_000_000_000)),
        ]);
        assert_eq!(decode_tuple(&encode_tuple(&t)).unwrap(), t);
    }

    #[test]
    fn binary_stamped_round_trip() {
        let t = stamped(7, vec![Value::Float(1.5), Value::Str("x".into())]);
        assert_eq!(decode_stamped(&encode_stamped(&t)).unwrap(), t);
    }

    #[test]
    fn truncated_and_trailing_payloads_are_malformed() {
        let t = stamped(1, vec![Value::Int(5)]);
        let mut bytes = encode_stamped(&t);
        bytes.pop();
        assert!(decode_stamped(&bytes).is_err(), "truncated");
        let mut bytes = encode_stamped(&t);
        bytes.push(0);
        assert!(decode_stamped(&bytes).is_err(), "trailing garbage");
        assert!(decode_tuple(&[9, 9]).is_err(), "bogus arity");
    }

    #[test]
    fn client_frames_round_trip_in_both_formats() {
        let t = Tuple::new(vec![Value::Int(1), Value::Float(2.0)]);
        for format in [WireFormat::Ndjson, WireFormat::Binary] {
            match decode_client_frame(encode_tuple_frame(&t, format)).unwrap() {
                NetPoll::Record(back) => assert_eq!(back, t),
                _ => panic!("tuple frame decoded as something else"),
            }
            assert!(matches!(
                decode_client_frame(encode_end_frame(format)).unwrap(),
                NetPoll::End
            ));
        }
    }

    #[test]
    fn tuple_columns_round_trip_and_reject_garbage() {
        let batch: Vec<Tuple> = (0..5)
            .map(|i| {
                Tuple::new(vec![
                    Value::Timestamp(Timestamp(i * 1000)),
                    if i == 3 {
                        Value::Null
                    } else {
                        Value::Float(i as f64)
                    },
                    Value::Str(format!("row{i}")),
                ])
            })
            .collect();
        let bytes = encode_tuple_columns(&batch);
        assert_eq!(decode_tuple_columns(&bytes).unwrap(), batch);
        match decode_client_frame(encode_tuple_columns_frame(&batch)).unwrap() {
            NetPoll::Batch(back) => assert_eq!(back, batch),
            _ => panic!("columnar upload frame decoded as something else"),
        }
        // Empty batches are legal (zero rows, zero arity).
        assert_eq!(
            decode_tuple_columns(&encode_tuple_columns(&[])).unwrap(),
            Vec::<Tuple>::new()
        );

        let mut truncated = encode_tuple_columns(&batch);
        truncated.pop();
        assert!(decode_tuple_columns(&truncated).is_err(), "truncated");
        let mut trailing = encode_tuple_columns(&batch);
        trailing.push(0);
        assert!(decode_tuple_columns(&trailing).is_err(), "trailing garbage");
        // A row count far beyond the payload must be rejected before
        // any allocation sized by it.
        let mut bogus = Vec::new();
        bogus.extend_from_slice(&u32::MAX.to_le_bytes());
        bogus.extend_from_slice(&1u16.to_le_bytes());
        assert!(decode_tuple_columns(&bogus).is_err(), "bogus row count");
    }

    #[test]
    fn server_frames_round_trip_in_both_formats() {
        let t = stamped(3, vec![Value::Float(9.5)]);
        for format in [WireFormat::Ndjson, WireFormat::Binary] {
            match decode_server_frame(encode_stamped_frame(&t, format)).unwrap() {
                ServerEvent::Tuple(back) => assert_eq!(back, t),
                other => panic!("stamped frame decoded as {other:?}"),
            }
            let report = RunReport {
                tuples_in: 10,
                tuples_out: 12,
                ..RunReport::default()
            };
            match decode_server_frame(encode_report_frame(&report, format)).unwrap() {
                ServerEvent::Report(back) => {
                    assert_eq!(back.tuples_in, 10);
                    assert_eq!(back.tuples_out, 12);
                }
                other => panic!("report frame decoded as {other:?}"),
            }
            let error = SessionErrorFrame {
                stage: "stage/03_source".into(),
                kind: "disconnect".into(),
                message: "peer disconnected mid-stream".into(),
                protocol: Some("disconnected".into()),
            };
            match decode_server_frame(encode_error_frame(&error, format)).unwrap() {
                ServerEvent::Error(back) => {
                    assert_eq!(back.kind, "disconnect");
                    assert_eq!(back.protocol.as_deref(), Some("disconnected"));
                }
                other => panic!("error frame decoded as {other:?}"),
            }
        }
    }

    #[test]
    fn columnar_batch_round_trips_and_rejects_garbage() {
        let batch: Vec<StampedTuple> = (0..5)
            .map(|i| {
                stamped(
                    i,
                    vec![
                        Value::Float(i as f64 * 1.5),
                        if i == 2 {
                            Value::Null
                        } else {
                            Value::Int(i as i64)
                        },
                        Value::Str(format!("row{i}")),
                    ],
                )
            })
            .collect();
        assert_eq!(decode_columns(&encode_columns(&batch)).unwrap(), batch);
        // Empty batches are legal (rows = 0, arity = 0).
        assert_eq!(decode_columns(&encode_columns(&[])).unwrap(), vec![]);
        // Truncation and trailing garbage are both malformed.
        let mut bytes = encode_columns(&batch);
        bytes.pop();
        assert!(decode_columns(&bytes).is_err(), "truncated");
        let mut bytes = encode_columns(&batch);
        bytes.push(0);
        assert!(decode_columns(&bytes).is_err(), "trailing garbage");
        // A row count the payload cannot hold must not allocate.
        assert!(decode_columns(&u32::MAX.to_le_bytes()).is_err());
        // The frame decodes as a Batch event.
        match decode_server_frame(encode_columns_frame(&batch)).unwrap() {
            ServerEvent::Batch(back) => assert_eq!(back, batch),
            other => panic!("columnar frame decoded as {other:?}"),
        }
    }

    #[test]
    fn telemetry_frames_round_trip_in_both_formats() {
        let frame = TelemetryFrame {
            seq: 3,
            at_ms: 1500,
            interval_ms: 250,
            delta: None,
            sessions: vec![SessionTelemetry {
                id: 7,
                kind: "pollute".into(),
                format: "binary".into(),
                repr: "columnar".into(),
                frames_in: 100,
                frames_out: 120,
                bytes_out: 4096,
                encode_ns: 900,
                blocked_write_ns: 40,
            }],
        };
        for format in [WireFormat::Ndjson, WireFormat::Binary] {
            match decode_server_frame(encode_telemetry_frame(&frame, format)).unwrap() {
                ServerEvent::Telemetry(back) => {
                    assert_eq!(back.seq, 3);
                    assert_eq!(back.interval_ms, 250);
                    assert_eq!(back.sessions, frame.sessions);
                }
                other => panic!("telemetry frame decoded as {other:?}"),
            }
        }
    }

    #[test]
    fn handshake_session_type_defaults_to_pollute() {
        let hs: Handshake = serde_json::from_str(r#"{"plan":"noise"}"#).unwrap();
        assert!(hs.session.is_none());
        let hs: Handshake = serde_json::from_str(r#"{"session":"telemetry"}"#).unwrap();
        assert_eq!(hs.session.as_deref(), Some("telemetry"));
    }

    #[test]
    fn garbage_client_frames_are_malformed() {
        assert!(decode_client_frame(WireFrame::Line("not json".into())).is_err());
        assert!(decode_client_frame(WireFrame::Line("{}".into())).is_err());
        assert!(decode_client_frame(WireFrame::Binary {
            tag: 99,
            payload: Vec::new()
        })
        .is_err());
        assert!(decode_client_frame(WireFrame::Binary {
            tag: TAG_TUPLE,
            payload: vec![0xff]
        })
        .is_err());
    }

    #[test]
    fn handshake_parses_with_defaults() {
        let hs: Handshake = serde_json::from_str(r#"{"plan":"noise"}"#).unwrap();
        assert_eq!(hs.plan.as_deref(), Some("noise"));
        assert_eq!(hs.wire_format().unwrap(), WireFormat::Ndjson);
        let hs: Handshake = serde_json::from_str(r#"{"plan":"p","format":"binary"}"#).unwrap();
        assert_eq!(hs.wire_format().unwrap(), WireFormat::Binary);
        let hs: Handshake = serde_json::from_str(r#"{"format":"xml"}"#).unwrap();
        assert!(hs.wire_format().is_err());
    }
}
