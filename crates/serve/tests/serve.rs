//! End-to-end tests for the streaming server: served-vs-offline
//! identity, protocol robustness (malformed / oversized / disconnect),
//! capacity limits, and concurrent sessions with a slow reader.

use icewafl_core::config::{ConditionConfig, ErrorConfig, PolluterConfig};
use icewafl_core::plan::LogicalPlan;
use icewafl_core::PlanCatalog;
use icewafl_serve::{client, ClientConfig, Handshake, ServeConfig, Server};
use icewafl_types::{DataType, Schema, Timestamp, Tuple, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

fn schema() -> Schema {
    Schema::from_pairs([("Time", DataType::Timestamp), ("x", DataType::Float)]).unwrap()
}

fn plan(seed: u64) -> LogicalPlan {
    LogicalPlan::new(
        seed,
        vec![
            vec![PolluterConfig::Standard {
                name: "noise".into(),
                attributes: vec!["x".into()],
                error: ErrorConfig::GaussianNoise {
                    sigma: 2.0,
                    relative: false,
                },
                condition: ConditionConfig::Probability { p: 0.5 },
                pattern: None,
            }],
            vec![PolluterConfig::Standard {
                name: "null".into(),
                attributes: vec!["x".into()],
                error: ErrorConfig::MissingValue,
                condition: ConditionConfig::Probability { p: 0.2 },
                pattern: None,
            }],
        ],
    )
}

fn tuples(n: usize) -> Vec<Tuple> {
    (0..n as i64)
        .map(|i| {
            Tuple::new(vec![
                Value::Timestamp(Timestamp(i * 1000)),
                Value::Float(i as f64 / 7.0),
            ])
        })
        .collect()
}

fn handshake(format: &str) -> Handshake {
    Handshake {
        plan_inline: Some(plan(42)),
        schema_inline: Some(schema()),
        format: Some(format.into()),
        ..Handshake::default()
    }
}

struct TestServer {
    server: Arc<Server>,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<icewafl_types::Result<()>>>,
}

impl TestServer {
    fn start(config: ServeConfig) -> Self {
        let server = Arc::new(Server::bind(config).unwrap());
        let shutdown = server.shutdown_handle();
        let runner = Arc::clone(&server);
        let handle = std::thread::spawn(move || runner.run());
        TestServer {
            server,
            shutdown,
            handle: Some(handle),
        }
    }

    fn addr(&self) -> String {
        self.server.local_addr().to_string()
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            handle.join().unwrap().unwrap();
        }
    }
}

/// A raw protocol peer for misbehaving on purpose.
struct RawClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RawClient {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        RawClient { stream, reader }
    }

    fn send_line(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
        self.stream.flush().unwrap();
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        line
    }

    /// Reads server lines until one carries an `error` object; panics
    /// on a report (the session was supposed to fail).
    fn read_until_error_line(&mut self) -> String {
        loop {
            let line = self.read_line();
            assert!(!line.is_empty(), "server closed without a tail frame");
            if line.contains("\"error\"") && !line.contains("\"error\":null") {
                return line;
            }
            assert!(
                !line.contains("\"report\":{"),
                "session unexpectedly completed: {line}"
            );
        }
    }
}

#[test]
fn served_output_is_byte_identical_to_offline() {
    let input = tuples(300);
    let offline = plan(42)
        .compile(&schema())
        .unwrap()
        .execute(input.clone())
        .unwrap();

    let server = TestServer::start(ServeConfig::default());
    for format in ["ndjson", "binary"] {
        let outcome = client::run_session(
            &ClientConfig::new(server.addr(), handshake(format)),
            input.clone(),
        )
        .unwrap();
        assert!(outcome.completed(), "session failed: {:?}", outcome.error);
        assert_eq!(outcome.tuples, offline.polluted, "format {format}");
        // Byte-identical, not merely equal: the serialized streams match.
        let served = serde_json::to_string(&outcome.tuples).unwrap();
        let reference = serde_json::to_string(&offline.polluted).unwrap();
        assert_eq!(served, reference, "format {format}");
        let report = outcome.report.unwrap();
        assert_eq!(report.tuples_in, 300);
        assert_eq!(report.tuples_out, outcome.tuples.len() as u64);
    }
}

#[test]
fn preloaded_plans_are_selectable_by_name() {
    let mut plans = PlanCatalog::new();
    plans.insert("noise", plan(42));
    let server = TestServer::start(ServeConfig {
        plans,
        ..ServeConfig::default()
    });

    let offline = plan(42)
        .compile(&schema())
        .unwrap()
        .execute(tuples(50))
        .unwrap();
    let hs = Handshake {
        plan: Some("noise".into()),
        schema_inline: Some(schema()),
        ..Handshake::default()
    };
    let outcome = client::run_session(&ClientConfig::new(server.addr(), hs), tuples(50)).unwrap();
    assert!(outcome.completed());
    assert_eq!(outcome.tuples, offline.polluted);

    // An unknown name is rejected at handshake time with the catalog
    // listing.
    let hs = Handshake {
        plan: Some("ghost".into()),
        schema_inline: Some(schema()),
        ..Handshake::default()
    };
    let outcome = client::run_session(&ClientConfig::new(server.addr(), hs), vec![]).unwrap();
    assert!(!outcome.reply.ok);
    let reason = outcome.reply.error.unwrap();
    assert!(
        reason.contains("ghost") && reason.contains("noise"),
        "{reason}"
    );
}

#[test]
fn malformed_frame_kills_only_its_session() {
    let server = TestServer::start(ServeConfig::default());

    let mut bad = RawClient::connect(&server.addr());
    bad.send_line(&serde_json::to_string(&handshake("ndjson")).unwrap());
    assert!(bad.read_line().contains("\"ok\":true"));
    bad.send_line("this is not a frame");
    let error_line = bad.read_until_error_line();
    assert!(error_line.contains("\"kind\":\"fatal\""), "{error_line}");
    assert!(
        error_line.contains("\"protocol\":\"malformed\""),
        "{error_line}"
    );

    // The server is still healthy: a fresh session completes normally.
    let outcome = client::run_session(
        &ClientConfig::new(server.addr(), handshake("ndjson")),
        tuples(20),
    )
    .unwrap();
    assert!(outcome.completed());
}

#[test]
fn oversized_frame_is_rejected_with_a_typed_error() {
    // The cap must leave room for the handshake line (which carries an
    // inline plan) while rejecting the oversized data frame below.
    let server = TestServer::start(ServeConfig {
        max_frame_bytes: 4096,
        ..ServeConfig::default()
    });

    let mut big = RawClient::connect(&server.addr());
    big.send_line(&serde_json::to_string(&handshake("ndjson")).unwrap());
    assert!(big.read_line().contains("\"ok\":true"));
    big.send_line(&format!(
        "{{\"tuple\":{{\"values\":[\"{}\"]}}}}",
        "x".repeat(8192)
    ));
    let error_line = big.read_until_error_line();
    assert!(
        error_line.contains("\"protocol\":\"oversized\""),
        "{error_line}"
    );
}

#[test]
fn mid_stream_disconnect_poisons_only_that_session() {
    let server = TestServer::start(ServeConfig::default());

    let mut flaky = RawClient::connect(&server.addr());
    flaky.send_line(&serde_json::to_string(&handshake("ndjson")).unwrap());
    assert!(flaky.read_line().contains("\"ok\":true"));
    flaky.send_line("{\"tuple\":{\"values\":[0,1.0]}}");
    // Half-close: no end frame will ever arrive, but the read side
    // stays open to observe the server's typed reaction.
    flaky.stream.shutdown(std::net::Shutdown::Write).unwrap();
    let error_line = flaky.read_until_error_line();
    assert!(
        error_line.contains("\"kind\":\"disconnect\""),
        "{error_line}"
    );
    assert!(
        error_line.contains("\"protocol\":\"disconnected\""),
        "{error_line}"
    );

    let outcome = client::run_session(
        &ClientConfig::new(server.addr(), handshake("binary")),
        tuples(20),
    )
    .unwrap();
    assert!(outcome.completed(), "healthy session after disconnect");
}

#[test]
fn capacity_overflow_is_rejected_at_handshake() {
    let server = TestServer::start(ServeConfig {
        max_sessions: 1,
        ..ServeConfig::default()
    });

    // Occupy the only slot without finishing the session.
    let mut holder = RawClient::connect(&server.addr());
    holder.send_line(&serde_json::to_string(&handshake("ndjson")).unwrap());
    assert!(holder.read_line().contains("\"ok\":true"));

    // The next connection is turned away before plan compilation.
    let rejected = loop {
        let outcome = client::run_session(
            &ClientConfig::new(server.addr(), handshake("ndjson")),
            vec![],
        )
        .unwrap();
        // The holder's session thread may still be starting; only a
        // capacity rejection ends the loop.
        if !outcome.reply.ok {
            break outcome;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(rejected.reply.error.unwrap().contains("capacity"));

    // Release the slot; the server accepts sessions again.
    holder.send_line("{\"end\":true}");
    drop(holder);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let outcome = client::run_session(
            &ClientConfig::new(server.addr(), handshake("ndjson")),
            tuples(5),
        )
        .unwrap();
        if outcome.completed() {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "slot never freed");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn concurrent_sessions_with_a_slow_reader_do_not_interfere() {
    let input = tuples(400);
    let offline = plan(42)
        .compile(&schema())
        .unwrap()
        .execute(input.clone())
        .unwrap();

    let server = TestServer::start(ServeConfig {
        max_sessions: 8,
        ..ServeConfig::default()
    });

    let workers: Vec<_> = (0..8)
        .map(|i| {
            let addr = server.addr();
            let input = input.clone();
            std::thread::spawn(move || {
                let format = if i % 2 == 0 { "binary" } else { "ndjson" };
                let mut config = ClientConfig::new(addr, handshake(format));
                if i == 0 {
                    // One deliberately slow reader: backpressure must
                    // throttle its session, not break it or the others.
                    config.slow_reader = Some(Duration::from_millis(2));
                }
                client::run_session(&config, input).unwrap()
            })
        })
        .collect();

    for worker in workers {
        let outcome = worker.join().unwrap();
        assert!(outcome.completed(), "session failed: {:?}", outcome.error);
        assert_eq!(outcome.tuples, offline.polluted);
    }

    let snapshot = server.server.registry().snapshot();
    if !snapshot.is_empty() {
        assert_eq!(snapshot.counter("serve/sessions_completed"), 8);
        assert_eq!(snapshot.counter("serve/sessions_failed"), 0);
        assert_eq!(snapshot.gauge("serve/sessions_active"), 0);
    }
}

#[test]
fn telemetry_session_streams_periodic_frames_with_session_table() {
    let server = TestServer::start(ServeConfig {
        telemetry_interval_ms: 25,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // Hold a pollute session open: handshake, feed two tuples, but no
    // end marker yet — the session stays in the telemetry table while
    // the subscriber below watches it.
    let mut pollute = RawClient::connect(&addr);
    pollute.send_line(&serde_json::to_string(&handshake("ndjson")).unwrap());
    let reply = pollute.read_line();
    assert!(reply.contains("\"ok\":true"), "handshake failed: {reply}");
    pollute.send_line("{\"tuple\":{\"values\":[0,1.0]}}");
    pollute.send_line("{\"tuple\":{\"values\":[1,2.0]}}");

    // Subscribe for four frames (~100ms at a 25ms interval).
    let frames = client::subscribe_telemetry(&addr, None, 4).unwrap();
    assert!(frames.len() >= 2, "got {} frames", frames.len());
    assert_eq!(frames[0].seq, 1);
    assert!(frames.windows(2).all(|w| w[1].seq == w[0].seq + 1));
    assert!(frames.iter().all(|f| f.interval_ms == 25));
    assert!(frames.windows(2).all(|w| w[1].at_ms >= w[0].at_ms));

    let last = frames.last().unwrap();
    // The subscriber sees itself, with its own transfer counters
    // advancing as frames go out.
    let own = last
        .sessions
        .iter()
        .find(|s| s.kind == "telemetry")
        .expect("telemetry session lists itself");
    assert!(own.frames_out >= 1, "telemetry row: {own:?}");
    assert!(own.bytes_out > 0, "telemetry row: {own:?}");
    assert_eq!(own.repr, "-", "telemetry sessions run no plan: {own:?}");
    // The held-open pollute session appears with its live counters; the
    // timing-dependent ones are only read, not asserted.
    let pollute_row = last
        .sessions
        .iter()
        .find(|s| s.kind == "pollute")
        .expect("pollute session in the table");
    assert!(pollute_row.frames_in >= 1, "pollute row: {pollute_row:?}");
    // The table distinguishes wire format and batch representation per
    // session: the test plan is all value polluters, so it compiles
    // columnar.
    assert_eq!(pollute_row.format, "ndjson", "pollute row: {pollute_row:?}");
    assert_eq!(pollute_row.repr, "columnar", "pollute row: {pollute_row:?}");
    let _ = pollute_row.bytes_out + pollute_row.encode_ns + pollute_row.blocked_write_ns;

    // With metrics compiled in, the sampler fed at least one registry
    // delta across the observed window.
    #[cfg(feature = "obs")]
    assert!(
        frames.iter().any(|f| f.delta.is_some()),
        "no sampler delta in any frame"
    );

    // Finish the pollute session cleanly.
    pollute.send_line("{\"end\":true}");
    loop {
        let line = pollute.read_line();
        assert!(!line.is_empty(), "server closed without a report");
        if line.contains("\"report\"") && !line.contains("\"report\":null") {
            break;
        }
    }
}

mod codec_properties {
    use icewafl_serve::protocol::{decode_stamped, decode_tuple, encode_stamped, encode_tuple};
    use icewafl_types::{StampedTuple, Timestamp, Tuple, Value};
    use proptest::prelude::*;

    /// Deterministically builds a tuple mixing every value type from a
    /// seed — the vendored proptest drives the seeds, the mapping
    /// supplies the structural variety.
    fn tuple_from(seed: u64, arity: usize) -> Tuple {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let values = (0..arity)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                match state % 6 {
                    0 => Value::Null,
                    1 => Value::Bool(state & 64 != 0),
                    2 => Value::Int(state as i64),
                    3 => Value::Float(
                        f64::from_bits((state & 0x000F_FFFF_FFFF_FFFF) | 0x3FF0_0000_0000_0000)
                            - 1.5,
                    ),
                    4 => Value::Str(format!("s{:x}", state & 0xFFFF)),
                    _ => Value::Timestamp(Timestamp(state as i64 >> 16)),
                }
            })
            .collect();
        Tuple::new(values)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn tuple_codec_round_trips(seed in 0u64..u64::MAX, arity in 0usize..12) {
            let tuple = tuple_from(seed, arity);
            prop_assert_eq!(decode_tuple(&encode_tuple(&tuple)).unwrap(), tuple);
        }

        #[test]
        fn stamped_codec_round_trips(
            seed in 0u64..u64::MAX,
            arity in 0usize..12,
            id in 0u64..u64::MAX,
            tau in -1_000_000_000_000i64..1_000_000_000_000,
            delay in 0i64..100_000,
            sub in 0u32..16,
        ) {
            let mut stamped = StampedTuple::new(id, Timestamp(tau), tuple_from(seed, arity));
            stamped.arrival = Timestamp(tau + delay);
            stamped.sub_stream = sub;
            prop_assert_eq!(decode_stamped(&encode_stamped(&stamped)).unwrap(), stamped);
        }

        #[test]
        fn truncation_never_round_trips_silently(seed in 0u64..u64::MAX, arity in 1usize..8) {
            let tuple = tuple_from(seed, arity);
            let bytes = encode_tuple(&tuple);
            // Chopping any strict prefix must error, never decode.
            let cut = bytes.len() - 1;
            prop_assert!(decode_tuple(&bytes[..cut]).is_err());
        }
    }
}

#[test]
fn binary_sessions_stream_columnar_batch_frames() {
    // Binary sessions encode whole output batches as single columnar
    // frames (TAG_COLUMNS). Speak the protocol raw to see the actual
    // frame tags, and check the reassembled stream is still identical
    // to the offline reference.
    use icewafl_serve::protocol::{
        decode_server_frame, encode_end_frame, encode_tuple_frame, ServerEvent, TAG_COLUMNS,
    };
    use icewafl_stream::net::{FrameReader, FrameWriter, WireFormat, WireFrame};

    let input = tuples(300);
    let offline = plan(42)
        .compile(&schema())
        .unwrap()
        .execute(input.clone())
        .unwrap();

    let server = TestServer::start(ServeConfig::default());
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut hs_line = serde_json::to_string(&handshake("binary")).unwrap();
    hs_line.push('\n');
    (&stream).write_all(hs_line.as_bytes()).unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"ok\":true"), "rejected: {reply}");

    let writer_stream = stream.try_clone().unwrap();
    let writer = std::thread::spawn(move || {
        let mut w = FrameWriter::new(writer_stream, WireFormat::Binary);
        for t in &input {
            w.write(&encode_tuple_frame(t, WireFormat::Binary)).unwrap();
        }
        w.write(&encode_end_frame(WireFormat::Binary)).unwrap();
        w.flush().unwrap();
    });

    let mut reader = FrameReader::new(reader, WireFormat::Binary, 1 << 20);
    let mut columnar_frames = 0usize;
    let mut got = Vec::new();
    loop {
        let frame = reader.read().unwrap().expect("server closed early");
        if matches!(frame, WireFrame::Binary { tag, .. } if tag == TAG_COLUMNS) {
            columnar_frames += 1;
        }
        match decode_server_frame(frame).unwrap() {
            ServerEvent::Tuple(t) => got.push(t),
            ServerEvent::Batch(batch) => got.extend(batch),
            ServerEvent::Report(_) => break,
            other => panic!("unexpected frame: {other:?}"),
        }
    }
    writer.join().unwrap();
    assert!(
        columnar_frames > 0,
        "a batched binary session must emit columnar frames"
    );
    assert!(
        columnar_frames < got.len(),
        "columnar frames carry many tuples each"
    );
    assert_eq!(got, offline.polluted, "reassembled stream is identical");
}

#[test]
fn sessions_opt_into_checkpointing_via_their_plan() {
    // A streaming session cannot be restored (its source is the
    // connection), but a plan with a checkpoint section still commits
    // epoch-aligned frames — visible in the report — without changing
    // a single output byte.
    let input = tuples(300);
    let offline = plan(42)
        .compile(&schema())
        .unwrap()
        .execute(input.clone())
        .unwrap();

    let mut ckpt_plan = plan(42);
    ckpt_plan.watermark_period = 32;
    ckpt_plan.checkpoint = Some(icewafl_core::config::CheckpointSectionConfig {
        dir: None,
        interval_epochs: 1,
    });
    let server = TestServer::start(ServeConfig::default());
    let hs = Handshake {
        plan_inline: Some(ckpt_plan),
        schema_inline: Some(schema()),
        format: Some("binary".into()),
        ..Handshake::default()
    };
    let outcome = client::run_session(&ClientConfig::new(server.addr(), hs), input).unwrap();
    assert!(outcome.completed(), "session failed: {:?}", outcome.error);
    assert_eq!(
        outcome.tuples, offline.polluted,
        "checkpointing is a pure observer"
    );
    let report = outcome.report.unwrap();
    assert!(
        report.checkpoints_taken > 0,
        "frames committed: {}",
        report.checkpoints_taken
    );
    assert_eq!(report.restored_from_epoch, 0, "streaming never restores");
}

#[test]
fn concurrent_checkpointing_sessions_get_separate_wals() {
    // Two sessions running the same plan against the same checkpoint
    // directory must not overwrite each other's WAL: the server scopes
    // each session into its own subdirectory.
    let dir = std::env::temp_dir().join(format!("icewafl-serve-wal-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut ckpt_plan = plan(42);
    ckpt_plan.watermark_period = 32;
    ckpt_plan.checkpoint = Some(icewafl_core::config::CheckpointSectionConfig {
        dir: Some(dir.to_string_lossy().into_owned()),
        interval_epochs: 1,
    });
    let offline = plan(42)
        .compile(&schema())
        .unwrap()
        .execute(tuples(300))
        .unwrap();

    let server = TestServer::start(ServeConfig {
        max_sessions: 2,
        ..ServeConfig::default()
    });
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let hs = Handshake {
                plan_inline: Some(ckpt_plan.clone()),
                schema_inline: Some(schema()),
                format: Some("binary".into()),
                ..Handshake::default()
            };
            let config = ClientConfig::new(server.addr(), hs);
            std::thread::spawn(move || client::run_session(&config, tuples(300)).unwrap())
        })
        .collect();
    for worker in workers {
        let outcome = worker.join().unwrap();
        assert!(outcome.completed(), "session failed: {:?}", outcome.error);
        assert_eq!(outcome.tuples, offline.polluted, "sessions are isolated");
        assert!(outcome.report.unwrap().checkpoints_taken > 0);
    }

    let mut wals: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().join("checkpoint.wal").is_file())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    wals.sort();
    assert_eq!(
        wals.len(),
        2,
        "each session writes its own WAL subdirectory: {wals:?}"
    );
    for name in &wals {
        assert!(
            name.starts_with("session_"),
            "per-session subdirectory naming: {name}"
        );
        let len = std::fs::metadata(dir.join(name).join("checkpoint.wal"))
            .unwrap()
            .len();
        assert!(len > 0, "WAL {name} has committed frames");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
