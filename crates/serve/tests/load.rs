//! Many-session load tests for the event-driven server: hundreds of
//! concurrent sessions byte-identical to offline, per-session error
//! isolation at scale, shared-stream fan-out, and tolerance to
//! arbitrarily fragmented reads. This file doubles as the CI serve load
//! smoke (run in both the default and `--no-default-features`
//! matrices).

use icewafl_core::config::{ConditionConfig, ErrorConfig, PolluterConfig};
use icewafl_core::plan::LogicalPlan;
use icewafl_serve::{client, ClientConfig, Handshake, ServeConfig, Server};
use icewafl_types::{DataType, Schema, Timestamp, Tuple, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

fn schema() -> Schema {
    Schema::from_pairs([("Time", DataType::Timestamp), ("x", DataType::Float)]).unwrap()
}

fn plan(seed: u64) -> LogicalPlan {
    LogicalPlan::new(
        seed,
        vec![
            vec![PolluterConfig::Standard {
                name: "noise".into(),
                attributes: vec!["x".into()],
                error: ErrorConfig::GaussianNoise {
                    sigma: 2.0,
                    relative: false,
                },
                condition: ConditionConfig::Probability { p: 0.5 },
                pattern: None,
            }],
            vec![PolluterConfig::Standard {
                name: "null".into(),
                attributes: vec!["x".into()],
                error: ErrorConfig::MissingValue,
                condition: ConditionConfig::Probability { p: 0.2 },
                pattern: None,
            }],
        ],
    )
}

fn tuples(n: usize) -> Vec<Tuple> {
    (0..n as i64)
        .map(|i| {
            Tuple::new(vec![
                Value::Timestamp(Timestamp(i * 1000)),
                Value::Float(i as f64 / 7.0),
            ])
        })
        .collect()
}

fn handshake(format: &str) -> Handshake {
    Handshake {
        plan_inline: Some(plan(42)),
        schema_inline: Some(schema()),
        format: Some(format.into()),
        ..Handshake::default()
    }
}

struct TestServer {
    server: Arc<Server>,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<icewafl_types::Result<()>>>,
}

impl TestServer {
    fn start(config: ServeConfig) -> Self {
        let server = Arc::new(Server::bind(config).unwrap());
        let shutdown = server.shutdown_handle();
        let runner = Arc::clone(&server);
        let handle = std::thread::spawn(move || runner.run());
        TestServer {
            server,
            shutdown,
            handle: Some(handle),
        }
    }

    fn addr(&self) -> String {
        self.server.local_addr().to_string()
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            handle.join().unwrap().unwrap();
        }
    }
}

/// The CI load smoke: 256 concurrent sessions — slow readers included —
/// every one byte-identical to the offline run of the same plan.
#[test]
fn load_smoke_256_sessions_byte_identical_to_offline() {
    const SESSIONS: usize = 256;
    let input = tuples(120);
    let offline = plan(42)
        .compile(&schema())
        .unwrap()
        .execute(input.clone())
        .unwrap();
    let offline_bytes = serde_json::to_string(&offline.polluted).unwrap();

    let server = TestServer::start(ServeConfig {
        max_sessions: SESSIONS + 8,
        ..ServeConfig::default()
    });

    let workers: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let addr = server.addr();
            let input = input.clone();
            std::thread::spawn(move || {
                // Stagger connects so the listener backlog (128) is
                // never the thing under test.
                std::thread::sleep(Duration::from_millis((i % 32) as u64));
                let format = if i % 4 == 0 { "ndjson" } else { "binary" };
                let mut config = ClientConfig::new(addr, handshake(format));
                if i % 64 == 0 {
                    // A sprinkling of slow readers: their backpressure
                    // parks their own state machine, nothing else.
                    config.slow_reader = Some(Duration::from_millis(1));
                }
                client::run_session(&config, input).unwrap()
            })
        })
        .collect();

    for worker in workers {
        let outcome = worker.join().unwrap();
        assert!(outcome.completed(), "session failed: {:?}", outcome.error);
        let served = serde_json::to_string(&outcome.tuples).unwrap();
        assert_eq!(served, offline_bytes, "served bytes diverged from offline");
    }

    let snapshot = server.server.registry().snapshot();
    if !snapshot.is_empty() {
        assert_eq!(
            snapshot.counter("serve/sessions_completed"),
            SESSIONS as u64
        );
        assert_eq!(snapshot.counter("serve/sessions_failed"), 0);
        assert_eq!(snapshot.gauge("serve/sessions_active"), 0);
    }
}

/// One malformed, one oversized, and one mid-stream-disconnecting
/// session die alone: 100+ sibling sessions sharing the event loop all
/// finish byte-identical to offline.
#[test]
fn bad_sessions_kill_only_themselves_among_100_siblings() {
    const SIBLINGS: usize = 104;
    let input = tuples(100);
    let offline = plan(42)
        .compile(&schema())
        .unwrap()
        .execute(input.clone())
        .unwrap();

    let server = TestServer::start(ServeConfig {
        max_sessions: SIBLINGS + 8,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let siblings: Vec<_> = (0..SIBLINGS)
        .map(|i| {
            let addr = addr.clone();
            let input = input.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis((i % 16) as u64));
                let format = if i % 2 == 0 { "binary" } else { "ndjson" };
                client::run_session(&ClientConfig::new(addr, handshake(format)), input).unwrap()
            })
        })
        .collect();

    // While the siblings run, misbehave three ways.
    let hs_line = serde_json::to_string(&handshake("ndjson")).unwrap();

    // 1. Malformed data frame.
    let mut malformed = TcpStream::connect(&addr).unwrap();
    malformed.write_all(hs_line.as_bytes()).unwrap();
    malformed.write_all(b"\n").unwrap();
    let mut reply = String::new();
    BufReader::new(malformed.try_clone().unwrap())
        .read_line(&mut reply)
        .unwrap();
    assert!(reply.contains("\"ok\":true"), "handshake failed: {reply}");
    malformed.write_all(b"this is not json\n").unwrap();
    malformed.flush().unwrap();
    let mut tail = String::new();
    BufReader::new(malformed.try_clone().unwrap())
        .read_to_string(&mut tail)
        .unwrap();
    assert!(
        tail.contains("\"protocol\":\"malformed\""),
        "expected a malformed-protocol error frame, got: {tail}"
    );

    // 2. Oversized frame: a line bigger than the 1 MiB default cap.
    let mut oversized = TcpStream::connect(&addr).unwrap();
    oversized.write_all(hs_line.as_bytes()).unwrap();
    oversized.write_all(b"\n").unwrap();
    let mut reply = String::new();
    BufReader::new(oversized.try_clone().unwrap())
        .read_line(&mut reply)
        .unwrap();
    assert!(reply.contains("\"ok\":true"), "handshake failed: {reply}");
    let long_line = format!(
        "{{\"tuple\":{{\"values\":[\"{}\"]}}}}\n",
        "9".repeat(2 * 1024 * 1024)
    );
    let _ = oversized.write_all(long_line.as_bytes());
    let _ = oversized.flush();
    let mut tail = String::new();
    let _ = BufReader::new(oversized.try_clone().unwrap()).read_to_string(&mut tail);
    assert!(
        tail.contains("\"protocol\":\"oversized\""),
        "expected an oversized-protocol error frame, got: {tail}"
    );

    // 3. Mid-stream disconnect: handshake, send one frame, vanish.
    let mut vanishing = TcpStream::connect(&addr).unwrap();
    vanishing.write_all(hs_line.as_bytes()).unwrap();
    vanishing.write_all(b"\n").unwrap();
    let mut reply = String::new();
    BufReader::new(vanishing.try_clone().unwrap())
        .read_line(&mut reply)
        .unwrap();
    assert!(reply.contains("\"ok\":true"), "handshake failed: {reply}");
    vanishing
        .write_all(b"{\"tuple\":{\"values\":[0,1.0]}}\n")
        .unwrap();
    drop(vanishing);

    // Every sibling is untouched.
    for sibling in siblings {
        let outcome = sibling.join().unwrap();
        assert!(outcome.completed(), "sibling failed: {:?}", outcome.error);
        assert_eq!(outcome.tuples, offline.polluted);
    }
    let snapshot = server.server.registry().snapshot();
    if !snapshot.is_empty() {
        assert_eq!(
            snapshot.counter("serve/sessions_completed"),
            SIBLINGS as u64
        );
    }
}

/// Shared-stream fan-out on Linux: one publisher, many subscribers, all
/// of them receiving the publisher's exact output (the frames are
/// encoded once and shared). Elsewhere the fallback server rejects
/// subscribe sessions, which this test accepts as the documented
/// non-Linux behavior.
#[test]
fn shared_stream_fans_out_to_subscribers() {
    const SUBSCRIBERS: usize = 12;
    let input = tuples(200);
    let offline = plan(42)
        .compile(&schema())
        .unwrap()
        .execute(input.clone())
        .unwrap();

    let server = TestServer::start(ServeConfig {
        max_sessions: SUBSCRIBERS + 4,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // Subscribers first: they park until the publisher's frames arrive.
    let subs: Vec<_> = (0..SUBSCRIBERS)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let hs = Handshake {
                    session: Some("subscribe".into()),
                    stream: Some("load-test".into()),
                    format: Some("binary".into()),
                    ..Handshake::default()
                };
                client::run_session(&ClientConfig::new(addr, hs), Vec::new())
            })
        })
        .collect();
    // Give the subscribers time to attach: the hub is retired when the
    // publisher closes, so late subscribers would miss the stream.
    std::thread::sleep(Duration::from_millis(150));

    let publisher_hs = Handshake {
        stream: Some("load-test".into()),
        ..handshake("binary")
    };
    let publisher =
        client::run_session(&ClientConfig::new(addr.clone(), publisher_hs), input).unwrap();

    if !publisher.reply.ok {
        // The thread-per-session fallback (non-Linux) has no hubs.
        if cfg!(target_os = "linux") {
            panic!("publisher rejected on Linux: {:?}", publisher.reply.error);
        }
        for sub in subs {
            let outcome = sub.join().unwrap().unwrap();
            assert!(!outcome.reply.ok, "subscriber accepted without hubs");
        }
        return;
    }
    assert!(
        publisher.completed(),
        "publisher failed: {:?}",
        publisher.error
    );
    assert_eq!(publisher.tuples, offline.polluted);

    for sub in subs {
        let outcome = sub.join().unwrap().unwrap();
        assert!(
            outcome.completed(),
            "subscriber failed: {:?} / {:?}",
            outcome.reply.error,
            outcome.error
        );
        assert_eq!(outcome.tuples, offline.polluted, "fan-out diverged");
    }
}

/// A publisher that dies mid-stream fails its subscribers with a typed
/// error frame instead of hanging them (Linux event-driven path only).
#[cfg(target_os = "linux")]
#[test]
fn publisher_death_fails_subscribers_with_error_frame() {
    let server = TestServer::start(ServeConfig::default());
    let addr = server.addr();

    let sub = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let hs = Handshake {
                session: Some("subscribe".into()),
                stream: Some("doomed".into()),
                format: Some("ndjson".into()),
                ..Handshake::default()
            };
            client::run_session(&ClientConfig::new(addr, hs), Vec::new())
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    let publisher_hs = Handshake {
        stream: Some("doomed".into()),
        ..handshake("ndjson")
    };
    let mut publisher = TcpStream::connect(&addr).unwrap();
    publisher
        .write_all(serde_json::to_string(&publisher_hs).unwrap().as_bytes())
        .unwrap();
    publisher.write_all(b"\n").unwrap();
    let mut reply = String::new();
    BufReader::new(publisher.try_clone().unwrap())
        .read_line(&mut reply)
        .unwrap();
    assert!(reply.contains("\"ok\":true"), "handshake failed: {reply}");
    publisher
        .write_all(b"{\"tuple\":{\"values\":[0,1.0]}}\n")
        .unwrap();
    drop(publisher);

    let outcome = sub.join().unwrap().unwrap();
    assert!(
        outcome.reply.ok,
        "subscriber rejected: {:?}",
        outcome.reply.error
    );
    let error = outcome
        .error
        .expect("subscriber must receive the publisher's failure");
    assert_eq!(
        error.kind, "disconnect",
        "unexpected error frame: {error:?}"
    );
}

/// The server survives a client that delivers its handshake and frames
/// one byte at a time, with pauses — end-to-end proof that the decoder
/// tolerates arbitrary read-boundary splits on a live socket.
#[test]
fn handshake_and_frames_survive_byte_by_byte_delivery() {
    let input = tuples(40);
    let offline = plan(42)
        .compile(&schema())
        .unwrap()
        .execute(input.clone())
        .unwrap();

    let server = TestServer::start(ServeConfig::default());
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    use icewafl_serve::protocol::{encode_end_frame, encode_tuple_frame};
    use icewafl_stream::net::{WireFormat, WireFrame};
    let mut payload = serde_json::to_string(&handshake("ndjson")).unwrap();
    payload.push('\n');
    for t in &input {
        let WireFrame::Line(line) = encode_tuple_frame(t, WireFormat::Ndjson) else {
            unreachable!("ndjson tuples are lines");
        };
        payload.push_str(&line);
        payload.push('\n');
    }
    let WireFrame::Line(end) = encode_end_frame(WireFormat::Ndjson) else {
        unreachable!("the ndjson end marker is a line");
    };
    payload.push_str(&end);
    payload.push('\n');

    // Drip the whole conversation through the socket in 1–7 byte
    // shreds, pausing now and then so the server sees WouldBlock
    // between nearly every fragment.
    let reader = {
        let stream = stream.try_clone().unwrap();
        std::thread::spawn(move || {
            let mut tuples = Vec::new();
            let mut lines = BufReader::new(stream).lines();
            let reply = lines.next().unwrap().unwrap();
            assert!(reply.contains("\"ok\":true"), "handshake failed: {reply}");
            for line in lines {
                let line = line.unwrap();
                let v: serde_json::Value = serde_json::from_str(&line).unwrap();
                if v.get("report").is_some_and(|r| !r.is_null()) {
                    return (tuples, true);
                }
                if v.get("error").is_some_and(|e| !e.is_null()) {
                    panic!("session failed: {line}");
                }
                tuples.push(line);
            }
            (tuples, false)
        })
    };

    let bytes = payload.as_bytes();
    let mut at = 0;
    let mut step = 1;
    while at < bytes.len() {
        let n = step.min(bytes.len() - at);
        stream.write_all(&bytes[at..at + n]).unwrap();
        stream.flush().unwrap();
        at += n;
        step = step % 7 + 1;
        if at % 97 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    let (served, saw_report) = reader.join().unwrap();
    assert!(saw_report, "server closed without a report frame");
    assert_eq!(served.len(), offline.polluted.len());
}
