//! Simple and double exponential smoothing — the non-seasonal members
//! of the exponential-smoothing family [`HoltWinters`](crate::HoltWinters)
//! completes. Useful as graded baselines in robustness studies: SES has
//! no trend or season to fall back on, Holt adds the trend, Holt-Winters
//! adds the season, so comparing all three isolates which structure a
//! pollution pattern destroys.

use crate::model::Forecaster;

/// Simple exponential smoothing: `ℓ_t = α·y_t + (1−α)·ℓ_{t−1}`; flat
/// forecasts at the current level.
#[derive(Debug, Clone)]
pub struct SimpleExponentialSmoothing {
    alpha: f64,
    level: f64,
    n: u64,
}

impl SimpleExponentialSmoothing {
    /// A model with smoothing factor `alpha ∈ [0, 1]`.
    pub fn new(alpha: f64) -> Self {
        SimpleExponentialSmoothing {
            alpha: alpha.clamp(0.0, 1.0),
            level: 0.0,
            n: 0,
        }
    }

    /// The current level estimate.
    pub fn level(&self) -> f64 {
        self.level
    }
}

impl Forecaster for SimpleExponentialSmoothing {
    fn learn_one(&mut self, y: f64, _x: &[f64]) {
        if self.n == 0 {
            self.level = y;
        } else {
            self.level = self.alpha * y + (1.0 - self.alpha) * self.level;
        }
        self.n += 1;
    }

    fn forecast(&self, horizon: usize, _x_future: &[Vec<f64>]) -> Vec<f64> {
        vec![self.level; horizon]
    }

    fn name(&self) -> &'static str {
        "ses"
    }

    fn observations(&self) -> u64 {
        self.n
    }
}

/// Holt's linear method (double exponential smoothing): level plus
/// trend, forecasts extrapolate linearly.
#[derive(Debug, Clone)]
pub struct HoltLinear {
    alpha: f64,
    beta: f64,
    level: f64,
    trend: f64,
    n: u64,
}

impl HoltLinear {
    /// A model with level factor `alpha` and trend factor `beta`, both
    /// clamped to `[0, 1]`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        HoltLinear {
            alpha: alpha.clamp(0.0, 1.0),
            beta: beta.clamp(0.0, 1.0),
            level: 0.0,
            trend: 0.0,
            n: 0,
        }
    }
}

impl Forecaster for HoltLinear {
    fn learn_one(&mut self, y: f64, _x: &[f64]) {
        match self.n {
            0 => self.level = y,
            1 => {
                self.trend = y - self.level;
                self.level = y;
            }
            _ => {
                let last_level = self.level;
                self.level = self.alpha * y + (1.0 - self.alpha) * (last_level + self.trend);
                self.trend = self.beta * (self.level - last_level) + (1.0 - self.beta) * self.trend;
            }
        }
        self.n += 1;
    }

    fn forecast(&self, horizon: usize, _x_future: &[Vec<f64>]) -> Vec<f64> {
        (1..=horizon)
            .map(|h| self.level + h as f64 * self.trend)
            .collect()
    }

    fn name(&self) -> &'static str {
        "holt_linear"
    }

    fn observations(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mae;

    #[test]
    fn ses_converges_to_constant_signal() {
        let mut m = SimpleExponentialSmoothing::new(0.3);
        for _ in 0..100 {
            m.learn_one(7.0, &[]);
        }
        assert!((m.level() - 7.0).abs() < 1e-9);
        assert_eq!(m.forecast(3, &[]), vec![7.0, 7.0, 7.0]);
    }

    #[test]
    fn ses_first_observation_initializes_level() {
        let mut m = SimpleExponentialSmoothing::new(0.1);
        m.learn_one(42.0, &[]);
        assert_eq!(m.level(), 42.0, "no smoothing against the zero init");
    }

    #[test]
    fn ses_tracks_level_shift_at_alpha_speed() {
        let mut fast = SimpleExponentialSmoothing::new(0.9);
        let mut slow = SimpleExponentialSmoothing::new(0.1);
        for _ in 0..50 {
            fast.learn_one(0.0, &[]);
            slow.learn_one(0.0, &[]);
        }
        for _ in 0..3 {
            fast.learn_one(10.0, &[]);
            slow.learn_one(10.0, &[]);
        }
        assert!(fast.level() > 9.0, "fast alpha adapts: {}", fast.level());
        assert!(slow.level() < 3.0, "slow alpha lags: {}", slow.level());
    }

    #[test]
    fn holt_extrapolates_linear_trend() {
        let mut m = HoltLinear::new(0.5, 0.3);
        for t in 0..200 {
            m.learn_one(5.0 + 2.0 * t as f64, &[]);
        }
        let f = m.forecast(3, &[]);
        let truth = [5.0 + 2.0 * 200.0, 5.0 + 2.0 * 201.0, 5.0 + 2.0 * 202.0];
        assert!(mae(&truth, &f) < 0.5, "trend extrapolation: {f:?}");
    }

    #[test]
    fn holt_beats_ses_on_trending_data() {
        let mut holt = HoltLinear::new(0.3, 0.2);
        let mut ses = SimpleExponentialSmoothing::new(0.3);
        for t in 0..300 {
            let y = t as f64;
            holt.learn_one(y, &[]);
            ses.learn_one(y, &[]);
        }
        let truth: Vec<f64> = (300..312).map(|t| t as f64).collect();
        let holt_err = mae(&truth, &holt.forecast(12, &[]));
        let ses_err = mae(&truth, &ses.forecast(12, &[]));
        assert!(holt_err < ses_err, "holt {holt_err} < ses {ses_err}");
    }

    #[test]
    fn alpha_clamping_and_names() {
        assert_eq!(SimpleExponentialSmoothing::new(5.0).alpha, 1.0);
        assert_eq!(HoltLinear::new(-1.0, 2.0).alpha, 0.0);
        assert_eq!(SimpleExponentialSmoothing::new(0.5).name(), "ses");
        assert_eq!(HoltLinear::new(0.5, 0.5).name(), "holt_linear");
    }

    #[test]
    fn cold_forecasts_are_finite() {
        let ses = SimpleExponentialSmoothing::new(0.3);
        assert_eq!(ses.forecast(2, &[]), vec![0.0, 0.0]);
        let holt = HoltLinear::new(0.3, 0.1);
        assert!(holt.forecast(5, &[]).iter().all(|v| v.is_finite()));
    }
}
