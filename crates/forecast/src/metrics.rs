//! Forecast accuracy metrics.

/// Mean absolute error — the metric of Figures 6 and 7.
pub fn mae(truth: &[f64], predicted: &[f64]) -> f64 {
    paired_mean(truth, predicted, |t, p| (t - p).abs())
}

/// Root mean squared error.
pub fn rmse(truth: &[f64], predicted: &[f64]) -> f64 {
    paired_mean(truth, predicted, |t, p| (t - p).powi(2)).sqrt()
}

/// Mean absolute percentage error (%, pairs with `truth == 0` are
/// skipped).
pub fn mape(truth: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "length mismatch");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (t, p) in truth.iter().zip(predicted) {
        if *t != 0.0 {
            sum += ((t - p) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        100.0 * sum / n as f64
    }
}

/// Symmetric MAPE (%, bounded in `[0, 200]`).
pub fn smape(truth: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "length mismatch");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (t, p) in truth.iter().zip(predicted) {
        let denom = (t.abs() + p.abs()) / 2.0;
        if denom > 0.0 {
            sum += (t - p).abs() / denom;
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        100.0 * sum / n as f64
    }
}

fn paired_mean(truth: &[f64], predicted: &[f64], f: impl Fn(f64, f64) -> f64) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "length mismatch");
    if truth.is_empty() {
        return f64::NAN;
    }
    truth
        .iter()
        .zip(predicted)
        .map(|(t, p)| f(*t, *p))
        .sum::<f64>()
        / truth.len() as f64
}

/// Incrementally updated mean — for streaming evaluation.
#[derive(Debug, Clone, Default)]
pub struct RunningMean {
    sum: f64,
    n: u64,
}

impl RunningMean {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn update(&mut self, x: f64) {
        self.sum += x;
        self.n += 1;
    }

    /// The current mean (NaN when empty).
    pub fn get(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.sum / self.n as f64
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_basic() {
        assert_eq!(mae(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(mae(&[1.0, 2.0], &[2.0, 0.0]), 1.5);
    }

    #[test]
    fn rmse_penalizes_large_errors_more() {
        let t = [0.0, 0.0];
        assert!(rmse(&t, &[3.0, 0.0]) > mae(&t, &[3.0, 0.0]));
        assert!((rmse(&t, &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_truth() {
        let v = mape(&[0.0, 10.0], &[5.0, 11.0]);
        assert!((v - 10.0).abs() < 1e-9, "only the second pair counts: {v}");
        assert!(mape(&[0.0], &[1.0]).is_nan());
    }

    #[test]
    fn smape_is_symmetric_and_bounded() {
        let a = smape(&[10.0], &[20.0]);
        let b = smape(&[20.0], &[10.0]);
        assert!((a - b).abs() < 1e-12);
        assert!(smape(&[1.0], &[-1.0]) <= 200.0 + 1e-9);
    }

    #[test]
    fn empty_inputs_are_nan() {
        assert!(mae(&[], &[]).is_nan());
        assert!(rmse(&[], &[]).is_nan());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        mae(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn running_mean() {
        let mut m = RunningMean::new();
        assert!(m.get().is_nan());
        m.update(2.0);
        m.update(4.0);
        assert_eq!(m.get(), 3.0);
        assert_eq!(m.count(), 2);
    }
}
