//! Additive Holt-Winters (triple exponential smoothing).
//!
//! One of the three methods of experiment 2 (§3.2). The additive form
//! maintains a level `ℓ`, a trend `b`, and `m` seasonal components
//! `s₀…s_{m−1}`:
//!
//! ```text
//! ℓ_t = α (y_t − s_{t−m}) + (1 − α)(ℓ_{t−1} + b_{t−1})
//! b_t = β (ℓ_t − ℓ_{t−1}) + (1 − β) b_{t−1}
//! s_t = γ (y_t − ℓ_t) + (1 − γ) s_{t−m}
//! ŷ_{t+h} = ℓ_t + h·b_t + s_{t+h−m}
//! ```
//!
//! Initialization follows the textbook recipe (Hyndman &
//! Athanasopoulos): the first season sets the seasonal components, the
//! first two seasons set level and trend.

use crate::model::Forecaster;

/// Additive Holt-Winters forecaster.
#[derive(Debug, Clone)]
pub struct HoltWinters {
    alpha: f64,
    beta: f64,
    gamma: f64,
    period: usize,
    level: f64,
    trend: f64,
    seasonals: Vec<f64>,
    /// Observations buffered during initialization (two full seasons).
    warmup: Vec<f64>,
    t: u64,
}

impl HoltWinters {
    /// A model with smoothing parameters `alpha` (level), `beta`
    /// (trend), `gamma` (seasonal) and seasonal `period ≥ 1`.
    pub fn new(alpha: f64, beta: f64, gamma: f64, period: usize) -> Self {
        HoltWinters {
            alpha: alpha.clamp(0.0, 1.0),
            beta: beta.clamp(0.0, 1.0),
            gamma: gamma.clamp(0.0, 1.0),
            period: period.max(1),
            level: 0.0,
            trend: 0.0,
            seasonals: Vec::new(),
            warmup: Vec::new(),
            t: 0,
        }
    }

    /// Whether initialization is complete (two seasons observed).
    pub fn is_initialized(&self) -> bool {
        !self.seasonals.is_empty()
    }

    fn initialize(&mut self) {
        let m = self.period;
        let w = &self.warmup;
        debug_assert_eq!(w.len(), 2 * m);
        let mean1: f64 = w[..m].iter().sum::<f64>() / m as f64;
        let mean2: f64 = w[m..2 * m].iter().sum::<f64>() / m as f64;
        self.level = mean2;
        self.trend = (mean2 - mean1) / m as f64;
        // Seasonal components: average deviation from the season mean.
        self.seasonals = (0..m)
            .map(|i| ((w[i] - mean1) + (w[m + i] - mean2)) / 2.0)
            .collect();
        self.warmup.clear();
        self.warmup.shrink_to_fit();
    }

    fn season_idx(&self, offset: u64) -> usize {
        ((self.t + offset) % self.period as u64) as usize
    }
}

impl Forecaster for HoltWinters {
    fn learn_one(&mut self, y: f64, _x: &[f64]) {
        if !self.is_initialized() {
            self.warmup.push(y);
            self.t += 1;
            if self.warmup.len() == 2 * self.period {
                self.initialize();
            }
            return;
        }
        let s_idx = self.season_idx(0);
        let seasonal = self.seasonals[s_idx];
        let last_level = self.level;
        self.level = self.alpha * (y - seasonal) + (1.0 - self.alpha) * (last_level + self.trend);
        self.trend = self.beta * (self.level - last_level) + (1.0 - self.beta) * self.trend;
        self.seasonals[s_idx] = self.gamma * (y - self.level) + (1.0 - self.gamma) * seasonal;
        self.t += 1;
    }

    fn forecast(&self, horizon: usize, _x_future: &[Vec<f64>]) -> Vec<f64> {
        if !self.is_initialized() {
            // Cold model: repeat the last warmup value (naive).
            let last = self.warmup.last().copied().unwrap_or(0.0);
            return vec![last; horizon];
        }
        (1..=horizon)
            .map(|h| {
                let s = self.seasonals[self.season_idx(h as u64 - 1)];
                self.level + h as f64 * self.trend + s
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "holt_winters"
    }

    fn observations(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mae;

    /// y(t) = 10 + 0.1 t + 5 sin(2π t / 24): trend + daily season.
    fn synthetic(t: usize) -> f64 {
        10.0 + 0.1 * t as f64 + 5.0 * (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin()
    }

    #[test]
    fn initializes_after_two_seasons() {
        let mut hw = HoltWinters::new(0.3, 0.1, 0.2, 24);
        for t in 0..47 {
            hw.learn_one(synthetic(t), &[]);
            assert!(!hw.is_initialized() || t >= 47);
        }
        hw.learn_one(synthetic(47), &[]);
        assert!(hw.is_initialized());
    }

    #[test]
    fn tracks_pure_seasonal_signal_accurately() {
        let mut hw = HoltWinters::new(0.3, 0.05, 0.3, 24);
        for t in 0..24 * 30 {
            hw.learn_one(synthetic(t), &[]);
        }
        let start = 24 * 30;
        let forecast = hw.forecast(12, &[]);
        let truth: Vec<f64> = (0..12).map(|h| synthetic(start + h)).collect();
        let err = mae(&truth, &forecast);
        assert!(err < 1.0, "MAE {err} on a clean trend+season signal");
    }

    #[test]
    fn forecast_extends_trend() {
        // Pure linear series: level+trend must extrapolate it.
        let mut hw = HoltWinters::new(0.5, 0.5, 0.1, 2);
        for t in 0..100 {
            hw.learn_one(t as f64, &[]);
        }
        let f = hw.forecast(3, &[]);
        assert!(
            f[0] > 99.0 && f[0] < 102.0,
            "one step ahead ≈ 100, got {}",
            f[0]
        );
        assert!(f[2] > f[0], "trend continues upward");
    }

    #[test]
    fn cold_forecast_is_naive() {
        let mut hw = HoltWinters::new(0.3, 0.1, 0.2, 24);
        hw.learn_one(42.0, &[]);
        assert_eq!(hw.forecast(2, &[]), vec![42.0, 42.0]);
        let empty = HoltWinters::new(0.3, 0.1, 0.2, 24);
        assert_eq!(empty.forecast(2, &[]), vec![0.0, 0.0]);
    }

    #[test]
    fn parameters_are_clamped() {
        let hw = HoltWinters::new(2.0, -1.0, 0.5, 0);
        assert_eq!(hw.alpha, 1.0);
        assert_eq!(hw.beta, 0.0);
        assert_eq!(hw.period, 1);
    }

    #[test]
    fn seasonality_beats_naive_on_seasonal_data() {
        use crate::model::{Forecaster, NaiveForecaster};
        let mut hw = HoltWinters::new(0.3, 0.05, 0.3, 24);
        let mut naive = NaiveForecaster::new();
        let mut hw_errs = Vec::new();
        let mut naive_errs = Vec::new();
        for window in 0..20 {
            let base = window * 24;
            for t in base..base + 24 {
                hw.learn_one(synthetic(t), &[]);
                naive.learn_one(synthetic(t), &[]);
            }
            if window >= 5 {
                let truth: Vec<f64> = (0..12).map(|h| synthetic(base + 24 + h)).collect();
                hw_errs.push(mae(&truth, &hw.forecast(12, &[])));
                naive_errs.push(mae(&truth, &naive.forecast(12, &[])));
            }
        }
        let hw_mean = hw_errs.iter().sum::<f64>() / hw_errs.len() as f64;
        let naive_mean = naive_errs.iter().sum::<f64>() / naive_errs.len() as f64;
        assert!(
            hw_mean < naive_mean,
            "HW {hw_mean} must beat naive {naive_mean}"
        );
    }
}
