//! # icewafl-forecast
//!
//! Online time-series forecasting — the River substitute of the Icewafl
//! reproduction.
//!
//! Experiment 2 of the paper (§3.2) measures the robustness of three
//! online forecasting methods against temporal data errors; this crate
//! provides all three, trained one observation at a time:
//!
//! * [`Snarimax::arima`] — ARIMA(p, d, q) as an online SGD linear model
//!   over AR lags and MA residuals of the differenced series (River's
//!   `SNARIMAX` estimator family);
//! * [`Snarimax::arimax`] — the same plus exogenous regressors (weather
//!   attributes and [cyclic time encodings](features));
//! * [`HoltWinters`] — additive triple exponential smoothing;
//!
//! plus graded baselines ([naive](model::NaiveForecaster),
//! [seasonal-naive](model::SeasonalNaiveForecaster),
//! [SES](smoothing::SimpleExponentialSmoothing),
//! [Holt](smoothing::HoltLinear)),
//! [metrics] (MAE/RMSE/MAPE/sMAPE), and
//! [`TimeSeriesSplit` cross-validation with grid search](cv) matching
//! §3.2.2's hyper-parameter protocol.

#![warn(missing_docs)]

pub mod cv;
pub mod diff;
pub mod features;
pub mod holt_winters;
pub mod linear;
pub mod metrics;
pub mod model;
pub mod smoothing;
pub mod snarimax;

pub use cv::{cv_score, grid_search, time_series_split, Split};
pub use diff::{Differencer, LagWindow};
pub use holt_winters::HoltWinters;
pub use linear::{LinearSgd, OnlineScaler};
pub use model::{BoxForecaster, Forecaster, NaiveForecaster, SeasonalNaiveForecaster};
pub use smoothing::{HoltLinear, SimpleExponentialSmoothing};
pub use snarimax::Snarimax;

/// Everything needed for typical forecasting tasks.
pub mod prelude {
    pub use crate::cv::{cv_score, grid_search, time_series_split};
    pub use crate::features::{encode_hour, encode_month, push_cyclic_features};
    pub use crate::holt_winters::HoltWinters;
    pub use crate::metrics::{mae, mape, rmse, smape};
    pub use crate::model::{BoxForecaster, Forecaster, NaiveForecaster, SeasonalNaiveForecaster};
    pub use crate::smoothing::{HoltLinear, SimpleExponentialSmoothing};
    pub use crate::snarimax::Snarimax;
}

#[cfg(test)]
mod proptests {
    use super::prelude::*;
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Differencing then integrating one-step forecasts recovers the
        /// exact next value when the forecast equals the true
        /// difference.
        #[test]
        fn differencer_round_trip(series in proptest::collection::vec(-1e6f64..1e6, 3..50)) {
            let mut d = diff::Differencer::new(1);
            let mut last_diff = None;
            for &y in &series {
                last_diff = d.difference(y);
            }
            let _ = last_diff;
            // Integrating the true next difference gives the true next
            // value.
            let next = series[series.len() - 1] + 7.5;
            let integrated = d.integrate(&[7.5]);
            prop_assert!((integrated[0] - next).abs() < 1e-6);
        }

        /// Forecast outputs are always finite and of the requested
        /// length, whatever data the models saw.
        #[test]
        fn forecasts_are_finite(
            series in proptest::collection::vec(-1e3f64..1e3, 0..200),
            horizon in 0usize..24,
        ) {
            let mut models: Vec<BoxForecaster> = vec![
                Box::new(Snarimax::arima(3, 1, 2, 0.05)),
                Box::new(HoltWinters::new(0.3, 0.1, 0.2, 24)),
                Box::new(NaiveForecaster::new()),
                Box::new(SeasonalNaiveForecaster::new(24)),
            ];
            for m in &mut models {
                for &y in &series {
                    m.learn_one(y, &[]);
                }
                let f = m.forecast(horizon, &[]);
                prop_assert_eq!(f.len(), horizon);
                prop_assert!(f.iter().all(|v| v.is_finite()), "{}: {:?}", m.name(), f);
            }
        }

        /// MAE is non-negative, zero iff identical, and symmetric in
        /// sign flips of the error.
        #[test]
        fn mae_properties(truth in proptest::collection::vec(-1e3f64..1e3, 1..50)) {
            prop_assert!(mae(&truth, &truth).abs() < 1e-12);
            let shifted: Vec<f64> = truth.iter().map(|v| v + 1.0).collect();
            let down: Vec<f64> = truth.iter().map(|v| v - 1.0).collect();
            prop_assert!((mae(&truth, &shifted) - 1.0).abs() < 1e-9);
            prop_assert!((mae(&truth, &shifted) - mae(&truth, &down)).abs() < 1e-9);
        }

        /// Scaled values from the online scaler are finite.
        #[test]
        fn scaler_outputs_finite(xs in proptest::collection::vec(-1e9f64..1e9, 2..100)) {
            let mut s = linear::OnlineScaler::new(1);
            for &x in &xs {
                s.update(&[x]);
            }
            for &x in &xs {
                let mut v = [x];
                s.transform(&mut v);
                prop_assert!(v[0].is_finite());
            }
        }
    }
}
