//! Differencing — the "I" in ARIMA.
//!
//! Order-`d` differencing turns a trending series into a (closer to)
//! stationary one; the integrator reverses it when forecasts are
//! produced.

use std::collections::VecDeque;

/// Applies and reverses order-`d` differencing, one observation at a
/// time.
#[derive(Debug, Clone)]
pub struct Differencer {
    d: usize,
    /// `last[k]` is the previous value of the k-times differenced
    /// series.
    last: Vec<Option<f64>>,
}

impl Differencer {
    /// An order-`d` differencer (`d = 0` is the identity).
    pub fn new(d: usize) -> Self {
        Differencer {
            d,
            last: vec![None; d],
        }
    }

    /// The differencing order.
    pub fn order(&self) -> usize {
        self.d
    }

    /// Feeds one observation; returns the `d`-times differenced value
    /// once enough history exists (`None` for the first `d`
    /// observations).
    pub fn difference(&mut self, y: f64) -> Option<f64> {
        let mut current = y;
        for k in 0..self.d {
            let prev = self.last[k].replace(current)?;
            current -= prev;
        }
        Some(current)
    }

    /// Integrates a horizon of differenced forecasts back to the
    /// original scale, continuing from the current state (without
    /// mutating it).
    pub fn integrate(&self, diffed: &[f64]) -> Vec<f64> {
        // Recover the running "last" values at each level. For a
        // forecast of h steps, repeatedly cumulative-sum from the
        // deepest level up.
        let mut result = diffed.to_vec();
        for k in (0..self.d).rev() {
            let Some(base) = self.last[k] else {
                // Not enough history to integrate: return as-is.
                return result;
            };
            let mut acc = base;
            for r in result.iter_mut() {
                acc += *r;
                *r = acc;
            }
        }
        result
    }

    /// `true` once `difference` produces values.
    pub fn is_warm(&self) -> bool {
        self.last.iter().all(Option::is_some)
    }
}

/// Fixed-capacity lag window over a series.
#[derive(Debug, Clone)]
pub struct LagWindow {
    capacity: usize,
    values: VecDeque<f64>,
}

impl LagWindow {
    /// A window of `capacity` most-recent values.
    pub fn new(capacity: usize) -> Self {
        LagWindow {
            capacity,
            values: VecDeque::with_capacity(capacity),
        }
    }

    /// Pushes a new value, evicting the oldest beyond capacity.
    pub fn push(&mut self, y: f64) {
        if self.capacity == 0 {
            return;
        }
        if self.values.len() == self.capacity {
            self.values.pop_front();
        }
        self.values.push_back(y);
    }

    /// Fills `out` with the lags, most recent first, zero-padded to
    /// capacity (River's convention for a cold start).
    pub fn fill_lags(&self, out: &mut Vec<f64>) {
        for i in 0..self.capacity {
            let idx = self.values.len().checked_sub(i + 1);
            out.push(idx.map_or(0.0, |j| self.values[j]));
        }
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` iff no values stored yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_zero_is_identity() {
        let mut d = Differencer::new(0);
        assert_eq!(d.difference(5.0), Some(5.0));
        assert_eq!(d.integrate(&[1.0, 2.0]), vec![1.0, 2.0]);
        assert!(d.is_warm());
    }

    #[test]
    fn first_difference() {
        let mut d = Differencer::new(1);
        assert_eq!(d.difference(10.0), None, "needs one value of history");
        assert_eq!(d.difference(13.0), Some(3.0));
        assert_eq!(d.difference(12.0), Some(-1.0));
        assert!(d.is_warm());
    }

    #[test]
    fn second_difference() {
        let mut d = Differencer::new(2);
        assert_eq!(d.difference(1.0), None);
        assert_eq!(d.difference(4.0), None);
        // y: 1, 4, 9 → Δ: 3, 5 → Δ²: 2
        assert_eq!(d.difference(9.0), Some(2.0));
    }

    #[test]
    fn integrate_reverses_difference() {
        let mut d = Differencer::new(1);
        for y in [10.0, 12.0, 15.0] {
            d.difference(y);
        }
        // Differenced forecasts +1, +2 → levels 16, 18.
        assert_eq!(d.integrate(&[1.0, 2.0]), vec![16.0, 18.0]);
    }

    #[test]
    fn integrate_order_two_round_trip() {
        let series = [1.0, 4.0, 9.0, 16.0, 25.0, 36.0];
        let mut d = Differencer::new(2);
        let mut diffed = Vec::new();
        for &y in &series {
            if let Some(v) = d.difference(y) {
                diffed.push(v);
            }
        }
        // The next true value is 49 (squares): second difference is
        // constant 2, so forecasting Δ² = 2 must integrate to 49.
        assert_eq!(d.integrate(&[2.0]), vec![49.0]);
        assert_eq!(d.integrate(&[2.0, 2.0]), vec![49.0, 64.0]);
    }

    #[test]
    fn lag_window_semantics() {
        let mut w = LagWindow::new(3);
        assert!(w.is_empty());
        let mut lags = Vec::new();
        w.fill_lags(&mut lags);
        assert_eq!(lags, vec![0.0, 0.0, 0.0], "cold start zero-pads");
        for y in [1.0, 2.0, 3.0, 4.0] {
            w.push(y);
        }
        assert_eq!(w.len(), 3);
        lags.clear();
        w.fill_lags(&mut lags);
        assert_eq!(
            lags,
            vec![4.0, 3.0, 2.0],
            "most recent first, oldest evicted"
        );
    }

    #[test]
    fn zero_capacity_lag_window() {
        let mut w = LagWindow::new(0);
        w.push(1.0);
        let mut lags = Vec::new();
        w.fill_lags(&mut lags);
        assert!(lags.is_empty());
    }
}
