//! Online linear regression with SGD — the estimator inside SNARIMAX
//! (River pairs `SNARIMAX` with a linear model trained one sample at a
//! time).

/// Online feature standardizer: tracks running mean and variance per
/// feature (Welford) and scales inputs to approximately zero mean and
/// unit variance — essential for SGD stability when features live on
/// very different scales (NO2 lags vs. sin/cos encodings).
#[derive(Debug, Clone)]
pub struct OnlineScaler {
    n: u64,
    mean: Vec<f64>,
    m2: Vec<f64>,
}

impl OnlineScaler {
    /// A scaler over `dim` features.
    pub fn new(dim: usize) -> Self {
        OnlineScaler {
            n: 0,
            mean: vec![0.0; dim],
            m2: vec![0.0; dim],
        }
    }

    /// Updates the statistics with one sample.
    pub fn update(&mut self, x: &[f64]) {
        assert_eq!(x.len(), self.mean.len(), "feature dimension changed");
        self.n += 1;
        let n = self.n as f64;
        for (i, &xi) in x.iter().enumerate() {
            let delta = xi - self.mean[i];
            self.mean[i] += delta / n;
            self.m2[i] += delta * (xi - self.mean[i]);
        }
    }

    /// Scales a sample in place using the current statistics.
    pub fn transform(&self, x: &mut [f64]) {
        if self.n < 2 {
            return;
        }
        let n = self.n as f64;
        for (i, xi) in x.iter_mut().enumerate() {
            let var = self.m2[i] / n;
            let std = var.sqrt();
            if std > 1e-12 {
                *xi = (*xi - self.mean[i]) / std;
            } else {
                *xi -= self.mean[i];
            }
        }
    }

    /// Samples seen so far.
    pub fn count(&self) -> u64 {
        self.n
    }
}

/// Linear model `ŷ = w·x + b` trained by stochastic gradient descent on
/// squared error, with inverse-scaling learning-rate decay
/// (`η_t = η₀ / √t`) and gradient clipping for robustness against the
/// very outliers Icewafl injects.
#[derive(Debug, Clone)]
pub struct LinearSgd {
    weights: Vec<f64>,
    bias: f64,
    eta0: f64,
    l2: f64,
    t: u64,
}

impl LinearSgd {
    /// A zero-initialized model over `dim` features.
    pub fn new(dim: usize, eta0: f64, l2: f64) -> Self {
        LinearSgd {
            weights: vec![0.0; dim],
            bias: 0.0,
            eta0,
            l2,
            t: 0,
        }
    }

    /// The current prediction for `x`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.weights.len());
        self.bias
            + self
                .weights
                .iter()
                .zip(x)
                .map(|(w, xi)| w * xi)
                .sum::<f64>()
    }

    /// One SGD step on `(x, y)`; returns the pre-update prediction.
    pub fn learn(&mut self, x: &[f64], y: f64) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature dimension changed");
        let y_hat = self.predict(x);
        self.t += 1;
        let eta = self.eta0 / (self.t as f64).sqrt();
        // Clip the error gradient: a single injected outlier must not
        // destroy the model.
        let err = (y - y_hat).clamp(-1e3, 1e3);
        for (w, xi) in self.weights.iter_mut().zip(x) {
            *w += eta * (err * xi - self.l2 * *w);
        }
        self.bias += eta * err;
        y_hat
    }

    /// The learned weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaler_standardizes() {
        let mut s = OnlineScaler::new(1);
        for x in [2.0, 4.0, 6.0, 8.0] {
            s.update(&[x]);
        }
        assert_eq!(s.count(), 4);
        let mut x = [5.0];
        s.transform(&mut x);
        assert!(
            x[0].abs() < 1e-9,
            "5 is the mean → scales to 0, got {}",
            x[0]
        );
        let mut hi = [8.0];
        s.transform(&mut hi);
        assert!(hi[0] > 1.0, "8 is above one std, got {}", hi[0]);
    }

    #[test]
    fn scaler_constant_feature_centers_only() {
        let mut s = OnlineScaler::new(1);
        for _ in 0..10 {
            s.update(&[7.0]);
        }
        let mut x = [7.0];
        s.transform(&mut x);
        assert_eq!(x[0], 0.0);
    }

    #[test]
    fn scaler_noop_before_two_samples() {
        let s = OnlineScaler::new(1);
        let mut x = [3.0];
        s.transform(&mut x);
        assert_eq!(x[0], 3.0);
    }

    #[test]
    fn sgd_learns_a_line() {
        // y = 2x + 1 with standardized-ish inputs.
        let mut m = LinearSgd::new(1, 0.1, 0.0);
        for epoch in 0..200 {
            for x in [-1.0, -0.5, 0.0, 0.5, 1.0] {
                let _ = m.learn(&[x], 2.0 * x + 1.0);
            }
            let _ = epoch;
        }
        assert!(
            (m.predict(&[0.25]) - 1.5).abs() < 0.05,
            "got {}",
            m.predict(&[0.25])
        );
        assert!((m.weights()[0] - 2.0).abs() < 0.1);
        assert!((m.bias() - 1.0).abs() < 0.1);
    }

    #[test]
    fn sgd_is_stable_under_outliers() {
        let mut m = LinearSgd::new(1, 0.05, 0.0);
        for i in 0..3000 {
            let x = (i % 10) as f64 / 10.0;
            let y = if i == 500 { 1e9 } else { 3.0 * x };
            m.learn(&[x], y);
        }
        // Gradient clipping bounds the damage of the single huge target
        // and the model recovers over the following steps.
        let p = m.predict(&[0.5]);
        assert!(p.is_finite());
        assert!((p - 1.5).abs() < 1.0, "model survived the outlier: {p}");
    }

    #[test]
    fn l2_shrinks_weights() {
        let mut free = LinearSgd::new(1, 0.1, 0.0);
        let mut reg = LinearSgd::new(1, 0.1, 0.5);
        for _ in 0..500 {
            free.learn(&[1.0], 10.0);
            reg.learn(&[1.0], 10.0);
        }
        assert!(reg.weights()[0].abs() < free.weights()[0].abs());
    }
}
