//! Time-series cross-validation and grid search.
//!
//! §3.2.2: "we determined suitable settings for the hyperparameters …
//! using grid search in combination with a 5-fold time series cross
//! validation". This module provides scikit-learn's `TimeSeriesSplit`
//! semantics and a generic grid search over forecaster factories.

use crate::metrics::mae;
use crate::model::Forecaster;

/// A named forecaster factory, the unit of a grid-search run.
pub type NamedFactory = (String, Box<dyn FnMut() -> Box<dyn Forecaster>>);

/// One train/test split: index ranges into the series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Training indices `0..train_end`.
    pub train_end: usize,
    /// Test indices `train_end..test_end`.
    pub test_end: usize,
}

/// scikit-learn-style expanding-window splits: fold `k` trains on the
/// first `(k+1)·chunk` points and tests on the next `chunk`, where
/// `chunk = n / (n_splits + 1)`.
pub fn time_series_split(n: usize, n_splits: usize) -> Vec<Split> {
    let n_splits = n_splits.max(1);
    let chunk = n / (n_splits + 1);
    if chunk == 0 {
        return Vec::new();
    }
    (1..=n_splits)
        .map(|k| Split {
            train_end: k * chunk,
            test_end: ((k + 1) * chunk).min(n),
        })
        .collect()
}

/// Evaluates one forecaster on one series with expanding-window CV:
/// learn through the train range, then forecast the whole test range
/// and score MAE against it.
pub fn cv_score(
    mut factory: impl FnMut() -> Box<dyn Forecaster>,
    series: &[f64],
    exog: Option<&[Vec<f64>]>,
    n_splits: usize,
) -> f64 {
    let splits = time_series_split(series.len(), n_splits);
    if splits.is_empty() {
        return f64::NAN;
    }
    let mut scores = Vec::with_capacity(splits.len());
    let empty: Vec<f64> = Vec::new();
    for split in &splits {
        let mut model = factory();
        for (i, y) in series[..split.train_end].iter().enumerate() {
            let x = exog.map_or(&empty, |e| &e[i]);
            model.learn_one(*y, x);
        }
        let horizon = split.test_end - split.train_end;
        let x_future: Vec<Vec<f64>> = match exog {
            Some(e) => e[split.train_end..split.test_end].to_vec(),
            None => vec![Vec::new(); horizon],
        };
        let forecast = model.forecast(horizon, &x_future);
        scores.push(mae(&series[split.train_end..split.test_end], &forecast));
    }
    scores.iter().sum::<f64>() / scores.len() as f64
}

/// Searches a parameter grid: each candidate is a named factory; the
/// winner has the lowest CV score. Returns `(name, score)` per
/// candidate sorted best-first.
pub fn grid_search(
    candidates: Vec<NamedFactory>,
    series: &[f64],
    exog: Option<&[Vec<f64>]>,
    n_splits: usize,
) -> Vec<(String, f64)> {
    let mut results: Vec<(String, f64)> = candidates
        .into_iter()
        .map(|(name, factory)| (name, cv_score(factory, series, exog, n_splits)))
        .collect();
    results.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::holt_winters::HoltWinters;
    use crate::model::NaiveForecaster;

    #[test]
    fn split_shapes_match_sklearn() {
        // n=12, 5 splits → chunk=2: folds train 2/4/6/8/10, test +2.
        let splits = time_series_split(12, 5);
        assert_eq!(splits.len(), 5);
        assert_eq!(
            splits[0],
            Split {
                train_end: 2,
                test_end: 4
            }
        );
        assert_eq!(
            splits[4],
            Split {
                train_end: 10,
                test_end: 12
            }
        );
    }

    #[test]
    fn splits_are_temporal() {
        for s in time_series_split(100, 5) {
            assert!(s.train_end < s.test_end, "test strictly after training");
        }
    }

    #[test]
    fn too_small_series_yields_no_splits() {
        assert!(time_series_split(3, 5).is_empty());
        assert!(time_series_split(0, 5).is_empty());
    }

    #[test]
    fn cv_score_prefers_better_model_on_seasonal_data() {
        let series: Vec<f64> = (0..24 * 20)
            .map(|t| 10.0 + 5.0 * (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin())
            .collect();
        let hw = cv_score(
            || Box::new(HoltWinters::new(0.3, 0.05, 0.3, 24)),
            &series,
            None,
            5,
        );
        let naive = cv_score(|| Box::new(NaiveForecaster::new()), &series, None, 5);
        assert!(hw < naive, "HW {hw} < naive {naive}");
    }

    #[test]
    fn grid_search_ranks_candidates() {
        let series: Vec<f64> = (0..24 * 20)
            .map(|t| 10.0 + 5.0 * (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin())
            .collect();
        let candidates: Vec<NamedFactory> = vec![
            (
                "hw_fast".into(),
                Box::new(|| Box::new(HoltWinters::new(0.5, 0.1, 0.3, 24)) as _),
            ),
            (
                "naive".into(),
                Box::new(|| Box::new(NaiveForecaster::new()) as _),
            ),
        ];
        let ranked = grid_search(candidates, &series, None, 5);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].0, "hw_fast", "best first: {ranked:?}");
        assert!(ranked[0].1 <= ranked[1].1);
    }

    #[test]
    fn cv_score_with_exog_passes_features() {
        // y depends only on x → a model that uses x wins.
        let n = 600;
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![if i % 3 == 0 { 1.0 } else { -1.0 }])
            .collect();
        let series: Vec<f64> = xs.iter().map(|x| 4.0 * x[0]).collect();
        let arimax = cv_score(
            || Box::new(crate::snarimax::Snarimax::arimax(1, 0, 0, 1, 0.1)),
            &series,
            Some(&xs),
            5,
        );
        let naive = cv_score(|| Box::new(NaiveForecaster::new()), &series, Some(&xs), 5);
        assert!(arimax < naive, "arimax {arimax} < naive {naive}");
    }
}
