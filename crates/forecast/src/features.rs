//! Time-based feature encodings.
//!
//! The ARIMAX models of §3.2.2 receive "the sine and cosine encodings of
//! the month and the hour of the event timestamp" alongside the weather
//! attributes.

use icewafl_types::Timestamp;

/// Sine/cosine encoding of the hour of day: `(sin, cos)` of
/// `2π·hour/24`.
pub fn encode_hour(ts: Timestamp) -> (f64, f64) {
    let angle = 2.0 * std::f64::consts::PI * ts.fractional_hour_of_day() / 24.0;
    (angle.sin(), angle.cos())
}

/// Sine/cosine encoding of the month: `(sin, cos)` of `2π·(month−1)/12`.
pub fn encode_month(ts: Timestamp) -> (f64, f64) {
    let angle = 2.0 * std::f64::consts::PI * f64::from(ts.month() - 1) / 12.0;
    (angle.sin(), angle.cos())
}

/// The paper's full cyclic feature block: `[sin_h, cos_h, sin_m,
/// cos_m]`, appended to `out`.
pub fn push_cyclic_features(ts: Timestamp, out: &mut Vec<f64>) {
    let (sh, ch) = encode_hour(ts);
    let (sm, cm) = encode_month(ts);
    out.push(sh);
    out.push(ch);
    out.push(sm);
    out.push(cm);
}

#[cfg(test)]
mod tests {
    use super::*;
    use icewafl_types::time::MILLIS_PER_HOUR;

    #[test]
    fn hour_encoding_is_on_unit_circle() {
        for h in 0..24 {
            let (s, c) = encode_hour(Timestamp(h * MILLIS_PER_HOUR));
            assert!((s * s + c * c - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn midnight_and_noon_are_antipodal() {
        let (s0, c0) = encode_hour(Timestamp(0));
        let (s12, c12) = encode_hour(Timestamp(12 * MILLIS_PER_HOUR));
        assert!((s0 + s12).abs() < 1e-9);
        assert!((c0 + c12).abs() < 1e-9);
        assert!((c0 - 1.0).abs() < 1e-12, "midnight is angle 0");
    }

    #[test]
    fn encoding_is_continuous_across_midnight() {
        // 23:59 and 00:00 must be close — the reason for cyclic
        // encodings in the first place.
        let before = encode_hour(Timestamp(24 * MILLIS_PER_HOUR - 60_000));
        let after = encode_hour(Timestamp(0));
        assert!((before.0 - after.0).abs() < 0.01);
        assert!((before.1 - after.1).abs() < 0.01);
    }

    #[test]
    fn month_encoding() {
        let jan = encode_month(Timestamp::from_ymd(2016, 1, 15).unwrap());
        assert!((jan.1 - 1.0).abs() < 1e-12, "January is angle 0");
        let jul = encode_month(Timestamp::from_ymd(2016, 7, 15).unwrap());
        assert!((jul.1 + 1.0).abs() < 1e-12, "July is antipodal to January");
    }

    #[test]
    fn cyclic_block_has_four_features() {
        let mut out = vec![9.9];
        push_cyclic_features(Timestamp(0), &mut out);
        assert_eq!(out.len(), 5);
        assert_eq!(out[0], 9.9, "appends, does not overwrite");
    }
}
