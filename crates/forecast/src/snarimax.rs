//! SNARIMAX-style online ARIMA / ARIMAX.
//!
//! River's `SNARIMAX` — the implementation behind the paper's ARIMA and
//! ARIMAX models — is an online linear model over lagged targets
//! (AR, order `p`), lagged residuals (MA, order `q`) and optional
//! exogenous features (the X), fitted by SGD on the `d`-times
//! differenced series. This module reimplements that estimator.
//!
//! Multi-step forecasts are produced recursively: predicted values feed
//! back as AR lags, future residuals are taken as zero, and the
//! differencer integrates back to the original scale.

use crate::diff::{Differencer, LagWindow};
use crate::linear::{LinearSgd, OnlineScaler};
use crate::model::Forecaster;

/// Online ARIMA(p, d, q) with optional exogenous regressors
/// (ARIMAX when `x_dim > 0`).
pub struct Snarimax {
    p: usize,
    q: usize,
    x_dim: usize,
    differencer: Differencer,
    y_lags: LagWindow,
    e_lags: LagWindow,
    scaler: OnlineScaler,
    model: LinearSgd,
    /// Scratch feature buffer, reused per call.
    features: Vec<f64>,
    n: u64,
    is_arimax: bool,
    /// Welford statistics of the differenced target, used to clamp
    /// recursive multi-step forecasts: SGD-learned AR coefficients are
    /// not guaranteed stationary, and without a clamp the recursion can
    /// oscillate and diverge.
    yd_n: u64,
    yd_mean: f64,
    yd_m2: f64,
}

impl Snarimax {
    /// An ARIMA(p, d, q) model without exogenous features.
    pub fn arima(p: usize, d: usize, q: usize, eta0: f64) -> Self {
        Self::with_exog(p, d, q, 0, eta0)
    }

    /// An ARIMAX(p, d, q) model with `x_dim` exogenous features.
    pub fn arimax(p: usize, d: usize, q: usize, x_dim: usize, eta0: f64) -> Self {
        Self::with_exog(p, d, q, x_dim, eta0)
    }

    fn with_exog(p: usize, d: usize, q: usize, x_dim: usize, eta0: f64) -> Self {
        let dim = p + q + x_dim;
        Snarimax {
            p,
            q,
            x_dim,
            differencer: Differencer::new(d),
            y_lags: LagWindow::new(p),
            e_lags: LagWindow::new(q),
            scaler: OnlineScaler::new(dim),
            model: LinearSgd::new(dim, eta0, 1e-4),
            features: Vec::with_capacity(dim),
            n: 0,
            is_arimax: x_dim > 0,
            yd_n: 0,
            yd_mean: 0.0,
            yd_m2: 0.0,
        }
    }

    /// Clamps a predicted differenced value to `mean ± 4σ` of the
    /// observed differenced series (no-op before two observations).
    fn clamp_prediction(&self, yd: f64) -> f64 {
        if self.yd_n < 2 {
            return yd.clamp(-1e6, 1e6);
        }
        let std = (self.yd_m2 / self.yd_n as f64).sqrt();
        let margin = 4.0 * std.max(1e-9);
        yd.clamp(self.yd_mean - margin, self.yd_mean + margin)
    }

    /// Assembles the (unscaled) feature vector for the current lag
    /// state plus exogenous input.
    fn build_features(&mut self, x: &[f64]) {
        self.features.clear();
        self.y_lags.fill_lags(&mut self.features);
        self.e_lags.fill_lags(&mut self.features);
        for i in 0..self.x_dim {
            self.features.push(x.get(i).copied().unwrap_or(0.0));
        }
    }

    /// Samples the online scaler must see before the linear model is
    /// trained. Without this warm-up, the very first samples reach SGD
    /// with raw (unstandardized) features — a pressure reading of
    /// ~1013 hPa would plant an enormous initial weight that the
    /// decaying learning rate never corrects.
    const SCALER_WARMUP: u64 = 16;

    /// Standardizes features in place, clamping to ±10σ so a polluted
    /// outlier cannot blow up a gradient step.
    fn scale(&self, features: &mut [f64]) {
        self.scaler.transform(features);
        for f in features.iter_mut() {
            *f = f.clamp(-10.0, 10.0);
        }
    }

    /// Predicts the next differenced value for the current state.
    fn predict_diffed(&self, features: &[f64]) -> f64 {
        let mut scaled = features.to_vec();
        self.scale(&mut scaled);
        self.model.predict(&scaled)
    }
}

impl Forecaster for Snarimax {
    fn learn_one(&mut self, y: f64, x: &[f64]) {
        self.n += 1;
        let Some(yd) = self.differencer.difference(y) else {
            return; // still warming up the differencer
        };
        self.build_features(x);
        let features = std::mem::take(&mut self.features);
        self.scaler.update(&features);
        let residual = if self.scaler.count() <= Self::SCALER_WARMUP {
            // Warm the scaler up before training the model; without
            // reliable statistics the first gradient steps would be
            // taken on raw feature magnitudes.
            0.0
        } else {
            let mut scaled = features.clone();
            self.scale(&mut scaled);
            let y_hat = self.model.learn(&scaled, yd);
            yd - y_hat
        };
        self.yd_n += 1;
        let delta = yd - self.yd_mean;
        self.yd_mean += delta / self.yd_n as f64;
        self.yd_m2 += delta * (yd - self.yd_mean);
        self.y_lags.push(yd);
        self.e_lags.push(residual.clamp(-1e6, 1e6));
        self.features = features;
    }

    fn forecast(&self, horizon: usize, x_future: &[Vec<f64>]) -> Vec<f64> {
        if horizon == 0 {
            return Vec::new();
        }
        // Work on copies of the lag state; residuals of future steps
        // are unknown and taken as zero (their expectation).
        let mut y_lags = self.y_lags.clone();
        let mut e_lags = self.e_lags.clone();
        let empty: Vec<f64> = Vec::new();
        let mut diffed = Vec::with_capacity(horizon);
        let mut features = Vec::with_capacity(self.p + self.q + self.x_dim);
        for h in 0..horizon {
            features.clear();
            y_lags.fill_lags(&mut features);
            e_lags.fill_lags(&mut features);
            let x = x_future.get(h).unwrap_or(&empty);
            for i in 0..self.x_dim {
                features.push(x.get(i).copied().unwrap_or(0.0));
            }
            let pred = self.clamp_prediction(self.predict_diffed(&features));
            diffed.push(pred);
            y_lags.push(pred);
            e_lags.push(0.0);
        }
        self.differencer.integrate(&diffed)
    }

    fn name(&self) -> &'static str {
        if self.is_arimax {
            "arimax"
        } else {
            "arima"
        }
    }

    fn observations(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mae;

    #[test]
    fn names_and_counts() {
        let mut m = Snarimax::arima(2, 0, 1, 0.05);
        assert_eq!(m.name(), "arima");
        m.learn_one(1.0, &[]);
        assert_eq!(m.observations(), 1);
        let mx = Snarimax::arimax(2, 0, 1, 3, 0.05);
        assert_eq!(mx.name(), "arimax");
    }

    #[test]
    fn learns_an_ar1_process() {
        // y_t = 0.8 y_{t−1} + noise-free: AR(1), exactly learnable.
        let mut m = Snarimax::arima(1, 0, 0, 0.1);
        let mut y = 10.0;
        for _ in 0..2000 {
            m.learn_one(y, &[]);
            y *= 0.8;
            if y.abs() < 1e-6 {
                y = 10.0; // restart the decay so lags stay informative
            }
        }
        // After y = 10 the next value is 8.
        m.learn_one(10.0, &[]);
        let f = m.forecast(1, &[]);
        assert!(
            (f[0] - 8.0).abs() < 1.0,
            "AR(1) one-step forecast, got {}",
            f[0]
        );
    }

    #[test]
    fn differencing_handles_linear_trend() {
        // y = 3t: first difference is constant 3; ARIMA(1,1,0) must
        // extrapolate the trend.
        let mut m = Snarimax::arima(1, 1, 0, 0.1);
        for t in 0..1000 {
            m.learn_one(3.0 * t as f64, &[]);
        }
        let f = m.forecast(3, &[]);
        let truth = [3000.0, 3003.0, 3006.0];
        assert!(mae(&truth, &f) < 5.0, "trend extrapolation, got {f:?}");
    }

    #[test]
    fn exogenous_features_are_used() {
        // y is a pure function of x: an ARIMAX with that x must beat an
        // ARIMA that cannot see it, on an unpredictable (from lags)
        // series.
        let mut rng_state = 12345u64;
        let mut next_sign = move || {
            // xorshift
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            if rng_state.is_multiple_of(2) {
                1.0
            } else {
                -1.0
            }
        };
        let mut arimax = Snarimax::arimax(1, 0, 0, 1, 0.1);
        let mut arima = Snarimax::arima(1, 0, 0, 0.1);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..3000 {
            let x = next_sign();
            let y = 5.0 * x;
            arimax.learn_one(y, &[x]);
            arima.learn_one(y, &[]);
            xs.push(x);
            ys.push(y);
        }
        // Evaluate one-step forecasts with known future x.
        let x_next = 1.0;
        let fx = arimax.forecast(1, &[vec![x_next]]);
        assert!(
            (fx[0] - 5.0).abs() < 1.5,
            "ARIMAX exploits x, got {}",
            fx[0]
        );
        let fa = arima.forecast(1, &[]);
        assert!(
            (fa[0] - 5.0).abs() > (fx[0] - 5.0).abs(),
            "ARIMA cannot know the sign"
        );
    }

    #[test]
    fn forecast_horizon_shapes() {
        let mut m = Snarimax::arima(2, 1, 1, 0.05);
        for t in 0..100 {
            m.learn_one(t as f64, &[]);
        }
        assert!(m.forecast(0, &[]).is_empty());
        assert_eq!(m.forecast(12, &[]).len(), 12);
        assert!(m.forecast(12, &[]).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cold_start_does_not_panic() {
        let m = Snarimax::arima(3, 1, 2, 0.05);
        let f = m.forecast(5, &[]);
        assert_eq!(f.len(), 5);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn stable_under_injected_outliers() {
        let mut m = Snarimax::arima(2, 0, 1, 0.05);
        for t in 0..2000 {
            let y = if t % 500 == 250 { 1e8 } else { (t % 24) as f64 };
            m.learn_one(y, &[]);
        }
        let f = m.forecast(12, &[]);
        assert!(f.iter().all(|v| v.is_finite() && v.abs() < 1e6), "{f:?}");
    }
}
