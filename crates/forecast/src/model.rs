//! The online forecaster abstraction.

/// A forecasting model trained one observation at a time (River's
/// `learn_one` / `forecast` protocol).
pub trait Forecaster: Send {
    /// Learns from one observation `y` with exogenous features `x`
    /// (empty for purely auto-regressive models).
    fn learn_one(&mut self, y: f64, x: &[f64]);

    /// Forecasts the next `horizon` values. `x_future` supplies the
    /// exogenous features of each future step (one slice per step;
    /// models that ignore exogenous input accept an empty slice).
    fn forecast(&self, horizon: usize, x_future: &[Vec<f64>]) -> Vec<f64>;

    /// A short name for result tables ("arima", "arimax",
    /// "holt_winters").
    fn name(&self) -> &'static str;

    /// Observations learned so far.
    fn observations(&self) -> u64;
}

/// Boxed forecaster, for heterogeneous model collections.
pub type BoxForecaster = Box<dyn Forecaster>;

/// A trivial baseline: predicts the last observed value for the whole
/// horizon (the "naive" forecast every serious model must beat).
#[derive(Debug, Clone, Default)]
pub struct NaiveForecaster {
    last: f64,
    n: u64,
}

impl NaiveForecaster {
    /// A fresh naive forecaster.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Forecaster for NaiveForecaster {
    fn learn_one(&mut self, y: f64, _x: &[f64]) {
        self.last = y;
        self.n += 1;
    }

    fn forecast(&self, horizon: usize, _x_future: &[Vec<f64>]) -> Vec<f64> {
        vec![self.last; horizon]
    }

    fn name(&self) -> &'static str {
        "naive"
    }

    fn observations(&self) -> u64 {
        self.n
    }
}

/// A seasonal-naive baseline: predicts the value observed one season
/// ago.
#[derive(Debug, Clone)]
pub struct SeasonalNaiveForecaster {
    period: usize,
    history: std::collections::VecDeque<f64>,
    n: u64,
}

impl SeasonalNaiveForecaster {
    /// A seasonal-naive forecaster with the given period (`≥ 1`).
    pub fn new(period: usize) -> Self {
        let period = period.max(1);
        SeasonalNaiveForecaster {
            period,
            history: std::collections::VecDeque::with_capacity(period),
            n: 0,
        }
    }
}

impl Forecaster for SeasonalNaiveForecaster {
    fn learn_one(&mut self, y: f64, _x: &[f64]) {
        if self.history.len() == self.period {
            self.history.pop_front();
        }
        self.history.push_back(y);
        self.n += 1;
    }

    fn forecast(&self, horizon: usize, _x_future: &[Vec<f64>]) -> Vec<f64> {
        if self.history.is_empty() {
            return vec![0.0; horizon];
        }
        (0..horizon)
            .map(|h| {
                // The value `period` steps before the forecast step; for
                // horizons past one season, wrap around.
                let len = self.history.len();
                self.history[(len - self.period.min(len) + h % self.period.min(len)) % len]
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "seasonal_naive"
    }

    fn observations(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_repeats_last() {
        let mut m = NaiveForecaster::new();
        m.learn_one(5.0, &[]);
        m.learn_one(7.0, &[]);
        assert_eq!(m.forecast(3, &[]), vec![7.0, 7.0, 7.0]);
        assert_eq!(m.observations(), 2);
        assert_eq!(m.name(), "naive");
    }

    #[test]
    fn seasonal_naive_repeats_last_season() {
        let mut m = SeasonalNaiveForecaster::new(3);
        for y in [1.0, 2.0, 3.0, 10.0, 20.0, 30.0] {
            m.learn_one(y, &[]);
        }
        assert_eq!(m.forecast(3, &[]), vec![10.0, 20.0, 30.0]);
        // Wraps beyond one season.
        assert_eq!(m.forecast(5, &[]), vec![10.0, 20.0, 30.0, 10.0, 20.0]);
    }

    #[test]
    fn seasonal_naive_cold_start() {
        let m = SeasonalNaiveForecaster::new(4);
        assert_eq!(m.forecast(2, &[]), vec![0.0, 0.0]);
        let mut m = SeasonalNaiveForecaster::new(4);
        m.learn_one(9.0, &[]);
        let f = m.forecast(2, &[]);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|v| *v == 9.0));
    }
}
