//! Aggregate and uniqueness expectations.

use crate::expectation::{Expectation, ExpectationResult};
use icewafl_types::{Result, Schema, StampedTuple, Value};
use std::collections::HashMap;

/// `expect_column_mean_to_be_between` — aggregate sanity check on a
/// numeric column (NULLs excluded from the mean).
pub struct ExpectColumnMeanToBeBetween {
    column: String,
    min: f64,
    max: f64,
}

impl ExpectColumnMeanToBeBetween {
    /// Requires `min ≤ mean(column) ≤ max`.
    pub fn new(column: impl Into<String>, min: f64, max: f64) -> Self {
        ExpectColumnMeanToBeBetween {
            column: column.into(),
            min,
            max,
        }
    }
}

impl Expectation for ExpectColumnMeanToBeBetween {
    fn describe(&self) -> String {
        format!(
            "expect_column_mean_to_be_between({}, {}..{})",
            self.column, self.min, self.max
        )
    }

    fn validate(&self, schema: &Schema, rows: &[StampedTuple]) -> Result<ExpectationResult> {
        let idx = schema.require(&self.column)?;
        let values: Vec<f64> = rows
            .iter()
            .filter_map(|r| r.tuple.get(idx).and_then(Value::as_f64))
            .collect();
        let mean = if values.is_empty() {
            f64::NAN
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        };
        let success = !values.is_empty() && mean >= self.min && mean <= self.max;
        Ok(ExpectationResult::aggregate(
            self.describe(),
            rows.len(),
            mean,
            success,
        ))
    }
}

/// `expect_column_stdev_to_be_between` — detects noise injection
/// (population standard deviation; NULLs excluded).
pub struct ExpectColumnStdevToBeBetween {
    column: String,
    min: f64,
    max: f64,
}

impl ExpectColumnStdevToBeBetween {
    /// Requires `min ≤ σ(column) ≤ max`.
    pub fn new(column: impl Into<String>, min: f64, max: f64) -> Self {
        ExpectColumnStdevToBeBetween {
            column: column.into(),
            min,
            max,
        }
    }
}

impl Expectation for ExpectColumnStdevToBeBetween {
    fn describe(&self) -> String {
        format!(
            "expect_column_stdev_to_be_between({}, {}..{})",
            self.column, self.min, self.max
        )
    }

    fn validate(&self, schema: &Schema, rows: &[StampedTuple]) -> Result<ExpectationResult> {
        let idx = schema.require(&self.column)?;
        let values: Vec<f64> = rows
            .iter()
            .filter_map(|r| r.tuple.get(idx).and_then(Value::as_f64))
            .collect();
        let stdev = if values.is_empty() {
            f64::NAN
        } else {
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            (values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
        };
        let success = !values.is_empty() && stdev >= self.min && stdev <= self.max;
        Ok(ExpectationResult::aggregate(
            self.describe(),
            rows.len(),
            stdev,
            success,
        ))
    }
}

/// `expect_column_values_to_be_unique` — detects duplicated tuples
/// (every repeated occurrence beyond the first is unexpected; NULLs
/// conform).
pub struct ExpectColumnValuesToBeUnique {
    column: String,
}

impl ExpectColumnValuesToBeUnique {
    /// Requires distinct values in `column`.
    pub fn new(column: impl Into<String>) -> Self {
        ExpectColumnValuesToBeUnique {
            column: column.into(),
        }
    }
}

impl Expectation for ExpectColumnValuesToBeUnique {
    fn describe(&self) -> String {
        format!("expect_column_values_to_be_unique({})", self.column)
    }

    fn validate(&self, schema: &Schema, rows: &[StampedTuple]) -> Result<ExpectationResult> {
        let idx = schema.require(&self.column)?;
        // Key values by display form — Value is not Hash (contains f64),
        // and the textual form is exactly what distinguishes duplicates
        // in CSV-shaped data.
        let mut seen: HashMap<String, bool> = HashMap::new();
        let mut unexpected = Vec::new();
        for row in rows {
            let v = row.tuple.get(idx).unwrap_or(&Value::Null);
            if v.is_null() {
                continue;
            }
            let key = format!("{}:{}", v.type_name(), v);
            if seen.insert(key, true).is_some() {
                unexpected.push(row.id);
            }
        }
        Ok(ExpectationResult::row_level(
            self.describe(),
            rows.len(),
            unexpected,
            1.0,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icewafl_types::{DataType, Timestamp, Tuple};

    fn schema() -> Schema {
        Schema::from_pairs([("Time", DataType::Timestamp), ("x", DataType::Float)]).unwrap()
    }

    fn row(id: u64, x: Value) -> StampedTuple {
        StampedTuple::new(
            id,
            Timestamp(id as i64),
            Tuple::new(vec![Value::Timestamp(Timestamp(id as i64)), x]),
        )
    }

    #[test]
    fn mean_in_and_out_of_bounds() {
        let rows: Vec<StampedTuple> = (0..4).map(|i| row(i, Value::Float(i as f64))).collect(); // mean 1.5
        let ok = ExpectColumnMeanToBeBetween::new("x", 1.0, 2.0);
        let r = ok.validate(&schema(), &rows).unwrap();
        assert!(r.success);
        assert_eq!(r.observed_value, Some(1.5));
        let bad = ExpectColumnMeanToBeBetween::new("x", 2.0, 3.0);
        assert!(!bad.validate(&schema(), &rows).unwrap().success);
    }

    #[test]
    fn mean_ignores_nulls() {
        let rows = vec![row(0, Value::Float(2.0)), row(1, Value::Null)];
        let e = ExpectColumnMeanToBeBetween::new("x", 1.9, 2.1);
        assert!(e.validate(&schema(), &rows).unwrap().success);
    }

    #[test]
    fn mean_of_empty_fails() {
        let e = ExpectColumnMeanToBeBetween::new("x", 0.0, 1.0);
        let r = e.validate(&schema(), &[]).unwrap();
        assert!(!r.success, "no data: cannot assert a mean");
    }

    #[test]
    fn stdev_detects_spread() {
        let tight: Vec<StampedTuple> = (0..10).map(|i| row(i, Value::Float(5.0))).collect();
        let e = ExpectColumnStdevToBeBetween::new("x", 0.0, 0.1);
        assert!(e.validate(&schema(), &tight).unwrap().success);
        let spread: Vec<StampedTuple> = (0..10)
            .map(|i| row(i, Value::Float(i as f64 * 100.0)))
            .collect();
        assert!(!e.validate(&schema(), &spread).unwrap().success);
    }

    #[test]
    fn unique_flags_second_occurrence() {
        let rows = vec![
            row(0, Value::Float(1.0)),
            row(1, Value::Float(2.0)),
            row(2, Value::Float(1.0)),
            row(3, Value::Null),
            row(4, Value::Null), // NULLs never flagged
        ];
        let e = ExpectColumnValuesToBeUnique::new("x");
        let r = e.validate(&schema(), &rows).unwrap();
        assert_eq!(r.unexpected_ids, vec![2]);
    }
}
