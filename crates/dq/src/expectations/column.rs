//! Single-column row-level expectations.

use crate::expectation::{validate_rows, Expectation, ExpectationResult};
use crate::regex::Regex;
use icewafl_types::{Result, Schema, StampedTuple, Value};
use std::cmp::Ordering;

/// `expect_column_values_to_not_be_null` — the §3.1.1 detector.
pub struct ExpectColumnValuesToNotBeNull {
    column: String,
    mostly: f64,
}

impl ExpectColumnValuesToNotBeNull {
    /// Requires every value of `column` to be non-NULL.
    pub fn new(column: impl Into<String>) -> Self {
        ExpectColumnValuesToNotBeNull {
            column: column.into(),
            mostly: 1.0,
        }
    }

    /// Tolerates up to `1 − mostly` NULLs.
    pub fn mostly(mut self, mostly: f64) -> Self {
        self.mostly = mostly.clamp(0.0, 1.0);
        self
    }
}

impl Expectation for ExpectColumnValuesToNotBeNull {
    fn describe(&self) -> String {
        format!("expect_column_values_to_not_be_null({})", self.column)
    }

    fn validate(&self, schema: &Schema, rows: &[StampedTuple]) -> Result<ExpectationResult> {
        validate_rows(
            self.describe(),
            schema,
            rows,
            &self.column,
            self.mostly,
            |v| !v.is_null(),
        )
    }
}

/// `expect_column_values_to_be_null` — the inverse check.
pub struct ExpectColumnValuesToBeNull {
    column: String,
}

impl ExpectColumnValuesToBeNull {
    /// Requires every value of `column` to be NULL.
    pub fn new(column: impl Into<String>) -> Self {
        ExpectColumnValuesToBeNull {
            column: column.into(),
        }
    }
}

impl Expectation for ExpectColumnValuesToBeNull {
    fn describe(&self) -> String {
        format!("expect_column_values_to_be_null({})", self.column)
    }

    fn validate(&self, schema: &Schema, rows: &[StampedTuple]) -> Result<ExpectationResult> {
        validate_rows(
            self.describe(),
            schema,
            rows,
            &self.column,
            1.0,
            Value::is_null,
        )
    }
}

/// `expect_column_values_to_be_between` — range check. NULLs conform
/// (GX semantics: null handling is `not_be_null`'s job).
pub struct ExpectColumnValuesToBeBetween {
    column: String,
    min: Option<Value>,
    max: Option<Value>,
    mostly: f64,
}

impl ExpectColumnValuesToBeBetween {
    /// Requires `min ≤ value ≤ max`; either bound may be `None`.
    pub fn new(column: impl Into<String>, min: Option<Value>, max: Option<Value>) -> Self {
        ExpectColumnValuesToBeBetween {
            column: column.into(),
            min,
            max,
            mostly: 1.0,
        }
    }

    /// Tolerates up to `1 − mostly` violations.
    pub fn mostly(mut self, mostly: f64) -> Self {
        self.mostly = mostly.clamp(0.0, 1.0);
        self
    }
}

impl Expectation for ExpectColumnValuesToBeBetween {
    fn describe(&self) -> String {
        format!(
            "expect_column_values_to_be_between({}, {:?}..{:?})",
            self.column,
            self.min.as_ref().map(ToString::to_string),
            self.max.as_ref().map(ToString::to_string)
        )
    }

    fn validate(&self, schema: &Schema, rows: &[StampedTuple]) -> Result<ExpectationResult> {
        let min = self.min.clone();
        let max = self.max.clone();
        validate_rows(
            self.describe(),
            schema,
            rows,
            &self.column,
            self.mostly,
            move |v| {
                if v.is_null() {
                    return true;
                }
                let above_min = min.as_ref().is_none_or(|m| {
                    matches!(v.compare(m), Some(Ordering::Greater | Ordering::Equal))
                });
                let below_max = max
                    .as_ref()
                    .is_none_or(|m| matches!(v.compare(m), Some(Ordering::Less | Ordering::Equal)));
                above_min && below_max
            },
        )
    }
}

/// `expect_column_values_to_be_in_set` — domain membership. NULLs
/// conform.
pub struct ExpectColumnValuesToBeInSet {
    column: String,
    set: Vec<Value>,
}

impl ExpectColumnValuesToBeInSet {
    /// Requires every value to be a member of `set`.
    pub fn new(column: impl Into<String>, set: Vec<Value>) -> Self {
        ExpectColumnValuesToBeInSet {
            column: column.into(),
            set,
        }
    }
}

impl Expectation for ExpectColumnValuesToBeInSet {
    fn describe(&self) -> String {
        format!(
            "expect_column_values_to_be_in_set({}, {} values)",
            self.column,
            self.set.len()
        )
    }

    fn validate(&self, schema: &Schema, rows: &[StampedTuple]) -> Result<ExpectationResult> {
        let set = self.set.clone();
        validate_rows(self.describe(), schema, rows, &self.column, 1.0, move |v| {
            v.is_null() || set.iter().any(|s| v.compare(s) == Some(Ordering::Equal))
        })
    }
}

/// `expect_column_values_to_match_regex` — the §3.1.2 precision
/// detector. Matching is anchored at the start (Python `re.match`
/// semantics, as in GX). Non-string values are rendered with their
/// display form; NULLs conform.
pub struct ExpectColumnValuesToMatchRegex {
    column: String,
    regex: Regex,
}

impl ExpectColumnValuesToMatchRegex {
    /// Requires every value to match `pattern`.
    pub fn new(column: impl Into<String>, pattern: &str) -> Result<Self> {
        Ok(ExpectColumnValuesToMatchRegex {
            column: column.into(),
            regex: Regex::new(pattern)?,
        })
    }
}

impl Expectation for ExpectColumnValuesToMatchRegex {
    fn describe(&self) -> String {
        format!(
            "expect_column_values_to_match_regex({}, {})",
            self.column,
            self.regex.pattern()
        )
    }

    fn validate(&self, schema: &Schema, rows: &[StampedTuple]) -> Result<ExpectationResult> {
        let regex = self.regex.clone();
        validate_rows(self.describe(), schema, rows, &self.column, 1.0, move |v| {
            if v.is_null() {
                return true;
            }
            let text = v.to_string();
            regex.matches_start(&text)
        })
    }
}

/// `expect_column_value_lengths_to_be_between` — string length bounds.
/// NULLs conform; non-strings violate.
pub struct ExpectColumnValueLengthsToBeBetween {
    column: String,
    min: usize,
    max: usize,
}

impl ExpectColumnValueLengthsToBeBetween {
    /// Requires `min ≤ len(value) ≤ max` (in chars).
    pub fn new(column: impl Into<String>, min: usize, max: usize) -> Self {
        ExpectColumnValueLengthsToBeBetween {
            column: column.into(),
            min,
            max,
        }
    }
}

impl Expectation for ExpectColumnValueLengthsToBeBetween {
    fn describe(&self) -> String {
        format!(
            "expect_column_value_lengths_to_be_between({}, {}..{})",
            self.column, self.min, self.max
        )
    }

    fn validate(&self, schema: &Schema, rows: &[StampedTuple]) -> Result<ExpectationResult> {
        let (min, max) = (self.min, self.max);
        validate_rows(
            self.describe(),
            schema,
            rows,
            &self.column,
            1.0,
            move |v| match v {
                Value::Null => true,
                Value::Str(s) => {
                    let n = s.chars().count();
                    n >= min && n <= max
                }
                _ => false,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icewafl_types::{DataType, Timestamp, Tuple};

    fn schema() -> Schema {
        Schema::from_pairs([
            ("Time", DataType::Timestamp),
            ("x", DataType::Float),
            ("s", DataType::Str),
        ])
        .unwrap()
    }

    fn row(id: u64, x: Value, s: Value) -> StampedTuple {
        StampedTuple::new(
            id,
            Timestamp(id as i64),
            Tuple::new(vec![Value::Timestamp(Timestamp(id as i64)), x, s]),
        )
    }

    fn rows() -> Vec<StampedTuple> {
        vec![
            row(0, Value::Float(1.0), Value::Str("walk".into())),
            row(1, Value::Null, Value::Str("run".into())),
            row(2, Value::Float(3.5), Value::Null),
            row(3, Value::Float(-2.0), Value::Str("swim".into())),
        ]
    }

    #[test]
    fn not_be_null_finds_nulls() {
        let e = ExpectColumnValuesToNotBeNull::new("x");
        let r = e.validate(&schema(), &rows()).unwrap();
        assert!(!r.success);
        assert_eq!(r.unexpected_ids, vec![1]);
        assert_eq!(r.element_count, 4);
    }

    #[test]
    fn not_be_null_with_mostly() {
        let e = ExpectColumnValuesToNotBeNull::new("x").mostly(0.75);
        let r = e.validate(&schema(), &rows()).unwrap();
        assert!(r.success, "1 of 4 null tolerated at mostly=0.75");
    }

    #[test]
    fn be_null_is_inverse() {
        let e = ExpectColumnValuesToBeNull::new("x");
        let r = e.validate(&schema(), &rows()).unwrap();
        assert_eq!(r.unexpected_ids, vec![0, 2, 3]);
    }

    #[test]
    fn between_bounds() {
        let e = ExpectColumnValuesToBeBetween::new(
            "x",
            Some(Value::Float(0.0)),
            Some(Value::Float(2.0)),
        );
        let r = e.validate(&schema(), &rows()).unwrap();
        // 3.5 too big, −2 too small; NULL conforms.
        assert_eq!(r.unexpected_ids, vec![2, 3]);
        let open = ExpectColumnValuesToBeBetween::new("x", Some(Value::Float(0.0)), None);
        let r = open.validate(&schema(), &rows()).unwrap();
        assert_eq!(r.unexpected_ids, vec![3]);
    }

    #[test]
    fn in_set() {
        let e = ExpectColumnValuesToBeInSet::new(
            "s",
            vec![Value::Str("walk".into()), Value::Str("run".into())],
        );
        let r = e.validate(&schema(), &rows()).unwrap();
        assert_eq!(r.unexpected_ids, vec![3], "swim not in set; NULL conforms");
    }

    #[test]
    fn match_regex_anchored_at_start() {
        let e = ExpectColumnValuesToMatchRegex::new("s", "[a-z]+$").unwrap();
        let r = e.validate(&schema(), &rows()).unwrap();
        assert!(
            r.success,
            "all non-null activity strings are lowercase words"
        );
        let digits = ExpectColumnValuesToMatchRegex::new("s", r"\d").unwrap();
        let r = digits.validate(&schema(), &rows()).unwrap();
        assert_eq!(r.unexpected_count, 3);
    }

    #[test]
    fn match_regex_on_numeric_column_uses_display() {
        // The paper's precision check runs against a float column.
        let e = ExpectColumnValuesToMatchRegex::new("x", r"^-?\d+(\.\d{1,3})?$").unwrap();
        let r = e.validate(&schema(), &rows()).unwrap();
        assert!(r.success);
        let strict = ExpectColumnValuesToMatchRegex::new("x", r"^\d+$").unwrap();
        let r = strict.validate(&schema(), &rows()).unwrap();
        // 1.0 renders as `1` (conforms); 3.5 and −2 do not.
        assert_eq!(r.unexpected_ids, vec![2, 3]);
    }

    #[test]
    fn bad_regex_is_rejected() {
        assert!(ExpectColumnValuesToMatchRegex::new("s", "(").is_err());
    }

    #[test]
    fn value_lengths() {
        let e = ExpectColumnValueLengthsToBeBetween::new("s", 4, 10);
        let r = e.validate(&schema(), &rows()).unwrap();
        assert_eq!(r.unexpected_ids, vec![1], "`run` is too short");
    }

    #[test]
    fn unknown_column_errors() {
        let e = ExpectColumnValuesToNotBeNull::new("nope");
        assert!(e.validate(&schema(), &rows()).is_err());
    }

    #[test]
    fn empty_batch_succeeds() {
        let e = ExpectColumnValuesToNotBeNull::new("x");
        let r = e.validate(&schema(), &[]).unwrap();
        assert!(r.success);
        assert_eq!(r.element_count, 0);
    }
}
