//! Multi-column and order-sensitive expectations.

use crate::expectation::{Expectation, ExpectationResult};
use icewafl_types::{Result, Schema, StampedTuple, Value};
use std::cmp::Ordering;

/// `expect_column_pair_values_a_to_be_greater_than_b` — the §3.1.2
/// detector for the km→cm unit error ("Steps < Distance after the
/// conversion"). Pairs with a NULL or incomparable side conform.
pub struct ExpectColumnPairValuesAToBeGreaterThanB {
    column_a: String,
    column_b: String,
    or_equal: bool,
}

impl ExpectColumnPairValuesAToBeGreaterThanB {
    /// Requires `a > b` per row.
    pub fn new(column_a: impl Into<String>, column_b: impl Into<String>) -> Self {
        ExpectColumnPairValuesAToBeGreaterThanB {
            column_a: column_a.into(),
            column_b: column_b.into(),
            or_equal: false,
        }
    }

    /// Relaxes to `a ≥ b`.
    pub fn or_equal(mut self) -> Self {
        self.or_equal = true;
        self
    }
}

impl Expectation for ExpectColumnPairValuesAToBeGreaterThanB {
    fn describe(&self) -> String {
        format!(
            "expect_column_pair_values_a_to_be_greater_than_b({}, {})",
            self.column_a, self.column_b
        )
    }

    fn validate(&self, schema: &Schema, rows: &[StampedTuple]) -> Result<ExpectationResult> {
        let a_idx = schema.require(&self.column_a)?;
        let b_idx = schema.require(&self.column_b)?;
        let mut unexpected = Vec::new();
        for row in rows {
            let a = row.tuple.get(a_idx).unwrap_or(&Value::Null);
            let b = row.tuple.get(b_idx).unwrap_or(&Value::Null);
            let conforms = match a.compare(b) {
                Some(Ordering::Greater) => true,
                Some(Ordering::Equal) => self.or_equal,
                Some(Ordering::Less) => false,
                None => true, // NULL / incomparable: undefined, conforms
            };
            if !conforms {
                unexpected.push(row.id);
            }
        }
        Ok(ExpectationResult::row_level(
            self.describe(),
            rows.len(),
            unexpected,
            1.0,
        ))
    }
}

/// `expect_multicolumn_sum_to_equal` — the §3.1.2 detector for
/// "BPM = 0 while the tracker was clearly worn": the sum of
/// ActiveMinutes + Distance + Steps must be 0 whenever BPM is 0.
///
/// Matching GX, the expectation checks `Σ columns == total` per row;
/// rows with any NULL in the summed columns conform.
pub struct ExpectMulticolumnSumToEqual {
    columns: Vec<String>,
    total: f64,
}

impl ExpectMulticolumnSumToEqual {
    /// Requires the per-row sum over `columns` to equal `total`.
    pub fn new(columns: Vec<String>, total: f64) -> Self {
        ExpectMulticolumnSumToEqual { columns, total }
    }
}

impl Expectation for ExpectMulticolumnSumToEqual {
    fn describe(&self) -> String {
        format!(
            "expect_multicolumn_sum_to_equal([{}], {})",
            self.columns.join(", "),
            self.total
        )
    }

    fn validate(&self, schema: &Schema, rows: &[StampedTuple]) -> Result<ExpectationResult> {
        let idxs: Vec<usize> = self
            .columns
            .iter()
            .map(|c| schema.require(c))
            .collect::<Result<_>>()?;
        let mut unexpected = Vec::new();
        for row in rows {
            let mut sum = 0.0;
            let mut has_null = false;
            for &i in &idxs {
                match row.tuple.get(i).unwrap_or(&Value::Null).as_f64() {
                    Some(x) => sum += x,
                    None => {
                        has_null = true;
                        break;
                    }
                }
            }
            if !has_null && (sum - self.total).abs() > 1e-9 {
                unexpected.push(row.id);
            }
        }
        Ok(ExpectationResult::row_level(
            self.describe(),
            rows.len(),
            unexpected,
            1.0,
        ))
    }
}

/// `expect_column_values_to_be_increasing` — the §3.1.3 detector for
/// delayed tuples: a late tuple breaks the stream's increasing
/// timestamp order.
///
/// A row is unexpected if its value is smaller than (or, with
/// `strictly`, not larger than) the running maximum of the previous
/// non-NULL values — matching how a monotonicity check flags the
/// out-of-place element rather than its neighbour.
pub struct ExpectColumnValuesToBeIncreasing {
    column: String,
    strictly: bool,
}

impl ExpectColumnValuesToBeIncreasing {
    /// Requires non-decreasing values in batch order.
    pub fn new(column: impl Into<String>) -> Self {
        ExpectColumnValuesToBeIncreasing {
            column: column.into(),
            strictly: false,
        }
    }

    /// Requires strictly increasing values.
    pub fn strictly(mut self) -> Self {
        self.strictly = true;
        self
    }
}

impl Expectation for ExpectColumnValuesToBeIncreasing {
    fn describe(&self) -> String {
        format!(
            "expect_column_values_to_be_increasing({}{})",
            self.column,
            if self.strictly { ", strictly" } else { "" }
        )
    }

    fn validate(&self, schema: &Schema, rows: &[StampedTuple]) -> Result<ExpectationResult> {
        let idx = schema.require(&self.column)?;
        let mut unexpected = Vec::new();
        let mut running_max: Option<&Value> = None;
        for row in rows {
            let v = row.tuple.get(idx).unwrap_or(&Value::Null);
            if v.is_null() {
                continue;
            }
            if let Some(max) = running_max {
                let ok = match v.compare(max) {
                    Some(Ordering::Greater) => true,
                    Some(Ordering::Equal) => !self.strictly,
                    Some(Ordering::Less) => false,
                    None => true,
                };
                if !ok {
                    unexpected.push(row.id);
                    // A late tuple does not lower the running max.
                    continue;
                }
            }
            running_max = Some(v);
        }
        Ok(ExpectationResult::row_level(
            self.describe(),
            rows.len(),
            unexpected,
            1.0,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icewafl_types::{DataType, Timestamp, Tuple};

    fn schema() -> Schema {
        Schema::from_pairs([
            ("Time", DataType::Timestamp),
            ("Steps", DataType::Int),
            ("Distance", DataType::Float),
            ("Active", DataType::Int),
        ])
        .unwrap()
    }

    fn row(id: u64, ts: i64, steps: Value, dist: Value, active: Value) -> StampedTuple {
        StampedTuple::new(
            id,
            Timestamp(ts),
            Tuple::new(vec![Value::Timestamp(Timestamp(ts)), steps, dist, active]),
        )
    }

    #[test]
    fn pair_greater_flags_conversion_errors() {
        let rows = vec![
            // Steps 100 > Distance 1.2 km: fine.
            row(0, 0, Value::Int(100), Value::Float(1.2), Value::Int(5)),
            // After km→cm: Distance 120000 > Steps — flagged.
            row(
                1,
                1,
                Value::Int(100),
                Value::Float(120_000.0),
                Value::Int(5),
            ),
            // NULL distance conforms.
            row(2, 2, Value::Int(100), Value::Null, Value::Int(5)),
        ];
        let e = ExpectColumnPairValuesAToBeGreaterThanB::new("Steps", "Distance");
        let r = e.validate(&schema(), &rows).unwrap();
        assert_eq!(r.unexpected_ids, vec![1]);
    }

    #[test]
    fn pair_greater_equal_boundary() {
        let rows = vec![row(0, 0, Value::Int(5), Value::Float(5.0), Value::Int(0))];
        let strict = ExpectColumnPairValuesAToBeGreaterThanB::new("Steps", "Distance");
        assert_eq!(
            strict.validate(&schema(), &rows).unwrap().unexpected_count,
            1
        );
        let relaxed = ExpectColumnPairValuesAToBeGreaterThanB::new("Steps", "Distance").or_equal();
        assert_eq!(
            relaxed.validate(&schema(), &rows).unwrap().unexpected_count,
            0
        );
    }

    #[test]
    fn multicolumn_sum_detects_impossible_zero_bpm() {
        // Using Steps+Distance+Active == 0 as the "not worn" criterion.
        let rows = vec![
            row(0, 0, Value::Int(0), Value::Float(0.0), Value::Int(0)), // truly idle
            row(1, 1, Value::Int(500), Value::Float(0.4), Value::Int(10)), // active → flagged
            row(2, 2, Value::Null, Value::Float(1.0), Value::Int(3)),   // NULL conforms
        ];
        let e = ExpectMulticolumnSumToEqual::new(
            vec!["Steps".into(), "Distance".into(), "Active".into()],
            0.0,
        );
        let r = e.validate(&schema(), &rows).unwrap();
        assert_eq!(r.unexpected_ids, vec![1]);
    }

    #[test]
    fn increasing_flags_late_tuples_only() {
        // Timestamps 1, 2, 5, 3, 4, 6 — with running-max semantics the
        // late tuples are 3 and 4 (both below the max 5).
        let mk = |id: u64, ts: i64| row(id, ts, Value::Int(0), Value::Float(0.0), Value::Int(0));
        let rows: Vec<StampedTuple> = [(0, 1), (1, 2), (2, 5), (3, 3), (4, 4), (5, 6)]
            .map(|(i, t)| mk(i, t))
            .into();
        let e = ExpectColumnValuesToBeIncreasing::new("Time");
        let r = e.validate(&schema(), &rows).unwrap();
        assert_eq!(r.unexpected_ids, vec![3, 4]);
    }

    #[test]
    fn increasing_equal_values() {
        let mk = |id: u64, ts: i64| row(id, ts, Value::Int(0), Value::Float(0.0), Value::Int(0));
        let rows: Vec<StampedTuple> = [(0, 1), (1, 1), (2, 2)].map(|(i, t)| mk(i, t)).into();
        let non_strict = ExpectColumnValuesToBeIncreasing::new("Time");
        assert!(non_strict.validate(&schema(), &rows).unwrap().success);
        let strict = ExpectColumnValuesToBeIncreasing::new("Time").strictly();
        assert_eq!(
            strict.validate(&schema(), &rows).unwrap().unexpected_ids,
            vec![1]
        );
    }

    #[test]
    fn increasing_skips_nulls() {
        let rows = vec![
            row(0, 1, Value::Int(0), Value::Float(0.0), Value::Int(0)),
            StampedTuple::new(
                1,
                Timestamp(2),
                Tuple::new(vec![
                    Value::Null,
                    Value::Int(0),
                    Value::Float(0.0),
                    Value::Int(0),
                ]),
            ),
            row(2, 3, Value::Int(0), Value::Float(0.0), Value::Int(0)),
        ];
        let e = ExpectColumnValuesToBeIncreasing::new("Time");
        assert!(e.validate(&schema(), &rows).unwrap().success);
    }

    #[test]
    fn unknown_columns_error() {
        let rows: Vec<StampedTuple> = vec![];
        assert!(ExpectColumnPairValuesAToBeGreaterThanB::new("a", "Steps")
            .validate(&schema(), &rows)
            .is_err());
        assert!(ExpectMulticolumnSumToEqual::new(vec!["a".into()], 0.0)
            .validate(&schema(), &rows)
            .is_err());
        assert!(ExpectColumnValuesToBeIncreasing::new("a")
            .validate(&schema(), &rows)
            .is_err());
    }
}
