//! The expectation catalogue.
//!
//! Includes every expectation the paper's experiments use —
//! `not_be_null` (§3.1.1), `pair_values_a_to_be_greater_than_b`,
//! `match_regex`, `multicolumn_sum_to_equal` (§3.1.2), and
//! `values_to_be_increasing` (§3.1.3) — plus the common rest of the GX
//! core set.

mod aggregate;
mod column;
mod multi;
mod table;

pub use aggregate::{
    ExpectColumnMeanToBeBetween, ExpectColumnStdevToBeBetween, ExpectColumnValuesToBeUnique,
};
pub use column::{
    ExpectColumnValueLengthsToBeBetween, ExpectColumnValuesToBeBetween,
    ExpectColumnValuesToBeInSet, ExpectColumnValuesToBeNull, ExpectColumnValuesToMatchRegex,
    ExpectColumnValuesToNotBeNull,
};
pub use multi::{
    ExpectColumnPairValuesAToBeGreaterThanB, ExpectColumnValuesToBeIncreasing,
    ExpectMulticolumnSumToEqual,
};
pub use table::{
    ExpectColumnMedianToBeBetween, ExpectColumnQuantileToBeBetween,
    ExpectCompoundColumnsToBeUnique, ExpectTableRowCountToBeBetween,
};
