//! Table-level and order-statistic expectations.

use crate::expectation::{Expectation, ExpectationResult};
use icewafl_types::{Result, Schema, StampedTuple, Value};
use std::collections::HashMap;

/// `expect_table_row_count_to_be_between` — detects dropped and
/// duplicated tuples at the batch level (a stream that should carry one
/// tuple per minute has a predictable count per window).
pub struct ExpectTableRowCountToBeBetween {
    min: usize,
    max: usize,
}

impl ExpectTableRowCountToBeBetween {
    /// Requires `min ≤ |batch| ≤ max`.
    pub fn new(min: usize, max: usize) -> Self {
        ExpectTableRowCountToBeBetween { min, max }
    }
}

impl Expectation for ExpectTableRowCountToBeBetween {
    fn describe(&self) -> String {
        format!(
            "expect_table_row_count_to_be_between({}..{})",
            self.min, self.max
        )
    }

    fn validate(&self, _schema: &Schema, rows: &[StampedTuple]) -> Result<ExpectationResult> {
        let n = rows.len();
        Ok(ExpectationResult::aggregate(
            self.describe(),
            n,
            n as f64,
            n >= self.min && n <= self.max,
        ))
    }
}

/// `expect_column_median_to_be_between` — robust central-tendency check
/// (immune to the outliers a mean check would chase).
pub struct ExpectColumnMedianToBeBetween {
    column: String,
    min: f64,
    max: f64,
}

impl ExpectColumnMedianToBeBetween {
    /// Requires `min ≤ median(column) ≤ max`.
    pub fn new(column: impl Into<String>, min: f64, max: f64) -> Self {
        ExpectColumnMedianToBeBetween {
            column: column.into(),
            min,
            max,
        }
    }
}

impl Expectation for ExpectColumnMedianToBeBetween {
    fn describe(&self) -> String {
        format!(
            "expect_column_median_to_be_between({}, {}..{})",
            self.column, self.min, self.max
        )
    }

    fn validate(&self, schema: &Schema, rows: &[StampedTuple]) -> Result<ExpectationResult> {
        let q = ExpectColumnQuantileToBeBetween::new(&self.column, 0.5, self.min, self.max);
        let mut r = q.validate(schema, rows)?;
        r.expectation = self.describe();
        Ok(r)
    }
}

/// `expect_column_quantile_values_to_be_between` — a single quantile
/// with bounds. NULLs are excluded; an empty column fails.
pub struct ExpectColumnQuantileToBeBetween {
    column: String,
    q: f64,
    min: f64,
    max: f64,
}

impl ExpectColumnQuantileToBeBetween {
    /// Requires `min ≤ quantile_q(column) ≤ max` with `q ∈ [0, 1]`.
    pub fn new(column: impl Into<String>, q: f64, min: f64, max: f64) -> Self {
        ExpectColumnQuantileToBeBetween {
            column: column.into(),
            q: q.clamp(0.0, 1.0),
            min,
            max,
        }
    }
}

impl Expectation for ExpectColumnQuantileToBeBetween {
    fn describe(&self) -> String {
        format!(
            "expect_column_quantile_values_to_be_between({}, q{}, {}..{})",
            self.column, self.q, self.min, self.max
        )
    }

    fn validate(&self, schema: &Schema, rows: &[StampedTuple]) -> Result<ExpectationResult> {
        let idx = schema.require(&self.column)?;
        let mut values: Vec<f64> = rows
            .iter()
            .filter_map(|r| r.tuple.get(idx).and_then(Value::as_f64))
            .collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let observed = if values.is_empty() {
            f64::NAN
        } else {
            let rank = self.q * (values.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            if lo == hi {
                values[lo]
            } else {
                values[lo] + (rank - lo as f64) * (values[hi] - values[lo])
            }
        };
        let success = !values.is_empty() && observed >= self.min && observed <= self.max;
        Ok(ExpectationResult::aggregate(
            self.describe(),
            rows.len(),
            observed,
            success,
        ))
    }
}

/// `expect_compound_columns_to_be_unique` — a multi-column key must not
/// repeat. Detects exact duplicates from the duplicate polluter and the
/// overlapping-sub-stream merge (§2.2.2) even when no single column is
/// a key. Rows with a NULL in any key column conform.
pub struct ExpectCompoundColumnsToBeUnique {
    columns: Vec<String>,
}

impl ExpectCompoundColumnsToBeUnique {
    /// Requires the tuple of `columns` values to be distinct per row.
    pub fn new(columns: Vec<String>) -> Self {
        ExpectCompoundColumnsToBeUnique { columns }
    }
}

impl Expectation for ExpectCompoundColumnsToBeUnique {
    fn describe(&self) -> String {
        format!(
            "expect_compound_columns_to_be_unique([{}])",
            self.columns.join(", ")
        )
    }

    fn validate(&self, schema: &Schema, rows: &[StampedTuple]) -> Result<ExpectationResult> {
        let idxs: Vec<usize> = self
            .columns
            .iter()
            .map(|c| schema.require(c))
            .collect::<Result<_>>()?;
        let mut seen: HashMap<String, bool> = HashMap::new();
        let mut unexpected = Vec::new();
        let mut key = String::new();
        'rows: for row in rows {
            key.clear();
            for &i in &idxs {
                let v = row.tuple.get(i).unwrap_or(&Value::Null);
                if v.is_null() {
                    continue 'rows;
                }
                key.push_str(v.type_name());
                key.push(':');
                key.push_str(&v.to_string());
                key.push('\u{1f}');
            }
            if seen.insert(key.clone(), true).is_some() {
                unexpected.push(row.id);
            }
        }
        Ok(ExpectationResult::row_level(
            self.describe(),
            rows.len(),
            unexpected,
            1.0,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icewafl_types::{DataType, Timestamp, Tuple};

    fn schema() -> Schema {
        Schema::from_pairs([
            ("Time", DataType::Timestamp),
            ("x", DataType::Float),
            ("s", DataType::Str),
        ])
        .unwrap()
    }

    fn row(id: u64, x: Value, s: &str) -> StampedTuple {
        StampedTuple::new(
            id,
            Timestamp(id as i64),
            Tuple::new(vec![
                Value::Timestamp(Timestamp(id as i64)),
                x,
                Value::Str(s.into()),
            ]),
        )
    }

    fn rows() -> Vec<StampedTuple> {
        (0..9)
            .map(|i| row(i, Value::Float(i as f64), "a"))
            .collect()
    }

    #[test]
    fn row_count_bounds() {
        let ok = ExpectTableRowCountToBeBetween::new(5, 10);
        let r = ok.validate(&schema(), &rows()).unwrap();
        assert!(r.success);
        assert_eq!(r.observed_value, Some(9.0));
        assert!(
            !ExpectTableRowCountToBeBetween::new(10, 20)
                .validate(&schema(), &rows())
                .unwrap()
                .success
        );
    }

    #[test]
    fn median_and_quantiles() {
        // x = 0..8 → median 4, q0.25 = 2.
        let med = ExpectColumnMedianToBeBetween::new("x", 3.5, 4.5);
        let r = med.validate(&schema(), &rows()).unwrap();
        assert!(r.success);
        assert_eq!(r.observed_value, Some(4.0));
        let q25 = ExpectColumnQuantileToBeBetween::new("x", 0.25, 1.9, 2.1);
        assert!(q25.validate(&schema(), &rows()).unwrap().success);
        let q100 = ExpectColumnQuantileToBeBetween::new("x", 1.0, 8.0, 8.0);
        assert!(q100.validate(&schema(), &rows()).unwrap().success);
    }

    #[test]
    fn median_robust_to_one_outlier_where_mean_is_not() {
        let mut rs = rows();
        rs[0].tuple.replace(1, Value::Float(1e9));
        let med = ExpectColumnMedianToBeBetween::new("x", 3.5, 5.5);
        assert!(
            med.validate(&schema(), &rs).unwrap().success,
            "median barely moves"
        );
        let mean = crate::expectations::ExpectColumnMeanToBeBetween::new("x", 0.0, 10.0);
        assert!(
            !mean.validate(&schema(), &rs).unwrap().success,
            "mean explodes"
        );
    }

    #[test]
    fn quantile_of_empty_fails() {
        let q = ExpectColumnQuantileToBeBetween::new("x", 0.5, 0.0, 1.0);
        assert!(!q.validate(&schema(), &[]).unwrap().success);
    }

    #[test]
    fn compound_unique_detects_duplicate_pairs() {
        let rs = vec![
            row(0, Value::Float(1.0), "a"),
            row(1, Value::Float(1.0), "b"), // same x, different s: fine
            row(2, Value::Float(1.0), "a"), // duplicate (x, s) pair
            row(3, Value::Null, "a"),       // NULL in key: conforms
            row(4, Value::Null, "a"),
        ];
        let e = ExpectCompoundColumnsToBeUnique::new(vec!["x".into(), "s".into()]);
        let r = e.validate(&schema(), &rs).unwrap();
        assert_eq!(r.unexpected_ids, vec![2]);
    }

    #[test]
    fn compound_unique_key_separator_prevents_collisions() {
        // ("ab", "c") vs ("a", "bc") must be distinct keys.
        let rs = vec![
            row(0, Value::Float(1.0), "ab"),
            row(1, Value::Float(1.0), "ab"),
        ];
        let e = ExpectCompoundColumnsToBeUnique::new(vec!["s".into(), "s".into()]);
        let r = e.validate(&schema(), &rs).unwrap();
        assert_eq!(r.unexpected_count, 1);
        let distinct = vec![
            row(0, Value::Float(1.0), "ab"),
            row(1, Value::Float(2.0), "ab"),
        ];
        let e2 = ExpectCompoundColumnsToBeUnique::new(vec!["x".into(), "s".into()]);
        assert!(e2.validate(&schema(), &distinct).unwrap().success);
    }

    #[test]
    fn unknown_columns_error() {
        assert!(ExpectColumnQuantileToBeBetween::new("nope", 0.5, 0.0, 1.0)
            .validate(&schema(), &[])
            .is_err());
        assert!(ExpectCompoundColumnsToBeUnique::new(vec!["nope".into()])
            .validate(&schema(), &[])
            .is_err());
    }
}
