//! Expectation suites and validation reports.

use crate::expectation::{BoxExpectation, Expectation, ExpectationResult};
use icewafl_types::{Result, Schema, StampedTuple};
use std::collections::HashSet;
use std::fmt;

/// A named collection of expectations validated together — GX's
/// "expectation suite".
#[derive(Default)]
pub struct ExpectationSuite {
    name: String,
    expectations: Vec<BoxExpectation>,
}

impl ExpectationSuite {
    /// An empty suite.
    pub fn new(name: impl Into<String>) -> Self {
        ExpectationSuite {
            name: name.into(),
            expectations: Vec::new(),
        }
    }

    /// Adds an expectation (builder style).
    pub fn with(mut self, expectation: impl Expectation + 'static) -> Self {
        self.expectations.push(Box::new(expectation));
        self
    }

    /// Adds a boxed expectation.
    pub fn push(&mut self, expectation: BoxExpectation) {
        self.expectations.push(expectation);
    }

    /// Number of expectations.
    pub fn len(&self) -> usize {
        self.expectations.len()
    }

    /// `true` iff the suite has no expectations.
    pub fn is_empty(&self) -> bool {
        self.expectations.is_empty()
    }

    /// Validates all expectations against a batch.
    pub fn validate(&self, schema: &Schema, rows: &[StampedTuple]) -> Result<ValidationReport> {
        let results: Result<Vec<ExpectationResult>> = self
            .expectations
            .iter()
            .map(|e| e.validate(schema, rows))
            .collect();
        Ok(ValidationReport {
            suite: self.name.clone(),
            element_count: rows.len(),
            results: results?,
        })
    }
}

/// The outcome of validating a suite against one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Name of the validated suite.
    pub suite: String,
    /// Rows in the validated batch.
    pub element_count: usize,
    /// Per-expectation results, in suite order.
    pub results: Vec<ExpectationResult>,
}

impl ValidationReport {
    /// `true` iff every expectation succeeded.
    pub fn success(&self) -> bool {
        self.results.iter().all(|r| r.success)
    }

    /// Total unexpected rows across all expectations (a row violating
    /// two expectations counts twice — this is the "number of errors
    /// measured" statistic of the paper's Table 1).
    pub fn total_unexpected(&self) -> usize {
        self.results.iter().map(|r| r.unexpected_count).sum()
    }

    /// Distinct ids of all violating tuples.
    pub fn unexpected_ids(&self) -> HashSet<u64> {
        self.results
            .iter()
            .flat_map(|r| r.unexpected_ids.iter().copied())
            .collect()
    }

    /// The result for the expectation whose description contains
    /// `needle`, if any.
    pub fn find(&self, needle: &str) -> Option<&ExpectationResult> {
        self.results.iter().find(|r| r.expectation.contains(needle))
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "suite `{}` on {} rows: {}",
            self.suite,
            self.element_count,
            if self.success() { "PASS" } else { "FAIL" }
        )?;
        for r in &self.results {
            writeln!(
                f,
                "  [{}] {} — unexpected {}/{}{}",
                if r.success { "ok" } else { "fail" },
                r.expectation,
                r.unexpected_count,
                r.element_count,
                match r.observed_value {
                    Some(v) => format!(", observed {v:.4}"),
                    None => String::new(),
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expectations::{ExpectColumnValuesToBeBetween, ExpectColumnValuesToNotBeNull};
    use icewafl_types::{DataType, Timestamp, Tuple, Value};

    fn schema() -> Schema {
        Schema::from_pairs([("Time", DataType::Timestamp), ("x", DataType::Float)]).unwrap()
    }

    fn rows() -> Vec<StampedTuple> {
        vec![
            StampedTuple::new(
                0,
                Timestamp(0),
                Tuple::new(vec![Value::Timestamp(Timestamp(0)), Value::Float(1.0)]),
            ),
            StampedTuple::new(
                1,
                Timestamp(1),
                Tuple::new(vec![Value::Timestamp(Timestamp(1)), Value::Null]),
            ),
        ]
    }

    #[test]
    fn suite_validates_all() {
        let suite = ExpectationSuite::new("demo")
            .with(ExpectColumnValuesToNotBeNull::new("x"))
            .with(ExpectColumnValuesToBeBetween::new(
                "x",
                Some(Value::Float(0.0)),
                None,
            ));
        assert_eq!(suite.len(), 2);
        let report = suite.validate(&schema(), &rows()).unwrap();
        assert!(!report.success(), "the null violates not_be_null");
        assert_eq!(report.total_unexpected(), 1);
        assert_eq!(report.unexpected_ids().len(), 1);
        assert!(report.find("not_be_null").is_some());
        assert!(report.find("nonexistent").is_none());
    }

    #[test]
    fn report_displays() {
        let suite = ExpectationSuite::new("demo").with(ExpectColumnValuesToNotBeNull::new("x"));
        let report = suite.validate(&schema(), &rows()).unwrap();
        let text = report.to_string();
        assert!(text.contains("FAIL"));
        assert!(text.contains("unexpected 1/2"));
    }

    #[test]
    fn empty_suite_passes() {
        let suite = ExpectationSuite::new("empty");
        assert!(suite.is_empty());
        let report = suite.validate(&schema(), &rows()).unwrap();
        assert!(report.success());
    }

    #[test]
    fn suite_propagates_errors() {
        let suite = ExpectationSuite::new("bad").with(ExpectColumnValuesToNotBeNull::new("nope"));
        assert!(suite.validate(&schema(), &rows()).is_err());
    }
}
