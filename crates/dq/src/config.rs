//! Declarative expectation-suite configuration.
//!
//! Mirrors GX's JSON suite format in spirit: a suite is a named list of
//! expectation descriptions that can be stored next to the pollution
//! configuration and replayed by the CLI.
//!
//! ```json
//! {
//!   "name": "wearable-checks",
//!   "expectations": [
//!     { "type": "not_null", "column": "Distance" },
//!     { "type": "increasing", "column": "Time" },
//!     { "type": "match_regex", "column": "CaloriesBurned",
//!       "pattern": "^\\d+(\\.\\d{4,})?$" }
//!   ]
//! }
//! ```

use crate::expectation::BoxExpectation;
use crate::expectations::{
    ExpectColumnMeanToBeBetween, ExpectColumnPairValuesAToBeGreaterThanB,
    ExpectColumnStdevToBeBetween, ExpectColumnValueLengthsToBeBetween,
    ExpectColumnValuesToBeBetween, ExpectColumnValuesToBeInSet, ExpectColumnValuesToBeIncreasing,
    ExpectColumnValuesToBeNull, ExpectColumnValuesToBeUnique, ExpectColumnValuesToMatchRegex,
    ExpectColumnValuesToNotBeNull, ExpectMulticolumnSumToEqual,
};
use crate::suite::ExpectationSuite;
use icewafl_types::{Error, Result, Value};
use serde::{Deserialize, Serialize};

/// A serializable expectation suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteConfig {
    /// Suite name (appears in validation reports).
    pub name: String,
    /// The expectations, validated in order.
    pub expectations: Vec<ExpectationConfig>,
}

impl SuiteConfig {
    /// Parses a JSON document.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| Error::config(format_args!("bad suite config: {e}")))
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("suite config is always serializable")
    }

    /// Builds the runnable suite.
    pub fn build(&self) -> Result<ExpectationSuite> {
        let mut suite = ExpectationSuite::new(&self.name);
        for e in &self.expectations {
            suite.push(e.build()?);
        }
        Ok(suite)
    }
}

/// One serializable expectation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ExpectationConfig {
    /// `expect_column_values_to_not_be_null`.
    NotNull {
        /// Target column.
        column: String,
        /// Minimum conforming fraction (default 1.0).
        #[serde(default = "one")]
        mostly: f64,
    },
    /// `expect_column_values_to_be_null`.
    Null {
        /// Target column.
        column: String,
    },
    /// `expect_column_values_to_be_between`.
    Between {
        /// Target column.
        column: String,
        /// Inclusive lower bound.
        #[serde(default)]
        min: Option<Value>,
        /// Inclusive upper bound.
        #[serde(default)]
        max: Option<Value>,
        /// Minimum conforming fraction (default 1.0).
        #[serde(default = "one")]
        mostly: f64,
    },
    /// `expect_column_values_to_be_in_set`.
    InSet {
        /// Target column.
        column: String,
        /// Allowed values.
        values: Vec<Value>,
    },
    /// `expect_column_values_to_match_regex`.
    MatchRegex {
        /// Target column.
        column: String,
        /// The pattern (anchored at the value start, Python
        /// `re.match`-style).
        pattern: String,
    },
    /// `expect_column_value_lengths_to_be_between`.
    ValueLengths {
        /// Target column.
        column: String,
        /// Minimum length in chars.
        min: usize,
        /// Maximum length in chars.
        max: usize,
    },
    /// `expect_column_values_to_be_increasing`.
    Increasing {
        /// Target column.
        column: String,
        /// Require strict increase.
        #[serde(default)]
        strictly: bool,
    },
    /// `expect_column_pair_values_a_to_be_greater_than_b`.
    PairGreater {
        /// The larger column.
        column_a: String,
        /// The smaller column.
        column_b: String,
        /// Allow equality.
        #[serde(default)]
        or_equal: bool,
    },
    /// `expect_multicolumn_sum_to_equal`.
    MulticolumnSum {
        /// The summed columns.
        columns: Vec<String>,
        /// The required per-row total.
        total: f64,
    },
    /// `expect_column_values_to_be_unique`.
    Unique {
        /// Target column.
        column: String,
    },
    /// `expect_column_mean_to_be_between`.
    MeanBetween {
        /// Target column.
        column: String,
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
    },
    /// `expect_column_stdev_to_be_between`.
    StdevBetween {
        /// Target column.
        column: String,
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
    },
    /// `expect_table_row_count_to_be_between`.
    RowCountBetween {
        /// Minimum rows.
        min: usize,
        /// Maximum rows.
        max: usize,
    },
    /// `expect_column_median_to_be_between`.
    MedianBetween {
        /// Target column.
        column: String,
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
    },
    /// `expect_column_quantile_values_to_be_between`.
    QuantileBetween {
        /// Target column.
        column: String,
        /// The quantile in `[0, 1]`.
        q: f64,
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
    },
    /// `expect_compound_columns_to_be_unique`.
    CompoundUnique {
        /// The key columns.
        columns: Vec<String>,
    },
}

fn one() -> f64 {
    1.0
}

impl ExpectationConfig {
    /// Builds the runtime expectation.
    pub fn build(&self) -> Result<BoxExpectation> {
        Ok(match self {
            ExpectationConfig::NotNull { column, mostly } => {
                Box::new(ExpectColumnValuesToNotBeNull::new(column).mostly(*mostly))
            }
            ExpectationConfig::Null { column } => Box::new(ExpectColumnValuesToBeNull::new(column)),
            ExpectationConfig::Between {
                column,
                min,
                max,
                mostly,
            } => Box::new(
                ExpectColumnValuesToBeBetween::new(column, min.clone(), max.clone())
                    .mostly(*mostly),
            ),
            ExpectationConfig::InSet { column, values } => {
                Box::new(ExpectColumnValuesToBeInSet::new(column, values.clone()))
            }
            ExpectationConfig::MatchRegex { column, pattern } => {
                Box::new(ExpectColumnValuesToMatchRegex::new(column, pattern)?)
            }
            ExpectationConfig::ValueLengths { column, min, max } => {
                Box::new(ExpectColumnValueLengthsToBeBetween::new(column, *min, *max))
            }
            ExpectationConfig::Increasing { column, strictly } => {
                let e = ExpectColumnValuesToBeIncreasing::new(column);
                Box::new(if *strictly { e.strictly() } else { e })
            }
            ExpectationConfig::PairGreater {
                column_a,
                column_b,
                or_equal,
            } => {
                let e = ExpectColumnPairValuesAToBeGreaterThanB::new(column_a, column_b);
                Box::new(if *or_equal { e.or_equal() } else { e })
            }
            ExpectationConfig::MulticolumnSum { columns, total } => {
                Box::new(ExpectMulticolumnSumToEqual::new(columns.clone(), *total))
            }
            ExpectationConfig::Unique { column } => {
                Box::new(ExpectColumnValuesToBeUnique::new(column))
            }
            ExpectationConfig::MeanBetween { column, min, max } => {
                Box::new(ExpectColumnMeanToBeBetween::new(column, *min, *max))
            }
            ExpectationConfig::StdevBetween { column, min, max } => {
                Box::new(ExpectColumnStdevToBeBetween::new(column, *min, *max))
            }
            ExpectationConfig::RowCountBetween { min, max } => Box::new(
                crate::expectations::ExpectTableRowCountToBeBetween::new(*min, *max),
            ),
            ExpectationConfig::MedianBetween { column, min, max } => Box::new(
                crate::expectations::ExpectColumnMedianToBeBetween::new(column, *min, *max),
            ),
            ExpectationConfig::QuantileBetween {
                column,
                q,
                min,
                max,
            } => Box::new(crate::expectations::ExpectColumnQuantileToBeBetween::new(
                column, *q, *min, *max,
            )),
            ExpectationConfig::CompoundUnique { columns } => Box::new(
                crate::expectations::ExpectCompoundColumnsToBeUnique::new(columns.clone()),
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icewafl_types::{DataType, Schema, StampedTuple, Timestamp, Tuple};

    fn schema() -> Schema {
        Schema::from_pairs([
            ("Time", DataType::Timestamp),
            ("x", DataType::Float),
            ("s", DataType::Str),
        ])
        .unwrap()
    }

    fn rows() -> Vec<StampedTuple> {
        (0..10u64)
            .map(|i| {
                StampedTuple::new(
                    i,
                    Timestamp(i as i64),
                    Tuple::new(vec![
                        Value::Timestamp(Timestamp(i as i64)),
                        if i == 5 {
                            Value::Null
                        } else {
                            Value::Float(i as f64)
                        },
                        Value::Str(format!("v{i}")),
                    ]),
                )
            })
            .collect()
    }

    fn full_config() -> SuiteConfig {
        SuiteConfig {
            name: "all-types".into(),
            expectations: vec![
                ExpectationConfig::NotNull {
                    column: "x".into(),
                    mostly: 0.9,
                },
                ExpectationConfig::Between {
                    column: "x".into(),
                    min: Some(Value::Float(0.0)),
                    max: Some(Value::Float(100.0)),
                    mostly: 1.0,
                },
                ExpectationConfig::MatchRegex {
                    column: "s".into(),
                    pattern: "^v".into(),
                },
                ExpectationConfig::Increasing {
                    column: "Time".into(),
                    strictly: true,
                },
                ExpectationConfig::Unique { column: "s".into() },
                ExpectationConfig::ValueLengths {
                    column: "s".into(),
                    min: 2,
                    max: 3,
                },
                ExpectationConfig::MeanBetween {
                    column: "x".into(),
                    min: 0.0,
                    max: 10.0,
                },
                ExpectationConfig::StdevBetween {
                    column: "x".into(),
                    min: 0.0,
                    max: 10.0,
                },
                ExpectationConfig::PairGreater {
                    column_a: "x".into(),
                    column_b: "x".into(),
                    or_equal: true,
                },
                ExpectationConfig::MulticolumnSum {
                    columns: vec!["x".into(), "x".into()],
                    total: 0.0,
                },
                ExpectationConfig::InSet {
                    column: "s".into(),
                    values: (0..10).map(|i| Value::Str(format!("v{i}"))).collect(),
                },
                ExpectationConfig::Null { column: "x".into() },
                ExpectationConfig::RowCountBetween { min: 1, max: 100 },
                ExpectationConfig::MedianBetween {
                    column: "x".into(),
                    min: 0.0,
                    max: 10.0,
                },
                ExpectationConfig::QuantileBetween {
                    column: "x".into(),
                    q: 0.9,
                    min: 0.0,
                    max: 10.0,
                },
                ExpectationConfig::CompoundUnique {
                    columns: vec!["Time".into(), "s".into()],
                },
            ],
        }
    }

    #[test]
    fn json_round_trip() {
        let cfg = full_config();
        let back = SuiteConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn builds_and_validates() {
        let suite = full_config().build().unwrap();
        assert_eq!(suite.len(), 16);
        let report = suite.validate(&schema(), &rows()).unwrap();
        // Some expectations pass, some fail — the point is they all run.
        assert_eq!(report.results.len(), 16);
        assert!(
            report.find("not_be_null").unwrap().success,
            "1 of 10 null, mostly 0.9"
        );
        assert!(report.find("match_regex").unwrap().success);
        assert!(!report.find("to_be_null").unwrap().success);
    }

    #[test]
    fn handwritten_json_parses() {
        let json = r#"{
            "name": "wearable-checks",
            "expectations": [
                { "type": "not_null", "column": "Distance" },
                { "type": "increasing", "column": "Time" },
                { "type": "match_regex", "column": "Calories",
                  "pattern": "^\\d+(\\.\\d{4,})?$" }
            ]
        }"#;
        let cfg = SuiteConfig::from_json(json).unwrap();
        assert_eq!(cfg.expectations.len(), 3);
        assert!(cfg.build().is_ok());
    }

    #[test]
    fn bad_regex_fails_at_build() {
        let cfg = SuiteConfig {
            name: "bad".into(),
            expectations: vec![ExpectationConfig::MatchRegex {
                column: "s".into(),
                pattern: "(".into(),
            }],
        };
        assert!(cfg.build().is_err());
    }
}
