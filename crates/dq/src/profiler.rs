//! Column profiling — the "assistant" half of a DQ tool: compute basic
//! statistics per column and suggest expectations from a clean sample
//! (as GX's profilers do), so a user can bootstrap a suite from the
//! clean stream and validate the polluted one.

use crate::expectation::BoxExpectation;
use crate::expectations::{
    ExpectColumnMeanToBeBetween, ExpectColumnValuesToBeBetween, ExpectColumnValuesToBeInSet,
    ExpectColumnValuesToNotBeNull,
};
use crate::suite::ExpectationSuite;
use icewafl_types::{DataType, Result, Schema, StampedTuple, Value};
use std::collections::BTreeSet;

/// Summary statistics of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnProfile {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// Total rows seen.
    pub count: usize,
    /// NULLs seen.
    pub null_count: usize,
    /// Minimum (numeric columns).
    pub min: Option<f64>,
    /// Maximum (numeric columns).
    pub max: Option<f64>,
    /// Mean (numeric columns).
    pub mean: Option<f64>,
    /// Population standard deviation (numeric columns).
    pub stdev: Option<f64>,
    /// Distinct values (string columns, capped at 64).
    pub categories: Vec<String>,
}

impl ColumnProfile {
    /// The fraction of NULL values.
    pub fn null_fraction(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.null_count as f64 / self.count as f64
        }
    }
}

/// Profiles every column of a batch.
pub fn profile(schema: &Schema, rows: &[StampedTuple]) -> Vec<ColumnProfile> {
    schema
        .fields()
        .iter()
        .enumerate()
        .map(|(idx, field)| {
            let mut null_count = 0;
            let mut values: Vec<f64> = Vec::new();
            let mut categories: BTreeSet<String> = BTreeSet::new();
            for row in rows {
                match row.tuple.get(idx).unwrap_or(&Value::Null) {
                    Value::Null => null_count += 1,
                    v => {
                        if let Some(x) = v.as_f64() {
                            values.push(x);
                        } else if let Value::Str(s) = v {
                            if categories.len() < 64 {
                                categories.insert(s.clone());
                            }
                        }
                    }
                }
            }
            let (min, max, mean, stdev) = if values.is_empty() {
                (None, None, None, None)
            } else {
                let min = values.iter().copied().fold(f64::INFINITY, f64::min);
                let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let mean = values.iter().sum::<f64>() / values.len() as f64;
                let var =
                    values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / values.len() as f64;
                (Some(min), Some(max), Some(mean), Some(var.sqrt()))
            };
            ColumnProfile {
                name: field.name.clone(),
                dtype: field.dtype,
                count: rows.len(),
                null_count,
                min,
                max,
                mean,
                stdev,
                categories: categories.into_iter().collect(),
            }
        })
        .collect()
}

/// Builds a suggested expectation suite from a clean sample:
///
/// * columns without NULLs → `not_be_null`;
/// * numeric columns → `values_to_be_between` with margins of one
///   standard deviation beyond the observed range, and
///   `mean_to_be_between` at ±3 standard errors;
/// * low-cardinality string columns → `values_to_be_in_set`.
pub fn suggest_suite(schema: &Schema, clean: &[StampedTuple]) -> Result<ExpectationSuite> {
    let mut suite = ExpectationSuite::new("suggested");
    for p in profile(schema, clean) {
        if p.null_count == 0 && p.count > 0 {
            suite.push(Box::new(ExpectColumnValuesToNotBeNull::new(&p.name)) as BoxExpectation);
        }
        if let (Some(min), Some(max), Some(mean), Some(stdev)) = (p.min, p.max, p.mean, p.stdev) {
            let margin = stdev.max(1e-9);
            suite.push(Box::new(ExpectColumnValuesToBeBetween::new(
                &p.name,
                Some(Value::Float(min - margin)),
                Some(Value::Float(max + margin)),
            )));
            let se = stdev / (p.count.max(1) as f64).sqrt();
            suite.push(Box::new(ExpectColumnMeanToBeBetween::new(
                &p.name,
                mean - 3.0 * se - 1e-9,
                mean + 3.0 * se + 1e-9,
            )));
        }
        if p.dtype == DataType::Str && !p.categories.is_empty() && p.categories.len() < 32 {
            suite.push(Box::new(ExpectColumnValuesToBeInSet::new(
                &p.name,
                p.categories.iter().map(|c| Value::Str(c.clone())).collect(),
            )));
        }
    }
    Ok(suite)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icewafl_types::{Timestamp, Tuple};

    fn schema() -> Schema {
        Schema::from_pairs([
            ("Time", DataType::Timestamp),
            ("x", DataType::Float),
            ("cat", DataType::Str),
        ])
        .unwrap()
    }

    fn rows() -> Vec<StampedTuple> {
        (0..100)
            .map(|i| {
                StampedTuple::new(
                    i,
                    Timestamp(i as i64),
                    Tuple::new(vec![
                        Value::Timestamp(Timestamp(i as i64)),
                        Value::Float((i % 10) as f64),
                        Value::Str(if i % 2 == 0 { "even" } else { "odd" }.into()),
                    ]),
                )
            })
            .collect()
    }

    #[test]
    fn profile_computes_stats() {
        let profiles = profile(&schema(), &rows());
        assert_eq!(profiles.len(), 3);
        let x = &profiles[1];
        assert_eq!(x.name, "x");
        assert_eq!(x.count, 100);
        assert_eq!(x.null_count, 0);
        assert_eq!(x.min, Some(0.0));
        assert_eq!(x.max, Some(9.0));
        assert!((x.mean.unwrap() - 4.5).abs() < 1e-12);
        assert!(x.stdev.unwrap() > 2.0);
        let cat = &profiles[2];
        assert_eq!(cat.categories, vec!["even".to_string(), "odd".to_string()]);
    }

    #[test]
    fn profile_counts_nulls() {
        let mut rs = rows();
        rs[0].tuple.replace(1, Value::Null);
        let profiles = profile(&schema(), &rs);
        assert_eq!(profiles[1].null_count, 1);
        assert!((profiles[1].null_fraction() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn suggested_suite_passes_on_clean_data() {
        let clean = rows();
        let suite = suggest_suite(&schema(), &clean).unwrap();
        assert!(!suite.is_empty());
        let report = suite.validate(&schema(), &clean).unwrap();
        assert!(report.success(), "{report}");
    }

    #[test]
    fn suggested_suite_catches_pollution() {
        let clean = rows();
        let suite = suggest_suite(&schema(), &clean).unwrap();
        // Pollute: nulls + out-of-range values + a foreign category.
        let mut dirty = clean.clone();
        dirty[5].tuple.replace(1, Value::Null);
        dirty[6].tuple.replace(1, Value::Float(1e9));
        dirty[7].tuple.replace(2, Value::Str("UNKNOWN".into()));
        let report = suite.validate(&schema(), &dirty).unwrap();
        assert!(!report.success());
        assert!(report.unexpected_ids().contains(&5));
        assert!(report.unexpected_ids().contains(&6));
        assert!(report.unexpected_ids().contains(&7));
    }

    #[test]
    fn empty_batch_profile() {
        let profiles = profile(&schema(), &[]);
        assert_eq!(profiles[1].count, 0);
        assert_eq!(profiles[1].min, None);
        assert_eq!(profiles[1].null_fraction(), 0.0);
    }
}
