//! The expectation abstraction — Great Expectations' core concept,
//! rebuilt.
//!
//! An expectation is a data characteristic expected to hold in clean
//! data (§3.1 of the paper). Validating an expectation against a batch
//! yields the number of *unexpected* rows (plus their tuple ids, our
//! ground-truth hook) or, for aggregate expectations, an observed value.

use icewafl_types::{Result, Schema, StampedTuple};

/// The outcome of validating one expectation against a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectationResult {
    /// The expectation's self-description, e.g.
    /// `expect_column_values_to_not_be_null(Distance)`.
    pub expectation: String,
    /// Whether the expectation held (within its `mostly` tolerance).
    pub success: bool,
    /// Rows examined.
    pub element_count: usize,
    /// Rows violating the expectation (0 for aggregate expectations
    /// that fail — see `observed_value`).
    pub unexpected_count: usize,
    /// Ids of the violating tuples, in batch order (row-level
    /// expectations only).
    pub unexpected_ids: Vec<u64>,
    /// Observed aggregate value (aggregate expectations only).
    pub observed_value: Option<f64>,
}

impl ExpectationResult {
    /// A row-level result; success is decided by `mostly` (the minimum
    /// tolerated fraction of conforming rows, 1.0 = all).
    pub fn row_level(
        expectation: String,
        element_count: usize,
        unexpected_ids: Vec<u64>,
        mostly: f64,
    ) -> Self {
        let unexpected_count = unexpected_ids.len();
        let success = if element_count == 0 {
            true
        } else {
            let conforming = (element_count - unexpected_count) as f64 / element_count as f64;
            conforming + 1e-12 >= mostly
        };
        ExpectationResult {
            expectation,
            success,
            element_count,
            unexpected_count,
            unexpected_ids,
            observed_value: None,
        }
    }

    /// An aggregate result.
    pub fn aggregate(
        expectation: String,
        element_count: usize,
        observed: f64,
        success: bool,
    ) -> Self {
        ExpectationResult {
            expectation,
            success,
            element_count,
            unexpected_count: 0,
            unexpected_ids: Vec::new(),
            observed_value: Some(observed),
        }
    }

    /// The fraction of unexpected rows in `[0, 1]`.
    pub fn unexpected_fraction(&self) -> f64 {
        if self.element_count == 0 {
            0.0
        } else {
            self.unexpected_count as f64 / self.element_count as f64
        }
    }
}

/// A validatable data-quality constraint.
pub trait Expectation: Send {
    /// A human-readable identifier including the configured columns.
    fn describe(&self) -> String;

    /// Validates against a batch of tuples under a schema.
    fn validate(&self, schema: &Schema, rows: &[StampedTuple]) -> Result<ExpectationResult>;
}

/// Boxed expectation, the unit of suite composition.
pub type BoxExpectation = Box<dyn Expectation>;

/// Shared helper: resolves a column and runs a per-row predicate,
/// collecting violating ids. `predicate` returns `true` when the row
/// CONFORMS.
pub(crate) fn validate_rows(
    describe: String,
    schema: &Schema,
    rows: &[StampedTuple],
    column: &str,
    mostly: f64,
    mut predicate: impl FnMut(&icewafl_types::Value) -> bool,
) -> Result<ExpectationResult> {
    let idx = schema.require(column)?;
    let mut unexpected = Vec::new();
    for row in rows {
        let value = row.tuple.get(idx).unwrap_or(&icewafl_types::Value::Null);
        if !predicate(value) {
            unexpected.push(row.id);
        }
    }
    Ok(ExpectationResult::row_level(
        describe,
        rows.len(),
        unexpected,
        mostly,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_level_success_requires_all_by_default() {
        let r = ExpectationResult::row_level("e".into(), 10, vec![3], 1.0);
        assert!(!r.success);
        assert_eq!(r.unexpected_count, 1);
        assert!((r.unexpected_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mostly_tolerates_a_fraction() {
        let r = ExpectationResult::row_level("e".into(), 10, vec![1], 0.9);
        assert!(r.success, "10% unexpected tolerated at mostly=0.9");
        let r = ExpectationResult::row_level("e".into(), 10, vec![1, 2], 0.9);
        assert!(!r.success);
    }

    #[test]
    fn empty_batch_succeeds() {
        let r = ExpectationResult::row_level("e".into(), 0, vec![], 1.0);
        assert!(r.success);
        assert_eq!(r.unexpected_fraction(), 0.0);
    }

    #[test]
    fn aggregate_result_carries_observed() {
        let r = ExpectationResult::aggregate("mean".into(), 5, 2.5, true);
        assert_eq!(r.observed_value, Some(2.5));
        assert!(r.success);
        assert_eq!(r.unexpected_count, 0);
    }
}
