//! Regex abstract syntax.

/// One element of a character class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassItem {
    /// A single character.
    Char(char),
    /// An inclusive range `lo-hi`.
    Range(char, char),
    /// `\d` — ASCII digits.
    Digit,
    /// `\w` — word characters (alphanumeric plus `_`).
    Word,
    /// `\s` — whitespace.
    Space,
}

impl ClassItem {
    fn matches(&self, c: char) -> bool {
        match self {
            ClassItem::Char(x) => c == *x,
            ClassItem::Range(lo, hi) => (*lo..=*hi).contains(&c),
            ClassItem::Digit => c.is_ascii_digit(),
            ClassItem::Word => c.is_alphanumeric() || c == '_',
            ClassItem::Space => c.is_whitespace(),
        }
    }
}

/// A character class: a set of items, possibly negated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSet {
    /// The class members.
    pub items: Vec<ClassItem>,
    /// Whether the class is negated (`[^…]`).
    pub negated: bool,
}

impl ClassSet {
    /// Whether the class accepts `c`.
    pub fn contains(&self, c: char) -> bool {
        let hit = self.items.iter().any(|i| i.matches(c));
        hit != self.negated
    }
}

/// A parsed regular expression node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single literal character.
    Literal(char),
    /// `.` — any single character.
    AnyChar,
    /// A character class (also used for `\d` etc. outside brackets).
    Class(ClassSet),
    /// `^` — start of text.
    StartAnchor,
    /// `$` — end of text.
    EndAnchor,
    /// A sequence of nodes.
    Concat(Vec<Ast>),
    /// Alternation between branches.
    Alt(Vec<Ast>),
    /// Greedy repetition of a node: `{min, max}` with `max = None` for
    /// unbounded.
    Repeat {
        /// The repeated node.
        node: Box<Ast>,
        /// Minimum repetitions.
        min: usize,
        /// Maximum repetitions (`None` = unbounded).
        max: Option<usize>,
    },
    /// A parenthesized group (no capture semantics).
    Group(Box<Ast>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_items_match() {
        assert!(ClassItem::Char('a').matches('a'));
        assert!(!ClassItem::Char('a').matches('b'));
        assert!(ClassItem::Range('a', 'f').matches('c'));
        assert!(!ClassItem::Range('a', 'f').matches('g'));
        assert!(ClassItem::Digit.matches('7'));
        assert!(!ClassItem::Digit.matches('x'));
        assert!(ClassItem::Word.matches('_'));
        assert!(ClassItem::Space.matches('\t'));
    }

    #[test]
    fn negated_class() {
        let set = ClassSet {
            items: vec![ClassItem::Digit],
            negated: true,
        };
        assert!(set.contains('a'));
        assert!(!set.contains('5'));
    }
}
