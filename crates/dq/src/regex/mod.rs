//! A small regular-expression engine, written from scratch.
//!
//! The paper's experiment 3.1.2 detects the reduced-precision error with
//! GX's `expect_column_values_to_match_regex`; this module provides the
//! matching machinery without an external crate.
//!
//! Supported syntax: literals, `.`, escapes (`\d \D \w \W \s \S` and
//! escaped metacharacters), character classes (`[a-z0-9_]`, negated
//! `[^…]`, ranges), anchors `^ $`, greedy quantifiers `* + ? {n} {n,}
//! {n,m}`, alternation `|`, and groups `(...)`.
//!
//! The matcher is a classic backtracking interpreter over the parsed
//! AST. Worst-case time is exponential in pathological patterns
//! (`(a*)*b`), which is acceptable for validation rules; a step budget
//! guards against runaway backtracking.

mod ast;
mod matcher;
mod parser;

pub use ast::{Ast, ClassItem, ClassSet};

use icewafl_types::{Error, Result};

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    ast: Ast,
}

impl Regex {
    /// Compiles a pattern.
    pub fn new(pattern: &str) -> Result<Self> {
        let ast = parser::parse(pattern)
            .map_err(|msg| Error::config(format_args!("bad regex `{pattern}`: {msg}")))?;
        Ok(Regex {
            pattern: pattern.to_string(),
            ast,
        })
    }

    /// The original pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// `true` iff the pattern matches somewhere in `text` (unanchored
    /// search, like Python's `re.search`).
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        (0..=chars.len()).any(|start| matcher::match_at(&self.ast, &chars, start).is_some())
    }

    /// `true` iff the pattern matches a prefix of `text` (like Python's
    /// `re.match`, which GX uses for `match_regex`).
    pub fn matches_start(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        matcher::match_at(&self.ast, &chars, 0).is_some()
    }

    /// `true` iff the pattern matches all of `text`.
    pub fn matches_full(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        matcher::match_at(&self.ast, &chars, 0) == Some(chars.len())
    }

    /// The end position (in chars) of the leftmost match starting at
    /// position 0, if any.
    pub fn match_prefix_len(&self, text: &str) -> Option<usize> {
        let chars: Vec<char> = text.chars().collect();
        matcher::match_at(&self.ast, &chars, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Regex {
        Regex::new(p).unwrap()
    }

    #[test]
    fn literals() {
        assert!(re("abc").is_match("xxabcxx"));
        assert!(!re("abc").is_match("abd"));
        assert!(re("abc").matches_full("abc"));
        assert!(!re("abc").matches_full("abcd"));
    }

    #[test]
    fn dot_matches_any_single_char() {
        assert!(re("a.c").is_match("abc"));
        assert!(re("a.c").is_match("a💡c"));
        assert!(!re("a.c").is_match("ac"));
    }

    #[test]
    fn escapes() {
        assert!(re(r"\d+").matches_full("12345"));
        assert!(!re(r"\d").is_match("abc"));
        assert!(re(r"\w+").matches_full("ab_1"));
        assert!(re(r"\s").is_match("a b"));
        assert!(re(r"\D+").matches_full("abc"));
        assert!(re(r"\W").is_match("a-b"));
        assert!(re(r"\S+").matches_full("abc"));
        assert!(re(r"a\.b").is_match("a.b"));
        assert!(!re(r"a\.b").is_match("axb"));
        assert!(re(r"\\").is_match("a\\b"));
    }

    #[test]
    fn character_classes() {
        assert!(re("[abc]+").matches_full("cab"));
        assert!(!re("[abc]").is_match("xyz"));
        assert!(re("[a-z0-9]+").matches_full("ab09"));
        assert!(re("[^0-9]+").matches_full("abc"));
        assert!(!re("[^0-9]").is_match("5"));
        // '-' at the edges is a literal.
        assert!(re("[-a]").is_match("-"));
        assert!(re("[a-]").is_match("-"));
        // Escapes inside classes.
        assert!(re(r"[\d]+").matches_full("42"));
        assert!(re(r"[\]]").is_match("]"));
    }

    #[test]
    fn anchors() {
        assert!(re("^abc").is_match("abcdef"));
        assert!(!re("^abc").is_match("xabc"));
        assert!(re("def$").is_match("abcdef"));
        assert!(!re("def$").is_match("defabc"));
        assert!(re("^abc$").matches_full("abc"));
        assert!(!re("^abc$").is_match("abcd"));
    }

    #[test]
    fn quantifiers() {
        assert!(re("ab*c").is_match("ac"));
        assert!(re("ab*c").is_match("abbbc"));
        assert!(re("ab+c").is_match("abc"));
        assert!(!re("ab+c").is_match("ac"));
        assert!(re("ab?c").is_match("ac"));
        assert!(re("ab?c").is_match("abc"));
        assert!(!re("ab?c").is_match("abbc"));
    }

    #[test]
    fn counted_repetition() {
        assert!(re(r"\d{3}").matches_full("123"));
        assert!(!re(r"^\d{3}$").is_match("12"));
        assert!(re(r"\d{2,}").matches_full("12345"));
        assert!(!re(r"\d{2,}").is_match("1"));
        assert!(re(r"\d{1,3}").matches_full("12"));
        assert!(!re(r"^\d{1,3}$").is_match("1234"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(re("cat|dog").is_match("hotdog"));
        assert!(re("(ab)+").matches_full("ababab"));
        assert!(!re("^(ab)+$").is_match("aba"));
        assert!(re("a(b|c)d").is_match("acd"));
        assert!(re("(a|b)(c|d)").matches_full("bd"));
    }

    #[test]
    fn calories_precision_pattern() {
        // The §3.1.2 precision check: valid CaloriesBurned values have at
        // most 3 decimal places.
        let valid = re(r"^\d+(\.\d{1,3})?$");
        assert!(valid.matches_full("125"));
        assert!(valid.matches_full("125.4"));
        assert!(valid.matches_full("125.456"));
        assert!(!valid.matches_full("125.4567"), "precision 4 is invalid");
        assert!(!valid.matches_full("125."));
        assert!(!valid.matches_full("abc"));
    }

    #[test]
    fn greedy_with_backtracking() {
        assert!(re("a.*c").matches_full("abcabc"));
        assert!(re(r"^.*b$").is_match("aab"));
        assert!(re("a*a").is_match("aaa"), "star must give back one");
    }

    #[test]
    fn empty_pattern_and_empty_text() {
        assert!(re("").is_match(""));
        assert!(re("").is_match("abc"));
        assert!(re("a*").is_match(""));
        assert!(!re("a+").is_match(""));
        assert!(re("^$").matches_full(""));
        assert!(!re("^$").is_match("x"));
    }

    #[test]
    fn pathological_pattern_terminates() {
        // (a*)*b against many a's with no b — the step budget must cut
        // the search off (returning "no match") rather than hanging.
        let r = re("(a*)*b");
        assert!(!r.is_match(&"a".repeat(64)));
        assert!(r.is_match("aab"));
    }

    #[test]
    fn invalid_patterns_error() {
        for p in ["(", ")", "[", "a{", "a{2", "*a", "|*", "a{3,2}", r"\q"] {
            assert!(Regex::new(p).is_err(), "should reject {p:?}");
        }
    }

    #[test]
    fn match_prefix_len() {
        assert_eq!(re("ab").match_prefix_len("abc"), Some(2));
        assert_eq!(re("ab").match_prefix_len("xab"), None);
        // Greedy: longest prefix via backtracking order.
        assert_eq!(re("a*").match_prefix_len("aaab"), Some(3));
    }

    #[test]
    fn matches_start_is_pythons_re_match() {
        assert!(re("ab").matches_start("abc"));
        assert!(!re("bc").matches_start("abc"));
    }
}
