//! Recursive-descent regex parser.
//!
//! Grammar:
//! ```text
//! alternation := concat ('|' concat)*
//! concat      := repeat*
//! repeat      := atom ('*' | '+' | '?' | '{n}' | '{n,}' | '{n,m}')?
//! atom        := literal | '.' | '^' | '$' | escape | class | '(' alternation ')'
//! ```

use super::ast::{Ast, ClassItem, ClassSet};

/// Parses a pattern into an AST, or an error message.
pub fn parse(pattern: &str) -> Result<Ast, String> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut p = Parser { chars, pos: 0 };
    let ast = p.alternation()?;
    if p.pos != p.chars.len() {
        return Err(format!(
            "unexpected `{}` at position {}",
            p.chars[p.pos], p.pos
        ));
    }
    Ok(ast)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn alternation(&mut self) -> Result<Ast, String> {
        let mut branches = vec![self.concat()?];
        while self.eat('|') {
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alt(branches)
        })
    }

    fn concat(&mut self) -> Result<Ast, String> {
        let mut nodes = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            nodes.push(self.repeat()?);
        }
        Ok(match nodes.len() {
            0 => Ast::Empty,
            1 => nodes.pop().expect("one node"),
            _ => Ast::Concat(nodes),
        })
    }

    fn repeat(&mut self) -> Result<Ast, String> {
        let atom = self.atom()?;
        let quantifiable = !matches!(atom, Ast::StartAnchor | Ast::EndAnchor);
        let (min, max) = match self.peek() {
            Some('*') => {
                self.pos += 1;
                (0, None)
            }
            Some('+') => {
                self.pos += 1;
                (1, None)
            }
            Some('?') => {
                self.pos += 1;
                (0, Some(1))
            }
            Some('{') => {
                self.pos += 1;
                let r = self.counted()?;
                (r.0, r.1)
            }
            _ => return Ok(atom),
        };
        if !quantifiable {
            return Err("quantifier after anchor".to_string());
        }
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
        })
    }

    /// Parses the inside of `{…}` (the `{` is already consumed).
    fn counted(&mut self) -> Result<(usize, Option<usize>), String> {
        let min = self.number().ok_or("expected number in `{}`")?;
        let max = if self.eat(',') {
            if self.peek() == Some('}') {
                None
            } else {
                Some(self.number().ok_or("expected number after `,`")?)
            }
        } else {
            Some(min)
        };
        if !self.eat('}') {
            return Err("unterminated `{`".to_string());
        }
        if let Some(max) = max {
            if max < min {
                return Err(format!("bad repetition range {{{min},{max}}}"));
            }
        }
        Ok((min, max))
    }

    fn number(&mut self) -> Option<usize> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse()
            .ok()
    }

    fn atom(&mut self) -> Result<Ast, String> {
        match self.bump() {
            None => Err("unexpected end of pattern".to_string()),
            Some('(') => {
                let inner = self.alternation()?;
                if !self.eat(')') {
                    return Err("unterminated `(`".to_string());
                }
                Ok(Ast::Group(Box::new(inner)))
            }
            Some(')') => Err("unmatched `)`".to_string()),
            Some('[') => self.class(),
            Some(']') => Ok(Ast::Literal(']')),
            Some('.') => Ok(Ast::AnyChar),
            Some('^') => Ok(Ast::StartAnchor),
            Some('$') => Ok(Ast::EndAnchor),
            Some('*') | Some('+') | Some('?') => {
                Err("quantifier with nothing to repeat".to_string())
            }
            Some('{') => Err("`{` with nothing to repeat".to_string()),
            Some('\\') => self.escape(false),
            Some(c) => Ok(Ast::Literal(c)),
        }
    }

    /// Parses an escape sequence; `in_class` restricts the result to
    /// class items.
    fn escape(&mut self, in_class: bool) -> Result<Ast, String> {
        let Some(c) = self.bump() else {
            return Err("dangling `\\`".to_string());
        };
        let class = |items: Vec<ClassItem>, negated: bool| Ast::Class(ClassSet { items, negated });
        Ok(match c {
            'd' => class(vec![ClassItem::Digit], false),
            'D' => class(vec![ClassItem::Digit], true),
            'w' => class(vec![ClassItem::Word], false),
            'W' => class(vec![ClassItem::Word], true),
            's' => class(vec![ClassItem::Space], false),
            'S' => class(vec![ClassItem::Space], true),
            'n' => Ast::Literal('\n'),
            't' => Ast::Literal('\t'),
            'r' => Ast::Literal('\r'),
            '\\' | '.' | '*' | '+' | '?' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '^' | '$'
            | '-' | '/' => Ast::Literal(c),
            other => {
                let _ = in_class;
                return Err(format!("unknown escape `\\{other}`"));
            }
        })
    }

    /// Parses a character class; the `[` is already consumed.
    fn class(&mut self) -> Result<Ast, String> {
        let negated = self.eat('^');
        let mut items = Vec::new();
        loop {
            match self.peek() {
                None => return Err("unterminated `[`".to_string()),
                Some(']') if !items.is_empty() || negated => {
                    // A leading `]` right after `[` (or `[^`) would be a
                    // literal in POSIX; we require escaping for clarity,
                    // so `]` closes here.
                    self.pos += 1;
                    break;
                }
                Some(']') => {
                    return Err("empty character class".to_string());
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.escape(true)? {
                        Ast::Literal(c) => items.push(ClassItem::Char(c)),
                        Ast::Class(set) if !set.negated && set.items.len() == 1 => {
                            items.push(set.items[0].clone());
                        }
                        _ => return Err("unsupported escape in class".to_string()),
                    }
                }
                Some(c) => {
                    self.pos += 1;
                    // Range `c-hi` if `-` is followed by a non-`]` char.
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).is_some_and(|&n| n != ']')
                    {
                        self.pos += 1; // consume '-'
                        let hi = self.bump().expect("checked above");
                        let hi = if hi == '\\' {
                            match self.escape(true)? {
                                Ast::Literal(c) => c,
                                _ => return Err("bad range end".to_string()),
                            }
                        } else {
                            hi
                        };
                        if hi < c {
                            return Err(format!("invalid range `{c}-{hi}`"));
                        }
                        items.push(ClassItem::Range(c, hi));
                    } else {
                        items.push(ClassItem::Char(c));
                    }
                }
            }
        }
        Ok(Ast::Class(ClassSet { items, negated }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_literals_to_concat() {
        assert_eq!(
            parse("ab").unwrap(),
            Ast::Concat(vec![Ast::Literal('a'), Ast::Literal('b')])
        );
        assert_eq!(parse("a").unwrap(), Ast::Literal('a'));
        assert_eq!(parse("").unwrap(), Ast::Empty);
    }

    #[test]
    fn parses_alternation_tree() {
        match parse("a|b|c").unwrap() {
            Ast::Alt(branches) => assert_eq!(branches.len(), 3),
            other => panic!("expected Alt, got {other:?}"),
        }
    }

    #[test]
    fn parses_quantifiers() {
        assert_eq!(
            parse("a*").unwrap(),
            Ast::Repeat {
                node: Box::new(Ast::Literal('a')),
                min: 0,
                max: None
            }
        );
        assert_eq!(
            parse("a{2,5}").unwrap(),
            Ast::Repeat {
                node: Box::new(Ast::Literal('a')),
                min: 2,
                max: Some(5)
            }
        );
        assert_eq!(
            parse("a{3}").unwrap(),
            Ast::Repeat {
                node: Box::new(Ast::Literal('a')),
                min: 3,
                max: Some(3)
            }
        );
        assert_eq!(
            parse("a{2,}").unwrap(),
            Ast::Repeat {
                node: Box::new(Ast::Literal('a')),
                min: 2,
                max: None
            }
        );
    }

    #[test]
    fn rejects_malformed() {
        for p in [
            "(", "a)", "[", "[]", "a{3,2}", "*", "a**b{", "^*", r"\q", "[z-a]",
        ] {
            assert!(parse(p).is_err(), "{p:?} must be rejected");
        }
    }

    #[test]
    fn parses_class_with_ranges_and_escapes() {
        match parse(r"[a-f0-9\.]").unwrap() {
            Ast::Class(set) => {
                assert!(!set.negated);
                assert_eq!(set.items.len(), 3);
                assert!(set.contains('c'));
                assert!(set.contains('7'));
                assert!(set.contains('.'));
                assert!(!set.contains('z'));
            }
            other => panic!("expected Class, got {other:?}"),
        }
    }

    #[test]
    fn double_star_rejected() {
        // `a**` — the second `*` has nothing to repeat (we do not support
        // quantified quantifiers).
        assert!(parse("a**").is_err());
    }

    #[test]
    fn anchors_not_quantifiable() {
        assert!(parse("^*").is_err());
        assert!(parse("$+").is_err());
    }
}
