//! Backtracking matcher over the regex AST.
//!
//! The matcher is written in continuation-passing style: each node
//! consumes input and invokes the continuation with the new position.
//! Greedy quantifiers try the longest expansion first and backtrack
//! through the continuation. A global step budget bounds pathological
//! patterns.

use super::ast::Ast;
use std::cell::Cell;

/// Maximum backtracking steps before the matcher gives up (treated as
/// "no match"). Generous for validation-sized strings.
const STEP_BUDGET: u64 = 1_000_000;

/// Attempts to match `ast` at `start`; returns the end position of a
/// match (greedy-first order) if one exists.
pub fn match_at(ast: &Ast, chars: &[char], start: usize) -> Option<usize> {
    let steps = Cell::new(0u64);
    let mut result = None;
    let m = Matcher {
        chars,
        steps: &steps,
    };
    m.run(ast, start, &mut |end| {
        result = Some(end);
        true
    });
    result
}

struct Matcher<'a> {
    chars: &'a [char],
    steps: &'a Cell<u64>,
}

impl<'a> Matcher<'a> {
    fn budget_ok(&self) -> bool {
        let n = self.steps.get() + 1;
        self.steps.set(n);
        n <= STEP_BUDGET
    }

    /// Matches `node` at `pos`; calls `k(end)` for each way the node can
    /// match, in greedy order, stopping as soon as `k` returns `true`.
    /// Returns whether `k` accepted.
    fn run(&self, node: &Ast, pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
        if !self.budget_ok() {
            return false;
        }
        match node {
            Ast::Empty => k(pos),
            Ast::Literal(c) => pos < self.chars.len() && self.chars[pos] == *c && k(pos + 1),
            Ast::AnyChar => pos < self.chars.len() && k(pos + 1),
            Ast::Class(set) => {
                pos < self.chars.len() && set.contains(self.chars[pos]) && k(pos + 1)
            }
            Ast::StartAnchor => pos == 0 && k(pos),
            Ast::EndAnchor => pos == self.chars.len() && k(pos),
            Ast::Group(inner) => self.run(inner, pos, k),
            Ast::Concat(nodes) => self.run_seq(nodes, pos, k),
            Ast::Alt(branches) => {
                for b in branches {
                    if self.run(b, pos, &mut *k) {
                        return true;
                    }
                }
                false
            }
            Ast::Repeat { node, min, max } => self.run_repeat(node, pos, *min, *max, 0, k),
        }
    }

    fn run_seq(&self, nodes: &[Ast], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
        match nodes.split_first() {
            None => k(pos),
            Some((first, rest)) => self.run(first, pos, &mut |p| self.run_seq(rest, p, &mut *k)),
        }
    }

    fn run_repeat(
        &self,
        node: &Ast,
        pos: usize,
        min: usize,
        max: Option<usize>,
        count: usize,
        k: &mut dyn FnMut(usize) -> bool,
    ) -> bool {
        if !self.budget_ok() {
            return false;
        }
        // Greedy: try one more repetition first…
        let can_repeat = max.is_none_or(|m| count < m);
        if can_repeat {
            let matched = self.run(node, pos, &mut |p| {
                // Zero-width repetition would loop forever; require
                // progress.
                p > pos && self.run_repeat(node, p, min, max, count + 1, &mut *k)
            });
            if matched {
                return true;
            }
        }
        // …then fall back to stopping here if the minimum is met.
        count >= min && k(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parser::parse;

    fn end_of_match(pattern: &str, text: &str, start: usize) -> Option<usize> {
        let ast = parse(pattern).unwrap();
        let chars: Vec<char> = text.chars().collect();
        match_at(&ast, &chars, start)
    }

    #[test]
    fn greedy_order_returns_longest_first() {
        assert_eq!(end_of_match("a*", "aaa", 0), Some(3));
        assert_eq!(end_of_match("a?", "a", 0), Some(1));
        assert_eq!(end_of_match("a{1,2}", "aaa", 0), Some(2));
    }

    #[test]
    fn match_at_offsets() {
        assert_eq!(end_of_match("b", "abc", 1), Some(2));
        assert_eq!(end_of_match("b", "abc", 0), None);
        assert_eq!(end_of_match("", "abc", 3), Some(3));
    }

    #[test]
    fn backtracking_gives_back_characters() {
        // `a*ab`: the star must back off one `a`.
        assert_eq!(end_of_match("a*ab", "aaab", 0), Some(4));
    }

    #[test]
    fn zero_width_repeat_terminates() {
        // `(a?)*` could loop on zero-width matches; the progress guard
        // stops it.
        assert_eq!(end_of_match("(a?)*", "b", 0), Some(0));
        assert_eq!(end_of_match("(a?)*", "aab", 0), Some(2));
    }
}
