//! # icewafl-dq
//!
//! An expectation-based data-quality validation engine — the Great
//! Expectations (GX) substitute of the Icewafl reproduction.
//!
//! Experiment 1 of the paper (§3.1) validates polluted streams with GX
//! expectations; this crate provides the same semantics:
//!
//! * an [`Expectation`] trait with row-level (`unexpected_count`,
//!   violating tuple ids) and aggregate (`observed_value`) results;
//! * the full set of expectations the paper uses —
//!   [`ExpectColumnValuesToNotBeNull`](expectations::ExpectColumnValuesToNotBeNull),
//!   [`ExpectColumnPairValuesAToBeGreaterThanB`](expectations::ExpectColumnPairValuesAToBeGreaterThanB),
//!   [`ExpectColumnValuesToMatchRegex`](expectations::ExpectColumnValuesToMatchRegex),
//!   [`ExpectMulticolumnSumToEqual`](expectations::ExpectMulticolumnSumToEqual),
//!   [`ExpectColumnValuesToBeIncreasing`](expectations::ExpectColumnValuesToBeIncreasing) —
//!   plus the common rest of the GX core set;
//! * [`ExpectationSuite`]s and [`ValidationReport`]s;
//! * a from-scratch [regular-expression engine](regex) backing
//!   `match_regex`;
//! * a column [profiler] that suggests a suite from a clean
//!   sample.
//!
//! ```
//! use icewafl_dq::prelude::*;
//! use icewafl_types::{DataType, Schema, StampedTuple, Timestamp, Tuple, Value};
//!
//! let schema = Schema::from_pairs([
//!     ("Time", DataType::Timestamp),
//!     ("Distance", DataType::Float),
//! ]).unwrap();
//! let rows = vec![StampedTuple::new(0, Timestamp(0), Tuple::new(vec![
//!     Value::Timestamp(Timestamp(0)), Value::Null,
//! ]))];
//!
//! let suite = ExpectationSuite::new("demo")
//!     .with(ExpectColumnValuesToNotBeNull::new("Distance"));
//! let report = suite.validate(&schema, &rows).unwrap();
//! assert!(!report.success());
//! assert_eq!(report.total_unexpected(), 1);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod expectation;
pub mod expectations;
pub mod monitor;
pub mod profiler;
pub mod regex;
pub mod suite;

pub use config::{ExpectationConfig, SuiteConfig};
pub use expectation::{BoxExpectation, Expectation, ExpectationResult};
pub use monitor::{DqMonitorOperator, WindowedReport};
pub use profiler::{profile, suggest_suite, ColumnProfile};
pub use regex::Regex;
pub use suite::{ExpectationSuite, ValidationReport};

/// Everything needed for typical validation tasks.
pub mod prelude {
    pub use crate::config::{ExpectationConfig, SuiteConfig};
    pub use crate::expectation::{BoxExpectation, Expectation, ExpectationResult};
    pub use crate::expectations::*;
    pub use crate::monitor::{DqMonitorOperator, WindowedReport};
    pub use crate::profiler::{profile, suggest_suite, ColumnProfile};
    pub use crate::regex::Regex;
    pub use crate::suite::{ExpectationSuite, ValidationReport};
}

#[cfg(test)]
mod proptests {
    use crate::regex::Regex;
    use proptest::prelude::*;

    /// A reference matcher for a tiny regex subset (literal strings
    /// only) to cross-check the engine's search semantics.
    fn naive_contains(haystack: &str, needle: &str) -> bool {
        haystack.contains(needle)
    }

    proptest! {
        /// On literal-only patterns, the engine agrees with substring
        /// search.
        #[test]
        fn literal_patterns_agree_with_contains(
            needle in "[a-z]{0,6}",
            haystack in "[a-z]{0,24}",
        ) {
            let re = Regex::new(&needle).unwrap();
            prop_assert_eq!(re.is_match(&haystack), naive_contains(&haystack, &needle));
        }

        /// Fully anchored literal patterns agree with equality.
        #[test]
        fn anchored_literals_agree_with_equality(
            needle in "[a-z]{0,6}",
            haystack in "[a-z]{0,8}",
        ) {
            let re = Regex::new(&format!("^{needle}$")).unwrap();
            prop_assert_eq!(re.is_match(&haystack), haystack == needle);
        }

        /// `x*` always matches; `x+` matches iff an `x` is present.
        #[test]
        fn star_and_plus_semantics(haystack in "[a-c]{0,16}") {
            prop_assert!(Regex::new("a*").unwrap().is_match(&haystack));
            prop_assert_eq!(
                Regex::new("a+").unwrap().is_match(&haystack),
                haystack.contains('a')
            );
        }

        /// A `{n}` counted repetition of a literal agrees with substring
        /// search of the repeated literal.
        #[test]
        fn counted_repetition_agrees(haystack in "[ab]{0,16}", n in 1usize..5) {
            let re = Regex::new(&format!("a{{{n}}}")).unwrap();
            let needle = "a".repeat(n);
            prop_assert_eq!(re.is_match(&haystack), haystack.contains(&needle));
        }

        /// The digit-precision pattern of §3.1.2 accepts exactly the
        /// numbers with ≤ 3 decimals.
        #[test]
        fn precision_pattern_classifies_floats(int_part in 0u32..10_000, frac_digits in 0usize..6) {
            let text = if frac_digits == 0 {
                int_part.to_string()
            } else {
                format!("{int_part}.{}", "7".repeat(frac_digits))
            };
            let re = Regex::new(r"^\d+(\.\d{1,3})?$").unwrap();
            prop_assert_eq!(re.matches_full(&text), frac_digits <= 3);
        }
    }
}
