//! Continuous data-quality monitoring over a stream.
//!
//! The paper's introduction motivates Icewafl with DQ tools that
//! *monitor* streams; this module closes the loop: a stream operator
//! that validates an [`ExpectationSuite`] over tumbling event-time
//! windows, emitting one [`ValidationReport`] per window as the
//! watermark passes it. Combined with a pollution pipeline it answers
//! "when did the stream go bad, and how badly?" online.

use crate::suite::{ExpectationSuite, ValidationReport};
use icewafl_stream::window::WindowPane;
use icewafl_stream::{Collector, Operator, TumblingWindow};
use icewafl_types::{Duration, Schema, StampedTuple, Timestamp};

/// A per-window validation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedReport {
    /// Inclusive window start.
    pub start: Timestamp,
    /// Exclusive window end.
    pub end: Timestamp,
    /// The suite's results for this window's rows.
    pub report: ValidationReport,
}

/// Stream operator: groups tuples into tumbling event-time windows (by
/// `τ`) and validates each completed window against a suite.
///
/// Windows fire when the watermark passes their end; remaining windows
/// fire at end of stream. Validation errors (an expectation referencing
/// a column missing from the schema) surface as a panic at the first
/// window rather than silently skewing results — bind-time validation
/// belongs in the suite builder.
pub struct DqMonitorOperator {
    window: TumblingWindow<StampedTuple, fn(&StampedTuple) -> Timestamp>,
    suite: ExpectationSuite,
    schema: Schema,
}

fn tau_of(t: &StampedTuple) -> Timestamp {
    t.tau
}

impl DqMonitorOperator {
    /// A monitor validating `suite` over windows of `size`.
    pub fn new(schema: Schema, suite: ExpectationSuite, size: Duration) -> Self {
        DqMonitorOperator {
            window: TumblingWindow::new(size, tau_of),
            suite,
            schema,
        }
    }

    fn validate_pane(&self, pane: WindowPane<StampedTuple>) -> WindowedReport {
        let report = self
            .suite
            .validate(&self.schema, &pane.records)
            .expect("suite must be valid for the monitored schema");
        WindowedReport {
            start: pane.start,
            end: pane.end,
            report,
        }
    }
}

impl Operator<StampedTuple, WindowedReport> for DqMonitorOperator {
    fn on_element(&mut self, record: StampedTuple, _out: &mut dyn Collector<WindowedReport>) {
        // Buffered in the inner window operator; panes fire on
        // watermarks.
        let mut sink: Vec<WindowPane<StampedTuple>> = Vec::new();
        self.window.on_element(record, &mut sink);
        debug_assert!(sink.is_empty(), "tumbling windows only fire on watermarks");
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut dyn Collector<WindowedReport>) {
        let mut panes: Vec<WindowPane<StampedTuple>> = Vec::new();
        self.window.on_watermark(wm, &mut panes);
        for pane in panes {
            out.collect(self.validate_pane(pane));
        }
    }

    fn on_end(&mut self, out: &mut dyn Collector<WindowedReport>) {
        let mut panes: Vec<WindowPane<StampedTuple>> = Vec::new();
        self.window.on_end(&mut panes);
        for pane in panes {
            out.collect(self.validate_pane(pane));
        }
    }

    fn name(&self) -> &'static str {
        "dq_monitor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expectations::ExpectColumnValuesToNotBeNull;
    use icewafl_stream::prelude::*;
    use icewafl_types::{DataType, Tuple, Value};

    fn schema() -> Schema {
        Schema::from_pairs([("Time", DataType::Timestamp), ("x", DataType::Float)]).unwrap()
    }

    fn rows(n: i64) -> Vec<StampedTuple> {
        (0..n)
            .map(|i| {
                // NULL every 5th value in the second half only.
                let x = if i >= n / 2 && i % 5 == 0 {
                    Value::Null
                } else {
                    Value::Float(i as f64)
                };
                StampedTuple::new(
                    i as u64,
                    Timestamp(i * 1000),
                    Tuple::new(vec![Value::Timestamp(Timestamp(i * 1000)), x]),
                )
            })
            .collect()
    }

    fn monitor() -> DqMonitorOperator {
        DqMonitorOperator::new(
            schema(),
            ExpectationSuite::new("monitor").with(ExpectColumnValuesToNotBeNull::new("x")),
            Duration::from_seconds(10),
        )
    }

    #[test]
    fn emits_one_report_per_window() {
        let reports = DataStream::from_source(
            VecSource::new(rows(100)),
            WatermarkStrategy::ascending(|t: &StampedTuple| t.tau),
        )
        .transform(monitor())
        .collect()
        .unwrap();
        assert_eq!(reports.len(), 10, "100 s of data in 10 s windows");
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.start, Timestamp(i as i64 * 10_000));
            assert_eq!(r.report.element_count, 10);
        }
    }

    #[test]
    fn localizes_the_pollution_onset() {
        let reports = DataStream::from_source(
            VecSource::new(rows(100)),
            WatermarkStrategy::ascending(|t: &StampedTuple| t.tau),
        )
        .transform(monitor())
        .collect()
        .unwrap();
        // First half clean, second half has NULLs.
        for r in &reports[..5] {
            assert!(r.report.success(), "clean window {r:?}");
        }
        for r in &reports[5..] {
            assert!(!r.report.success(), "polluted window {:?}", r.start);
            assert_eq!(r.report.total_unexpected(), 2, "2 of 10 per window");
        }
    }

    #[test]
    fn windows_fire_incrementally_with_watermarks() {
        use icewafl_stream::stage::run_operator;
        use icewafl_stream::StreamElement;
        let mut elements: Vec<StreamElement<StampedTuple>> =
            rows(20).into_iter().map(StreamElement::Record).collect();
        // Watermark after the first window closes.
        elements.insert(10, StreamElement::Watermark(Timestamp(9_999)));
        elements.push(StreamElement::End);
        let out: Vec<WindowedReport> = run_operator(monitor(), elements);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].start, Timestamp(0));
    }

    #[test]
    fn empty_stream_produces_no_reports() {
        let reports = DataStream::from_vec(Vec::<StampedTuple>::new())
            .transform(monitor())
            .collect()
            .unwrap();
        assert!(reports.is_empty());
    }
}
