//! Live telemetry: a background [`TelemetrySampler`] that snapshots a
//! [`MetricsRegistry`](crate::MetricsRegistry) on a fixed interval into
//! fixed-capacity ring buffers.
//!
//! Each tick produces a [`MetricsDelta`] — absolute counter values, the
//! change since the previous tick, and current gauge values — and
//! appends per-metric [`SeriesPoint`]s (counter *rates* in units per
//! second, gauge values) to bounded ring buffers. Consumers poll
//! [`TelemetrySampler::frames_since`] to stream deltas (this is what a
//! serve `telemetry` session forwards on the wire) or
//! [`TelemetrySampler::series`] to read a time series back.
//!
//! The sampler owns one background thread. It joins **cleanly and
//! promptly** both on [`TelemetrySampler::shutdown`] and on drop — the
//! loop sleeps in short slices so shutdown never waits out a long
//! interval. With the `enabled` feature off the sampler spawns nothing
//! and every query returns empty data.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One telemetry tick: the registry's state at a sample instant plus
/// its change since the previous tick.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsDelta {
    /// Monotonic tick number (1 = first tick after start).
    pub seq: u64,
    /// Milliseconds since the sampler started.
    pub at_ms: u64,
    /// The sampler's configured interval, in milliseconds.
    pub interval_ms: u64,
    /// Absolute counter values at this tick.
    pub counters: BTreeMap<String, u64>,
    /// Counter increases since the previous tick (absent = unchanged).
    pub deltas: BTreeMap<String, u64>,
    /// Gauge values at this tick.
    pub gauges: BTreeMap<String, u64>,
}

/// One point of a sampled time series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Milliseconds since the sampler started.
    pub at_ms: u64,
    /// Counter series: rate in units per second over the last
    /// interval. Gauge series: the sampled value.
    pub value: f64,
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{MetricsDelta, SeriesPoint};
    use crate::MetricsRegistry;
    use parking_lot::Mutex;
    use std::collections::{BTreeMap, VecDeque};
    use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
    use std::sync::Arc;
    use std::thread::JoinHandle;
    use std::time::{Duration, Instant};

    /// Upper slice of one shutdown-check sleep; bounds how long a drop
    /// can block behind a sleeping sampler thread.
    const SHUTDOWN_POLL: Duration = Duration::from_millis(5);

    struct SamplerState {
        prev: Option<BTreeMap<String, u64>>,
        frames: VecDeque<MetricsDelta>,
        series: BTreeMap<String, VecDeque<SeriesPoint>>,
        seq: u64,
    }

    struct SamplerShared {
        interval: Duration,
        capacity: usize,
        state: Mutex<SamplerState>,
    }

    impl SamplerShared {
        fn tick(&self, registry: &MetricsRegistry, at_ms: u64) {
            let snap = registry.snapshot();
            let mut st = self.state.lock();
            st.seq += 1;
            let seq = st.seq;
            let interval_ms = self.interval.as_millis() as u64;
            let mut deltas = BTreeMap::new();
            for (name, value) in &snap.counters {
                let prev = st
                    .prev
                    .as_ref()
                    .and_then(|p| p.get(name).copied())
                    .unwrap_or(0);
                let delta = value.saturating_sub(prev);
                if delta != 0 {
                    deltas.insert(name.clone(), delta);
                }
                let rate = delta as f64 * 1000.0 / interval_ms.max(1) as f64;
                push_point(&mut st.series, name, at_ms, rate, self.capacity);
            }
            for (name, value) in &snap.gauges {
                push_point(&mut st.series, name, at_ms, *value as f64, self.capacity);
            }
            st.prev = Some(snap.counters.clone());
            let frame = MetricsDelta {
                seq,
                at_ms,
                interval_ms,
                counters: snap.counters,
                deltas,
                gauges: snap.gauges,
            };
            if st.frames.len() >= self.capacity {
                st.frames.pop_front();
            }
            st.frames.push_back(frame);
        }
    }

    fn push_point(
        series: &mut BTreeMap<String, VecDeque<SeriesPoint>>,
        name: &str,
        at_ms: u64,
        value: f64,
        capacity: usize,
    ) {
        let ring = series
            .entry(name.to_string())
            .or_insert_with(|| VecDeque::with_capacity(capacity.min(1024)));
        if ring.len() >= capacity {
            ring.pop_front();
        }
        ring.push_back(SeriesPoint { at_ms, value });
    }

    /// Samples a [`MetricsRegistry`] on a fixed interval from a
    /// background thread (see the [module docs](crate::telemetry)).
    pub struct TelemetrySampler {
        shared: Arc<SamplerShared>,
        stop: Arc<AtomicBool>,
        handle: Option<JoinHandle<()>>,
    }

    impl TelemetrySampler {
        /// Starts sampling `registry` every `interval`, keeping the
        /// most recent `capacity` delta frames and series points.
        pub fn start(registry: &MetricsRegistry, interval: Duration, capacity: usize) -> Self {
            let shared = Arc::new(SamplerShared {
                interval: interval.max(Duration::from_millis(1)),
                capacity: capacity.max(2),
                state: Mutex::new(SamplerState {
                    prev: None,
                    frames: VecDeque::new(),
                    series: BTreeMap::new(),
                    seq: 0,
                }),
            });
            let stop = Arc::new(AtomicBool::new(false));
            let handle = {
                let shared = Arc::clone(&shared);
                let stop = Arc::clone(&stop);
                let registry = registry.clone();
                std::thread::Builder::new()
                    .name("icewafl-telemetry".into())
                    .spawn(move || {
                        let epoch = Instant::now();
                        let mut next = epoch + shared.interval;
                        loop {
                            // Sleep to the next tick in short slices so a
                            // shutdown request is honoured within
                            // SHUTDOWN_POLL, not a full interval.
                            loop {
                                if stop.load(Relaxed) {
                                    return;
                                }
                                let now = Instant::now();
                                if now >= next {
                                    break;
                                }
                                std::thread::sleep((next - now).min(SHUTDOWN_POLL));
                            }
                            let at_ms = epoch.elapsed().as_millis() as u64;
                            shared.tick(&registry, at_ms);
                            next += shared.interval;
                            // If ticking fell behind, skip to the present
                            // rather than firing a catch-up burst.
                            let now = Instant::now();
                            if next < now {
                                next = now + shared.interval;
                            }
                        }
                    })
                    .expect("spawn telemetry sampler thread")
            };
            TelemetrySampler {
                shared,
                stop,
                handle: Some(handle),
            }
        }

        /// Number of ticks taken so far.
        pub fn ticks(&self) -> u64 {
            self.shared.state.lock().seq
        }

        /// All retained delta frames with `seq > after_seq`, oldest
        /// first.
        pub fn frames_since(&self, after_seq: u64) -> Vec<MetricsDelta> {
            self.shared
                .state
                .lock()
                .frames
                .iter()
                .filter(|f| f.seq > after_seq)
                .cloned()
                .collect()
        }

        /// The most recent delta frame, if any tick has fired.
        pub fn latest(&self) -> Option<MetricsDelta> {
            self.shared.state.lock().frames.back().cloned()
        }

        /// The retained time series for one metric (counter → rate per
        /// second, gauge → value), oldest point first.
        pub fn series(&self, name: &str) -> Vec<SeriesPoint> {
            self.shared
                .state
                .lock()
                .series
                .get(name)
                .map(|r| r.iter().copied().collect())
                .unwrap_or_default()
        }

        /// Names of every metric with at least one series point.
        pub fn series_names(&self) -> Vec<String> {
            self.shared.state.lock().series.keys().cloned().collect()
        }

        /// Stops the sampler thread and joins it. Idempotent; also runs
        /// on drop.
        pub fn shutdown(&mut self) {
            self.stop.store(true, Relaxed);
            if let Some(handle) = self.handle.take() {
                let _ = handle.join();
            }
        }
    }

    impl Drop for TelemetrySampler {
        fn drop(&mut self) {
            self.shutdown();
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    //! No-op sampler: spawns nothing, returns nothing.

    use super::{MetricsDelta, SeriesPoint};
    use crate::MetricsRegistry;
    use std::time::Duration;

    /// No-op telemetry sampler (metrics compiled out).
    #[derive(Debug, Default)]
    pub struct TelemetrySampler;

    impl TelemetrySampler {
        /// No-op; spawns no thread.
        #[inline(always)]
        pub fn start(_registry: &MetricsRegistry, _interval: Duration, _capacity: usize) -> Self {
            TelemetrySampler
        }

        /// Always 0.
        #[inline(always)]
        pub fn ticks(&self) -> u64 {
            0
        }

        /// Always empty.
        #[inline(always)]
        pub fn frames_since(&self, _after_seq: u64) -> Vec<MetricsDelta> {
            Vec::new()
        }

        /// Always `None`.
        #[inline(always)]
        pub fn latest(&self) -> Option<MetricsDelta> {
            None
        }

        /// Always empty.
        #[inline(always)]
        pub fn series(&self, _name: &str) -> Vec<SeriesPoint> {
            Vec::new()
        }

        /// Always empty.
        #[inline(always)]
        pub fn series_names(&self) -> Vec<String> {
            Vec::new()
        }

        /// No-op.
        #[inline(always)]
        pub fn shutdown(&mut self) {}
    }
}

pub use imp::TelemetrySampler;

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::MetricsRegistry;
    use std::time::{Duration, Instant};

    fn wait_for_ticks(sampler: &TelemetrySampler, n: u64) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while sampler.ticks() < n {
            assert!(Instant::now() < deadline, "sampler never reached {n} ticks");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn sampler_produces_deltas_and_series() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("work/done");
        let gauge = registry.gauge("work/active");
        let mut sampler = TelemetrySampler::start(&registry, Duration::from_millis(10), 64);
        counter.add(5);
        gauge.set(3);
        wait_for_ticks(&sampler, 2);
        counter.add(7);
        wait_for_ticks(&sampler, 4);
        sampler.shutdown();

        let frames = sampler.frames_since(0);
        assert!(frames.len() >= 4);
        // Seqs are contiguous and ascending.
        for pair in frames.windows(2) {
            assert_eq!(pair[1].seq, pair[0].seq + 1);
            assert!(pair[1].at_ms >= pair[0].at_ms);
        }
        // All 12 increments are accounted for across the deltas.
        let total: u64 = frames
            .iter()
            .filter_map(|f| f.deltas.get("work/done"))
            .sum();
        assert_eq!(total, 12);
        assert_eq!(frames.last().unwrap().counters["work/done"], 12);
        assert_eq!(frames.last().unwrap().gauges["work/active"], 3);
        // Both metrics have time series; the counter series carries
        // rates, the gauge series raw values.
        assert!(sampler.series_names().contains(&"work/done".to_string()));
        let gauge_series = sampler.series("work/active");
        assert!(!gauge_series.is_empty());
        assert_eq!(gauge_series.last().unwrap().value, 3.0);
        // frames_since filters by seq.
        let last_seq = frames.last().unwrap().seq;
        assert!(sampler.frames_since(last_seq).is_empty());
        assert_eq!(sampler.frames_since(last_seq - 1).len(), 1);
    }

    #[test]
    fn ring_buffers_stay_bounded() {
        let registry = MetricsRegistry::new();
        registry.counter("c").inc();
        let mut sampler = TelemetrySampler::start(&registry, Duration::from_millis(1), 4);
        wait_for_ticks(&sampler, 12);
        sampler.shutdown();
        assert!(sampler.frames_since(0).len() <= 4);
        assert!(sampler.series("c").len() <= 4);
        // The retained frames are the newest ones.
        let frames = sampler.frames_since(0);
        assert_eq!(frames.last().unwrap().seq, sampler.ticks());
    }

    #[test]
    fn drop_joins_promptly() {
        let registry = MetricsRegistry::new();
        // A long interval must not delay shutdown: the loop sleeps in
        // short slices and re-checks the stop flag.
        let sampler = TelemetrySampler::start(&registry, Duration::from_secs(3600), 1024);
        let started = Instant::now();
        drop(sampler);
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "drop blocked on a sleeping sampler"
        );
    }

    #[test]
    fn delta_serde_round_trip() {
        let mut delta = MetricsDelta {
            seq: 3,
            at_ms: 1500,
            interval_ms: 500,
            ..MetricsDelta::default()
        };
        delta.counters.insert("a".into(), 10);
        delta.deltas.insert("a".into(), 4);
        delta.gauges.insert("g".into(), 2);
        let content = serde::Serialize::to_content(&delta);
        let back: MetricsDelta = serde::Deserialize::from_content(&content).unwrap();
        assert_eq!(back, delta);
    }
}
