//! A lightweight span / trace-event layer with a Chrome trace-event
//! exporter.
//!
//! Where the metrics half of this crate answers *how much* (counts,
//! histograms), tracing answers *when*: sampled spans around hot-path
//! work (stage processing, batch flushes, sorter releases) and instant
//! events at one-shot occurrences (epoch swaps), each tagged with the
//! recording thread, exportable as Chrome trace-event JSON that loads
//! directly in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! The layer follows the same compile-out contract as metrics: with the
//! `enabled` feature off every call here is a zero-sized no-op. With it
//! on, recording is still **idle by default** — events are captured
//! only while a [`TraceSession`] is installed, and the inactive check
//! is a single relaxed atomic load, so instrumented code stays off the
//! perf radar when nobody is tracing (the `obs_overhead` bench pins
//! this below 5%).
//!
//! At most one session can be active per process (the collector is a
//! process-wide buffer); [`TraceSession::start`] returns `None` while
//! another session holds it.

use std::io::{self, Write};

/// One captured trace event, in the vocabulary of the Chrome
/// trace-event format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name, e.g. a stage label.
    pub name: String,
    /// Category (`stage`, `backpressure`, `control`, ...); Perfetto
    /// groups and filters by it.
    pub cat: &'static str,
    /// Phase: `'X'` for a complete span (with duration), `'i'` for an
    /// instant event.
    pub ph: char,
    /// Start time in nanoseconds since the session epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Recording thread, as a small process-unique integer.
    pub tid: u64,
    /// Numeric key/value annotations shown in the trace viewer.
    pub args: Vec<(&'static str, u64)>,
}

/// Everything captured by a finished [`TraceSession`].
#[derive(Debug, Clone, Default)]
pub struct TraceDump {
    /// The captured events, in recording order.
    pub events: Vec<TraceEvent>,
    /// Events discarded because the session's capacity was reached.
    pub dropped: u64,
}

impl TraceDump {
    /// Serializes the dump as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object form), loadable in Perfetto and
    /// `chrome://tracing`. Timestamps are emitted in microseconds with
    /// nanosecond precision, as the format requires.
    pub fn write_chrome_trace(&self, out: &mut impl Write) -> io::Result<()> {
        out.write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.write_all(b",")?;
            }
            write!(
                out,
                "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":1,\"tid\":{}",
                escape_json(&ev.name),
                escape_json(ev.cat),
                ev.ph,
                ev.ts_ns as f64 / 1000.0,
                ev.tid
            )?;
            if ev.ph == 'X' {
                write!(out, ",\"dur\":{:.3}", ev.dur_ns as f64 / 1000.0)?;
            }
            if ev.ph == 'i' {
                // Instant scope: thread.
                out.write_all(b",\"s\":\"t\"")?;
            }
            if !ev.args.is_empty() {
                out.write_all(b",\"args\":{")?;
                for (j, (k, v)) in ev.args.iter().enumerate() {
                    if j > 0 {
                        out.write_all(b",")?;
                    }
                    write!(out, "\"{}\":{}", escape_json(k), v)?;
                }
                out.write_all(b"}")?;
            }
            out.write_all(b"}")?;
        }
        out.write_all(b"\n]}\n")
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{TraceDump, TraceEvent};
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
    use std::sync::OnceLock;
    use std::time::Instant;

    /// Fast-path flag: `true` only while a session is installed.
    static ACTIVE: AtomicBool = AtomicBool::new(false);

    /// Monotonic base for every timestamp of the process.
    static EPOCH: OnceLock<Instant> = OnceLock::new();

    /// The process-wide event buffer (locked per *captured* event —
    /// captures are sampled and gated on [`ACTIVE`], so this lock is
    /// never on an un-traced hot path).
    static STATE: OnceLock<Mutex<TraceState>> = OnceLock::new();

    /// Next process-unique thread tag.
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);

    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Relaxed);
    }

    #[derive(Default)]
    struct TraceState {
        events: Vec<TraceEvent>,
        capacity: usize,
        dropped: u64,
    }

    fn state() -> &'static Mutex<TraceState> {
        STATE.get_or_init(|| Mutex::new(TraceState::default()))
    }

    /// Nanoseconds since the process trace epoch.
    fn now_ns() -> u64 {
        let epoch = EPOCH.get_or_init(Instant::now);
        u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The small integer tag of the calling thread.
    pub fn current_tid() -> u64 {
        TID.with(|t| *t)
    }

    /// `true` while a [`TraceSession`] is collecting events.
    #[inline(always)]
    pub fn tracing_active() -> bool {
        ACTIVE.load(Relaxed)
    }

    fn push_event(ev: TraceEvent) {
        let mut st = state().lock();
        if st.events.len() < st.capacity {
            st.events.push(ev);
        } else {
            st.dropped += 1;
        }
    }

    /// An exclusive, process-wide trace collection window.
    ///
    /// Dropping the session without [`TraceSession::finish`] discards
    /// the captured events and deactivates tracing.
    #[derive(Debug)]
    pub struct TraceSession {
        _priv: (),
    }

    impl TraceSession {
        /// Starts collecting up to `capacity` events. Returns `None`
        /// if another session is already active.
        pub fn start(capacity: usize) -> Option<TraceSession> {
            if ACTIVE
                .compare_exchange(false, true, Relaxed, Relaxed)
                .is_err()
            {
                return None;
            }
            let mut st = state().lock();
            st.events = Vec::with_capacity(capacity.min(1 << 16));
            st.capacity = capacity.max(1);
            st.dropped = 0;
            Some(TraceSession { _priv: () })
        }

        /// Stops collecting and returns everything captured.
        pub fn finish(self) -> TraceDump {
            ACTIVE.store(false, Relaxed);
            let mut st = state().lock();
            let dump = TraceDump {
                events: std::mem::take(&mut st.events),
                dropped: st.dropped,
            };
            st.dropped = 0;
            std::mem::forget(self);
            dump
        }
    }

    impl Drop for TraceSession {
        fn drop(&mut self) {
            ACTIVE.store(false, Relaxed);
            let mut st = state().lock();
            st.events = Vec::new();
            st.dropped = 0;
        }
    }

    /// A live span; records one complete (`'X'`) event when dropped.
    #[derive(Debug)]
    pub struct Span {
        name: String,
        cat: &'static str,
        start_ns: u64,
        args: Vec<(&'static str, u64)>,
    }

    impl Span {
        /// Attaches a numeric annotation shown in the trace viewer.
        pub fn arg(&mut self, key: &'static str, value: u64) {
            self.args.push((key, value));
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            let end = now_ns();
            push_event(TraceEvent {
                name: std::mem::take(&mut self.name),
                cat: self.cat,
                ph: 'X',
                ts_ns: self.start_ns,
                dur_ns: end.saturating_sub(self.start_ns),
                tid: current_tid(),
                args: std::mem::take(&mut self.args),
            });
        }
    }

    /// Opens a span if tracing is active; `None` (zero cost beyond one
    /// relaxed load) otherwise. Bind the result to keep it open:
    ///
    /// ```
    /// let _span = icewafl_obs::trace::span("stage/00_map", "stage");
    /// ```
    #[inline]
    pub fn span(name: &str, cat: &'static str) -> Option<Span> {
        if !tracing_active() {
            return None;
        }
        Some(Span {
            name: name.to_string(),
            cat,
            start_ns: now_ns(),
            args: Vec::new(),
        })
    }

    /// Records an instant (`'i'`) event if tracing is active.
    #[inline]
    pub fn instant(name: &str, cat: &'static str) {
        instant_with(name, cat, &[]);
    }

    /// [`instant`] with numeric annotations.
    #[inline]
    pub fn instant_with(name: &str, cat: &'static str, args: &[(&'static str, u64)]) {
        if !tracing_active() {
            return;
        }
        push_event(TraceEvent {
            name: name.to_string(),
            cat,
            ph: 'i',
            ts_ns: now_ns(),
            dur_ns: 0,
            tid: current_tid(),
            args: args.to_vec(),
        });
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    //! Zero-sized no-op twins: the span layer compiles to nothing.

    use super::TraceDump;

    /// Always `false` (tracing compiled out).
    #[inline(always)]
    pub fn tracing_active() -> bool {
        false
    }

    /// Always 0 (tracing compiled out).
    #[inline(always)]
    pub fn current_tid() -> u64 {
        0
    }

    /// No-op trace session (tracing compiled out).
    #[derive(Debug)]
    pub struct TraceSession {
        _priv: (),
    }

    impl TraceSession {
        /// Always `None`: nothing can be captured.
        #[inline(always)]
        pub fn start(_capacity: usize) -> Option<TraceSession> {
            None
        }

        /// Always empty.
        #[inline(always)]
        pub fn finish(self) -> TraceDump {
            TraceDump::default()
        }
    }

    /// No-op span (tracing compiled out).
    #[derive(Debug)]
    pub struct Span {
        _priv: (),
    }

    impl Span {
        /// No-op.
        #[inline(always)]
        pub fn arg(&mut self, _key: &'static str, _value: u64) {}
    }

    /// Always `None`.
    #[inline(always)]
    pub fn span(_name: &str, _cat: &'static str) -> Option<Span> {
        None
    }

    /// No-op.
    #[inline(always)]
    pub fn instant(_name: &str, _cat: &'static str) {}

    /// No-op.
    #[inline(always)]
    pub fn instant_with(_name: &str, _cat: &'static str, _args: &[(&'static str, u64)]) {}
}

pub use imp::{current_tid, instant, instant_with, span, tracing_active, Span, TraceSession};

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    /// The collector is process-global; tests that install a session
    /// serialize on this lock.
    static SESSION_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn idle_layer_captures_nothing() {
        let _guard = SESSION_LOCK.lock();
        assert!(!tracing_active());
        let sp = span("noop", "test");
        assert!(sp.is_none(), "no session, no span");
        instant("noop", "test");
    }

    #[test]
    fn session_captures_spans_and_instants() {
        let _guard = SESSION_LOCK.lock();
        let session = TraceSession::start(128).expect("no other session");
        assert!(tracing_active());
        // Only one session at a time.
        assert!(TraceSession::start(16).is_none());
        {
            let mut sp = span("stage/00_map", "stage").expect("active");
            sp.arg("batch", 256);
        }
        instant_with("epoch_swap", "control", &[("epoch", 3)]);
        let dump = session.finish();
        assert!(!tracing_active());
        assert_eq!(dump.events.len(), 2);
        assert_eq!(dump.dropped, 0);
        let sp = &dump.events[0];
        assert_eq!(
            (sp.ph, sp.name.as_str(), sp.cat),
            ('X', "stage/00_map", "stage")
        );
        assert_eq!(sp.args, vec![("batch", 256)]);
        assert!(sp.tid > 0);
        let inst = &dump.events[1];
        assert_eq!((inst.ph, inst.name.as_str()), ('i', "epoch_swap"));
        assert_eq!(inst.args, vec![("epoch", 3)]);
        assert!(inst.ts_ns >= sp.ts_ns);
    }

    #[test]
    fn capacity_overflow_counts_drops() {
        let _guard = SESSION_LOCK.lock();
        let session = TraceSession::start(2).unwrap();
        for i in 0..5 {
            instant_with("tick", "test", &[("i", i)]);
        }
        let dump = session.finish();
        assert_eq!(dump.events.len(), 2);
        assert_eq!(dump.dropped, 3);
    }

    #[test]
    fn chrome_export_is_valid_json_with_expected_fields() {
        let _guard = SESSION_LOCK.lock();
        let session = TraceSession::start(16).unwrap();
        {
            let _sp = span("stage/01_\"quoted\"", "stage");
        }
        instant("swap", "control");
        let dump = session.finish();
        let mut buf = Vec::new();
        dump.write_chrome_trace(&mut buf).unwrap();
        let json = String::from_utf8(buf).unwrap();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\\\"quoted\\\""), "{json}");
        assert!(json.contains("\"dur\":"));
        assert!(json.contains("\"s\":\"t\""));
        // Balanced braces/brackets is a cheap well-formedness check;
        // the serve smoke test exercises real JSON parsing end to end.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn dropped_session_discards_events() {
        let _guard = SESSION_LOCK.lock();
        let session = TraceSession::start(16).unwrap();
        instant("gone", "test");
        drop(session);
        assert!(!tracing_active());
        let session = TraceSession::start(16).unwrap();
        let dump = session.finish();
        assert!(dump.events.is_empty(), "stale events leaked: {dump:?}");
    }

    #[test]
    fn threads_get_distinct_tags() {
        let a = current_tid();
        let b = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(a, b);
    }
}
